// Unit + property tests for the columnar layer: types, columns, batches,
// kernels, and IPC roundtrips (including corruption injection).
#include <gtest/gtest.h>

#include <random>

#include "columnar/batch.h"
#include "columnar/column.h"
#include "columnar/ipc.h"
#include "columnar/kernels.h"
#include "columnar/types.h"

namespace pocs::columnar {
namespace {

TEST(TypesTest, NamesAndWidths) {
  EXPECT_EQ(TypeName(TypeKind::kFloat64), "float64");
  EXPECT_EQ(TypeWidth(TypeKind::kInt64), 8u);
  EXPECT_EQ(TypeWidth(TypeKind::kString), 0u);
  EXPECT_TRUE(IsNumeric(TypeKind::kDate32));
  EXPECT_FALSE(IsNumeric(TypeKind::kString));
}

TEST(TypesTest, SchemaFieldLookup) {
  Schema s({{"a", TypeKind::kInt64}, {"b", TypeKind::kFloat64}});
  EXPECT_EQ(s.FieldIndex("a"), 0);
  EXPECT_EQ(s.FieldIndex("b"), 1);
  EXPECT_EQ(s.FieldIndex("c"), -1);
  EXPECT_EQ(s.num_fields(), 2u);
}

TEST(TypesTest, DatumCompareNumericCrossType) {
  EXPECT_EQ(Datum::Int32(5).Compare(Datum::Float64(5.0)), 0);
  EXPECT_LT(Datum::Int64(4).Compare(Datum::Float64(4.5)), 0);
  EXPECT_GT(Datum::Float64(10.0).Compare(Datum::Int32(9)), 0);
}

TEST(TypesTest, DatumNullSortsFirst) {
  EXPECT_LT(Datum::Null(TypeKind::kInt64).Compare(Datum::Int64(0)), 0);
  EXPECT_EQ(Datum::Null(TypeKind::kInt64).Compare(Datum::Null(TypeKind::kInt64)),
            0);
}

TEST(TypesTest, DatumStringCompare) {
  EXPECT_LT(Datum::String("apple").Compare(Datum::String("banana")), 0);
  EXPECT_EQ(Datum::String("x").Compare(Datum::String("x")), 0);
}

TEST(TypesTest, CivilDaysRoundtrip) {
  // Known anchor: 1970-01-01 is day 0; 1998-09-02 (TPC-H Q1 cutoff).
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  int32_t d = DaysFromCivil(1998, 9, 2);
  int y, m, dd;
  CivilFromDays(d, &y, &m, &dd);
  EXPECT_EQ(y, 1998);
  EXPECT_EQ(m, 9);
  EXPECT_EQ(dd, 2);
  EXPECT_EQ(Datum::Date32(d).ToString(), "1998-09-02");
}

TEST(TypesTest, CivilDaysSweep) {
  // Every 37 days across four decades roundtrips exactly.
  for (int32_t d = -3650; d < 18250; d += 37) {
    int y, m, dd;
    CivilFromDays(d, &y, &m, &dd);
    EXPECT_EQ(DaysFromCivil(y, m, dd), d);
  }
}

TEST(ColumnTest, AppendAndRead) {
  Column c(TypeKind::kInt64);
  c.AppendInt64(10);
  c.AppendInt64(-20);
  c.AppendNull();
  ASSERT_EQ(c.length(), 3u);
  EXPECT_EQ(c.GetInt64(0), 10);
  EXPECT_EQ(c.GetInt64(1), -20);
  EXPECT_TRUE(c.IsNull(2));
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_EQ(c.null_count(), 1u);
}

TEST(ColumnTest, StringStorage) {
  Column c(TypeKind::kString);
  c.AppendString("hello");
  c.AppendString("");
  c.AppendString("world");
  EXPECT_EQ(c.GetString(0), "hello");
  EXPECT_EQ(c.GetString(1), "");
  EXPECT_EQ(c.GetString(2), "world");
}

TEST(ColumnTest, NullBeforeFirstValueBackfillsValidity) {
  Column c(TypeKind::kFloat64);
  c.AppendFloat64(1.5);
  c.AppendNull();
  c.AppendFloat64(2.5);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_FALSE(c.IsNull(2));
}

TEST(ColumnTest, AppendFromCopiesNulls) {
  Column src(TypeKind::kString);
  src.AppendString("a");
  src.AppendNull();
  Column dst(TypeKind::kString);
  dst.AppendFrom(src, 0);
  dst.AppendFrom(src, 1);
  EXPECT_EQ(dst.GetString(0), "a");
  EXPECT_TRUE(dst.IsNull(1));
}

TEST(ColumnTest, DatumRoundtrip) {
  Column c(TypeKind::kDate32);
  c.AppendDatum(Datum::Date32(100));
  c.AppendDatum(Datum::Null(TypeKind::kDate32));
  EXPECT_EQ(c.GetDatum(0).AsInt64(), 100);
  EXPECT_TRUE(c.GetDatum(1).is_null());
}

TEST(ColumnTest, ByteSizeTracksData) {
  Column c(TypeKind::kInt64);
  for (int i = 0; i < 100; ++i) c.AppendInt64(i);
  EXPECT_EQ(c.ByteSize(), 800u);
}

RecordBatchPtr MakeTestBatch() {
  auto id = MakeColumn(TypeKind::kInt64);
  auto val = MakeColumn(TypeKind::kFloat64);
  auto name = MakeColumn(TypeKind::kString);
  for (int i = 0; i < 10; ++i) {
    id->AppendInt64(i);
    if (i % 3 == 0) {
      val->AppendNull();
    } else {
      val->AppendFloat64(i * 1.5);
    }
    name->AppendString("row" + std::to_string(i));
  }
  auto schema = MakeSchema({{"id", TypeKind::kInt64},
                            {"val", TypeKind::kFloat64},
                            {"name", TypeKind::kString}});
  return MakeBatch(schema, {id, val, name});
}

TEST(BatchTest, BasicAccessors) {
  auto batch = MakeTestBatch();
  EXPECT_EQ(batch->num_rows(), 10u);
  EXPECT_EQ(batch->num_columns(), 3u);
  EXPECT_TRUE(batch->Validate().ok());
  EXPECT_NE(batch->ColumnByName("val"), nullptr);
  EXPECT_EQ(batch->ColumnByName("nope"), nullptr);
}

TEST(BatchTest, ProjectSubset) {
  auto batch = MakeTestBatch();
  auto proj = batch->Project({2, 0});
  EXPECT_EQ(proj->num_columns(), 2u);
  EXPECT_EQ(proj->schema()->field(0).name, "name");
  EXPECT_EQ(proj->schema()->field(1).name, "id");
  EXPECT_EQ(proj->column(1)->GetInt64(5), 5);
}

TEST(BatchTest, ValidateCatchesRaggedColumns) {
  auto a = MakeColumn(TypeKind::kInt64);
  a->AppendInt64(1);
  auto b = MakeColumn(TypeKind::kInt64);
  b->AppendInt64(1);
  b->AppendInt64(2);
  auto schema = MakeSchema({{"a", TypeKind::kInt64}, {"b", TypeKind::kInt64}});
  RecordBatch batch(schema, {a, b});
  EXPECT_FALSE(batch.Validate().ok());
}

TEST(BatchTest, TableCombine) {
  auto schema = MakeSchema({{"x", TypeKind::kInt32}});
  Table table(schema);
  for (int b = 0; b < 3; ++b) {
    auto col = MakeColumn(TypeKind::kInt32);
    for (int i = 0; i < 4; ++i) col->AppendInt32(b * 4 + i);
    table.AppendBatch(MakeBatch(schema, {col}));
  }
  EXPECT_EQ(table.num_rows(), 12u);
  auto combined = table.Combine();
  ASSERT_EQ(combined->num_rows(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(combined->column(0)->GetInt32(i), i);
}

// ---- kernels ------------------------------------------------------------

TEST(KernelsTest, CompareScalarOnInt64) {
  Column c(TypeKind::kInt64);
  for (int i = 0; i < 10; ++i) c.AppendInt64(i);
  auto sel = CompareScalar(c, CompareOp::kGt, Datum::Int64(6));
  EXPECT_EQ(sel, (SelectionVector{7, 8, 9}));
  sel = CompareScalar(c, CompareOp::kEq, Datum::Int64(3));
  EXPECT_EQ(sel, (SelectionVector{3}));
  sel = CompareScalar(c, CompareOp::kLe, Datum::Int64(1));
  EXPECT_EQ(sel, (SelectionVector{0, 1}));
}

TEST(KernelsTest, CompareSkipsNulls) {
  Column c(TypeKind::kFloat64);
  c.AppendFloat64(1.0);
  c.AppendNull();
  c.AppendFloat64(3.0);
  auto sel = CompareScalar(c, CompareOp::kGe, Datum::Float64(0.0));
  EXPECT_EQ(sel, (SelectionVector{0, 2}));
}

TEST(KernelsTest, CompareWithNullLiteralMatchesNothing) {
  Column c(TypeKind::kInt64);
  c.AppendInt64(1);
  auto sel = CompareScalar(c, CompareOp::kEq, Datum::Null(TypeKind::kInt64));
  EXPECT_TRUE(sel.empty());
}

TEST(KernelsTest, CompareChainsThroughInputSelection) {
  Column c(TypeKind::kInt64);
  for (int i = 0; i < 10; ++i) c.AppendInt64(i);
  auto sel1 = CompareScalar(c, CompareOp::kGe, Datum::Int64(3));
  auto sel2 = CompareScalar(c, CompareOp::kLe, Datum::Int64(6), &sel1);
  EXPECT_EQ(sel2, (SelectionVector{3, 4, 5, 6}));
}

TEST(KernelsTest, BetweenMatchesManualChain) {
  Column c(TypeKind::kFloat64);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 4.0);
  for (int i = 0; i < 1000; ++i) c.AppendFloat64(dist(rng));
  auto sel = Between(c, Datum::Float64(0.8), Datum::Float64(3.2));
  for (uint32_t i : sel) {
    EXPECT_GE(c.GetFloat64(i), 0.8);
    EXPECT_LE(c.GetFloat64(i), 3.2);
  }
  size_t manual = 0;
  for (size_t i = 0; i < c.length(); ++i) {
    double v = c.GetFloat64(i);
    if (v >= 0.8 && v <= 3.2) ++manual;
  }
  EXPECT_EQ(sel.size(), manual);
}

TEST(KernelsTest, StringCompare) {
  Column c(TypeKind::kString);
  c.AppendString("A");
  c.AppendString("N");
  c.AppendString("R");
  auto sel = CompareScalar(c, CompareOp::kEq, Datum::String("N"));
  EXPECT_EQ(sel, (SelectionVector{1}));
  sel = CompareScalar(c, CompareOp::kNe, Datum::String("N"));
  EXPECT_EQ(sel, (SelectionVector{0, 2}));
}

TEST(KernelsTest, TakeGathersRows) {
  auto batch = MakeTestBatch();
  auto taken = TakeBatch(*batch, {9, 0, 4});
  ASSERT_EQ(taken->num_rows(), 3u);
  EXPECT_EQ(taken->column(0)->GetInt64(0), 9);
  EXPECT_EQ(taken->column(0)->GetInt64(1), 0);
  EXPECT_EQ(taken->column(2)->GetString(2), "row4");
  EXPECT_TRUE(taken->column(1)->IsNull(1));  // row 0 val is null
}

TEST(KernelsTest, HashRowsGroupsEqualKeys) {
  auto k1 = MakeColumn(TypeKind::kString);
  auto k2 = MakeColumn(TypeKind::kInt32);
  // rows 0 and 2 identical keys; row 1 differs
  k1->AppendString("a");
  k1->AppendString("b");
  k1->AppendString("a");
  k2->AppendInt32(1);
  k2->AppendInt32(1);
  k2->AppendInt32(1);
  std::vector<uint64_t> hashes;
  HashRows({k1, k2}, &hashes);
  ASSERT_EQ(hashes.size(), 3u);
  EXPECT_EQ(hashes[0], hashes[2]);
  EXPECT_NE(hashes[0], hashes[1]);
  EXPECT_TRUE(RowsEqual({k1, k2}, 0, 2));
  EXPECT_FALSE(RowsEqual({k1, k2}, 0, 1));
}

TEST(KernelsTest, NullKeysHashAndCompareEqual) {
  auto k = MakeColumn(TypeKind::kInt64);
  k->AppendNull();
  k->AppendNull();
  k->AppendInt64(0);
  std::vector<uint64_t> hashes;
  HashRows({k}, &hashes);
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_TRUE(RowsEqual({k}, 0, 1));
  EXPECT_FALSE(RowsEqual({k}, 0, 2));  // null != 0
}

TEST(KernelsTest, SortIndicesMultiKey) {
  auto a = MakeColumn(TypeKind::kString);
  auto b = MakeColumn(TypeKind::kInt64);
  a->AppendString("y");
  b->AppendInt64(1);
  a->AppendString("x");
  b->AppendInt64(2);
  a->AppendString("x");
  b->AppendInt64(1);
  auto schema = MakeSchema({{"a", TypeKind::kString}, {"b", TypeKind::kInt64}});
  auto batch = MakeBatch(schema, {a, b});
  auto idx = SortIndices(*batch, {{0, true, true}, {1, true, true}});
  EXPECT_EQ(idx, (std::vector<uint32_t>{2, 1, 0}));
  idx = SortIndices(*batch, {{0, true, true}, {1, false, true}});
  EXPECT_EQ(idx, (std::vector<uint32_t>{1, 2, 0}));
}

TEST(KernelsTest, SortDescendingWithNulls) {
  auto a = MakeColumn(TypeKind::kFloat64);
  a->AppendFloat64(2.0);
  a->AppendNull();
  a->AppendFloat64(5.0);
  auto schema = MakeSchema({{"a", TypeKind::kFloat64}});
  auto batch = MakeBatch(schema, {a});
  auto idx = SortIndices(*batch, {{0, false, false}});  // desc, nulls last
  EXPECT_EQ(idx, (std::vector<uint32_t>{2, 0, 1}));
  idx = SortIndices(*batch, {{0, false, true}});  // desc, nulls first
  EXPECT_EQ(idx, (std::vector<uint32_t>{1, 2, 0}));
}

// ---- IPC ----------------------------------------------------------------

TEST(IpcTest, BatchRoundtrip) {
  auto batch = MakeTestBatch();
  Bytes data = ipc::SerializeBatch(*batch);
  auto result = ipc::DeserializeBatch(ByteSpan(data.data(), data.size()));
  ASSERT_TRUE(result.ok()) << result.status();
  auto rt = *result;
  ASSERT_EQ(rt->num_rows(), batch->num_rows());
  ASSERT_TRUE(rt->schema()->Equals(*batch->schema()));
  for (size_t c = 0; c < batch->num_columns(); ++c) {
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      EXPECT_EQ(rt->column(c)->IsNull(i), batch->column(c)->IsNull(i));
      if (!batch->column(c)->IsNull(i)) {
        EXPECT_EQ(rt->column(c)->GetDatum(i), batch->column(c)->GetDatum(i));
      }
    }
  }
}

TEST(IpcTest, TableRoundtripMultipleBatches) {
  auto schema = MakeSchema({{"x", TypeKind::kInt64}});
  Table table(schema);
  for (int b = 0; b < 5; ++b) {
    auto col = MakeColumn(TypeKind::kInt64);
    for (int i = 0; i < 100; ++i) col->AppendInt64(b * 100 + i);
    table.AppendBatch(MakeBatch(schema, {col}));
  }
  Bytes data = ipc::SerializeTable(table);
  auto result = ipc::DeserializeTable(ByteSpan(data.data(), data.size()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->batches().size(), 5u);
  EXPECT_EQ((*result)->num_rows(), 500u);
}

TEST(IpcTest, EmptyBatchRoundtrip) {
  auto schema = MakeSchema(
      {{"a", TypeKind::kString}, {"b", TypeKind::kFloat64}});
  auto batch = MakeBatch(
      schema, {MakeColumn(TypeKind::kString), MakeColumn(TypeKind::kFloat64)});
  Bytes data = ipc::SerializeBatch(*batch);
  auto result = ipc::DeserializeBatch(ByteSpan(data.data(), data.size()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->num_rows(), 0u);
}

TEST(IpcTest, TruncationDetected) {
  auto batch = MakeTestBatch();
  Bytes data = ipc::SerializeBatch(*batch);
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{5}}) {
    auto result = ipc::DeserializeBatch(ByteSpan(data.data(), cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(IpcTest, BitflipDetected) {
  auto batch = MakeTestBatch();
  Bytes data = ipc::SerializeBatch(*batch);
  data[data.size() / 2] ^= 0x40;
  auto result = ipc::DeserializeBatch(ByteSpan(data.data(), data.size()));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(IpcTest, SchemaOnlyRoundtrip) {
  auto schema = MakeSchema({{"q", TypeKind::kBool, false},
                            {"w", TypeKind::kDate32, true}});
  BufferWriter w;
  ipc::WriteSchema(*schema, &w);
  BufferReader r(w.span());
  auto rt = ipc::ReadSchema(&r);
  ASSERT_TRUE(rt.ok());
  EXPECT_TRUE((*rt)->Equals(*schema));
  EXPECT_FALSE((*rt)->field(0).nullable);
}

// Property-style sweep: IPC roundtrip across all types with random nulls.
class IpcTypeSweep : public ::testing::TestWithParam<TypeKind> {};

TEST_P(IpcTypeSweep, RandomRoundtrip) {
  TypeKind type = GetParam();
  std::mt19937 rng(42);
  auto col = MakeColumn(type);
  for (int i = 0; i < 500; ++i) {
    if (rng() % 7 == 0) {
      col->AppendNull();
      continue;
    }
    switch (type) {
      case TypeKind::kBool: col->AppendBool(rng() & 1); break;
      case TypeKind::kInt32:
      case TypeKind::kDate32:
        col->AppendInt32(static_cast<int32_t>(rng()));
        break;
      case TypeKind::kInt64:
        col->AppendInt64(static_cast<int64_t>((uint64_t{rng()} << 32) | rng()));
        break;
      case TypeKind::kFloat64:
        col->AppendFloat64(std::uniform_real_distribution<>(-1e9, 1e9)(rng));
        break;
      case TypeKind::kString:
        col->AppendString(std::string(rng() % 20, 'a' + rng() % 26));
        break;
    }
  }
  auto schema = MakeSchema({{"c", type}});
  auto batch = MakeBatch(schema, {col});
  Bytes data = ipc::SerializeBatch(*batch);
  auto result = ipc::DeserializeBatch(ByteSpan(data.data(), data.size()));
  ASSERT_TRUE(result.ok()) << result.status();
  auto rt = *result;
  ASSERT_EQ(rt->num_rows(), batch->num_rows());
  for (size_t i = 0; i < batch->num_rows(); ++i) {
    EXPECT_EQ(rt->column(0)->GetDatum(i), batch->column(0)->GetDatum(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, IpcTypeSweep,
                         ::testing::Values(TypeKind::kBool, TypeKind::kInt32,
                                           TypeKind::kInt64,
                                           TypeKind::kFloat64,
                                           TypeKind::kString,
                                           TypeKind::kDate32));

}  // namespace
}  // namespace pocs::columnar
