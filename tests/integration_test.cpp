// End-to-end integration: the full testbed (engine + connectors + OCS
// cluster + object store + simulated network) running the paper's three
// workload queries through all three access paths, checking
//   (1) result equivalence — pushdown must never change answers,
//   (2) data-movement ordering — ocs << hive(select) << hive_raw,
//   (3) pushdown decision records and monitoring.
#include <gtest/gtest.h>

#include <map>

#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"
#include "engine/time_model.h"
#include "workloads/tpch.h"

namespace pocs::workloads {
namespace {

using engine::QueryResult;

// Canonical text form of a result batch for cross-path comparison:
// rows sorted lexicographically, doubles rounded to tolerate summation
// order differences.
std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

struct TestbedFixture : ::testing::Test {
  static void SetUpTestSuite() {
    testbed = std::make_unique<Testbed>();
    LaghosConfig laghos;
    laghos.num_files = 4;
    laghos.rows_per_file = 1 << 13;
    laghos.rows_per_group = 1 << 11;
    auto laghos_data = GenerateLaghos(laghos);
    ASSERT_TRUE(laghos_data.ok()) << laghos_data.status();
    ASSERT_TRUE(testbed->Ingest(std::move(*laghos_data)).ok());

    DeepWaterConfig deepwater;
    deepwater.num_files = 4;
    deepwater.rows_per_file = 1 << 13;
    deepwater.rows_per_group = 1 << 11;
    auto dw_data = GenerateDeepWater(deepwater);
    ASSERT_TRUE(dw_data.ok());
    ASSERT_TRUE(testbed->Ingest(std::move(*dw_data)).ok());

    TpchConfig tpch;
    tpch.num_files = 3;
    tpch.rows_per_file = 1 << 13;
    tpch.rows_per_group = 1 << 11;
    auto tpch_data = GenerateLineitem(tpch);
    ASSERT_TRUE(tpch_data.ok());
    ASSERT_TRUE(testbed->Ingest(std::move(*tpch_data)).ok());
  }
  static void TearDownTestSuite() { testbed.reset(); }

  static std::unique_ptr<Testbed> testbed;
};

std::unique_ptr<Testbed> TestbedFixture::testbed;

struct PathResults {
  std::map<std::string, QueryResult> by_catalog;
};

PathResults RunAllPaths(Testbed* testbed, const std::string& sql) {
  PathResults results;
  for (const char* catalog : {"hive_raw", "hive", "ocs"}) {
    auto result = testbed->Run(sql, catalog);
    EXPECT_TRUE(result.ok()) << catalog << ": " << result.status();
    if (result.ok()) results.by_catalog[catalog] = std::move(*result);
  }
  return results;
}

TEST_F(TestbedFixture, LaghosResultsAgreeAcrossPaths) {
  auto results = RunAllPaths(testbed.get(), LaghosQuery());
  ASSERT_EQ(results.by_catalog.size(), 3u);
  const std::string reference =
      Canonicalize(*results.by_catalog["hive_raw"].table);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(Canonicalize(*results.by_catalog["hive"].table), reference);
  EXPECT_EQ(Canonicalize(*results.by_catalog["ocs"].table), reference);
  EXPECT_EQ(results.by_catalog["ocs"].table->num_rows(), 100u);
}

TEST_F(TestbedFixture, LaghosDataMovementOrdering) {
  auto results = RunAllPaths(testbed.get(), LaghosQuery());
  uint64_t raw = results.by_catalog["hive_raw"].metrics.bytes_from_storage;
  uint64_t select = results.by_catalog["hive"].metrics.bytes_from_storage;
  uint64_t ocs = results.by_catalog["ocs"].metrics.bytes_from_storage;
  EXPECT_GT(raw, select);
  EXPECT_GT(select, ocs * 10) << "full pushdown must move ≫10x less";
}

TEST_F(TestbedFixture, LaghosPushdownDecisions) {
  auto result = testbed->Run(LaghosQuery(), "ocs");
  ASSERT_TRUE(result.ok());
  // Filter, aggregation, and top-N all accepted.
  ASSERT_EQ(result->metrics.pushdown_decisions.size(), 3u);
  for (const auto& d : result->metrics.pushdown_decisions) {
    EXPECT_TRUE(d.accepted) << d.reason;
  }
  EXPECT_EQ(result->optimized_plan,
            "TableScan[pushed:filter,aggregation,topn] -> Aggregation -> "
            "TopN -> Project(identity)");
}

TEST_F(TestbedFixture, DeepWaterResultsAgreeAcrossPaths) {
  auto results = RunAllPaths(testbed.get(), DeepWaterQuery());
  ASSERT_EQ(results.by_catalog.size(), 3u);
  const std::string reference =
      Canonicalize(*results.by_catalog["hive_raw"].table);
  EXPECT_EQ(Canonicalize(*results.by_catalog["hive"].table), reference);
  EXPECT_EQ(Canonicalize(*results.by_catalog["ocs"].table), reference);
  // One group per timestep file.
  EXPECT_EQ(results.by_catalog["ocs"].table->num_rows(), 4u);
}

TEST_F(TestbedFixture, TpchQ1ResultsAgreeAcrossPaths) {
  auto results = RunAllPaths(testbed.get(), TpchQ1());
  ASSERT_EQ(results.by_catalog.size(), 3u);
  const std::string reference =
      Canonicalize(*results.by_catalog["hive_raw"].table);
  EXPECT_EQ(Canonicalize(*results.by_catalog["hive"].table), reference);
  EXPECT_EQ(Canonicalize(*results.by_catalog["ocs"].table), reference);
  // Q1 yields exactly 4 groups: (A,F), (N,F), (N,O), (R,F).
  EXPECT_EQ(results.by_catalog["ocs"].table->num_rows(), 4u);
  // Sorted by returnflag, linestatus.
  const auto& table = *results.by_catalog["ocs"].table;
  EXPECT_EQ(table.column(0)->GetString(0), "A");
  EXPECT_EQ(table.column(0)->GetString(3), "R");
}

TEST_F(TestbedFixture, TpchQ1FilterBarelyReducesMovement) {
  // Paper: filter keeps ~99% of rows, so select-path movement is close to
  // the (projected) raw volume, yet aggregation pushdown crushes it.
  auto hive = testbed->Run(TpchQ1(), "hive");
  auto ocs = testbed->Run(TpchQ1(), "ocs");
  ASSERT_TRUE(hive.ok() && ocs.ok());
  EXPECT_GT(hive->metrics.rows_from_storage,
            testbed->metastore().GetTable("default", "lineitem")->row_count *
                95 / 100);
  EXPECT_LE(ocs->metrics.rows_from_storage, 4u * 3u);  // ≤ groups × splits
}

TEST_F(TestbedFixture, OcsAggregationPushdownReturnsPartials) {
  auto result = testbed->Run(DeepWaterQuery(), "ocs");
  ASSERT_TRUE(result.ok());
  // 4 splits × 1 group (timestep constant per file) = 4 partial rows.
  EXPECT_EQ(result->metrics.rows_from_storage, 4u);
  EXPECT_GT(result->metrics.storage_compute_seconds, 0.0);
}

TEST_F(TestbedFixture, TransferRooflineOrderingMatchesPaper) {
  // At unit-test scale measured compute dominates the tiny modelled
  // transfer, so end-to-end totals are checked at bench scale. Here we
  // assert the scale-independent core of Fig. 5(a): given each path's
  // MEASURED data movement, the transfer model orders them correctly.
  auto raw = testbed->Run(LaghosQuery(), "hive_raw");
  auto select = testbed->Run(LaghosQuery(), "hive");
  auto ocs = testbed->Run(LaghosQuery(), "ocs");
  ASSERT_TRUE(raw.ok() && select.ok() && ocs.ok());
  auto transfer_time = [&](const engine::QueryMetrics& m) {
    engine::SplitStageTotals totals;
    totals.bytes_moved = m.bytes_from_storage + m.bytes_to_storage;
    totals.messages = 2 * m.splits;
    totals.splits = m.splits;
    return engine::SplitStageSeconds(totals, testbed->engine().config().time_model);
  };
  EXPECT_GT(transfer_time(raw->metrics), transfer_time(select->metrics));
  EXPECT_GT(transfer_time(select->metrics), transfer_time(ocs->metrics));
}

TEST_F(TestbedFixture, EventListenerRecordsHistory) {
  size_t before = testbed->history().window_size();
  ASSERT_TRUE(testbed->Run(LaghosQuery(), "ocs").ok());
  EXPECT_EQ(testbed->history().window_size(), before + 1);
  auto stats = testbed->history().StatsFor(
      connector::PushedOperator::Kind::kPartialAggregation);
  EXPECT_GT(stats.offered, 0u);
  EXPECT_GT(stats.accept_rate(), 0.0);
}

TEST_F(TestbedFixture, UnknownTableAndCatalogErrors) {
  EXPECT_FALSE(testbed->Run("SELECT a FROM missing", "ocs").ok());
  EXPECT_FALSE(testbed->Run("SELECT a FROM laghos", "nope").ok());
}

TEST_F(TestbedFixture, Table3StyleBreakdownIsPopulated) {
  auto result = testbed->Run(LaghosQuery(), "ocs");
  ASSERT_TRUE(result.ok());
  const auto& m = result->metrics;
  EXPECT_GT(m.logical_plan_analysis, 0.0);
  EXPECT_GT(m.ir_generation, 0.0);
  EXPECT_GT(m.pushdown_and_transfer, 0.0);
  EXPECT_GT(m.total, 0.0);
  EXPECT_GE(m.total, m.logical_plan_analysis + m.ir_generation);
  // The paper's Table 3: plan analysis + IR generation < 2% of total...
  // at test scale we only assert they are a minority share.
  EXPECT_LT(m.logical_plan_analysis + m.ir_generation, m.total);
}

TEST_F(TestbedFixture, PruningCountersSurfaceInMetrics) {
  // Laghos vertex_id is monotone within a file: a narrow range predicate
  // must prune most row groups, and the counters must say so.
  auto result = testbed->Run(
      "SELECT COUNT(*) AS n FROM laghos WHERE vertex_id < 10", "ocs");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.row_groups_total, 0u);
  EXPECT_GT(result->metrics.row_groups_skipped, 0u);
  EXPECT_LT(result->metrics.row_groups_skipped,
            result->metrics.row_groups_total);
  // A predicate on a uniform column prunes nothing.
  auto uniform = testbed->Run(
      "SELECT COUNT(*) AS n FROM laghos WHERE x < 2.0", "ocs");
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->metrics.row_groups_skipped, 0u);
}

TEST_F(TestbedFixture, TpchQ6SelectiveFilterRegime) {
  // Q6 is the opposite regime from Q1: the filter keeps only a few
  // percent of rows, so even filter-only pushdown crushes movement, and
  // the global aggregate collapses to one row per split.
  auto results = RunAllPaths(testbed.get(), TpchQ6());
  ASSERT_EQ(results.by_catalog.size(), 3u);
  auto reference = Canonicalize(*results.by_catalog["hive_raw"].table);
  EXPECT_EQ(Canonicalize(*results.by_catalog["hive"].table), reference);
  EXPECT_EQ(Canonicalize(*results.by_catalog["ocs"].table), reference);
  EXPECT_EQ(results.by_catalog["ocs"].table->num_rows(), 1u);
  // Filter keeps ~1/6.5 (year) x ~0.27 (discount band) x ~0.47 (quantity)
  // ≈ 2% of rows.
  uint64_t total =
      testbed->metastore().GetTable("default", "lineitem")->row_count;
  uint64_t kept = results.by_catalog["hive"].metrics.rows_from_storage;
  EXPECT_LT(kept, total / 20);
  EXPECT_GT(kept, total / 200);
  // Full pushdown: one partial row per split.
  EXPECT_EQ(results.by_catalog["ocs"].metrics.rows_from_storage, 3u);
}

// Non-paper query shapes through the full stack.
TEST_F(TestbedFixture, GlobalAggregateNoGroupBy) {
  auto results = RunAllPaths(
      testbed.get(), "SELECT COUNT(*) AS n, AVG(e) AS m FROM laghos WHERE x < 2.0");
  ASSERT_EQ(results.by_catalog.size(), 3u);
  auto reference = Canonicalize(*results.by_catalog["hive_raw"].table);
  EXPECT_EQ(Canonicalize(*results.by_catalog["ocs"].table), reference);
  EXPECT_EQ(results.by_catalog["ocs"].table->num_rows(), 1u);
}

TEST_F(TestbedFixture, PlainSelectionQuery) {
  auto results = RunAllPaths(
      testbed.get(),
      "SELECT vertex_id, e FROM laghos WHERE e > 995 ORDER BY e DESC LIMIT 7");
  ASSERT_EQ(results.by_catalog.size(), 3u);
  auto reference = Canonicalize(*results.by_catalog["hive_raw"].table);
  EXPECT_EQ(Canonicalize(*results.by_catalog["hive"].table), reference);
  EXPECT_EQ(Canonicalize(*results.by_catalog["ocs"].table), reference);
  EXPECT_EQ(results.by_catalog["ocs"].table->num_rows(), 7u);
}

TEST_F(TestbedFixture, SortWithoutLimit) {
  auto results = RunAllPaths(
      testbed.get(),
      "SELECT timestep, MAX(v02) AS mx FROM deepwater GROUP BY timestep "
      "ORDER BY timestep DESC");
  ASSERT_EQ(results.by_catalog.size(), 3u);
  const auto& table = *results.by_catalog["ocs"].table;
  ASSERT_EQ(table.num_rows(), 4u);
  EXPECT_EQ(table.column(0)->GetInt32(0), 3);  // descending timesteps
  EXPECT_EQ(Canonicalize(table),
            Canonicalize(*results.by_catalog["hive_raw"].table));
}

}  // namespace
}  // namespace pocs::workloads
