// Fault injection and graceful degradation: rpc retry/deadline/backoff
// semantics, and the end-to-end recovery paths — a crashed storage exec
// engine degrades to the engine-side scan (queries still answer
// correctly, listeners see the fallbacks), a dead frontend propagates
// cleanly, and a Hive Select that exhausts its retries re-plans as a raw
// GET with the filter applied compute-side.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "netsim/fault_plan.h"
#include "rpc/rpc.h"
#include "workloads/chaos.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

namespace pocs {
namespace {

std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// rpc retry semantics
// ---------------------------------------------------------------------------

struct RpcFixture {
  std::shared_ptr<netsim::Network> net;
  netsim::NodeId client_node;
  netsim::NodeId server_node;
  std::shared_ptr<rpc::Server> server;

  explicit RpcFixture(netsim::LinkConfig link = {1e9, 100e-6})
      : net(std::make_shared<netsim::Network>(link)),
        client_node(net->AddNode("client")),
        server_node(net->AddNode("server")),
        server(std::make_shared<rpc::Server>(server_node, "svc")) {}

  rpc::Channel channel() const { return {net, client_node, server}; }
};

TEST(RpcRetry, TransientUnavailableHealsWithinBudget) {
  RpcFixture fx;
  auto calls = std::make_shared<std::atomic<int>>(0);
  fx.server->RegisterMethod("Work", [calls](ByteSpan req) -> Result<Bytes> {
    if (calls->fetch_add(1) < 2) return Status::Unavailable("warming up");
    return Bytes(req.begin(), req.end());
  });
  Bytes req = {9, 8, 7};
  rpc::CallOptions options;
  options.max_attempts = 3;
  auto result =
      fx.channel().Call("Work", ByteSpan(req.data(), req.size()), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->response, req);
  EXPECT_EQ(result->retries, 2u);
  EXPECT_EQ(calls->load(), 3);
  // Backoff waits are folded into the modelled time: two retries must
  // cost at least two half-base waits on top of the wire time.
  EXPECT_GT(result->transfer_seconds, options.backoff_base_seconds);
}

TEST(RpcRetry, BudgetExhaustionReturnsLastError) {
  RpcFixture fx;
  fx.server->RegisterMethod("Down", [](ByteSpan) -> Result<Bytes> {
    return Status::Unavailable("dead");
  });
  rpc::CallOptions options;
  options.max_attempts = 4;
  rpc::CallResult out;
  Status status = fx.channel().CallInto("Down", ByteSpan(), options, &out);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // The cost of the lost attempts is still reported.
  EXPECT_EQ(out.retries, 3u);
  EXPECT_GT(out.transfer_seconds, 0.0);
}

TEST(RpcRetry, NonRetryableErrorsAreNotRetried) {
  RpcFixture fx;
  auto calls = std::make_shared<std::atomic<int>>(0);
  fx.server->RegisterMethod("Bug", [calls](ByteSpan) -> Result<Bytes> {
    calls->fetch_add(1);
    return Status::Internal("application bug");
  });
  rpc::CallOptions options;
  options.max_attempts = 5;
  auto result = fx.channel().Call("Bug", ByteSpan(), options);
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(calls->load(), 1);
}

TEST(RpcRetry, DeadlineExceededOnSlowLink) {
  RpcFixture fx(netsim::LinkConfig{1e9, /*latency=*/1.0});
  fx.server->RegisterMethod("Echo", [](ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  rpc::CallOptions options;
  options.max_attempts = 2;
  options.deadline_seconds = 0.5;  // each attempt needs ~2 s of latency
  rpc::CallResult out;
  Status status = fx.channel().CallInto("Echo", ByteSpan(), options, &out);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(out.retries, 1u);  // deadline misses are retryable
}

TEST(RpcRetry, BackoffIsDeterministicPerSeed) {
  auto run = [](uint64_t jitter_seed) {
    RpcFixture fx;
    fx.server->RegisterMethod("Down", [](ByteSpan) -> Result<Bytes> {
      return Status::Unavailable("dead");
    });
    rpc::CallOptions options;
    options.max_attempts = 4;
    options.jitter_seed = jitter_seed;
    rpc::CallResult out;
    Bytes req = {1, 2, 3};
    (void)fx.channel().CallInto("Down", ByteSpan(req.data(), req.size()),
                                options, &out);
    return out.transfer_seconds;
  };
  EXPECT_EQ(run(5), run(5));     // replays are bit-identical
  EXPECT_NE(run(5), run(6));     // the jitter really is seeded
}

// ---------------------------------------------------------------------------
// end-to-end degradation
// ---------------------------------------------------------------------------

workloads::LaghosConfig SmallLaghos() {
  workloads::LaghosConfig config;
  config.num_files = 3;
  config.rows_per_file = 1 << 12;
  config.rows_per_vertex = 8;
  return config;
}

TEST(FaultInjectionE2E, CrashedStorageExecFallsBackToEngineScan) {
  workloads::Testbed bed;
  auto data = workloads::GenerateLaghos(SmallLaghos());
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(bed.Ingest(std::move(*data)).ok());
  const std::string sql = workloads::LaghosQuery("laghos");

  auto reference = bed.Run(sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->metrics.fallbacks, 0u);

  for (size_t i = 0; i < bed.cluster().num_storage_nodes(); ++i) {
    bed.cluster().mutable_storage_node(i).faults().exec_crashed.store(true);
  }
  auto degraded = bed.Run(sql, "ocs");
  ASSERT_TRUE(degraded.ok()) << degraded.status();

  // Same rows, recovered entirely through the engine-side scan.
  EXPECT_EQ(Canonicalize(*degraded->table), Canonicalize(*reference->table));
  const auto& m = degraded->metrics;
  EXPECT_EQ(m.fallbacks, m.splits);
  EXPECT_EQ(m.failed_splits, m.splits);
  EXPECT_EQ(m.retries, 2 * m.splits);  // 3 attempts per dispatch
  EXPECT_GT(m.splits, 0u);

  // The rejection trail: PushdownHistory records every exhausted
  // dispatch, and the stats listener sees the fallbacks.
  EXPECT_GE(bed.history().total_offload_rejections(), m.splits);
  auto rejections = bed.history().offload_rejections();
  ASSERT_FALSE(rejections.empty());
  EXPECT_EQ(rejections.back().connector_id, "ocs");
  EXPECT_EQ(rejections.back().code, StatusCode::kUnavailable);
  EXPECT_EQ(bed.stats().last().fallbacks, m.splits);
  EXPECT_EQ(bed.stats().TotalsFor("ocs").fallbacks, m.splits);

  // Un-crash: pushdown resumes, no fallbacks.
  for (size_t i = 0; i < bed.cluster().num_storage_nodes(); ++i) {
    bed.cluster().mutable_storage_node(i).faults().exec_crashed.store(false);
  }
  auto healed = bed.Run(sql, "ocs");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->metrics.fallbacks, 0u);
}

TEST(FaultInjectionE2E, SlowStorageTripsConnectorDeadline) {
  workloads::TestbedConfig config;
  config.ocs_connector.dispatch.storage_deadline_seconds = 0.25;
  workloads::Testbed bed(config);
  auto data = workloads::GenerateLaghos(SmallLaghos());
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(bed.Ingest(std::move(*data)).ok());
  const std::string sql = workloads::LaghosQuery("laghos");

  auto fast = bed.Run(sql, "ocs");
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast->metrics.fallbacks, 0u);

  // Degrade the node: each in-storage execution now reports an extra
  // second of compute, blowing the connector's storage deadline.
  for (size_t i = 0; i < bed.cluster().num_storage_nodes(); ++i) {
    bed.cluster().mutable_storage_node(i).faults().exec_delay_seconds.store(
        1.0);
  }
  auto slow = bed.Run(sql, "ocs");
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(Canonicalize(*slow->table), Canonicalize(*fast->table));
  EXPECT_EQ(slow->metrics.fallbacks, slow->metrics.splits);
}

TEST(FaultInjectionE2E, CrashedFrontendPropagatesUnavailable) {
  workloads::Testbed bed;
  auto data = workloads::GenerateLaghos(SmallLaghos());
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(bed.Ingest(std::move(*data)).ok());
  const std::string sql = workloads::LaghosQuery("laghos");

  bed.cluster().SetFrontendCrashed(true);
  // No path around a dead frontend: the fallback GET rides through it
  // too, so the query fails — with the transport error, not a crash.
  auto result = bed.Run(sql, "ocs");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  bed.cluster().SetFrontendCrashed(false);
  auto recovered = bed.Run(sql, "ocs");
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->metrics.fallbacks, 0u);
}

TEST(FaultInjectionE2E, HiveSelectFallsBackToRawGet) {
  workloads::TestbedConfig config;
  config.hive.call.max_attempts = 2;           // Select: attempts 0–1
  config.hive.fallback_call.max_attempts = 6;  // GET: reaches the heal
  workloads::Testbed bed(config);
  auto data = workloads::GenerateLaghos(SmallLaghos());
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(bed.Ingest(std::move(*data)).ok());
  // A filter the Select API accepts, so the fallback must re-apply it
  // compute-side to honour the pushdown contract.
  const std::string sql =
      "SELECT vertex_id, e FROM laghos WHERE x < 2.0 AND e > 100.0";

  auto reference = bed.Run(sql, "hive");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->metrics.fallbacks, 0u);

  // Partition compute ↔ frontend until attempt 4: the Select's 2-attempt
  // budget exhausts, the fallback GET's 6-attempt budget heals through.
  auto plan = std::make_shared<netsim::FaultPlan>(11);
  plan->AddRule(netsim::FaultPlan::Partition(
      bed.compute_node(), bed.cluster().frontend_node(),
      /*heal_at_attempt=*/4));
  bed.SetFaultPlan(plan);

  auto degraded = bed.Run(sql, "hive");
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(Canonicalize(*degraded->table), Canonicalize(*reference->table));
  EXPECT_EQ(degraded->metrics.fallbacks, degraded->metrics.splits);
  EXPECT_EQ(degraded->metrics.failed_splits, degraded->metrics.splits);
  EXPECT_GT(degraded->metrics.retries, 0u);
}

TEST(FaultInjectionE2E, DeterministicReplaySameSeedSamePlan) {
  auto run = [](uint64_t seed) {
    workloads::ChaosConfig chaos{.profile = "flaky-rpc", .seed = seed};
    auto config = workloads::MakeChaosTestbedConfig(chaos);
    EXPECT_TRUE(config.ok());
    auto bed = std::make_unique<workloads::Testbed>(*config);
    auto data = workloads::GenerateLaghos(SmallLaghos());
    EXPECT_TRUE(data.ok());
    EXPECT_TRUE(bed->Ingest(std::move(*data)).ok());
    EXPECT_TRUE(workloads::ApplyChaos(bed.get(), chaos).ok());
    auto result = bed->Run(workloads::LaghosQuery("laghos"), "ocs");
    EXPECT_TRUE(result.ok());
    struct Fingerprint {
      std::string rows;
      uint64_t bytes, retries, fallbacks, failed;
      bool operator==(const Fingerprint&) const = default;
    };
    return Fingerprint{Canonicalize(*result->table),
                       result->metrics.bytes_from_storage,
                       result->metrics.retries,
                       result->metrics.fallbacks,
                       result->metrics.failed_splits};
  };
  EXPECT_TRUE(run(3) == run(3));
}

}  // namespace
}  // namespace pocs
