// End-to-end tests for the concurrent multi-tenant tier
// (`ctest -L concurrency`): the seeded driver's determinism contract
// (same seed → bit-identical per-query results AND identical exact
// admission/dispatch counters across two fresh testbeds), correctness
// under throttling against a serial reference, deterministic rejection,
// least-loaded placement spread, and engine-internal admission.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "workloads/chaos.h"
#include "workloads/concurrent.h"
#include "workloads/tpch.h"

namespace pocs::workloads {
namespace {

ConcurrentWorkloadReport MustRun(const ConcurrentWorkloadConfig& config) {
  Testbed bed(MakeConcurrentTestbedConfig(config));
  Status ingest = IngestChaosDatasets(&bed);
  EXPECT_TRUE(ingest.ok()) << ingest.ToString();
  auto report = RunConcurrentWorkload(&bed, config);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

// The acceptance gate: two testbeds built from scratch in one process,
// same seed — every schedule-deterministic quantity must match exactly.
TEST(ConcurrentWorkload, DeterministicReplay) {
  ConcurrentWorkloadConfig config;
  config.seed = 1337;
  config.num_queries = 24;

  const ConcurrentWorkloadReport a = MustRun(config);
  const ConcurrentWorkloadReport b = MustRun(config);

  EXPECT_EQ(a.result_fingerprint, b.result_fingerprint);
  EXPECT_EQ(a.admission_queued, b.admission_queued);
  EXPECT_EQ(a.admission_admitted, b.admission_admitted);
  EXPECT_EQ(a.admission_rejected, b.admission_rejected);
  EXPECT_EQ(a.rows_total, b.rows_total);
  EXPECT_EQ(a.node_plans, b.node_plans);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    EXPECT_EQ(a.outcomes[i].tenant, b.outcomes[i].tenant);
    EXPECT_EQ(a.outcomes[i].query, b.outcomes[i].query);
    EXPECT_EQ(a.outcomes[i].rejected, b.outcomes[i].rejected);
    EXPECT_EQ(a.outcomes[i].rows, b.outcomes[i].rows);
    EXPECT_EQ(a.outcomes[i].row_fingerprint, b.outcomes[i].row_fingerprint);
  }

  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].tenant, b.tenants[i].tenant);
    EXPECT_EQ(a.tenants[i].queries, b.tenants[i].queries);
    EXPECT_EQ(a.tenants[i].admitted, b.tenants[i].admitted);
    EXPECT_EQ(a.tenants[i].rejected, b.tenants[i].rejected);
  }
}

// Throttled, admission-controlled, load-aware execution must not change
// WHAT a query returns — every admitted query's rows equal a serial
// reference run of the same template on a plain testbed.
TEST(ConcurrentWorkload, MatchesSerialReference) {
  // Reference: default testbed (no admission, no dispatcher, round-robin
  // placement, caches as shipped) run one query at a time.
  Testbed reference;
  ASSERT_TRUE(IngestChaosDatasets(&reference).ok());
  std::map<std::string, uint64_t> ref_fingerprint, ref_rows;
  for (const auto& [name, sql] : ChaosQueries()) {
    auto result = reference.Run(sql, "ocs");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ref_rows[name] = result->table->num_rows();
    ref_fingerprint[name] = ResultRowFingerprint(*result->table);
  }

  ConcurrentWorkloadConfig config;
  config.seed = 7;
  config.num_queries = 16;
  const ConcurrentWorkloadReport report = MustRun(config);
  size_t checked = 0;
  for (const QueryOutcome& out : report.outcomes) {
    if (out.rejected) continue;
    SCOPED_TRACE(out.tenant + "/" + out.query);
    EXPECT_EQ(out.rows, ref_rows[out.query]);
    EXPECT_EQ(out.row_fingerprint, ref_fingerprint[out.query]);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

// Rejection outcomes are decided at enqueue time against the paused
// controller, so they are a pure function of the schedule: a one-slot
// queue per tenant accepts exactly one arrival per tenant and rejects
// the rest, every run.
TEST(ConcurrentWorkload, DeterministicRejection) {
  ConcurrentWorkloadConfig config;
  config.seed = 3;
  config.num_queries = 12;
  config.tenants = {
      {.name = "x", .weight = 1, .max_concurrent = 1, .max_queued = 1},
      {.name = "y", .weight = 1, .max_concurrent = 1, .max_queued = 1},
  };
  const ConcurrentWorkloadReport a = MustRun(config);
  EXPECT_EQ(a.admission_queued, 2u);  // one accepted per tenant
  EXPECT_EQ(a.admission_rejected, 10u);
  const ConcurrentWorkloadReport b = MustRun(config);
  EXPECT_EQ(b.admission_rejected, a.admission_rejected);
  EXPECT_EQ(b.result_fingerprint, a.result_fingerprint);
}

// Least-loaded ingest placement + hint-interleaved split ordering must
// actually spread the dispatch load: every storage node serves plans.
TEST(ConcurrentWorkload, LoadAwareDispatchSpreadsAcrossNodes) {
  ConcurrentWorkloadConfig config;
  config.seed = 11;
  config.num_queries = 12;
  const ConcurrentWorkloadReport report = MustRun(config);
  ASSERT_EQ(report.node_plans.size(), 3u);
  EXPECT_GT(report.min_node_plans, 0u)
      << "a storage node served no plans — placement/hints are not "
         "spreading load";
  EXPECT_GE(report.max_node_plans, report.min_node_plans);
  // Every split of every admitted query dispatches exactly once: the
  // per-node totals must sum to the scheduled split count (lineitem has
  // 3 objects, laghos and deepwater 4 each — IngestChaosDatasets).
  uint64_t expected = 0;
  for (const QueryOutcome& out : report.outcomes) {
    if (out.rejected) continue;
    expected += (out.query == "tpch_q1" || out.query == "tpch_q6") ? 3 : 4;
  }
  uint64_t total = 0;
  for (uint64_t n : report.node_plans) total += n;
  EXPECT_EQ(total, expected);
}

// Admission also works without a driver: Execute() with a tenant in the
// options enqueues internally, and the tenant + queue wait land in
// QueryStats for listeners.
TEST(ConcurrentWorkload, EngineInternalAdmission) {
  ConcurrentWorkloadConfig config;
  Testbed bed(MakeConcurrentTestbedConfig(config));
  ASSERT_TRUE(IngestChaosDatasets(&bed).ok());

  engine::QueryOptions options;
  options.tenant = "interactive";
  auto result = bed.engine().Execute(TpchQ6("lineitem"), "ocs", options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->table->num_rows(), 0u);
  EXPECT_GE(result->metrics.admission_queue_seconds, 0.0);

  EXPECT_EQ(bed.stats().last().tenant, "interactive");
  const auto snap = bed.engine().admission_controller()->snapshot();
  EXPECT_EQ(snap.queued, 1u);
  EXPECT_EQ(snap.admitted, 1u);
  EXPECT_EQ(snap.running, 0u);  // released when Execute returned
}

}  // namespace
}  // namespace pocs::workloads
