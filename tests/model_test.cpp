// Tests for the simulated-time model (engine/time_model.h) and the
// workload generators' statistical properties — both load-bearing for
// the benchmark reproductions.
#include <gtest/gtest.h>

#include <set>

#include "engine/time_model.h"
#include "format/parquet_lite.h"
#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/tpch.h"

namespace pocs {
namespace {

using engine::SplitStageSeconds;
using engine::SplitStageTotals;
using engine::TimeModelConfig;

TEST(TimeModelTest, TransferTermScalesWithBytes) {
  TimeModelConfig config;
  config.network_bandwidth_bytes_per_sec = 100e6;
  config.network_latency_sec = 0;
  SplitStageTotals totals;
  totals.bytes_moved = 200'000'000;  // 2 s at 100 MB/s
  EXPECT_NEAR(SplitStageSeconds(totals, config), 2.0, 1e-9);
  totals.bytes_moved *= 2;
  EXPECT_NEAR(SplitStageSeconds(totals, config), 4.0, 1e-9);
}

TEST(TimeModelTest, SequentialSumsPipelinedMaxes) {
  TimeModelConfig config;
  config.network_bandwidth_bytes_per_sec = 100e6;
  config.network_latency_sec = 0;
  config.worker_threads = 1;
  config.storage_parallelism = 1;
  SplitStageTotals totals;
  totals.bytes_moved = 100'000'000;    // 1 s
  totals.storage_compute_seconds = 2;  // 2 s
  totals.compute_seconds = 3;          // 3 s
  totals.media_read_seconds = 4;       // 4 s
  config.pipelined = false;
  EXPECT_NEAR(SplitStageSeconds(totals, config), 10.0, 1e-9);
  config.pipelined = true;
  EXPECT_NEAR(SplitStageSeconds(totals, config), 4.0, 1e-9);
}

TEST(TimeModelTest, ParallelismDividesComputeTerms) {
  TimeModelConfig config;
  config.network_latency_sec = 0;
  config.worker_threads = 8;
  config.storage_parallelism = 16;
  SplitStageTotals totals;
  totals.storage_compute_seconds = 16;
  totals.compute_seconds = 8;
  EXPECT_NEAR(SplitStageSeconds(totals, config), 16.0 / 16 + 8.0 / 8, 1e-9);
}

TEST(TimeModelTest, StorageNodesScaleMediaAndStorage) {
  TimeModelConfig config;
  config.network_latency_sec = 0;
  config.worker_threads = 1;
  config.storage_parallelism = 1;
  SplitStageTotals totals;
  totals.media_read_seconds = 6;
  totals.storage_compute_seconds = 3;
  config.storage_nodes = 1;
  EXPECT_NEAR(SplitStageSeconds(totals, config), 9.0, 1e-9);
  config.storage_nodes = 3;
  EXPECT_NEAR(SplitStageSeconds(totals, config), 3.0, 1e-9);
}

TEST(TimeModelTest, LatencyAmortizesOverParallelSplits) {
  TimeModelConfig config;
  config.network_latency_sec = 1e-3;
  config.worker_threads = 8;
  SplitStageTotals totals;
  totals.messages = 16;
  totals.splits = 8;  // 8 parallel workers
  EXPECT_NEAR(SplitStageSeconds(totals, config), 16 * 1e-3 / 8, 1e-12);
  totals.splits = 1;  // single split: no amortization
  EXPECT_NEAR(SplitStageSeconds(totals, config), 16 * 1e-3, 1e-12);
}

TEST(TimeModelTest, ZeroConfigIsSafe) {
  TimeModelConfig config;
  config.worker_threads = 0;
  config.storage_parallelism = 0;
  config.storage_nodes = 0;
  SplitStageTotals totals;
  totals.compute_seconds = 1;
  totals.storage_compute_seconds = 1;
  EXPECT_GT(SplitStageSeconds(totals, config), 0.0);  // no div-by-zero
}

// ---- workload generators ----------------------------------------------------

TEST(LaghosGeneratorTest, SchemaAndScale) {
  workloads::LaghosConfig config;
  config.num_files = 3;
  config.rows_per_file = 1000;
  auto data = workloads::GenerateLaghos(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->info.schema->num_fields(), 10u);  // paper: 10 columns
  EXPECT_EQ(data->info.row_count, 3000u);
  EXPECT_EQ(data->files.size(), 3u);
  EXPECT_EQ(data->info.objects.size(), 3u);
}

TEST(LaghosGeneratorTest, FilterSelectivityMatchesPaperTarget) {
  workloads::LaghosConfig config;
  config.num_files = 1;
  config.rows_per_file = 1 << 15;
  auto data = workloads::GenerateLaghos(config);
  ASSERT_TRUE(data.ok());
  auto reader = format::FileReader::Open(std::move(data->files[0].second));
  ASSERT_TRUE(reader.ok());
  auto table = (*reader)->ReadAll({1, 2, 3});  // x, y, z
  ASSERT_TRUE(table.ok());
  auto batch = (*table)->Combine();
  size_t pass = 0;
  for (size_t i = 0; i < batch->num_rows(); ++i) {
    double x = batch->column(0)->GetFloat64(i);
    double y = batch->column(1)->GetFloat64(i);
    double z = batch->column(2)->GetFloat64(i);
    if (x >= 0.8 && x <= 3.2 && y >= 0.8 && y <= 3.2 && z >= 0.8 && z <= 3.2) {
      ++pass;
    }
  }
  // Paper: filter keeps 5.1/24 ≈ 21%. Ours targets 0.6^3 = 21.6%.
  double rate = static_cast<double>(pass) / batch->num_rows();
  EXPECT_NEAR(rate, 0.216, 0.02);
}

TEST(LaghosGeneratorTest, VertexRangesAreSplitDisjoint) {
  workloads::LaghosConfig config;
  config.num_files = 4;
  config.rows_per_file = 1 << 10;
  auto data = workloads::GenerateLaghos(config);
  ASSERT_TRUE(data.ok());
  // The correctness contract for aggregation+top-N pushdown (DESIGN.md):
  // no vertex_id appears in two files.
  std::set<int64_t> seen;
  for (auto& [key, bytes] : data->files) {
    auto reader = format::FileReader::Open(std::move(bytes));
    ASSERT_TRUE(reader.ok());
    auto table = (*reader)->ReadAll({0});
    ASSERT_TRUE(table.ok());
    auto batch = (*table)->Combine();
    std::set<int64_t> file_ids;
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      file_ids.insert(batch->column(0)->GetInt64(i));
    }
    for (int64_t id : file_ids) {
      EXPECT_TRUE(seen.insert(id).second)
          << "vertex " << id << " spans files";
    }
  }
}

TEST(DeepWaterGeneratorTest, FilterSelectivityMatchesPaperTarget) {
  workloads::DeepWaterConfig config;
  config.num_files = 1;
  config.rows_per_file = 1 << 15;
  auto data = workloads::GenerateDeepWater(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->info.schema->num_fields(), 4u);  // paper: 4 columns
  auto reader = format::FileReader::Open(std::move(data->files[0].second));
  ASSERT_TRUE(reader.ok());
  auto table = (*reader)->ReadAll({1});  // v02
  ASSERT_TRUE(table.ok());
  auto batch = (*table)->Combine();
  size_t pass = 0;
  for (size_t i = 0; i < batch->num_rows(); ++i) {
    if (batch->column(0)->GetFloat64(i) > 0.1) ++pass;
  }
  // Paper: 5.37/30 ≈ 18%.
  double rate = static_cast<double>(pass) / batch->num_rows();
  EXPECT_NEAR(rate, 0.18, 0.02);
}

TEST(DeepWaterGeneratorTest, TimestepConstantPerFile) {
  workloads::DeepWaterConfig config;
  config.num_files = 3;
  config.rows_per_file = 512;
  auto data = workloads::GenerateDeepWater(config);
  ASSERT_TRUE(data.ok());
  for (size_t f = 0; f < data->files.size(); ++f) {
    auto reader = format::FileReader::Open(std::move(data->files[f].second));
    ASSERT_TRUE(reader.ok());
    auto table = (*reader)->ReadAll({2});
    ASSERT_TRUE(table.ok());
    auto batch = (*table)->Combine();
    for (size_t i = 0; i < batch->num_rows(); ++i) {
      EXPECT_EQ(batch->column(0)->GetInt32(i), static_cast<int32_t>(f));
    }
  }
}

TEST(TpchGeneratorTest, Q1FilterKeepsAlmostEverything) {
  workloads::TpchConfig config;
  config.num_files = 1;
  config.rows_per_file = 1 << 15;
  auto data = workloads::GenerateLineitem(config);
  ASSERT_TRUE(data.ok());
  auto reader = format::FileReader::Open(std::move(data->files[0].second));
  ASSERT_TRUE(reader.ok());
  int ship_idx = data->info.schema->FieldIndex("shipdate");
  auto table = (*reader)->ReadAll({ship_idx});
  ASSERT_TRUE(table.ok());
  auto batch = (*table)->Combine();
  const int32_t cutoff = columnar::DaysFromCivil(1998, 9, 2);
  size_t pass = 0;
  for (size_t i = 0; i < batch->num_rows(); ++i) {
    if (batch->column(0)->GetInt32(i) <= cutoff) ++pass;
  }
  // Paper: 99% (194 → 192 MB). dbgen yields ~98–99%.
  double rate = static_cast<double>(pass) / batch->num_rows();
  EXPECT_GT(rate, 0.97);
  EXPECT_LT(rate, 1.0);
}

TEST(TpchGeneratorTest, FourQ1Groups) {
  workloads::TpchConfig config;
  config.num_files = 1;
  config.rows_per_file = 1 << 14;
  auto data = workloads::GenerateLineitem(config);
  ASSERT_TRUE(data.ok());
  auto reader = format::FileReader::Open(std::move(data->files[0].second));
  ASSERT_TRUE(reader.ok());
  int rf = data->info.schema->FieldIndex("returnflag");
  int ls = data->info.schema->FieldIndex("linestatus");
  auto table = (*reader)->ReadAll({rf, ls});
  ASSERT_TRUE(table.ok());
  auto batch = (*table)->Combine();
  std::set<std::string> groups;
  for (size_t i = 0; i < batch->num_rows(); ++i) {
    groups.insert(std::string(batch->column(0)->GetString(i)) + "|" +
                  std::string(batch->column(1)->GetString(i)));
  }
  // TPC-H Q1's four groups: A|F, N|F, N|O, R|F.
  EXPECT_EQ(groups, (std::set<std::string>{"A|F", "N|F", "N|O", "R|F"}));
}

TEST(TpchGeneratorTest, ColumnDomains) {
  workloads::TpchConfig config;
  config.num_files = 1;
  config.rows_per_file = 4096;
  auto data = workloads::GenerateLineitem(config);
  ASSERT_TRUE(data.ok());
  const auto& stats = data->info.column_stats;
  const auto& schema = *data->info.schema;
  auto stat = [&](const char* name) -> const format::ColumnStats& {
    return stats[schema.FieldIndex(name)];
  };
  EXPECT_GE(stat("quantity").min.AsDouble(), 1.0);
  EXPECT_LE(stat("quantity").max.AsDouble(), 50.0);
  EXPECT_GE(stat("discount").min.AsDouble(), 0.0);
  EXPECT_LE(stat("discount").max.AsDouble(), 0.10 + 1e-9);
  EXPECT_LE(stat("tax").max.AsDouble(), 0.08 + 1e-9);
  EXPECT_EQ(stat("returnflag").ndv, 3u);
  EXPECT_EQ(stat("linestatus").ndv, 2u);
  // shipdate spans 1992..~1998-12-01 (dbgen: ENDDATE − 151 + 121).
  EXPECT_GE(stat("shipdate").min.AsInt64(), columnar::DaysFromCivil(1992, 1, 1));
  EXPECT_LE(stat("shipdate").max.AsInt64(), columnar::DaysFromCivil(1998, 12, 2));
}

}  // namespace
}  // namespace pocs
