// End-to-end observability: a query through the testbed must surface a
// fully populated QueryStats at the EventListener — wall time, rows
// scanned vs returned, bytes moved, pushdown accept/reject counts, and
// per-operator timings — for both the full-pushdown (ocs) and
// no-pushdown (hive_raw) paths, with the cross-path relationships the
// paper's Fig. 5 is built on.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/metrics.h"
#include "connector/query_stats_collector.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

namespace pocs::workloads {
namespace {

using connector::QueryStats;
using connector::QueryStatsCollector;

constexpr size_t kFiles = 2;
constexpr size_t kRowsPerFile = 1 << 12;

struct ObservabilityFixture : ::testing::Test {
  static void SetUpTestSuite() {
    testbed = std::make_unique<Testbed>();
    LaghosConfig config;
    config.num_files = kFiles;
    config.rows_per_file = kRowsPerFile;
    config.rows_per_group = 1 << 10;
    auto data = GenerateLaghos(config);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    ASSERT_TRUE(testbed->Ingest(std::move(*data)).ok());
  }
  static void TearDownTestSuite() { testbed.reset(); }

  static QueryStats RunAndGetStats(const std::string& catalog) {
    auto result = testbed->Run(LaghosQuery(), catalog);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return testbed->stats().last();
  }

  static std::unique_ptr<Testbed> testbed;
};

std::unique_ptr<Testbed> ObservabilityFixture::testbed;

TEST_F(ObservabilityFixture, PushdownQueryPopulatesQueryStats) {
  QueryStats stats = RunAndGetStats("ocs");

  // The acceptance triple: rows scanned, bytes moved, pushdown accepted.
  EXPECT_GT(stats.rows_scanned, 0u);
  EXPECT_GT(stats.bytes_moved(), 0u);
  EXPECT_GE(stats.pushdown_accepted, 1u);

  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.simulated_seconds, 0.0);
  EXPECT_GT(stats.result_rows, 0u);
  EXPECT_GT(stats.splits, 0u);
  EXPECT_EQ(stats.pushdown_offered,
            stats.pushdown_accepted + stats.pushdown_rejected);
  // The Laghos query's filter is highly selective: far fewer rows cross
  // the storage → compute boundary than are scanned at storage.
  EXPECT_LT(stats.rows_returned, stats.rows_scanned);

  // Per-operator timings include the Table 3 stages.
  std::set<std::string> names;
  for (const auto& t : stats.operator_timings) names.insert(t.name);
  EXPECT_TRUE(names.count("plan_analysis")) << "stages seen: " << names.size();
  EXPECT_TRUE(names.count("ir_generation"));
  EXPECT_TRUE(names.count("scan_transfer"));
  EXPECT_TRUE(names.count("post_scan"));
}

TEST_F(ObservabilityFixture, NonPushdownQueryScansEverythingAtCompute) {
  QueryStats stats = RunAndGetStats("hive_raw");

  // No operators accepted; the raw path still reports scan volume —
  // every generated row crosses the wire and is scanned compute-side.
  EXPECT_EQ(stats.pushdown_accepted, 0u);
  EXPECT_EQ(stats.rows_scanned, kFiles * kRowsPerFile);
  EXPECT_EQ(stats.rows_returned, kFiles * kRowsPerFile);
  EXPECT_GT(stats.bytes_moved(), 0u);
  EXPECT_GT(stats.result_rows, 0u);
}

TEST_F(ObservabilityFixture, PushdownMovesFewerBytesThanRaw) {
  QueryStats ocs = RunAndGetStats("ocs");
  QueryStats raw = RunAndGetStats("hive_raw");
  EXPECT_LT(ocs.bytes_moved(), raw.bytes_moved());
  EXPECT_LT(ocs.rows_returned, raw.rows_returned);
  // Both answer the same question over the same data.
  EXPECT_EQ(ocs.result_rows, raw.result_rows);
}

TEST_F(ObservabilityFixture, CollectorAggregatesAcrossQueriesAndCatalogs) {
  QueryStatsCollector& collector = testbed->stats();
  auto before = collector.totals();
  (void)RunAndGetStats("ocs");
  (void)RunAndGetStats("hive_raw");
  auto after = collector.totals();
  EXPECT_EQ(after.queries, before.queries + 2);
  EXPECT_GT(after.rows_scanned, before.rows_scanned);
  EXPECT_GT(after.bytes_from_storage, before.bytes_from_storage);
  EXPECT_GT(after.wall_seconds, before.wall_seconds);

  // Per-connector split: the ocs catalog accumulates accepted pushdowns,
  // the raw catalog none.
  auto ocs_totals = collector.TotalsFor("ocs");
  EXPECT_GT(ocs_totals.queries, 0u);
  EXPECT_GT(ocs_totals.pushdown_accepted, 0u);
  EXPECT_GT(ocs_totals.pushdown_accept_rate(), 0.0);
  auto raw_totals = collector.TotalsFor("hive_raw");
  EXPECT_GT(raw_totals.queries, 0u);
  EXPECT_EQ(raw_totals.pushdown_accepted, 0u);
  // Unknown ids read as zero.
  EXPECT_EQ(collector.TotalsFor("no_such_catalog").queries, 0u);
}

TEST_F(ObservabilityFixture, EngineCountersMirrorIntoProcessRegistry) {
  auto& reg = metrics::Registry::Default();
  uint64_t queries_before = reg.GetCounter("engine.queries").value();
  uint64_t scanned_before = reg.GetCounter("engine.rows_scanned").value();
  (void)RunAndGetStats("ocs");
  EXPECT_EQ(reg.GetCounter("engine.queries").value(), queries_before + 1);
  EXPECT_GT(reg.GetCounter("engine.rows_scanned").value(), scanned_before);
  EXPECT_GT(reg.GetHistogram("engine.query_wall_seconds").count(), 0u);
}

TEST_F(ObservabilityFixture, LegacyEventFieldsStayPopulated) {
  // Listeners written against the flat pre-QueryStats fields keep
  // working: capture a raw event through a secondary listener.
  struct Capture final : connector::EventListener {
    connector::QueryEvent event;
    void QueryCompleted(const connector::QueryEvent& e) override {
      event = e;
    }
  };
  auto capture = std::make_shared<Capture>();
  testbed->engine().AddEventListener(capture);
  auto result = testbed->Run(LaghosQuery(), "ocs");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(capture->event.bytes_from_storage,
            capture->event.stats.bytes_from_storage);
  EXPECT_EQ(capture->event.rows_from_storage,
            capture->event.stats.rows_returned);
  EXPECT_GT(capture->event.execution_seconds, 0.0);
  EXPECT_EQ(capture->event.connector_id, "ocs");
  EXPECT_FALSE(capture->event.query_id.empty());
}

}  // namespace
}  // namespace pocs::workloads
