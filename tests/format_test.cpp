// Tests for Parquet-lite: stats collection, writer/reader roundtrips across
// codecs and row-group boundaries, projection, footer-only access, and
// corruption handling.
#include <gtest/gtest.h>

#include <random>

#include "format/encoding.h"
#include "format/parquet_lite.h"
#include "format/stats.h"

namespace pocs::format {
namespace {

using columnar::Datum;
using columnar::Field;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::RecordBatchPtr;
using columnar::SchemaPtr;
using columnar::TypeKind;

SchemaPtr TestSchema() {
  return MakeSchema({{"id", TypeKind::kInt64},
                     {"value", TypeKind::kFloat64},
                     {"tag", TypeKind::kString}});
}

RecordBatchPtr TestBatch(int64_t start, int64_t count) {
  auto id = MakeColumn(TypeKind::kInt64);
  auto value = MakeColumn(TypeKind::kFloat64);
  auto tag = MakeColumn(TypeKind::kString);
  for (int64_t i = start; i < start + count; ++i) {
    id->AppendInt64(i);
    if (i % 10 == 3) {
      value->AppendNull();
    } else {
      value->AppendFloat64(static_cast<double>(i) * 0.5);
    }
    tag->AppendString("t" + std::to_string(i % 4));
  }
  return MakeBatch(TestSchema(), {id, value, tag});
}

TEST(StatsTest, CollectorTracksMinMaxNullsNdv) {
  StatsCollector collector(TypeKind::kInt64);
  auto col = MakeColumn(TypeKind::kInt64);
  col->AppendInt64(5);
  col->AppendInt64(-2);
  col->AppendNull();
  col->AppendInt64(9);
  col->AppendInt64(5);  // duplicate
  collector.Update(*col);
  const ColumnStats& s = collector.stats();
  EXPECT_EQ(s.row_count, 5u);
  EXPECT_EQ(s.null_count, 1u);
  EXPECT_EQ(s.min.AsInt64(), -2);
  EXPECT_EQ(s.max.AsInt64(), 9);
  EXPECT_EQ(s.ndv, 3u);
  EXPECT_FALSE(s.ndv_capped);
}

TEST(StatsTest, StringMinMax) {
  StatsCollector collector(TypeKind::kString);
  auto col = MakeColumn(TypeKind::kString);
  col->AppendString("N");
  col->AppendString("A");
  col->AppendString("R");
  collector.Update(*col);
  EXPECT_EQ(collector.stats().min.string_value(), "A");
  EXPECT_EQ(collector.stats().max.string_value(), "R");
}

TEST(StatsTest, SerializeRoundtrip) {
  StatsCollector collector(TypeKind::kFloat64);
  auto col = MakeColumn(TypeKind::kFloat64);
  for (int i = 0; i < 100; ++i) col->AppendFloat64(i * 0.25);
  col->AppendNull();
  collector.Update(*col);

  BufferWriter w;
  collector.stats().Serialize(&w);
  BufferReader r(w.span());
  auto rt = ColumnStats::Deserialize(&r);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->row_count, 101u);
  EXPECT_EQ(rt->null_count, 1u);
  EXPECT_DOUBLE_EQ(rt->min.float64_value(), 0.0);
  EXPECT_DOUBLE_EQ(rt->max.float64_value(), 24.75);
  EXPECT_EQ(rt->ndv, 100u);
}

TEST(StatsTest, MergeCombines) {
  ColumnStats a;
  a.min = Datum::Int64(5);
  a.max = Datum::Int64(10);
  a.row_count = 100;
  a.null_count = 2;
  a.ndv = 6;
  ColumnStats b;
  b.min = Datum::Int64(-1);
  b.max = Datum::Int64(7);
  b.row_count = 50;
  b.null_count = 0;
  b.ndv = 4;
  a.Merge(b);
  EXPECT_EQ(a.min.AsInt64(), -1);
  EXPECT_EQ(a.max.AsInt64(), 10);
  EXPECT_EQ(a.row_count, 150u);
  EXPECT_EQ(a.ndv, 10u);  // union upper bound
}

TEST(StatsTest, NdvCapSaturates) {
  StatsCollector collector(TypeKind::kInt64);
  auto col = MakeColumn(TypeKind::kInt64);
  for (int64_t i = 0; i < (1 << 16) + 100; ++i) col->AppendInt64(i);
  collector.Update(*col);
  EXPECT_TRUE(collector.stats().ndv_capped);
}

class WriterCodecSweep
    : public ::testing::TestWithParam<compress::CodecType> {};

TEST_P(WriterCodecSweep, RoundtripAcrossGroups) {
  WriterOptions options;
  options.codec = GetParam();
  options.rows_per_group = 100;
  FileWriter writer(TestSchema(), options);
  // 350 rows in uneven batches → 4 row groups (100+100+100+50).
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 75)).ok());
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(75, 200)).ok());
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(275, 75)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok()) << file.status();

  auto reader = FileReader::Open(*file);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ((*reader)->num_row_groups(), 4u);
  EXPECT_EQ((*reader)->meta().num_rows, 350u);
  EXPECT_EQ((*reader)->meta().codec, GetParam());

  auto table = (*reader)->ReadAll();
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ((*table)->num_rows(), 350u);
  auto all = (*table)->Combine();
  for (int64_t i = 0; i < 350; ++i) {
    EXPECT_EQ(all->column(0)->GetInt64(i), i);
    if (i % 10 == 3) {
      EXPECT_TRUE(all->column(1)->IsNull(i));
    } else {
      EXPECT_DOUBLE_EQ(all->column(1)->GetFloat64(i), i * 0.5);
    }
    EXPECT_EQ(all->column(2)->GetString(i), "t" + std::to_string(i % 4));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, WriterCodecSweep,
                         ::testing::Values(compress::CodecType::kNone,
                                           compress::CodecType::kFastLz,
                                           compress::CodecType::kDeflateLite,
                                           compress::CodecType::kZsLite));

TEST(ParquetLiteTest, ColumnProjectionReadsSubset) {
  FileWriter writer(TestSchema(), {});
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 50)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = FileReader::Open(*file);
  ASSERT_TRUE(reader.ok());

  auto batch = (*reader)->ReadRowGroup(0, {2, 0});
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ((*batch)->num_columns(), 2u);
  EXPECT_EQ((*batch)->schema()->field(0).name, "tag");
  EXPECT_EQ((*batch)->schema()->field(1).name, "id");
  EXPECT_EQ((*batch)->column(1)->GetInt64(7), 7);
}

TEST(ParquetLiteTest, ChunkStatsInFooter) {
  WriterOptions options;
  options.rows_per_group = 100;
  FileWriter writer(TestSchema(), options);
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 200)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto meta = ReadFooter(ByteSpan(file->data(), file->size()));
  ASSERT_TRUE(meta.ok()) << meta.status();
  ASSERT_EQ(meta->row_groups.size(), 2u);
  // Group 0 holds ids [0, 100); group 1 [100, 200).
  EXPECT_EQ(meta->row_groups[0].chunks[0].stats.min.AsInt64(), 0);
  EXPECT_EQ(meta->row_groups[0].chunks[0].stats.max.AsInt64(), 99);
  EXPECT_EQ(meta->row_groups[1].chunks[0].stats.min.AsInt64(), 100);
  EXPECT_EQ(meta->row_groups[1].chunks[0].stats.max.AsInt64(), 199);
  // File-level stats span both.
  EXPECT_EQ(meta->column_stats[0].min.AsInt64(), 0);
  EXPECT_EQ(meta->column_stats[0].max.AsInt64(), 199);
  EXPECT_EQ(meta->column_stats[0].row_count, 200u);
  // Tag has 4 distinct values.
  EXPECT_EQ(meta->column_stats[2].ndv, 4u);
}

TEST(ParquetLiteTest, ChunkBytesProjectionSmaller) {
  FileWriter writer(TestSchema(), {});
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 1000)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = FileReader::Open(*file);
  ASSERT_TRUE(reader.ok());
  uint64_t all = (*reader)->ChunkBytes(0, {});
  uint64_t one = (*reader)->ChunkBytes(0, {0});
  EXPECT_GT(all, one);
  EXPECT_GT(one, 0u);
}

TEST(ParquetLiteTest, SchemaMismatchRejected) {
  FileWriter writer(TestSchema(), {});
  auto other = MakeSchema({{"x", TypeKind::kInt32}});
  auto col = MakeColumn(TypeKind::kInt32);
  col->AppendInt32(1);
  EXPECT_FALSE(writer.WriteBatch(*MakeBatch(other, {col})).ok());
}

TEST(ParquetLiteTest, EmptyFileRoundtrip) {
  FileWriter writer(TestSchema(), {});
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  auto reader = FileReader::Open(*file);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_row_groups(), 0u);
  auto table = (*reader)->ReadAll();
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 0u);
}

TEST(ParquetLiteTest, DoubleFinishFails) {
  FileWriter writer(TestSchema(), {});
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_FALSE(writer.Finish().ok());
  EXPECT_FALSE(writer.WriteBatch(*TestBatch(0, 1)).ok());
}

TEST(ParquetLiteTest, CorruptMagicRejected) {
  FileWriter writer(TestSchema(), {});
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 10)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  Bytes bad = *file;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(FileReader::Open(bad).ok());
  bad = *file;
  bad[bad.size() - 1] ^= 0xFF;
  EXPECT_FALSE(FileReader::Open(bad).ok());
}

TEST(ParquetLiteTest, TruncatedFileRejected) {
  FileWriter writer(TestSchema(), {});
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 10)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  Bytes bad(file->begin(), file->begin() + file->size() / 2);
  EXPECT_FALSE(FileReader::Open(bad).ok());
}

TEST(ParquetLiteTest, CorruptChunkDetectedOnRead) {
  WriterOptions options;
  options.codec = compress::CodecType::kFastLz;
  FileWriter writer(TestSchema(), options);
  ASSERT_TRUE(writer.WriteBatch(*TestBatch(0, 100)).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  Bytes bad = *file;
  bad[20] ^= 0xFF;  // inside the first chunk's payload
  auto reader = FileReader::Open(bad);
  // Footer still parses (corruption is in data), but reading fails.
  if (reader.ok()) {
    auto batch = (*reader)->ReadRowGroup(0);
    EXPECT_FALSE(batch.ok());
  }
}

TEST(EncodingTest, DictionaryEncodesLowCardinalityStrings) {
  auto col = MakeColumn(TypeKind::kString);
  for (int i = 0; i < 10000; ++i) {
    col->AppendString(i % 4 == 0 ? "RETURN" : (i % 4 == 1 ? "ACCEPT"
                                                          : "NEUTRAL"));
  }
  auto dict = DictionaryEncodeString(*col);
  ASSERT_TRUE(dict.has_value());
  // ~1 byte/row + tiny dictionary vs ~7 bytes/row plain.
  EXPECT_LT(dict->size(), 11000u);
  columnar::Field field{"flag", TypeKind::kString};
  auto decoded = DecodePage(ByteSpan(dict->data(), dict->size()), field,
                            10000);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ((*decoded)->GetString(i), col->GetString(i));
  }
}

TEST(EncodingTest, DictionaryHandlesNulls) {
  auto col = MakeColumn(TypeKind::kString);
  col->AppendString("a");
  col->AppendNull();
  col->AppendString("b");
  col->AppendString("a");
  auto dict = DictionaryEncodeString(*col);
  ASSERT_TRUE(dict.has_value());
  columnar::Field field{"s", TypeKind::kString};
  auto decoded = DecodePage(ByteSpan(dict->data(), dict->size()), field, 4);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ((*decoded)->GetString(0), "a");
  EXPECT_TRUE((*decoded)->IsNull(1));
  EXPECT_EQ((*decoded)->GetString(3), "a");
}

TEST(EncodingTest, HighCardinalityFallsBackToPlain) {
  auto col = MakeColumn(TypeKind::kString);
  for (int i = 0; i < 1000; ++i) col->AppendString("v" + std::to_string(i));
  EXPECT_FALSE(DictionaryEncodeString(*col).has_value());
  // EncodePage still works (plain) and roundtrips.
  columnar::Field field{"s", TypeKind::kString};
  Bytes page = EncodePage(*col, field);
  EXPECT_EQ(page[0], static_cast<uint8_t>(PageEncoding::kPlain));
  auto decoded = DecodePage(ByteSpan(page.data(), page.size()), field, 1000);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)->GetString(999), "v999");
}

TEST(EncodingTest, NumericColumnsStayPlain) {
  auto col = MakeColumn(TypeKind::kInt64);
  for (int i = 0; i < 100; ++i) col->AppendInt64(i % 3);
  columnar::Field field{"n", TypeKind::kInt64};
  Bytes page = EncodePage(*col, field);
  EXPECT_EQ(page[0], static_cast<uint8_t>(PageEncoding::kPlain));
}

TEST(EncodingTest, CorruptDictionaryPagesRejected) {
  auto col = MakeColumn(TypeKind::kString);
  for (int i = 0; i < 100; ++i) col->AppendString(i % 2 ? "x" : "y");
  auto dict = DictionaryEncodeString(*col);
  ASSERT_TRUE(dict.has_value());
  columnar::Field field{"s", TypeKind::kString};
  // Wrong expected rows.
  EXPECT_FALSE(DecodePage(ByteSpan(dict->data(), dict->size()), field, 99).ok());
  // Wrong field type.
  columnar::Field wrong{"s", TypeKind::kInt64};
  EXPECT_FALSE(DecodePage(ByteSpan(dict->data(), dict->size()), wrong, 100).ok());
  // Truncation at various points.
  for (size_t cut : {size_t{0}, size_t{2}, dict->size() / 2}) {
    EXPECT_FALSE(DecodePage(ByteSpan(dict->data(), cut), field, 100).ok());
  }
  // Out-of-range code.
  Bytes bad = *dict;
  bad[bad.size() - 1] = 250;
  EXPECT_FALSE(DecodePage(ByteSpan(bad.data(), bad.size()), field, 100).ok());
}

TEST(EncodingTest, DictionaryShrinksTpchStyleFiles) {
  // returnflag-style column: 3 distinct single-char values.
  auto schema = MakeSchema({{"flag", TypeKind::kString}});
  auto make_file = [&](bool low_cardinality) {
    FileWriter writer(schema, {});
    auto col = MakeColumn(TypeKind::kString);
    for (int i = 0; i < 50000; ++i) {
      if (low_cardinality) {
        col->AppendString(i % 3 == 0 ? "R" : (i % 3 == 1 ? "A" : "N"));
      } else {
        col->AppendString("val" + std::to_string(i));
      }
    }
    EXPECT_TRUE(writer.WriteBatch(*MakeBatch(schema, {col})).ok());
    auto file = writer.Finish();
    EXPECT_TRUE(file.ok());
    return file->size();
  };
  // Dictionary: ~1B/row + framing; plain high-cardinality: ~12B/row.
  EXPECT_LT(make_file(true), size_t{80000});
  EXPECT_GT(make_file(false), size_t{300000});
}

TEST(ParquetLiteTest, CompressionShrinksRepetitiveData) {
  auto schema = MakeSchema({{"ts", TypeKind::kInt32}});
  auto make_file = [&](compress::CodecType codec) {
    WriterOptions options;
    options.codec = codec;
    FileWriter writer(schema, options);
    auto col = MakeColumn(TypeKind::kInt32);
    for (int i = 0; i < 100000; ++i) col->AppendInt32(7);  // constant column
    EXPECT_TRUE(writer.WriteBatch(*MakeBatch(schema, {col})).ok());
    auto file = writer.Finish();
    EXPECT_TRUE(file.ok());
    return file->size();
  };
  size_t raw = make_file(compress::CodecType::kNone);
  size_t fast = make_file(compress::CodecType::kFastLz);
  size_t zs = make_file(compress::CodecType::kZsLite);
  EXPECT_LT(fast, raw / 10);
  // At this tiny compressed size the split-stream framing dominates; both
  // codecs collapse the constant column by >1000x.
  EXPECT_LT(zs, raw / 10);
}

}  // namespace
}  // namespace pocs::format
