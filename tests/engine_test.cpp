// Tests for the engine's planning layers: analyzer plan shapes (paper
// Table 2), column pruning, two-phase aggregation decomposition, and the
// connector-local optimizer negotiation with a scripted mock connector.
#include <gtest/gtest.h>

#include "engine/analyzer.h"
#include "engine/optimizer.h"
#include "engine/two_phase.h"
#include "sql/parser.h"
#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/tpch.h"

namespace pocs::engine {
namespace {

using columnar::TypeKind;
using connector::PushedOperator;
using substrait::AggFunc;
using substrait::AggregateSpec;
using substrait::Expression;

connector::TableHandle LaghosHandle() {
  connector::TableHandle handle;
  handle.connector_id = "test";
  handle.info.schema_name = "default";
  handle.info.table_name = "laghos";
  handle.info.bucket = "hpc";
  handle.info.schema = workloads::LaghosSchema();
  handle.info.objects = {"laghos/part-0", "laghos/part-1"};
  handle.info.row_count = 1000;
  handle.info.column_stats.resize(handle.info.schema->num_fields());
  return handle;
}

connector::TableHandle DeepWaterHandle() {
  connector::TableHandle handle;
  handle.connector_id = "test";
  handle.info.schema = workloads::DeepWaterSchema();
  handle.info.table_name = "deepwater";
  handle.info.objects = {"deepwater/ts-0"};
  handle.info.row_count = 1000;
  handle.info.column_stats.resize(4);
  return handle;
}

connector::TableHandle TpchHandle() {
  connector::TableHandle handle;
  handle.connector_id = "test";
  handle.info.schema = workloads::LineitemSchema();
  handle.info.table_name = "lineitem";
  handle.info.objects = {"lineitem/part-0"};
  handle.info.row_count = 1000;
  handle.info.column_stats.resize(handle.info.schema->num_fields());
  return handle;
}

PlanNodePtr Analyze(const std::string& sql,
                    const connector::TableHandle& handle) {
  auto query = sql::ParseQuery(sql);
  EXPECT_TRUE(query.ok()) << query.status();
  auto plan = AnalyzeQuery(*query, handle);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.ok() ? *plan : nullptr;
}

TEST(AnalyzerTest, LaghosPlanShapeMatchesPaper) {
  auto plan = Analyze(workloads::LaghosQuery(), LaghosHandle());
  ASSERT_NE(plan, nullptr);
  // Table 2: TableScan → Filter → Aggregation → Top-N (+ output project).
  EXPECT_EQ(PlanChainToString(*plan),
            "TableScan -> Filter -> Aggregation -> TopN -> Project(identity)");
}

TEST(AnalyzerTest, DeepWaterPlanShapeMatchesPaper) {
  auto plan = Analyze(workloads::DeepWaterQuery(), DeepWaterHandle());
  ASSERT_NE(plan, nullptr);
  // Table 2: TableScan → Filter → Project → Aggregation.
  EXPECT_EQ(PlanChainToString(*plan),
            "TableScan -> Filter -> Project -> Aggregation -> "
            "Project(identity)");
}

TEST(AnalyzerTest, TpchQ1PlanShapeMatchesPaper) {
  auto plan = Analyze(workloads::TpchQ1(), TpchHandle());
  ASSERT_NE(plan, nullptr);
  // Table 2: TableScan → Filter → Project → Aggregation → Sort.
  EXPECT_EQ(PlanChainToString(*plan),
            "TableScan -> Filter -> Project -> Aggregation -> Sort -> "
            "Project(identity)");
}

TEST(AnalyzerTest, OutputSchemaUsesAliases) {
  auto plan = Analyze(workloads::LaghosQuery(), LaghosHandle());
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema->field(0).name, "vid");
  EXPECT_EQ(plan->output_schema->field(4).name, "e");
  EXPECT_EQ(plan->output_schema->field(4).type, TypeKind::kFloat64);
}

TEST(AnalyzerTest, NonAggregateSelect) {
  auto plan = Analyze("SELECT x, vertex_id FROM laghos WHERE e > 10",
                      LaghosHandle());
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(PlanChainToString(*plan),
            "TableScan -> Filter -> Project(identity)");
  EXPECT_EQ(plan->output_schema->field(0).name, "x");
}

TEST(AnalyzerTest, ErrorsOnBadQueries) {
  auto handle = LaghosHandle();
  auto q = sql::ParseQuery("SELECT nope FROM laghos");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(AnalyzeQuery(*q, handle).ok());
  // Non-grouped bare column in an aggregate query.
  q = sql::ParseQuery("SELECT x, min(e) FROM laghos GROUP BY vertex_id");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(AnalyzeQuery(*q, handle).ok());
  // ORDER BY unknown column.
  q = sql::ParseQuery("SELECT x FROM laghos ORDER BY nope");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(AnalyzeQuery(*q, handle).ok());
}

TEST(AnalyzerTest, LowerExpressionConstantFoldsDateArithmetic) {
  auto ast = sql::ParseExpression("DATE '1998-12-01' - INTERVAL '90' DAY");
  ASSERT_TRUE(ast.ok());
  columnar::Schema empty{std::vector<columnar::Field>{}};
  auto lowered = LowerExpression(**ast, empty);
  ASSERT_TRUE(lowered.ok()) << lowered.status();
  EXPECT_EQ(lowered->kind, substrait::ExprKind::kLiteral);
  EXPECT_EQ(lowered->literal.ToString(), "1998-09-02");
}

TEST(PruneColumnsTest, LaghosScanReadsOnlyQueryColumns) {
  auto plan = Analyze(workloads::LaghosQuery(), LaghosHandle());
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(PruneColumns(plan).ok());
  PlanNode* scan = FindScan(*plan);
  ASSERT_NE(scan, nullptr);
  // Query touches vertex_id, x, y, z, e → 5 of 10 columns.
  EXPECT_EQ(scan->scan_spec.columns, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(scan->output_schema->num_fields(), 5u);
}

TEST(PruneColumnsTest, RemapsFilterAndAggregateIndices) {
  // Query touching non-contiguous columns forces remapping.
  auto plan = Analyze(
      "SELECT avg(e) AS m FROM laghos WHERE p > 5000 GROUP BY vertex_id",
      LaghosHandle());
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(PruneColumns(plan).ok());
  PlanNode* scan = FindScan(*plan);
  // columns: vertex_id(0), e(4), p(6) → pruned indices 0,1,2
  EXPECT_EQ(scan->scan_spec.columns, (std::vector<int>{0, 4, 6}));
  // Filter references p → new index 2.
  PlanNode* filter = plan.get();
  while (filter && filter->kind != NodeKind::kFilter) {
    filter = filter->input.get();
  }
  ASSERT_NE(filter, nullptr);
  std::vector<int> refs;
  filter->predicate.CollectFieldRefs(&refs);
  EXPECT_EQ(refs, (std::vector<int>{2}));
}

TEST(PruneColumnsTest, CountStarKeepsNarrowestColumn) {
  auto plan = Analyze("SELECT COUNT(*) AS n FROM deepwater",
                      DeepWaterHandle());
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(PruneColumns(plan).ok());
  PlanNode* scan = FindScan(*plan);
  ASSERT_EQ(scan->scan_spec.columns.size(), 1u);
  // timestep (int32) is the narrowest column.
  EXPECT_EQ(scan->scan_spec.columns[0], 2);
}

// ---- two-phase aggregation -------------------------------------------------

TEST(TwoPhaseTest, AvgDecomposesToSumCount) {
  std::vector<AggregateSpec> aggs = {
      {AggFunc::kAvg, Expression::FieldRef(1, TypeKind::kFloat64), "avg_x"},
      {AggFunc::kCountStar, {}, "cnt"}};
  auto partial = PartialAggSpecs(aggs);
  ASSERT_EQ(partial.size(), 3u);
  EXPECT_EQ(partial[0].func, AggFunc::kSum);
  EXPECT_EQ(partial[0].output_name, "avg_x$sum");
  EXPECT_EQ(partial[1].func, AggFunc::kCount);
  EXPECT_EQ(partial[1].output_name, "avg_x$cnt");
  EXPECT_EQ(partial[2].func, AggFunc::kCountStar);

  auto final_specs = FinalAggSpecs(aggs, 1);
  ASSERT_EQ(final_specs.size(), 3u);
  EXPECT_EQ(final_specs[0].func, AggFunc::kSum);  // merge sums
  EXPECT_EQ(final_specs[1].func, AggFunc::kSum);  // merge counts
  EXPECT_EQ(final_specs[2].func, AggFunc::kSum);  // merge count(*)
  // Final args reference partial columns 1, 2, 3 (after 1 key).
  EXPECT_EQ(final_specs[0].argument.field_index, 1);
  EXPECT_EQ(final_specs[1].argument.field_index, 2);
  EXPECT_EQ(final_specs[2].argument.field_index, 3);
}

TEST(TwoPhaseTest, MinMaxMergeAsThemselves) {
  std::vector<AggregateSpec> aggs = {
      {AggFunc::kMin, Expression::FieldRef(0, TypeKind::kInt64), "lo"},
      {AggFunc::kMax, Expression::FieldRef(0, TypeKind::kInt64), "hi"}};
  auto final_specs = FinalAggSpecs(aggs, 0);
  EXPECT_EQ(final_specs[0].func, AggFunc::kMin);
  EXPECT_EQ(final_specs[1].func, AggFunc::kMax);
}

TEST(TwoPhaseTest, FinalizeProjectionComputesAvg) {
  std::vector<AggregateSpec> aggs = {
      {AggFunc::kAvg, Expression::FieldRef(1, TypeKind::kFloat64), "m"}};
  columnar::Schema input({{"k", TypeKind::kString},
                          {"v", TypeKind::kFloat64}});
  auto partial_schema = PartialOutputSchema(input, {0}, aggs);
  ASSERT_EQ(partial_schema->num_fields(), 3u);  // k, m$sum, m$cnt
  // Final schema = keys + merged columns (same layout here).
  std::vector<Expression> exprs;
  std::vector<std::string> names;
  FinalizeProjection(aggs, 1, *partial_schema, &exprs, &names);
  ASSERT_EQ(exprs.size(), 2u);
  EXPECT_EQ(names[0], "k");
  EXPECT_EQ(names[1], "m");
  EXPECT_EQ(exprs[1].kind, substrait::ExprKind::kCall);
  EXPECT_EQ(exprs[1].func, substrait::ScalarFunc::kDivide);
}

// ---- local optimizer negotiation --------------------------------------------

// Scripted connector: accepts the operator kinds listed in `accept`.
class MockConnector final : public connector::Connector {
 public:
  explicit MockConnector(std::set<PushedOperator::Kind> accept)
      : accept_(std::move(accept)) {}

  std::string id() const override { return "mock"; }
  Result<connector::TableHandle> GetTableHandle(const std::string&,
                                                const std::string&) override {
    return Status::Unimplemented("mock");
  }
  Result<connector::SplitPlan> GetSplits(const connector::TableHandle&,
                                         const connector::ScanSpec&) override {
    return Status::Unimplemented("mock");
  }
  connector::PushdownCapabilities capabilities() const override { return {}; }
  Result<bool> OfferPushdown(const connector::TableHandle&,
                             const PushedOperator& op,
                             connector::ScanSpec* spec,
                             connector::PushdownDecision* decision) override {
    offered.push_back(op.kind);
    decision->accepted = accept_.contains(op.kind);
    if (decision->accepted) spec->operators.push_back(op);
    return decision->accepted;
  }
  Result<std::unique_ptr<connector::PageSource>> CreatePageSource(
      const connector::TableHandle&, const connector::Split&,
      const connector::ScanSpec&) override {
    return Status::Unimplemented("mock");
  }

  std::vector<PushedOperator::Kind> offered;

 private:
  std::set<PushedOperator::Kind> accept_;
};

TEST(LocalOptimizerTest, FullPushdownRewritesLaghosPlan) {
  auto plan = Analyze(workloads::LaghosQuery(), LaghosHandle());
  ASSERT_TRUE(PruneColumns(plan).ok());
  MockConnector conn({PushedOperator::Kind::kFilter,
                      PushedOperator::Kind::kPartialAggregation,
                      PushedOperator::Kind::kPartialTopN});
  auto result = RunConnectorOptimizer(plan, conn);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(PlanChainToString(*result->plan),
            "TableScan[pushed:filter,aggregation,topn] -> Aggregation -> "
            "TopN -> Project(identity)");
  // Filter removed; aggregation kept as final step.
  PlanNode* agg = result->plan.get();
  while (agg && agg->kind != NodeKind::kAggregation) agg = agg->input.get();
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->agg_step, AggregationStep::kFinal);
  EXPECT_EQ(result->decisions.size(), 3u);
  for (const auto& d : result->decisions) EXPECT_TRUE(d.accepted);
}

TEST(LocalOptimizerTest, FilterOnlyPushdownKeepsAggregation) {
  auto plan = Analyze(workloads::LaghosQuery(), LaghosHandle());
  ASSERT_TRUE(PruneColumns(plan).ok());
  MockConnector conn({PushedOperator::Kind::kFilter});
  auto result = RunConnectorOptimizer(plan, conn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PlanChainToString(*result->plan),
            "TableScan[pushed:filter] -> Aggregation -> TopN -> "
            "Project(identity)");
  PlanNode* agg = result->plan.get();
  while (agg && agg->kind != NodeKind::kAggregation) agg = agg->input.get();
  EXPECT_EQ(agg->agg_step, AggregationStep::kSingle);
}

TEST(LocalOptimizerTest, RejectionStopsTheWalk) {
  auto plan = Analyze(workloads::TpchQ1(), TpchHandle());
  ASSERT_TRUE(PruneColumns(plan).ok());
  // Connector accepts filters and aggregation but NOT projection: the walk
  // must stop at the project, leaving the aggregation unpushed.
  MockConnector conn({PushedOperator::Kind::kFilter,
                      PushedOperator::Kind::kPartialAggregation});
  auto result = RunConnectorOptimizer(plan, conn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PlanChainToString(*result->plan),
            "TableScan[pushed:filter] -> Project -> Aggregation -> Sort -> "
            "Project(identity)");
  ASSERT_EQ(conn.offered.size(), 2u);
  EXPECT_EQ(conn.offered[1], PushedOperator::Kind::kProject);
}

TEST(LocalOptimizerTest, NothingAcceptedLeavesPlanUntouched) {
  auto plan = Analyze(workloads::LaghosQuery(), LaghosHandle());
  ASSERT_TRUE(PruneColumns(plan).ok());
  std::string before = PlanChainToString(*plan);
  MockConnector conn({});
  auto result = RunConnectorOptimizer(plan, conn);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(PlanChainToString(*result->plan), before);
  EXPECT_EQ(conn.offered.size(), 1u);  // only the filter was offered
}

TEST(LocalOptimizerTest, PureTopNPushdownKeepsMergeNode) {
  auto plan = Analyze("SELECT x FROM laghos ORDER BY x LIMIT 5",
                      LaghosHandle());
  ASSERT_TRUE(PruneColumns(plan).ok());
  MockConnector conn({PushedOperator::Kind::kPartialTopN});
  auto result = RunConnectorOptimizer(plan, conn);
  ASSERT_TRUE(result.ok());
  // TopN pushed per split, but the node stays for the final merge.
  EXPECT_EQ(PlanChainToString(*result->plan),
            "TableScan[pushed:topn] -> TopN -> Project(identity)");
}

}  // namespace
}  // namespace pocs::engine
