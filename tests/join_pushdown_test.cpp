// The `pushdown` CI tier (ctest -L pushdown): end-to-end coverage of the
// two-phase aggregation split and the join-key bloom semi-join reduction
// (DESIGN.md §14).
//
// Contract under test:
//   * the storage-side partial phase + engine-side final merge produce
//     rows bit-identical to the single-phase engine plan — including
//     AVG (sum/count recombination) and empty group sets,
//   * a pushed bloom moves strictly fewer bytes than the same join
//     without it, at identical answers,
//   * bloom false positives are filtered by the engine's exact probe, so
//     an undersized bloom costs bytes, never rows,
//   * a bloom pinned to a stale object version is skipped wholesale by
//     storage (no false pruning against rewritten data),
//   * a dead in-storage executor degrades to the engine-side fallback
//     with identical rows,
//   * the whole pipeline is a pure function of config + seed (replay).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bloom.h"
#include "connector/spi.h"
#include "workloads/testbed.h"
#include "workloads/tpch.h"

namespace pocs {
namespace {

using columnar::TypeKind;

std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

workloads::TpchConfig SmallLineitem() {
  workloads::TpchConfig tpch;
  tpch.num_files = 3;
  tpch.rows_per_file = 1 << 12;
  tpch.rows_per_group = 1 << 10;
  return tpch;
}

Status IngestJoinTables(workloads::Testbed* bed) {
  POCS_ASSIGN_OR_RETURN(workloads::GeneratedDataset fact,
                        workloads::GenerateLineitem(SmallLineitem()));
  POCS_RETURN_NOT_OK(bed->Ingest(std::move(fact)));
  POCS_ASSIGN_OR_RETURN(workloads::GeneratedDataset dim,
                        workloads::GenerateSupplier(workloads::SupplierConfig{}));
  return bed->Ingest(std::move(dim));
}

// One bed, three ways to run the same join: "ocs" takes the bloom and the
// storage-side partial phase, "ocs_engine" is the same connector with both
// disabled (single-phase engine join over full scans), "hive_raw" is the
// no-pushdown-at-all reference path.
struct JoinBedFixture {
  explicit JoinBedFixture(workloads::TestbedConfig config = {}) {
    bed = std::make_unique<workloads::Testbed>(std::move(config));
    EXPECT_TRUE(IngestJoinTables(bed.get()).ok());
    connectors::OcsConnectorConfig engine_only = bed->config().ocs_connector;
    engine_only.pushdown_aggregation = false;
    engine_only.pushdown_join_bloom = false;
    bed->RegisterOcsCatalog("ocs_engine", engine_only);
  }
  std::unique_ptr<workloads::Testbed> bed;
};

TEST(JoinPushdownTest, PartialAggMergeMatchesSinglePhaseReference) {
  JoinBedFixture fx;
  const std::string sql = workloads::TpchJoinQuery("lineitem", "supplier");

  auto reference = fx.bed->Run(sql, "ocs_engine");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->metrics.partial_agg_accepted, 0u);
  EXPECT_EQ(reference->metrics.bloom_pushed, 0u);
  // The dimension filter keeps nations 0..4 → exactly 5 groups.
  EXPECT_EQ(reference->table->num_rows(), 5u);

  auto pushed = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_GE(pushed->metrics.partial_agg_accepted, 1u);
  EXPECT_EQ(pushed->metrics.partial_agg_rejected, 0u);
  EXPECT_GE(pushed->metrics.bloom_pushed, 1u);
  EXPECT_GT(pushed->metrics.bloom_rows_pruned, 0u);
  EXPECT_GT(pushed->metrics.partial_agg_merges, 0u);
  EXPECT_EQ(pushed->metrics.fallbacks, 0u);

  // Two-phase AVG/SUM/COUNT recombination must be bit-identical to the
  // single-phase plan (same doubles, same order after canonicalization).
  EXPECT_EQ(Canonicalize(*pushed->table), Canonicalize(*reference->table));

  // And the whole point: the pushed plan moves strictly fewer bytes.
  EXPECT_LT(pushed->metrics.bytes_from_storage,
            reference->metrics.bytes_from_storage);

  // The no-pushdown Hive path agrees too (engine join over raw GETs).
  auto raw = fx.bed->Run(sql, "hive_raw");
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(Canonicalize(*raw->table), Canonicalize(*reference->table));
}

// An empty build side is the degenerate case of both features: the bloom
// contains no keys (storage prunes every row) and the final merge sees no
// groups. The answer is zero rows, not an error, on every path.
TEST(JoinPushdownTest, EmptyBuildSideYieldsEmptyGroups) {
  JoinBedFixture fx;
  const std::string sql =
      workloads::TpchJoinQuery("lineitem", "supplier", /*nations=*/0);

  auto reference = fx.bed->Run(sql, "ocs_engine");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->table->num_rows(), 0u);

  auto pushed = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_EQ(pushed->table->num_rows(), 0u);
  EXPECT_EQ(Canonicalize(*pushed->table), Canonicalize(*reference->table));
}

// Starve the bloom to ~1 bit per key: most non-matching fact rows become
// false positives and cross the network, but the engine's exact hash
// probe drops them — the undersized filter costs bytes, never rows.
TEST(JoinPushdownTest, BloomFalsePositivesFilteredEngineSide) {
  workloads::TestbedConfig config;
  config.engine.join_bloom_bits_per_key = 1.0;
  JoinBedFixture fx(std::move(config));
  const std::string sql = workloads::TpchJoinQuery("lineitem", "supplier");

  auto reference = fx.bed->Run(sql, "ocs_engine");
  ASSERT_TRUE(reference.ok()) << reference.status();
  auto pushed = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(pushed.ok()) << pushed.status();

  EXPECT_GE(pushed->metrics.bloom_pushed, 1u);
  EXPECT_EQ(Canonicalize(*pushed->table), Canonicalize(*reference->table));

  // A well-sized bloom on a fresh but otherwise identical bed prunes
  // strictly more rows than the starved one.
  JoinBedFixture sized;
  auto good = sized.bed->Run(sql, "ocs");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_GT(good->metrics.bloom_rows_pruned,
            pushed->metrics.bloom_rows_pruned);
  EXPECT_EQ(Canonicalize(*good->table), Canonicalize(*reference->table));
}

// Version-pin discipline at the SPI level: a split whose bloom_version no
// longer matches the (rewritten) object must have its bloom ignored by
// storage — pruning against data the filter was never built for would
// drop arbitrary rows.
TEST(JoinPushdownTest, StaleVersionBloomSkippedByStorage) {
  workloads::Testbed bed;
  workloads::TpchConfig tpch = SmallLineitem();
  tpch.num_files = 1;
  auto dataset = workloads::GenerateLineitem(tpch);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  ASSERT_TRUE(bed.Ingest(std::move(*dataset)).ok());

  connector::Connector* conn = bed.engine().GetConnector("ocs");
  ASSERT_NE(conn, nullptr);
  auto table = conn->GetTableHandle("default", "lineitem");
  ASSERT_TRUE(table.ok()) << table.status();

  connector::ScanSpec spec;
  spec.output_schema = table->info.schema;
  connector::PushedOperator op;
  op.kind = connector::PushedOperator::Kind::kJoinKeyBloom;
  op.bloom_column = 2;  // suppkey
  op.bloom_key_count = 1;
  BloomFilter bloom(/*num_bits=*/64, /*num_hashes=*/3,
                    /*seed=*/0x706f63736a6f696eULL);
  bloom.Add(1);  // keep only suppkey == 1
  op.bloom_words.assign(bloom.words().begin(), bloom.words().end());
  op.bloom_hashes = bloom.num_hashes();
  op.bloom_seed = bloom.seed();
  connector::PushdownDecision decision;
  auto accepted = conn->OfferPushdown(*table, op, &spec, &decision);
  ASSERT_TRUE(accepted.ok()) << accepted.status();
  ASSERT_TRUE(*accepted) << decision.reason;

  auto plan = conn->GetSplits(*table, spec);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->splits.size(), 1u);
  ASSERT_NE(plan->splits[0].bloom_version, 0u);

  auto drain = [&](const connector::Split& split,
                   connector::PageSourceStats* stats) -> uint64_t {
    auto source = conn->CreatePageSource(*table, split, spec);
    EXPECT_TRUE(source.ok()) << source.status();
    uint64_t rows = 0;
    while (true) {
      auto batch = (*source)->Next();
      EXPECT_TRUE(batch.ok()) << batch.status();
      if (!*batch) break;
      rows += (**batch).num_rows();
    }
    *stats = (*source)->stats();
    return rows;
  };

  // Fresh pin: the bloom runs at storage and prunes nearly everything.
  connector::PageSourceStats fresh_stats;
  const uint64_t fresh_rows = drain(plan->splits[0], &fresh_stats);
  EXPECT_LT(fresh_rows, tpch.rows_per_file);
  EXPECT_GT(fresh_stats.bloom_rows_pruned, 0u);
  EXPECT_EQ(fresh_rows + fresh_stats.bloom_rows_pruned, tpch.rows_per_file);

  // Rewrite the object through the regular PUT path: the version moves,
  // the pinned split goes stale.
  auto rewritten = workloads::GenerateLineitem(tpch);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status();
  for (auto& [key, bytes] : rewritten->files) {
    ASSERT_TRUE(
        bed.cluster().PutObject(rewritten->info.bucket, key, std::move(bytes))
            .ok());
  }

  // Stale pin: storage must skip the bloom wholesale and return every row.
  connector::PageSourceStats stale_stats;
  const uint64_t stale_rows = drain(plan->splits[0], &stale_stats);
  EXPECT_EQ(stale_rows, tpch.rows_per_file);
  EXPECT_EQ(stale_stats.bloom_rows_pruned, 0u);

  // Re-planning re-pins to the new version and pruning resumes.
  auto replanned = conn->GetSplits(*table, spec);
  ASSERT_TRUE(replanned.ok()) << replanned.status();
  ASSERT_EQ(replanned->splits.size(), 1u);
  EXPECT_GT(replanned->splits[0].bloom_version,
            plan->splits[0].bloom_version);
  connector::PageSourceStats repinned_stats;
  const uint64_t repinned_rows = drain(replanned->splits[0], &repinned_stats);
  EXPECT_LT(repinned_rows, tpch.rows_per_file);
  EXPECT_GT(repinned_stats.bloom_rows_pruned, 0u);
}

// Kill every in-storage executor: the identical pushed plan — bloom and
// partial phase included — re-runs engine-side via the fallback, with
// rows bit-identical to the healthy run.
TEST(JoinPushdownTest, DeadStorageExecutorFallsBackWithIdenticalRows) {
  JoinBedFixture fx;
  const std::string sql = workloads::TpchJoinQuery("lineitem", "supplier");

  auto healthy = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->metrics.fallbacks, 0u);

  for (size_t i = 0; i < fx.bed->cluster().num_storage_nodes(); ++i) {
    fx.bed->cluster().mutable_storage_node(i).faults().exec_crashed.store(true);
  }
  auto degraded = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_GT(degraded->metrics.fallbacks, 0u);
  // The fallback applies the same bloom (version-checked) engine-side.
  EXPECT_GT(degraded->metrics.bloom_rows_pruned, 0u);
  EXPECT_EQ(Canonicalize(*degraded->table), Canonicalize(*healthy->table));
}

// The pipeline is a pure function of config + data seed: two beds built
// the same way agree on rows AND on every movement/pushdown counter.
TEST(JoinPushdownTest, DeterministicReplay) {
  const std::string sql = workloads::TpchJoinQuery("lineitem", "supplier");
  JoinBedFixture a;
  JoinBedFixture b;
  auto ra = a.bed->Run(sql, "ocs");
  auto rb = b.bed->Run(sql, "ocs");
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(Canonicalize(*ra->table), Canonicalize(*rb->table));
  EXPECT_EQ(ra->metrics.bytes_from_storage, rb->metrics.bytes_from_storage);
  EXPECT_EQ(ra->metrics.rows_from_storage, rb->metrics.rows_from_storage);
  EXPECT_EQ(ra->metrics.bloom_rows_pruned, rb->metrics.bloom_rows_pruned);
  EXPECT_EQ(ra->metrics.partial_agg_merges, rb->metrics.partial_agg_merges);
  EXPECT_EQ(ra->optimized_plan, rb->optimized_plan);
}

}  // namespace
}  // namespace pocs
