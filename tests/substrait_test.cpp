// Tests for the plan IR: expression construction/typing, relation schema
// derivation/validation, serialization roundtrips (incl. fuzz-ish
// corruption), and the vectorized evaluator's SQL semantics.
#include <gtest/gtest.h>

#include "columnar/batch.h"
#include "substrait/eval.h"
#include "substrait/expr.h"
#include "substrait/rel.h"
#include "substrait/serialize.h"

namespace pocs::substrait {
namespace {

using columnar::Datum;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;

columnar::SchemaPtr ScanSchema() {
  return MakeSchema({{"x", TypeKind::kFloat64},
                     {"n", TypeKind::kInt64},
                     {"s", TypeKind::kString}});
}

columnar::RecordBatchPtr ScanBatch() {
  auto x = MakeColumn(TypeKind::kFloat64);
  auto n = MakeColumn(TypeKind::kInt64);
  auto s = MakeColumn(TypeKind::kString);
  // x: 0.5, 1.5, null, 3.5 ; n: 1..4 ; s: a,b,a,c
  x->AppendFloat64(0.5);
  x->AppendFloat64(1.5);
  x->AppendNull();
  x->AppendFloat64(3.5);
  for (int i = 1; i <= 4; ++i) n->AppendInt64(i);
  s->AppendString("a");
  s->AppendString("b");
  s->AppendString("a");
  s->AppendString("c");
  return MakeBatch(ScanSchema(), {x, n, s});
}

std::unique_ptr<Rel> MakeRead() {
  auto read = std::make_unique<Rel>();
  read->kind = RelKind::kRead;
  read->bucket = "data";
  read->object = "obj";
  read->base_schema = ScanSchema();
  return read;
}

TEST(ExprTest, BuildersSetTypes) {
  auto field = Expression::FieldRef(0, TypeKind::kFloat64);
  EXPECT_EQ(field.kind, ExprKind::kFieldRef);
  EXPECT_EQ(field.type, TypeKind::kFloat64);
  auto lit = Expression::Literal(Datum::Int64(5));
  EXPECT_EQ(lit.type, TypeKind::kInt64);
  auto call = Expression::Call(ScalarFunc::kGe, {field, lit}, TypeKind::kBool);
  EXPECT_EQ(call.args.size(), 2u);
}

TEST(ExprTest, PromoteNumeric) {
  EXPECT_EQ(Expression::PromoteNumeric(TypeKind::kInt64, TypeKind::kFloat64),
            TypeKind::kFloat64);
  EXPECT_EQ(Expression::PromoteNumeric(TypeKind::kInt32, TypeKind::kInt64),
            TypeKind::kInt64);
}

TEST(ExprTest, ToStringReadable) {
  auto schema = ScanSchema();
  auto e = Expression::Call(
      ScalarFunc::kGe,
      {Expression::FieldRef(0, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(0.8))},
      TypeKind::kBool);
  EXPECT_EQ(e.ToString(schema.get()), "(x >= 0.8)");
}

TEST(ExprTest, CollectFieldRefs) {
  auto e = Expression::Call(
      ScalarFunc::kAdd,
      {Expression::FieldRef(2, TypeKind::kFloat64),
       Expression::Call(ScalarFunc::kMultiply,
                        {Expression::FieldRef(0, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(2.0))},
                        TypeKind::kFloat64)},
      TypeKind::kFloat64);
  std::vector<int> refs;
  e.CollectFieldRefs(&refs);
  EXPECT_EQ(refs, (std::vector<int>{2, 0}));
}

TEST(RelTest, ReadOutputSchema) {
  auto read = MakeRead();
  auto schema = OutputSchema(*read);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->num_fields(), 3u);
  read->read_columns = {2, 0};
  schema = OutputSchema(*read);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->field(0).name, "s");
  EXPECT_EQ((*schema)->field(1).name, "x");
  read->read_columns = {9};
  EXPECT_FALSE(OutputSchema(*read).ok());
}

TEST(RelTest, FilterRequiresBoolPredicate) {
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = MakeRead();
  filter->predicate = Expression::FieldRef(0, TypeKind::kFloat64);
  EXPECT_FALSE(OutputSchema(*filter).ok());
  filter->predicate = Expression::Call(
      ScalarFunc::kGt,
      {Expression::FieldRef(0, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(1.0))},
      TypeKind::kBool);
  EXPECT_TRUE(OutputSchema(*filter).ok());
}

TEST(RelTest, AggregateOutputSchema) {
  auto agg = std::make_unique<Rel>();
  agg->kind = RelKind::kAggregate;
  agg->input = MakeRead();
  agg->group_keys = {2};
  AggregateSpec spec;
  spec.func = AggFunc::kAvg;
  spec.argument = Expression::FieldRef(0, TypeKind::kFloat64);
  spec.output_name = "avg_x";
  agg->aggregates = {spec};
  auto schema = OutputSchema(*agg);
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_EQ((*schema)->num_fields(), 2u);
  EXPECT_EQ((*schema)->field(0).name, "s");
  EXPECT_EQ((*schema)->field(1).name, "avg_x");
  EXPECT_EQ((*schema)->field(1).type, TypeKind::kFloat64);
}

TEST(RelTest, SumOutputTypes) {
  AggregateSpec int_sum{AggFunc::kSum,
                        Expression::FieldRef(1, TypeKind::kInt64), "s"};
  EXPECT_EQ(int_sum.OutputType(), TypeKind::kInt64);
  AggregateSpec float_sum{AggFunc::kSum,
                          Expression::FieldRef(0, TypeKind::kFloat64), "s"};
  EXPECT_EQ(float_sum.OutputType(), TypeKind::kFloat64);
  AggregateSpec cnt{AggFunc::kCountStar, {}, "c"};
  EXPECT_EQ(cnt.OutputType(), TypeKind::kInt64);
}

TEST(RelTest, PlanToStringShowsPipeline) {
  Plan plan;
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = MakeRead();
  filter->predicate = Expression::Call(
      ScalarFunc::kGt,
      {Expression::FieldRef(1, TypeKind::kInt64),
       Expression::Literal(Datum::Int64(0))},
      TypeKind::kBool);
  plan.root = std::move(filter);
  EXPECT_EQ(PlanToString(plan), "Read(data/obj) -> Filter");
}

TEST(RelTest, CloneIsDeep) {
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = MakeRead();
  filter->predicate = Expression::Literal(Datum::Bool(true));
  auto clone = CloneRel(*filter);
  clone->input->bucket = "other";
  EXPECT_EQ(filter->input->bucket, "data");
  EXPECT_EQ(clone->input->bucket, "other");
}

Plan FullPlan() {
  // Read -> Filter(x >= 1.0) -> Aggregate(group s; sum n, avg x)
  //      -> Sort(by sum desc) -> Fetch(limit 10)
  auto read = MakeRead();
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = std::move(read);
  filter->predicate = Expression::Call(
      ScalarFunc::kGe,
      {Expression::FieldRef(0, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(1.0))},
      TypeKind::kBool);
  auto agg = std::make_unique<Rel>();
  agg->kind = RelKind::kAggregate;
  agg->input = std::move(filter);
  agg->group_keys = {2};
  agg->aggregates = {
      {AggFunc::kSum, Expression::FieldRef(1, TypeKind::kInt64), "sum_n"},
      {AggFunc::kAvg, Expression::FieldRef(0, TypeKind::kFloat64), "avg_x"}};
  auto sort = std::make_unique<Rel>();
  sort->kind = RelKind::kSort;
  sort->input = std::move(agg);
  sort->sort_fields = {{1, false, true}};
  auto fetch = std::make_unique<Rel>();
  fetch->kind = RelKind::kFetch;
  fetch->input = std::move(sort);
  fetch->offset = 0;
  fetch->count = 10;
  Plan plan;
  plan.root = std::move(fetch);
  return plan;
}

TEST(SerializeTest, PlanRoundtrip) {
  Plan plan = FullPlan();
  ASSERT_TRUE(ValidatePlan(plan).ok());
  Bytes data = SerializePlan(plan);
  auto rt = DeserializePlan(ByteSpan(data.data(), data.size()));
  ASSERT_TRUE(rt.ok()) << rt.status();
  // Re-serialize: fixpoint.
  Bytes data2 = SerializePlan(*rt);
  EXPECT_EQ(data, data2);
  EXPECT_EQ(PlanToString(*rt), PlanToString(plan));
}

// The pushdown-pipeline extensions (DESIGN.md §14): a read rel carrying
// a version-pinned join-key bloom, and a partial-phase aggregation, must
// survive the wire bit-for-bit.
TEST(SerializeTest, BloomAndAggPhaseRoundtrip) {
  Plan plan = FullPlan();
  Rel* agg = plan.root->input.get();  // Fetch -> Sort -> Aggregate
  ASSERT_EQ(agg->kind, RelKind::kSort);
  agg = agg->input.get();
  ASSERT_EQ(agg->kind, RelKind::kAggregate);
  agg->agg_phase = AggPhase::kPartial;
  Rel* read = agg->input->input.get();  // Filter -> Read
  ASSERT_EQ(read->kind, RelKind::kRead);
  read->bloom_words = {0x0123456789abcdefull, 0xfedcba9876543210ull, 1, 0};
  read->bloom_hashes = 5;
  read->bloom_seed = 0x706f63736a6f696eull;
  read->bloom_column = 1;
  read->bloom_version = 42;

  ASSERT_TRUE(ValidatePlan(plan).ok());
  Bytes data = SerializePlan(plan);
  auto rt = DeserializePlan(ByteSpan(data.data(), data.size()));
  ASSERT_TRUE(rt.ok()) << rt.status();
  Bytes data2 = SerializePlan(*rt);
  EXPECT_EQ(data, data2);

  const Rel* rt_agg = rt->root->input->input.get();
  ASSERT_EQ(rt_agg->kind, RelKind::kAggregate);
  EXPECT_EQ(rt_agg->agg_phase, AggPhase::kPartial);
  const Rel* rt_read = rt_agg->input->input.get();
  ASSERT_EQ(rt_read->kind, RelKind::kRead);
  EXPECT_EQ(rt_read->bloom_words, read->bloom_words);
  EXPECT_EQ(rt_read->bloom_hashes, 5u);
  EXPECT_EQ(rt_read->bloom_seed, 0x706f63736a6f696eull);
  EXPECT_EQ(rt_read->bloom_column, 1);
  EXPECT_EQ(rt_read->bloom_version, 42u);

  // A plan without a bloom must serialize to different (smaller) bytes —
  // the fields are not silently dropped on the wire.
  Plan bare = FullPlan();
  Rel* bare_agg = bare.root->input->input.get();
  bare_agg->agg_phase = AggPhase::kPartial;
  EXPECT_NE(SerializePlan(bare), data);
}

TEST(SerializeTest, ExpressionRoundtripAllFuncs) {
  for (int f = 0; f <= static_cast<int>(ScalarFunc::kNegate); ++f) {
    ScalarFunc func = static_cast<ScalarFunc>(f);
    size_t arity =
        (func == ScalarFunc::kNot || func == ScalarFunc::kNegate) ? 1 : 2;
    std::vector<Expression> args;
    for (size_t i = 0; i < arity; ++i) {
      args.push_back(Expression::FieldRef(static_cast<int>(i),
                                          TypeKind::kFloat64));
    }
    auto e = Expression::Call(func, std::move(args),
                              IsArithmetic(func) ? TypeKind::kFloat64
                                                 : TypeKind::kBool);
    BufferWriter w;
    WriteExpression(e, &w);
    BufferReader r(w.span());
    auto rt = ReadExpression(&r);
    ASSERT_TRUE(rt.ok()) << "func " << f;
    EXPECT_EQ(rt->func, func);
    EXPECT_EQ(rt->args.size(), arity);
  }
}

TEST(SerializeTest, CorruptPlansRejected) {
  Plan plan = FullPlan();
  Bytes data = SerializePlan(plan);
  // Truncations at many offsets must all fail cleanly, never crash.
  for (size_t cut = 0; cut < data.size(); cut += 7) {
    auto rt = DeserializePlan(ByteSpan(data.data(), cut));
    EXPECT_FALSE(rt.ok());
  }
  // Flipped kind bytes must either fail or still validate.
  for (size_t i = 4; i < data.size(); i += 11) {
    Bytes bad = data;
    bad[i] ^= 0x7;
    auto rt = DeserializePlan(ByteSpan(bad.data(), bad.size()));
    if (rt.ok()) {
      EXPECT_TRUE(ValidatePlan(*rt).ok());
    }
  }
}

TEST(SerializeTest, TrailingBytesRejected) {
  Plan plan = FullPlan();
  Bytes data = SerializePlan(plan);
  data.push_back(0);
  EXPECT_FALSE(DeserializePlan(ByteSpan(data.data(), data.size())).ok());
}

// ---- evaluation -----------------------------------------------------------

TEST(EvalTest, FieldRefReturnsColumn) {
  auto batch = ScanBatch();
  auto col = Evaluate(Expression::FieldRef(1, TypeKind::kInt64), *batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->GetInt64(2), 3);
}

TEST(EvalTest, ArithmeticWithNullPropagation) {
  auto batch = ScanBatch();
  // x * 2 + n
  auto e = Expression::Call(
      ScalarFunc::kAdd,
      {Expression::Call(ScalarFunc::kMultiply,
                        {Expression::FieldRef(0, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(2.0))},
                        TypeKind::kFloat64),
       Expression::FieldRef(1, TypeKind::kInt64)},
      TypeKind::kFloat64);
  auto col = Evaluate(e, *batch);
  ASSERT_TRUE(col.ok()) << col.status();
  EXPECT_DOUBLE_EQ((*col)->GetFloat64(0), 2.0);   // 0.5*2 + 1
  EXPECT_DOUBLE_EQ((*col)->GetFloat64(1), 5.0);   // 1.5*2 + 2
  EXPECT_TRUE((*col)->IsNull(2));                 // null * 2 + 3
  EXPECT_DOUBLE_EQ((*col)->GetFloat64(3), 11.0);  // 3.5*2 + 4
}

TEST(EvalTest, IntegerModuloAndDivision) {
  auto batch = ScanBatch();
  auto mod = Expression::Call(
      ScalarFunc::kModulo,
      {Expression::FieldRef(1, TypeKind::kInt64),
       Expression::Literal(Datum::Int64(2))},
      TypeKind::kInt64);
  auto col = Evaluate(mod, *batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->GetInt64(0), 1);
  EXPECT_EQ((*col)->GetInt64(1), 0);
  // Division by zero degrades to NULL.
  auto div0 = Expression::Call(
      ScalarFunc::kDivide,
      {Expression::FieldRef(1, TypeKind::kInt64),
       Expression::Literal(Datum::Int64(0))},
      TypeKind::kInt64);
  col = Evaluate(div0, *batch);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE((*col)->IsNull(0));
}

TEST(EvalTest, ComparisonAndKleeneLogic) {
  auto batch = ScanBatch();
  // (x > 1.0) AND (n < 4): row0 F, row1 T, row2 null AND T = null, row3 F
  auto pred = Expression::Call(
      ScalarFunc::kAnd,
      {Expression::Call(ScalarFunc::kGt,
                        {Expression::FieldRef(0, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(1.0))},
                        TypeKind::kBool),
       Expression::Call(ScalarFunc::kLt,
                        {Expression::FieldRef(1, TypeKind::kInt64),
                         Expression::Literal(Datum::Int64(4))},
                        TypeKind::kBool)},
      TypeKind::kBool);
  auto col = Evaluate(pred, *batch);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE((*col)->GetBool(0));
  EXPECT_TRUE((*col)->GetBool(1));
  EXPECT_TRUE((*col)->IsNull(2));
  EXPECT_FALSE((*col)->GetBool(3));  // n=4 not < 4 → false AND dominates

  auto sel = FilterSelection(pred, *batch);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (columnar::SelectionVector{1}));  // null rows dropped
}

TEST(EvalTest, KleeneOrWithNull) {
  auto batch = ScanBatch();
  // (x > 10) OR (n >= 4): row2 has x null → null OR false = null;
  // row3: false OR true = true.
  auto pred = Expression::Call(
      ScalarFunc::kOr,
      {Expression::Call(ScalarFunc::kGt,
                        {Expression::FieldRef(0, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(10.0))},
                        TypeKind::kBool),
       Expression::Call(ScalarFunc::kGe,
                        {Expression::FieldRef(1, TypeKind::kInt64),
                         Expression::Literal(Datum::Int64(4))},
                        TypeKind::kBool)},
      TypeKind::kBool);
  auto col = Evaluate(pred, *batch);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE((*col)->GetBool(0));
  EXPECT_TRUE((*col)->IsNull(2));
  EXPECT_TRUE((*col)->GetBool(3));
}

TEST(EvalTest, StringComparison) {
  auto batch = ScanBatch();
  auto pred = Expression::Call(
      ScalarFunc::kEq,
      {Expression::FieldRef(2, TypeKind::kString),
       Expression::Literal(Datum::String("a"))},
      TypeKind::kBool);
  auto sel = FilterSelection(pred, *batch);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (columnar::SelectionVector{0, 2}));
}

TEST(EvalTest, NotAndNegate) {
  auto batch = ScanBatch();
  auto inner = Expression::Call(
      ScalarFunc::kGt,
      {Expression::FieldRef(1, TypeKind::kInt64),
       Expression::Literal(Datum::Int64(2))},
      TypeKind::kBool);
  auto pred = Expression::Call(ScalarFunc::kNot, {inner}, TypeKind::kBool);
  auto sel = FilterSelection(pred, *batch);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (columnar::SelectionVector{0, 1}));

  auto neg = Expression::Call(ScalarFunc::kNegate,
                              {Expression::FieldRef(0, TypeKind::kFloat64)},
                              TypeKind::kFloat64);
  auto col = Evaluate(neg, *batch);
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)->GetFloat64(0), -0.5);
  EXPECT_TRUE((*col)->IsNull(2));
}

TEST(EvalTest, IsNullNeverPropagatesNull) {
  auto batch = ScanBatch();  // x has a null at row 2
  auto is_null = Expression::Call(
      ScalarFunc::kIsNull, {Expression::FieldRef(0, TypeKind::kFloat64)},
      TypeKind::kBool);
  auto col = Evaluate(is_null, *batch);
  ASSERT_TRUE(col.ok()) << col.status();
  EXPECT_FALSE((*col)->has_nulls());
  EXPECT_FALSE((*col)->GetBool(0));
  EXPECT_TRUE((*col)->GetBool(2));
  // NOT(IS NULL) selects exactly the non-null rows.
  auto not_null = Expression::Call(ScalarFunc::kNot, {is_null},
                                   TypeKind::kBool);
  auto sel = FilterSelection(not_null, *batch);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(*sel, (columnar::SelectionVector{0, 1, 3}));
}

TEST(SerializeTest, IsNullRoundtrip) {
  auto e = Expression::Call(
      ScalarFunc::kIsNull, {Expression::FieldRef(1, TypeKind::kInt64)},
      TypeKind::kBool);
  BufferWriter w;
  WriteExpression(e, &w);
  BufferReader r(w.span());
  auto rt = ReadExpression(&r);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->func, ScalarFunc::kIsNull);
  EXPECT_EQ(rt->args.size(), 1u);
}

TEST(EvalTest, FilterBatchDropsRows) {
  auto batch = ScanBatch();
  auto pred = Expression::Call(
      ScalarFunc::kGe,
      {Expression::FieldRef(0, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(1.0))},
      TypeKind::kBool);
  auto filtered = FilterBatch(pred, *batch);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ((*filtered)->num_rows(), 2u);  // rows 1 and 3; null dropped
  EXPECT_EQ((*filtered)->column(1)->GetInt64(0), 2);
  EXPECT_EQ((*filtered)->column(1)->GetInt64(1), 4);
}

}  // namespace
}  // namespace pocs::substrait
