// The `pruning` CI tier (ctest -L pruning): end-to-end coverage of
// statistics-driven split pruning with the coordinator-side metadata
// cache (DESIGN.md §13).
//
// Contract under test:
//   * selective queries prune provably-empty splits at plan time and
//     never issue a data RPC for them (asserted via the
//     storage.plans_executed registry delta),
//   * surviving boundary splits carry a row-group hint the storage node
//     honours (row_groups_hint_skipped),
//   * results are bit-identical to the unpruned path — including after
//     object overwrites (stale cache → revalidation) and when the stats
//     RPC is down entirely (errors → plan everything unpruned),
//   * the cache's hit/miss/stale/error accounting is exact.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/metrics.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"
#include "workloads/tpch.h"

namespace pocs {
namespace {

using columnar::TypeKind;

std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

// 6 files × 4096 rows, 4 row groups per file. With rows_per_vertex = 32
// each file covers 128 vertices ([f*128, (f+1)*128)) and each row group
// 32 of them — so a vertex_id bound lands on clean file and row-group
// boundaries, both statically visible in footer min/max stats.
workloads::LaghosConfig PartitionedLaghos(uint64_t seed = 20251116) {
  workloads::LaghosConfig config;
  config.num_files = 6;
  config.rows_per_file = 1 << 12;
  config.rows_per_group = 1 << 10;
  config.seed = seed;
  return config;
}

struct PruningBedFixture {
  PruningBedFixture() {
    bed = std::make_unique<workloads::Testbed>();
    auto dataset = workloads::GenerateLaghos(PartitionedLaghos());
    EXPECT_TRUE(dataset.ok()) << dataset.status();
    EXPECT_TRUE(bed->Ingest(std::move(*dataset)).ok());
    connectors::OcsConnectorConfig pruned = bed->config().ocs_connector;
    pruned.metadata_cache_bytes = 8ull << 20;
    bed->RegisterOcsCatalog("ocs_pruned", pruned);
  }
  std::unique_ptr<workloads::Testbed> bed;
};

uint64_t PlansExecuted() {
  return metrics::Registry::Default()
      .GetCounter("storage.plans_executed")
      .value();
}

// Two of six files can possibly hold vertex_id < 256; the other four are
// proven empty from cached stats and must never reach the data path.
TEST(SplitPruningTest, SelectiveQueryPrunesSplitsWithoutDataRpcs) {
  PruningBedFixture fx;
  const std::string sql =
      workloads::LaghosSelectiveQuery("laghos", /*max_vertex=*/256);

  auto reference = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(reference->metrics.splits, 6u);
  EXPECT_EQ(reference->metrics.splits_pruned, 0u);

  const uint64_t plans_before = PlansExecuted();
  auto pruned = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(pruned.ok()) << pruned.status();

  EXPECT_EQ(pruned->metrics.splits_planned, 6u);
  EXPECT_EQ(pruned->metrics.splits_pruned, 4u);
  EXPECT_EQ(pruned->metrics.splits, 2u);
  // Cold cache: one miss per candidate object, nothing stale, no errors.
  EXPECT_EQ(pruned->metrics.metadata_cache_misses, 6u);
  EXPECT_EQ(pruned->metrics.metadata_cache_hits, 0u);
  EXPECT_EQ(pruned->metrics.metadata_cache_stale, 0u);
  EXPECT_EQ(pruned->metrics.metadata_cache_errors, 0u);
  // The zero-data-RPC guarantee: only the two surviving splits executed
  // a plan on a storage node.
  EXPECT_EQ(PlansExecuted() - plans_before, pruned->metrics.splits);
  // Pruning must be invisible in the answer.
  EXPECT_EQ(Canonicalize(*pruned->table), Canonicalize(*reference->table));

  // Warm cache: every descriptor revalidates via a metadata-only Stat.
  auto warm = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->metrics.metadata_cache_hits, 6u);
  EXPECT_EQ(warm->metrics.metadata_cache_misses, 0u);
  EXPECT_EQ(warm->metrics.splits_pruned, 4u);
  EXPECT_EQ(Canonicalize(*warm->table), Canonicalize(*reference->table));
}

// A bound inside the first file: the surviving split carries a
// row-group hint, and the storage node skips the hinted-out groups
// before touching their stats.
TEST(SplitPruningTest, BoundarySplitCarriesRowGroupHint) {
  PruningBedFixture fx;
  // File 0's row groups cover vertices [0,32), [32,64), [64,96),
  // [96,128): only the first can match, the other three are hinted out.
  const std::string sql =
      workloads::LaghosSelectiveQuery("laghos", /*max_vertex=*/32);

  auto reference = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();

  auto pruned = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  EXPECT_EQ(pruned->metrics.splits_pruned, 5u);
  EXPECT_EQ(pruned->metrics.splits, 1u);
  EXPECT_EQ(pruned->metrics.row_groups_hint_skipped, 3u);
  EXPECT_EQ(Canonicalize(*pruned->table), Canonicalize(*reference->table));
}

// Overwriting an object after its stats were cached must surface as a
// stale entry + refetch, and the answer must match a cold-cache run
// over the new data bit-for-bit. Staleness may cost a round trip,
// never correctness.
TEST(SplitPruningTest, OverwriteInvalidatesCachedStats) {
  PruningBedFixture fx;
  const std::string sql =
      workloads::LaghosSelectiveQuery("laghos", /*max_vertex=*/256);

  auto cold = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->metrics.metadata_cache_misses, 6u);

  // Overwrite every object with differently-seeded data (same schema,
  // same keys, same vertex partitioning) through the regular PUT path.
  auto changed = workloads::GenerateLaghos(PartitionedLaghos(/*seed=*/42));
  ASSERT_TRUE(changed.ok()) << changed.status();
  for (auto& [key, bytes] : changed->files) {
    ASSERT_TRUE(
        fx.bed->cluster().PutObject(changed->info.bucket, key, std::move(bytes))
            .ok());
  }

  auto after = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(after.ok()) << after.status();
  // Every cached descriptor failed version validation and was refetched.
  EXPECT_EQ(after->metrics.metadata_cache_stale, 6u);
  EXPECT_EQ(after->metrics.metadata_cache_hits, 0u);
  EXPECT_EQ(after->metrics.splits_pruned, 4u);
  // Bit-identical to the unpruned catalog over the new data.
  auto reference = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(Canonicalize(*after->table), Canonicalize(*reference->table));
}

// Stats service down: planning degrades to the unpruned path — every
// candidate is planned, the error is counted, and the answer is
// untouched. Healing the service restores pruning on the next query.
TEST(SplitPruningTest, StatsRpcDownFallsBackToUnprunedPlanning) {
  PruningBedFixture fx;
  const std::string sql =
      workloads::LaghosSelectiveQuery("laghos", /*max_vertex=*/256);

  auto reference = fx.bed->Run(sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();

  fx.bed->cluster().SetDescribeCrashed(true);
  auto degraded = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_EQ(degraded->metrics.metadata_cache_errors, 6u);
  EXPECT_EQ(degraded->metrics.splits_pruned, 0u);
  EXPECT_EQ(degraded->metrics.splits, 6u);
  EXPECT_EQ(Canonicalize(*degraded->table), Canonicalize(*reference->table));

  fx.bed->cluster().SetDescribeCrashed(false);
  auto healed = fx.bed->Run(sql, "ocs_pruned");
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->metrics.splits_pruned, 4u);
  EXPECT_EQ(healed->metrics.metadata_cache_errors, 0u);
  EXPECT_EQ(Canonicalize(*healed->table), Canonicalize(*reference->table));
}

// The monotone-orderkey TPC-H shape: an orderkey prefix predicate prunes
// trailing lineitem files from footer stats alone.
TEST(SplitPruningTest, TpchOrderkeyPrefixPrunesTrailingFiles) {
  workloads::Testbed bed;
  workloads::TpchConfig tpch;
  tpch.num_files = 3;
  tpch.rows_per_file = 1 << 12;
  tpch.rows_per_group = 1 << 10;
  auto dataset = workloads::GenerateLineitem(tpch);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  ASSERT_TRUE(bed.Ingest(std::move(*dataset)).ok());
  connectors::OcsConnectorConfig pruned = bed.config().ocs_connector;
  pruned.metadata_cache_bytes = 8ull << 20;
  bed.RegisterOcsCatalog("ocs_pruned", pruned);

  // orderkey is monotone across files: a prefix bound well inside file 0
  // proves the later files empty.
  const std::string sql =
      workloads::TpchSelectiveQuery("lineitem", /*max_orderkey=*/200);
  auto reference = bed.Run(sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();

  auto fast = bed.Run(sql, "ocs_pruned");
  ASSERT_TRUE(fast.ok()) << fast.status();
  EXPECT_EQ(fast->metrics.splits_planned, 3u);
  EXPECT_GT(fast->metrics.splits_pruned, 0u);
  EXPECT_EQ(Canonicalize(*fast->table), Canonicalize(*reference->table));
}

}  // namespace
}  // namespace pocs
