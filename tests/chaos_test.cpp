// The chaos matrix cell runner: `chaos_test --profile=<p> --seed=<n>`
// builds a fault-free reference testbed and a faulted one, runs the
// paper's workload queries on both, and asserts
//   1. every query under faults returns rows identical to the reference,
//   2. the profile's degradation signature shows up in QueryStats
//      (fallbacks where in-storage execution is taken away, retries on
//      transient faults), and
//   3. replaying the same profile + seed reproduces rows AND stats
//      bit-for-bit (the determinism contract chaos CI depends on).
// Registered in tests/CMakeLists.txt as one ctest entry per profile ×
// seed, labelled `chaos` (run locally with `ctest -L chaos`).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "workloads/chaos.h"

namespace pocs::workloads {
namespace {

ChaosConfig g_chaos{.profile = "crash-storage", .seed = 1};

std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

// Everything a replay must reproduce exactly.
struct QueryFingerprint {
  std::string rows;
  uint64_t bytes_from_storage = 0;
  uint64_t bytes_to_storage = 0;
  uint64_t rows_scanned = 0;
  uint64_t retries = 0;
  uint64_t fallbacks = 0;
  uint64_t failed_splits = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_bytes_saved = 0;
  uint64_t bytes_refetched_on_retry = 0;
  uint64_t splits_planned = 0;
  uint64_t splits_pruned = 0;
  uint64_t metadata_cache_errors = 0;
  bool operator==(const QueryFingerprint&) const = default;
};

Result<std::unique_ptr<Testbed>> BuildBed(const ChaosConfig& chaos) {
  POCS_ASSIGN_OR_RETURN(TestbedConfig config, MakeChaosTestbedConfig(chaos));
  auto bed = std::make_unique<Testbed>(config);
  POCS_RETURN_NOT_OK(IngestChaosDatasets(bed.get()));
  POCS_RETURN_NOT_OK(ApplyChaos(bed.get(), chaos));
  return bed;
}

Result<std::map<std::string, QueryFingerprint>> RunAll(Testbed* bed) {
  std::map<std::string, QueryFingerprint> out;
  for (const auto& [name, sql] : ChaosQueries()) {
    POCS_ASSIGN_OR_RETURN(engine::QueryResult result, bed->Run(sql, "ocs"));
    out[name] = QueryFingerprint{Canonicalize(*result.table),
                                 result.metrics.bytes_from_storage,
                                 result.metrics.bytes_to_storage,
                                 result.metrics.rows_scanned,
                                 result.metrics.retries,
                                 result.metrics.fallbacks,
                                 result.metrics.failed_splits,
                                 result.metrics.cache_hits,
                                 result.metrics.cache_bytes_saved,
                                 result.metrics.bytes_refetched_on_retry,
                                 result.metrics.splits_planned,
                                 result.metrics.splits_pruned,
                                 result.metrics.metadata_cache_errors};
  }
  return out;
}

TEST(ChaosMatrix, FaultedQueriesMatchReferenceWithExpectedSignature) {
  auto expectation = ChaosExpectationFor(g_chaos.profile);
  ASSERT_TRUE(expectation.ok()) << expectation.status();

  auto reference_bed =
      BuildBed(ChaosConfig{.profile = "none", .seed = g_chaos.seed});
  ASSERT_TRUE(reference_bed.ok()) << reference_bed.status();
  auto reference = RunAll(reference_bed->get());
  ASSERT_TRUE(reference.ok()) << reference.status();

  auto chaos_bed = BuildBed(g_chaos);
  ASSERT_TRUE(chaos_bed.ok()) << chaos_bed.status();
  auto faulted = RunAll(chaos_bed->get());
  ASSERT_TRUE(faulted.ok()) << faulted.status();

  for (const auto& [name, clean] : *reference) {
    const QueryFingerprint& dirty = (*faulted)[name];
    EXPECT_EQ(dirty.rows, clean.rows) << name << " rows diverged under "
                                      << g_chaos.profile;
    if (expectation->expect_fallbacks) {
      EXPECT_GT(dirty.fallbacks, 0u) << name;
      EXPECT_GT(dirty.failed_splits, 0u) << name;
    }
    if (expectation->expect_retries) {
      EXPECT_GT(dirty.retries, 0u) << name;
      EXPECT_EQ(dirty.fallbacks, 0u) << name << ": transient faults must "
                                     << "heal via retries, not fallbacks";
    }
    if (expectation->expect_cache_effects) {
      // Partial-result retention: retried range fetches re-request only
      // the ranges they lost, never the whole split.
      EXPECT_GT(dirty.bytes_refetched_on_retry, 0u) << name;
      EXPECT_LT(dirty.bytes_refetched_on_retry, dirty.bytes_from_storage)
          << name;
    }
    if (expectation->expect_stats_unavailable) {
      // Stats service down → planning degrades to the unpruned path:
      // every candidate split is planned, none pruned, and the exact
      // reference data movement is reproduced.
      EXPECT_EQ(dirty.splits_pruned, 0u) << name;
      EXPECT_EQ(dirty.splits_planned, clean.splits_planned) << name;
      EXPECT_EQ(dirty.bytes_from_storage, clean.bytes_from_storage) << name;
      EXPECT_EQ(dirty.fallbacks, 0u) << name << ": a stats outage must "
                                     << "never reach the data path";
    }
  }
  if (expectation->expect_stats_unavailable) {
    uint64_t total_errors = 0;
    for (const auto& [name, dirty] : *faulted) {
      total_errors += dirty.metadata_cache_errors;
    }
    EXPECT_GT(total_errors, 0u)
        << "stats-drop never exercised the metadata cache error path";
  }
  // The reference run itself must be fault-free.
  for (const auto& [name, clean] : *reference) {
    EXPECT_EQ(clean.fallbacks, 0u) << name;
    EXPECT_EQ(clean.failed_splits, 0u) << name;
    EXPECT_EQ(clean.retries, 0u) << name;
    EXPECT_EQ(clean.bytes_refetched_on_retry, 0u) << name;
  }
}

// For cache-enabled profiles: an identical repeat of a query on the
// faulted bed is answered from the split-result cache — bit-identical
// rows, a cache hit per split, and strictly fewer bytes moved.
TEST(ChaosMatrix, CachedRepeatScanServedFromCache) {
  auto expectation = ChaosExpectationFor(g_chaos.profile);
  ASSERT_TRUE(expectation.ok()) << expectation.status();
  if (!expectation->expect_cache_effects) {
    GTEST_SKIP() << "profile " << g_chaos.profile
                 << " does not enable connector caches";
  }

  auto bed = BuildBed(g_chaos);
  ASSERT_TRUE(bed.ok()) << bed.status();
  const std::string sql = ChaosQueries()[2].second;  // laghos

  auto cold = (*bed)->Run(sql, "ocs");
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = (*bed)->Run(sql, "ocs");
  ASSERT_TRUE(warm.ok()) << warm.status();

  EXPECT_EQ(Canonicalize(*warm->table), Canonicalize(*cold->table));
  EXPECT_GT(warm->metrics.cache_hits, 0u);
  EXPECT_GT(warm->metrics.cache_bytes_saved, 0u);
  EXPECT_LT(warm->metrics.bytes_from_storage,
            cold->metrics.bytes_from_storage);
}

TEST(ChaosMatrix, DeterministicReplay) {
  auto first_bed = BuildBed(g_chaos);
  ASSERT_TRUE(first_bed.ok()) << first_bed.status();
  auto first = RunAll(first_bed->get());
  ASSERT_TRUE(first.ok()) << first.status();

  auto second_bed = BuildBed(g_chaos);
  ASSERT_TRUE(second_bed.ok()) << second_bed.status();
  auto second = RunAll(second_bed->get());
  ASSERT_TRUE(second.ok()) << second.status();

  for (const auto& [name, fp] : *first) {
    const QueryFingerprint& replay = (*second)[name];
    EXPECT_EQ(replay.rows, fp.rows) << name;
    EXPECT_EQ(replay.bytes_from_storage, fp.bytes_from_storage) << name;
    EXPECT_EQ(replay.bytes_to_storage, fp.bytes_to_storage) << name;
    EXPECT_EQ(replay.rows_scanned, fp.rows_scanned) << name;
    EXPECT_EQ(replay.retries, fp.retries) << name;
    EXPECT_EQ(replay.fallbacks, fp.fallbacks) << name;
    EXPECT_EQ(replay.failed_splits, fp.failed_splits) << name;
    EXPECT_EQ(replay.cache_hits, fp.cache_hits) << name;
    EXPECT_EQ(replay.cache_bytes_saved, fp.cache_bytes_saved) << name;
    EXPECT_EQ(replay.bytes_refetched_on_retry, fp.bytes_refetched_on_retry)
        << name;
    EXPECT_EQ(replay.splits_planned, fp.splits_planned) << name;
    EXPECT_EQ(replay.splits_pruned, fp.splits_pruned) << name;
    EXPECT_EQ(replay.metadata_cache_errors, fp.metadata_cache_errors) << name;
  }
}

}  // namespace
}  // namespace pocs::workloads

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--profile=", 0) == 0) {
      pocs::workloads::g_chaos.profile = arg.substr(10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      pocs::workloads::g_chaos.seed = std::strtoull(arg.c_str() + 7,
                                                    nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
