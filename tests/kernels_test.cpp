// Equivalence tests for the vectorized kernels (DESIGN.md §15): every
// branch-light typed kernel is checked against a naive per-row reference
// over randomized seeded inputs — nulls, input selections (including
// empty), all-match / none-match literals — and the dictionary code-
// domain path is checked against full materialization at cardinalities
// 1, 255, and overflow-to-plain. The suite carries the `kernels` ctest
// label (run with `ctest -L kernels`, also under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "columnar/kernels.h"
#include "common/bloom.h"
#include "exec/plan_executor.h"
#include "format/encoding.h"
#include "format/parquet_lite.h"
#include "objectstore/object_store.h"
#include "ocs/client.h"
#include "ocs/storage_node.h"
#include "substrait/eval.h"

namespace pocs::columnar {
namespace {

using format::DecodeDictionaryPage;
using format::DecodePage;
using format::DictionaryPage;
using format::EncodePage;
using format::FilterDictCodes;
using format::MaterializeDictionary;
using format::MaterializeDictionarySelected;
using format::TranslateDictPredicate;

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe};

// ---- naive per-row references (the pre-vectorization semantics) -----------

template <typename T>
int Cmp3(T a, T b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

// Three-way compare of row i against the literal, with the same numeric
// promotion the typed kernels use (bool/int32/date32 widen to int64).
int NaiveCmp(const Column& col, size_t i, const Datum& lit) {
  switch (col.type()) {
    case TypeKind::kBool:
      return Cmp3<int64_t>(col.GetBool(i) ? 1 : 0, lit.AsInt64());
    case TypeKind::kInt32:
    case TypeKind::kDate32:
      return Cmp3<int64_t>(col.GetInt32(i), lit.AsInt64());
    case TypeKind::kInt64:
      return Cmp3<int64_t>(col.GetInt64(i), lit.AsInt64());
    case TypeKind::kFloat64:
      return Cmp3<double>(col.GetFloat64(i), lit.AsDouble());
    case TypeKind::kString: {
      const std::string_view v = col.GetString(i);
      const std::string& l = lit.string_value();
      return Cmp3<int>(v.compare(l), 0);
    }
  }
  return 0;
}

bool OpHolds(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

SelectionVector NaiveCompare(const Column& col, CompareOp op,
                             const Datum& lit,
                             const SelectionVector* input) {
  SelectionVector out;
  if (lit.is_null()) return out;
  auto test = [&](uint32_t i) {
    if (col.IsNull(i)) return;
    if (OpHolds(op, NaiveCmp(col, i, lit))) out.push_back(i);
  };
  if (input) {
    for (uint32_t i : *input) test(i);
  } else {
    for (uint32_t i = 0; i < col.length(); ++i) test(i);
  }
  return out;
}

SelectionVector NaiveBetween(const Column& col, const Datum& lo,
                             const Datum& hi, const SelectionVector* input) {
  SelectionVector out;
  if (lo.is_null() || hi.is_null()) return out;
  auto test = [&](uint32_t i) {
    if (col.IsNull(i)) return;
    if (NaiveCmp(col, i, lo) >= 0 && NaiveCmp(col, i, hi) <= 0) {
      out.push_back(i);
    }
  };
  if (input) {
    for (uint32_t i : *input) test(i);
  } else {
    for (uint32_t i = 0; i < col.length(); ++i) test(i);
  }
  return out;
}

ColumnPtr NaiveTake(const Column& col, const SelectionVector& sel) {
  auto out = MakeColumn(col.type());
  for (uint32_t i : sel) out->AppendFrom(col, i);
  return out;
}

void ExpectColumnsEqual(const Column& a, const Column& b) {
  ASSERT_EQ(a.type(), b.type());
  ASSERT_EQ(a.length(), b.length());
  ASSERT_EQ(a.null_count(), b.null_count());
  for (size_t i = 0; i < a.length(); ++i) {
    ASSERT_EQ(a.IsNull(i), b.IsNull(i)) << "row " << i;
    if (a.IsNull(i)) continue;
    ASSERT_EQ(a.GetDatum(i).ToString(), b.GetDatum(i).ToString())
        << "row " << i;
  }
}

// ---- randomized input generation ------------------------------------------

ColumnPtr RandomColumn(TypeKind type, size_t n, double null_prob,
                       std::mt19937_64* rng) {
  auto col = MakeColumn(type);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int64_t> ints(-50, 50);
  for (size_t i = 0; i < n; ++i) {
    if (unit(*rng) < null_prob) {
      col->AppendNull();
      continue;
    }
    switch (type) {
      case TypeKind::kBool: col->AppendBool(ints(*rng) > 0); break;
      case TypeKind::kInt32: col->AppendInt32(static_cast<int32_t>(ints(*rng))); break;
      case TypeKind::kDate32: col->AppendInt32(static_cast<int32_t>(ints(*rng))); break;
      case TypeKind::kInt64: col->AppendInt64(ints(*rng)); break;
      case TypeKind::kFloat64: col->AppendFloat64(ints(*rng) * 0.25); break;
      case TypeKind::kString:
        col->AppendString("v" + std::to_string(ints(*rng) + 50));
        break;
    }
  }
  return col;
}

Datum RandomLiteral(TypeKind type, std::mt19937_64* rng) {
  std::uniform_int_distribution<int64_t> ints(-50, 50);
  switch (type) {
    case TypeKind::kBool: return Datum::Bool(ints(*rng) > 0);
    case TypeKind::kInt32: return Datum::Int32(static_cast<int32_t>(ints(*rng)));
    case TypeKind::kDate32: return Datum::Date32(static_cast<int32_t>(ints(*rng)));
    case TypeKind::kInt64: return Datum::Int64(ints(*rng));
    case TypeKind::kFloat64: return Datum::Float64(ints(*rng) * 0.25);
    case TypeKind::kString:
      return Datum::String("v" + std::to_string(ints(*rng) + 50));
  }
  return Datum::Null(type);
}

SelectionVector RandomSelection(size_t n, double keep_prob,
                                std::mt19937_64* rng) {
  SelectionVector sel;
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    if (unit(*rng) < keep_prob) sel.push_back(static_cast<uint32_t>(i));
  }
  return sel;
}

constexpr TypeKind kAllTypes[] = {TypeKind::kBool,    TypeKind::kInt32,
                                  TypeKind::kInt64,   TypeKind::kFloat64,
                                  TypeKind::kDate32,  TypeKind::kString};

// ---- CompareScalar / Between ----------------------------------------------

TEST(CompareScalarTest, RandomizedEquivalence) {
  std::mt19937_64 rng(0xC0FFEE);
  for (TypeKind type : kAllTypes) {
    for (double null_prob : {0.0, 0.25}) {
      ColumnPtr col = RandomColumn(type, 257, null_prob, &rng);
      const SelectionVector some = RandomSelection(col->length(), 0.5, &rng);
      const SelectionVector empty;
      for (CompareOp op : kAllOps) {
        for (int trial = 0; trial < 4; ++trial) {
          const Datum lit = RandomLiteral(type, &rng);
          EXPECT_EQ(CompareScalar(*col, op, lit, nullptr),
                    NaiveCompare(*col, op, lit, nullptr));
          EXPECT_EQ(CompareScalar(*col, op, lit, &some),
                    NaiveCompare(*col, op, lit, &some));
          EXPECT_EQ(CompareScalar(*col, op, lit, &empty),
                    NaiveCompare(*col, op, lit, &empty));
        }
      }
    }
  }
}

TEST(CompareScalarTest, AllAndNoneMatch) {
  std::mt19937_64 rng(7);
  ColumnPtr col = RandomColumn(TypeKind::kInt64, 500, 0.0, &rng);
  // Values are in [-50, 50]: Lt 1000 keeps everything, Gt 1000 nothing.
  SelectionVector all = CompareScalar(*col, CompareOp::kLt,
                                      Datum::Int64(1000), nullptr);
  ASSERT_EQ(all.size(), col->length());
  for (uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  EXPECT_TRUE(CompareScalar(*col, CompareOp::kGt, Datum::Int64(1000), nullptr)
                  .empty());
}

TEST(CompareScalarTest, NullLiteralMatchesNothing) {
  std::mt19937_64 rng(11);
  for (TypeKind type : kAllTypes) {
    ColumnPtr col = RandomColumn(type, 64, 0.2, &rng);
    for (CompareOp op : kAllOps) {
      EXPECT_TRUE(
          CompareScalar(*col, op, Datum::Null(type), nullptr).empty());
    }
  }
}

TEST(BetweenTest, RandomizedEquivalence) {
  std::mt19937_64 rng(0xBEEF);
  for (TypeKind type : kAllTypes) {
    if (type == TypeKind::kBool) continue;  // degenerate bounds domain
    for (double null_prob : {0.0, 0.25}) {
      ColumnPtr col = RandomColumn(type, 311, null_prob, &rng);
      const SelectionVector some = RandomSelection(col->length(), 0.4, &rng);
      for (int trial = 0; trial < 8; ++trial) {
        Datum a = RandomLiteral(type, &rng);
        Datum b = RandomLiteral(type, &rng);
        // Both orders: lo > hi must select nothing, matching the naive
        // double-sided test.
        EXPECT_EQ(Between(*col, a, b, nullptr),
                  NaiveBetween(*col, a, b, nullptr));
        EXPECT_EQ(Between(*col, a, b, &some), NaiveBetween(*col, a, b, &some));
      }
      EXPECT_TRUE(Between(*col, Datum::Null(type), RandomLiteral(type, &rng),
                          nullptr)
                      .empty());
      EXPECT_TRUE(Between(*col, RandomLiteral(type, &rng), Datum::Null(type),
                          nullptr)
                      .empty());
    }
  }
}

// ---- Take / TakeBatch ------------------------------------------------------

TEST(TakeTest, RandomizedEquivalence) {
  std::mt19937_64 rng(0xACE);
  for (TypeKind type : kAllTypes) {
    for (double null_prob : {0.0, 0.3}) {
      ColumnPtr col = RandomColumn(type, 401, null_prob, &rng);
      for (double keep : {0.0, 0.1, 0.6, 1.0}) {
        SelectionVector sel = RandomSelection(col->length(), keep, &rng);
        ColumnPtr got = Take(*col, sel);
        ColumnPtr want = NaiveTake(*col, sel);
        ExpectColumnsEqual(*want, *got);
      }
    }
  }
}

TEST(TakeTest, ContiguousRunsAndSingletons) {
  auto col = MakeColumn(TypeKind::kInt64);
  for (int i = 0; i < 100; ++i) col->AppendInt64(i * 3);
  // A long run, a gap, a singleton, another run: exercises the
  // memcpy-per-run gather path's run detection.
  SelectionVector sel;
  for (uint32_t i = 10; i < 40; ++i) sel.push_back(i);
  sel.push_back(50);
  for (uint32_t i = 90; i < 100; ++i) sel.push_back(i);
  ExpectColumnsEqual(*NaiveTake(*col, sel), *Take(*col, sel));
}

TEST(TakeBatchTest, RandomizedEquivalence) {
  std::mt19937_64 rng(0xB00);
  auto schema = MakeSchema({{"a", TypeKind::kInt64},
                            {"s", TypeKind::kString},
                            {"f", TypeKind::kFloat64}});
  std::vector<ColumnPtr> cols = {RandomColumn(TypeKind::kInt64, 200, 0.1, &rng),
                                 RandomColumn(TypeKind::kString, 200, 0.1, &rng),
                                 RandomColumn(TypeKind::kFloat64, 200, 0.0, &rng)};
  auto batch = MakeBatch(schema, cols);
  SelectionVector sel = RandomSelection(200, 0.35, &rng);
  RecordBatchPtr taken = TakeBatch(*batch, sel);
  ASSERT_EQ(taken->num_rows(), sel.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    ExpectColumnsEqual(*NaiveTake(*cols[c], sel), *taken->column(c));
  }
}

// ---- HashRows --------------------------------------------------------------

TEST(HashRowsTest, EqualRowsHashEqual) {
  std::mt19937_64 rng(0x5EED);
  // Two key columns; rows duplicated (row i == row i + n).
  const size_t n = 128;
  auto k1 = RandomColumn(TypeKind::kInt64, n, 0.2, &rng);
  auto k2 = RandomColumn(TypeKind::kString, n, 0.2, &rng);
  auto d1 = MakeColumn(TypeKind::kInt64);
  auto d2 = MakeColumn(TypeKind::kString);
  for (size_t pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < n; ++i) {
      d1->AppendFrom(*k1, i);
      d2->AppendFrom(*k2, i);
    }
  }
  std::vector<uint64_t> hashes;
  HashRows({d1, d2}, &hashes);
  ASSERT_EQ(hashes.size(), 2 * n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hashes[i], hashes[i + n]) << "row " << i;
    EXPECT_TRUE(RowsEqual({d1, d2}, i, i + n));
  }
}

TEST(HashRowsTest, Deterministic) {
  std::mt19937_64 rng(0xD0);
  auto k = RandomColumn(TypeKind::kInt32, 333, 0.15, &rng);
  std::vector<uint64_t> a, b;
  HashRows({k}, &a);
  HashRows({k}, &b);
  EXPECT_EQ(a, b);
}

// ---- selection-aware FilterSelection / BloomSelectRows ---------------------

TEST(FilterSelectionTest, InputSelectionRestrictsOutput) {
  std::mt19937_64 rng(0xF1);
  auto schema = MakeSchema({{"v", TypeKind::kInt64}});
  auto col = RandomColumn(TypeKind::kInt64, 300, 0.2, &rng);
  auto batch = MakeBatch(schema, {col});
  substrait::Expression pred = substrait::Expression::Call(
      substrait::ScalarFunc::kGt,
      {substrait::Expression::FieldRef(0, TypeKind::kInt64),
       substrait::Expression::Literal(Datum::Int64(0))},
      TypeKind::kBool);

  auto full = substrait::FilterSelection(pred, *batch);
  ASSERT_TRUE(full.ok());
  auto full2 = substrait::FilterSelection(pred, *batch, nullptr);
  ASSERT_TRUE(full2.ok());
  EXPECT_EQ(*full, *full2);
  EXPECT_EQ(*full, NaiveCompare(*col, CompareOp::kGt, Datum::Int64(0),
                                nullptr));

  for (double keep : {0.0, 0.3, 1.0}) {
    SelectionVector input = RandomSelection(300, keep, &rng);
    auto restricted = substrait::FilterSelection(pred, *batch, &input);
    ASSERT_TRUE(restricted.ok());
    EXPECT_EQ(*restricted, NaiveCompare(*col, CompareOp::kGt,
                                        Datum::Int64(0), &input));
    // Invariant: output is a subset of the input selection.
    size_t j = 0;
    for (uint32_t r : *restricted) {
      while (j < input.size() && input[j] < r) ++j;
      ASSERT_TRUE(j < input.size() && input[j] == r);
    }
  }
}

TEST(BloomSelectRowsTest, NoFalseNegativesAndNullsDropped) {
  std::mt19937_64 rng(0xB10);
  auto col = RandomColumn(TypeKind::kInt64, 400, 0.2, &rng);
  BloomFilter bloom(1024, 3, 42);
  std::vector<bool> inserted(col->length(), false);
  for (size_t i = 0; i < col->length(); i += 3) {
    if (col->IsNull(i)) continue;
    bloom.Add(static_cast<uint64_t>(col->GetInt64(i)));
    inserted[i] = true;
  }
  SelectionVector sel = exec::BloomSelectRows(*col, bloom);
  std::vector<bool> selected(col->length(), false);
  for (uint32_t i : sel) {
    selected[i] = true;
    EXPECT_FALSE(col->IsNull(i)) << "null row " << i << " passed the bloom";
  }
  for (size_t i = 0; i < col->length(); ++i) {
    if (inserted[i]) {
      EXPECT_TRUE(selected[i]) << "false negative at " << i;
    }
  }
  // Non-integer key column: advisory filter keeps every row.
  auto scol = RandomColumn(TypeKind::kString, 50, 0.0, &rng);
  EXPECT_EQ(exec::BloomSelectRows(*scol, bloom).size(), scol->length());
}

// ---- dictionary code-domain path -------------------------------------------

// Encode `col` and decode the dictionary form, asserting it IS
// dictionary-encoded.
DictionaryPage MustDict(const Column& col) {
  const Field field{"s", TypeKind::kString};
  Bytes page = EncodePage(col, field);
  auto dict = DecodeDictionaryPage(page, field, col.length());
  EXPECT_TRUE(dict.ok()) << dict.status();
  EXPECT_TRUE(dict->has_value()) << "page unexpectedly plain";
  return std::move(**dict);
}

ColumnPtr DictColumn(size_t n, size_t cardinality, double null_prob,
                     std::mt19937_64* rng) {
  auto col = MakeColumn(TypeKind::kString);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<size_t> pick(0, cardinality - 1);
  for (size_t i = 0; i < n; ++i) {
    if (unit(*rng) < null_prob) {
      col->AppendNull();
    } else {
      col->AppendString("val_" + std::to_string(pick(*rng)));
    }
  }
  return col;
}

TEST(DictionaryKernelTest, MaterializeMatchesDecodePage) {
  std::mt19937_64 rng(0xD1C7);
  for (size_t cardinality : {size_t{1}, size_t{8}, size_t{255}}) {
    for (double null_prob : {0.0, 0.2}) {
      ColumnPtr col = DictColumn(600, cardinality, null_prob, &rng);
      const Field field{"s", TypeKind::kString};
      Bytes page = EncodePage(*col, field);
      auto dict = DecodeDictionaryPage(page, field, col->length());
      ASSERT_TRUE(dict.ok()) << dict.status();
      if (!dict->has_value()) continue;  // plain won the size contest
      auto full = DecodePage(page, field, col->length());
      ASSERT_TRUE(full.ok());
      ColumnPtr materialized = MaterializeDictionary(**dict);
      ExpectColumnsEqual(**full, *materialized);
      ExpectColumnsEqual(*col, *materialized);
    }
  }
}

TEST(DictionaryKernelTest, OverflowToPlain) {
  // >255 distinct values: the writer must fall back to plain encoding
  // and DecodeDictionaryPage must report nullopt.
  auto col = MakeColumn(TypeKind::kString);
  for (int i = 0; i < 400; ++i) {
    col->AppendString("unique_value_" + std::to_string(i));
  }
  const Field field{"s", TypeKind::kString};
  EXPECT_FALSE(format::DictionaryEncodeString(*col).has_value());
  Bytes page = EncodePage(*col, field);
  auto dict = DecodeDictionaryPage(page, field, col->length());
  ASSERT_TRUE(dict.ok());
  EXPECT_FALSE(dict->has_value());
  auto full = DecodePage(page, field, col->length());
  ASSERT_TRUE(full.ok());
  ExpectColumnsEqual(*col, **full);
}

TEST(DictionaryKernelTest, CodeDomainFilterMatchesCompareScalar) {
  std::mt19937_64 rng(0xF117);
  for (size_t cardinality : {size_t{1}, size_t{8}, size_t{255}}) {
    for (double null_prob : {0.0, 0.2}) {
      ColumnPtr col = DictColumn(500, cardinality, null_prob, &rng);
      DictionaryPage dict = MustDict(*col);
      const SelectionVector some = RandomSelection(col->length(), 0.5, &rng);
      const SelectionVector empty;
      for (CompareOp op : kAllOps) {
        for (const std::string& value :
             {std::string("val_0"), std::string("val_7"),
              std::string("zzz_absent"), std::string("")}) {
          const Datum lit = Datum::String(value);
          std::vector<uint8_t> match = TranslateDictPredicate(dict, op, lit);
          ASSERT_EQ(match.size(), 256u);
          EXPECT_EQ(FilterDictCodes(dict, match, nullptr),
                    CompareScalar(*col, op, lit, nullptr));
          EXPECT_EQ(FilterDictCodes(dict, match, &some),
                    CompareScalar(*col, op, lit, &some));
          EXPECT_TRUE(FilterDictCodes(dict, match, &empty).empty());
        }
        // NULL literal: all-zero match table, nothing selected.
        std::vector<uint8_t> none =
            TranslateDictPredicate(dict, op, Datum::Null(TypeKind::kString));
        EXPECT_TRUE(FilterDictCodes(dict, none, nullptr).empty());
      }
    }
  }
}

TEST(DictionaryKernelTest, SelectedMaterializationPreservesSurvivors) {
  std::mt19937_64 rng(0x1A7E);
  ColumnPtr col = DictColumn(300, 5, 0.15, &rng);
  DictionaryPage dict = MustDict(*col);
  for (double keep : {0.0, 0.3, 1.0}) {
    SelectionVector sel = RandomSelection(col->length(), keep, &rng);
    ColumnPtr partial = MaterializeDictionarySelected(dict, sel);
    ASSERT_EQ(partial->length(), col->length());
    ASSERT_EQ(partial->null_count(), col->null_count());
    size_t s = 0;
    for (size_t i = 0; i < col->length(); ++i) {
      ASSERT_EQ(partial->IsNull(i), col->IsNull(i)) << "row " << i;
      const bool is_selected = s < sel.size() && sel[s] == i;
      if (is_selected) ++s;
      if (col->IsNull(i)) continue;
      if (is_selected) {
        EXPECT_EQ(partial->GetString(i), col->GetString(i)) << "row " << i;
      } else {
        EXPECT_EQ(partial->GetString(i), "") << "placeholder row " << i;
      }
    }
    // Gathering the survivors out of the partial column must equal
    // gathering them out of the fully decoded column — the invariant the
    // executor's TakeBatch materialization relies on.
    ExpectColumnsEqual(*NaiveTake(*col, sel), *Take(*partial, sel));
  }
}

// ---- end-to-end: storage node with a string predicate ----------------------

columnar::SchemaPtr DictSchema() {
  return MakeSchema({{"id", TypeKind::kInt64},
                     {"flag", TypeKind::kString},
                     {"status", TypeKind::kString},
                     {"qty", TypeKind::kFloat64}});
}

// 1200 rows in 4 row groups; flag cycles R/A/N, status cycles O/F.
Bytes DictFile() {
  format::WriterOptions options;
  options.rows_per_group = 300;
  format::FileWriter writer(DictSchema(), options);
  auto id = MakeColumn(TypeKind::kInt64);
  auto flag = MakeColumn(TypeKind::kString);
  auto status = MakeColumn(TypeKind::kString);
  auto qty = MakeColumn(TypeKind::kFloat64);
  const char* flags[] = {"R", "A", "N"};
  const char* statuses[] = {"O", "F"};
  for (int i = 0; i < 1200; ++i) {
    id->AppendInt64(i);
    flag->AppendString(flags[i % 3]);
    status->AppendString(statuses[i % 2]);
    qty->AppendFloat64(static_cast<double>(i % 50));
  }
  auto batch = MakeBatch(DictSchema(), {id, flag, status, qty});
  EXPECT_TRUE(writer.WriteBatch(*batch).ok());
  auto file = writer.Finish();
  EXPECT_TRUE(file.ok());
  return *file;
}

TEST(StorageNodeDictTest, StringPredicateUsesCodeDomain) {
  auto store = std::make_shared<objectstore::ObjectStore>();
  ASSERT_TRUE(store->CreateBucket("d").ok());
  const Bytes file = DictFile();
  ASSERT_TRUE(store->Put("d", "f0", file).ok());
  ocs::StorageNode node(store, ocs::StorageNodeConfig{1.0});

  substrait::Plan plan;
  auto read = std::make_unique<substrait::Rel>();
  read->kind = substrait::RelKind::kRead;
  read->bucket = "d";
  read->object = "f0";
  read->base_schema = DictSchema();
  auto filter = std::make_unique<substrait::Rel>();
  filter->kind = substrait::RelKind::kFilter;
  filter->input = std::move(read);
  filter->predicate = substrait::Expression::Call(
      substrait::ScalarFunc::kAnd,
      {substrait::Expression::Call(
           substrait::ScalarFunc::kEq,
           {substrait::Expression::FieldRef(1, TypeKind::kString),
            substrait::Expression::Literal(Datum::String("R"))},
           TypeKind::kBool),
       substrait::Expression::Call(
           substrait::ScalarFunc::kLt,
           {substrait::Expression::FieldRef(3, TypeKind::kFloat64),
            substrait::Expression::Literal(Datum::Float64(25.0))},
           TypeKind::kBool)},
      TypeKind::kBool);
  plan.root = std::move(filter);

  auto result = node.ExecutePlan(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  // flag == 'R' keeps 1 in 3 rows; qty < 25 keeps half of those.
  EXPECT_EQ(result->stats.rows_scanned, 1200u);
  EXPECT_EQ(result->stats.rows_output, 200u);
  // The string conjunct must have run in the code domain, and the
  // surviving rows must have been late-materialized (flag and status are
  // both dictionary-encoded string columns).
  EXPECT_GT(result->stats.rows_dict_filtered, 0u);
  EXPECT_GT(result->stats.rows_late_materialized, 0u);

  // The answer must equal a full decode + naive filter of the same file.
  auto table = ocs::OcsClient::DecodeTable(*result);
  ASSERT_TRUE(table.ok());
  auto reader = format::FileReader::Open(file);
  ASSERT_TRUE(reader.ok());
  auto all = (*reader)->ReadAll();
  ASSERT_TRUE(all.ok());
  std::vector<std::string> want;
  for (const auto& b : (*all)->batches()) {
    for (size_t i = 0; i < b->num_rows(); ++i) {
      if (b->column(1)->GetString(i) == "R" &&
          b->column(3)->GetFloat64(i) < 25.0) {
        want.push_back(std::to_string(b->column(0)->GetInt64(i)) + "|" +
                       std::string(b->column(1)->GetString(i)) + "|" +
                       std::string(b->column(2)->GetString(i)) + "|" +
                       std::to_string(b->column(3)->GetFloat64(i)));
      }
    }
  }
  std::vector<std::string> got;
  for (const auto& b : (*table)->batches()) {
    for (size_t i = 0; i < b->num_rows(); ++i) {
      got.push_back(std::to_string(b->column(0)->GetInt64(i)) + "|" +
                    std::string(b->column(1)->GetString(i)) + "|" +
                    std::string(b->column(2)->GetString(i)) + "|" +
                    std::to_string(b->column(3)->GetFloat64(i)));
    }
  }
  EXPECT_EQ(want, got);

  // Partially materialized dictionary columns must never enter the
  // row-group cache; fully decoded non-string columns must.
  ASSERT_TRUE(node.rowgroup_cache() != nullptr);
  EXPECT_EQ(node.rowgroup_cache()->Lookup(
                ocs::RowGroupCacheKey{"d/f0", result->stats.object_version,
                                      0, 1}),
            nullptr);
  EXPECT_NE(node.rowgroup_cache()->Lookup(
                ocs::RowGroupCacheKey{"d/f0", result->stats.object_version,
                                      0, 3}),
            nullptr);
}

}  // namespace
}  // namespace pocs::columnar
