// Tests for the simulated network and the RPC layer on top of it.
#include <gtest/gtest.h>

#include <thread>

#include "netsim/network.h"
#include "rpc/rpc.h"

namespace pocs {
namespace {

TEST(NetworkTest, TransferTimeModel) {
  netsim::Network net(netsim::LinkConfig{1e9, 1e-3});
  auto a = net.AddNode("compute");
  auto b = net.AddNode("storage");
  // 1 GB/s + 1 ms latency: 1e9 bytes should take ~1.001 s.
  double t = net.Transfer(a, b, 1'000'000'000, 1);
  EXPECT_NEAR(t, 1.001, 1e-9);
}

TEST(NetworkTest, LocalTransferIsFree) {
  netsim::Network net;
  auto a = net.AddNode("n");
  EXPECT_EQ(net.Transfer(a, a, 1 << 30), 0.0);
  EXPECT_EQ(net.Total().bytes, 0u);
}

TEST(NetworkTest, CountersAccumulatePerFlow) {
  netsim::Network net;
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  auto c = net.AddNode("c");
  net.Transfer(a, b, 100);
  net.Transfer(b, a, 50);  // same undirected flow
  net.Transfer(a, c, 7);
  EXPECT_EQ(net.FlowBetween(a, b).bytes, 150u);
  EXPECT_EQ(net.FlowBetween(a, c).bytes, 7u);
  EXPECT_EQ(net.FlowBetween(b, c).bytes, 0u);
  EXPECT_EQ(net.Total().bytes, 157u);
  net.ResetCounters();
  EXPECT_EQ(net.Total().bytes, 0u);
}

TEST(NetworkTest, PerLinkOverride) {
  netsim::Network net(netsim::LinkConfig{1e9, 0});
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  auto c = net.AddNode("c");
  net.SetLink(a, c, netsim::LinkConfig{2e9, 0});
  EXPECT_NEAR(net.Transfer(a, b, 1e9, 0), 1.0, 1e-9);
  EXPECT_NEAR(net.Transfer(a, c, 1e9, 0), 0.5, 1e-9);
}

TEST(NetworkTest, TenGbEDefaults) {
  auto link = netsim::TenGbE();
  EXPECT_NEAR(link.bandwidth_bytes_per_sec, 1.25e9, 1);
}

TEST(NetworkTest, ConcurrentTransfersAreAccounted) {
  netsim::Network net;
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) net.Transfer(a, b, 10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(net.Total().bytes, 80000u);
  EXPECT_EQ(net.Total().messages, 8000u);
}

TEST(RpcTest, CallRoundtripChargesNetwork) {
  auto net = std::make_shared<netsim::Network>(netsim::LinkConfig{1e9, 0});
  auto client_node = net->AddNode("client");
  auto server_node = net->AddNode("server");
  auto server = std::make_shared<rpc::Server>(server_node, "echo-service");
  server->RegisterMethod("Echo", [](ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  rpc::Channel channel(net, client_node, server);

  Bytes req = {1, 2, 3, 4};
  auto result = channel.Call("Echo", ByteSpan(req.data(), req.size()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->response, req);
  EXPECT_EQ(result->request_bytes, 4u);
  EXPECT_EQ(result->response_bytes, 4u);
  EXPECT_EQ(net->Total().bytes, 8u);
  EXPECT_GT(result->transfer_seconds, 0.0);
}

TEST(RpcTest, UnknownMethodIsNotFound) {
  auto net = std::make_shared<netsim::Network>();
  auto c = net->AddNode("c");
  auto s = net->AddNode("s");
  auto server = std::make_shared<rpc::Server>(s, "svc");
  rpc::Channel channel(net, c, server);
  auto result = channel.Call("Nope", ByteSpan());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RpcTest, HandlerErrorPropagates) {
  auto net = std::make_shared<netsim::Network>();
  auto c = net->AddNode("c");
  auto s = net->AddNode("s");
  auto server = std::make_shared<rpc::Server>(s, "svc");
  server->RegisterMethod("Fail", [](ByteSpan) -> Result<Bytes> {
    return Status::Internal("boom");
  });
  rpc::Channel channel(net, c, server);
  auto result = channel.Call("Fail", ByteSpan());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "boom");
}

}  // namespace
}  // namespace pocs
