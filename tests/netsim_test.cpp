// Tests for the simulated network, fault injection, and the RPC layer on
// top of it.
#include <gtest/gtest.h>

#include <thread>

#include "netsim/fault_plan.h"
#include "netsim/network.h"
#include "rpc/rpc.h"

namespace pocs {
namespace {

TEST(NetworkTest, TransferTimeModel) {
  netsim::Network net(netsim::LinkConfig{1e9, 1e-3});
  auto a = net.AddNode("compute");
  auto b = net.AddNode("storage");
  // 1 GB/s + 1 ms latency: 1e9 bytes should take ~1.001 s.
  double t = *net.Transfer(a, b, 1'000'000'000, 1);
  EXPECT_NEAR(t, 1.001, 1e-9);
}

TEST(NetworkTest, LocalTransferIsFree) {
  netsim::Network net;
  auto a = net.AddNode("n");
  EXPECT_EQ(*net.Transfer(a, a, 1 << 30), 0.0);
  EXPECT_EQ(net.Total().bytes, 0u);
}

TEST(NetworkTest, CountersAccumulatePerFlow) {
  netsim::Network net;
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  auto c = net.AddNode("c");
  ASSERT_TRUE(net.Transfer(a, b, 100).ok());
  ASSERT_TRUE(net.Transfer(b, a, 50).ok());  // same undirected flow
  ASSERT_TRUE(net.Transfer(a, c, 7).ok());
  EXPECT_EQ(net.FlowBetween(a, b).bytes, 150u);
  EXPECT_EQ(net.FlowBetween(a, c).bytes, 7u);
  EXPECT_EQ(net.FlowBetween(b, c).bytes, 0u);
  EXPECT_EQ(net.Total().bytes, 157u);
  net.ResetCounters();
  EXPECT_EQ(net.Total().bytes, 0u);
}

TEST(NetworkTest, PerLinkOverride) {
  netsim::Network net(netsim::LinkConfig{1e9, 0});
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  auto c = net.AddNode("c");
  net.SetLink(a, c, netsim::LinkConfig{2e9, 0});
  EXPECT_NEAR(*net.Transfer(a, b, 1e9, 0), 1.0, 1e-9);
  EXPECT_NEAR(*net.Transfer(a, c, 1e9, 0), 0.5, 1e-9);
}

TEST(NetworkTest, TenGbEDefaults) {
  auto link = netsim::TenGbE();
  EXPECT_NEAR(link.bandwidth_bytes_per_sec, 1.25e9, 1);
}

TEST(NetworkTest, ConcurrentTransfersAreAccounted) {
  netsim::Network net;
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(net.Transfer(a, b, 10).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(net.Total().bytes, 80000u);
  EXPECT_EQ(net.Total().messages, 8000u);
}

TEST(FaultPlanTest, PartitionDropsUntilHealAttempt) {
  netsim::FaultPlan plan(/*seed=*/42);
  plan.AddRule(netsim::FaultPlan::Partition(0, 1, /*heal_at_attempt=*/2));
  EXPECT_TRUE(plan.Evaluate(0, 1, /*flow_id=*/9, /*attempt=*/0, 0).drop);
  EXPECT_TRUE(plan.Evaluate(1, 0, 9, 1, 0).drop);  // undirected
  EXPECT_FALSE(plan.Evaluate(0, 1, 9, 2, 0).drop);
  // Other pairs are out of scope.
  EXPECT_FALSE(plan.Evaluate(0, 2, 9, 0, 0).drop);
}

TEST(FaultPlanTest, FlakyIsDeterministicPureFunction) {
  netsim::FaultPlan plan(7);
  plan.AddRule(netsim::FaultPlan::Flaky(0.5));
  bool dropped = false;
  for (uint32_t attempt = 0; attempt < 64; ++attempt) {
    auto first = plan.Evaluate(0, 1, 123, attempt, 0);
    auto again = plan.Evaluate(0, 1, 123, attempt, 0);
    EXPECT_EQ(first.drop, again.drop);
    dropped |= first.drop;
  }
  EXPECT_TRUE(dropped);  // p=0.5 over 64 attempts: some must drop
  // A different seed re-rolls the decisions.
  netsim::FaultPlan other(8);
  other.AddRule(netsim::FaultPlan::Flaky(0.5));
  bool differs = false;
  for (uint32_t attempt = 0; attempt < 64; ++attempt) {
    differs |= other.Evaluate(0, 1, 123, attempt, 0).drop !=
               plan.Evaluate(0, 1, 123, attempt, 0).drop;
  }
  EXPECT_TRUE(differs);
}

TEST(NetworkTest, FaultPlanDropReturnsUnavailable) {
  netsim::Network net(netsim::LinkConfig{1e9, 0});
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  auto plan = std::make_shared<netsim::FaultPlan>(1);
  plan->AddRule(netsim::FaultPlan::Partition(a, b, /*heal_at_attempt=*/1));
  net.SetFaultPlan(plan);
  auto dropped = net.Transfer(a, b, 100);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(net.Total().bytes, 0u);  // dropped transfers charge nothing
  auto healed = net.Transfer(a, b, 100, 1, {.flow_id = 0, .attempt = 1});
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(net.Total().bytes, 100u);
  net.SetFaultPlan(nullptr);
  EXPECT_TRUE(net.Transfer(a, b, 100).ok());
}

TEST(NetworkTest, SlowLinksDegradeBandwidthAndAddLatency) {
  netsim::Network net(netsim::LinkConfig{1e9, 0});
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  auto plan = std::make_shared<netsim::FaultPlan>(1);
  plan->AddRule(netsim::FaultPlan::SlowLinks(0.5, 1.0));
  net.SetFaultPlan(plan);
  // 1e9 bytes at 0.5 GB/s effective + 1 s extra latency = 3 s.
  EXPECT_NEAR(*net.Transfer(a, b, 1e9, 0), 3.0, 1e-9);
}

TEST(NetworkTest, SimClockAccumulates) {
  netsim::Network net(netsim::LinkConfig{1e9, 0});
  auto a = net.AddNode("a");
  auto b = net.AddNode("b");
  ASSERT_TRUE(net.Transfer(a, b, 1e9, 0).ok());
  EXPECT_NEAR(net.SimNow(), 1.0, 1e-9);
  net.ResetCounters();
  EXPECT_NEAR(net.SimNow(), 1.0, 1e-9);  // a clock, not a stat
}

TEST(RpcTest, CallRoundtripChargesNetwork) {
  auto net = std::make_shared<netsim::Network>(netsim::LinkConfig{1e9, 0});
  auto client_node = net->AddNode("client");
  auto server_node = net->AddNode("server");
  auto server = std::make_shared<rpc::Server>(server_node, "echo-service");
  server->RegisterMethod("Echo", [](ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });
  rpc::Channel channel(net, client_node, server);

  Bytes req = {1, 2, 3, 4};
  auto result = channel.Call("Echo", ByteSpan(req.data(), req.size()));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->response, req);
  EXPECT_EQ(result->request_bytes, 4u);
  EXPECT_EQ(result->response_bytes, 4u);
  EXPECT_EQ(net->Total().bytes, 8u);
  EXPECT_GT(result->transfer_seconds, 0.0);
}

TEST(RpcTest, UnknownMethodIsNotFound) {
  auto net = std::make_shared<netsim::Network>();
  auto c = net->AddNode("c");
  auto s = net->AddNode("s");
  auto server = std::make_shared<rpc::Server>(s, "svc");
  rpc::Channel channel(net, c, server);
  auto result = channel.Call("Nope", ByteSpan());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RpcTest, HandlerErrorPropagates) {
  auto net = std::make_shared<netsim::Network>();
  auto c = net->AddNode("c");
  auto s = net->AddNode("s");
  auto server = std::make_shared<rpc::Server>(s, "svc");
  server->RegisterMethod("Fail", [](ByteSpan) -> Result<Bytes> {
    return Status::Internal("boom");
  });
  rpc::Channel channel(net, c, server);
  auto result = channel.Call("Fail", ByteSpan());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "boom");
}

}  // namespace
}  // namespace pocs
