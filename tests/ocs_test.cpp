// Tests for OCS: storage-node plan execution over Parquet-lite objects
// (with pruning and CPU-slowdown accounting), the frontend's routing, and
// end-to-end client → frontend → storage round trips with byte accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "format/parquet_lite.h"
#include "metastore/metastore.h"
#include "ocs/client.h"
#include "ocs/cluster.h"
#include "ocs/storage_node.h"

namespace pocs::ocs {
namespace {

using columnar::Datum;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;
using substrait::AggFunc;
using substrait::Expression;
using substrait::Plan;
using substrait::Rel;
using substrait::RelKind;
using substrait::ScalarFunc;

columnar::SchemaPtr SimSchema() {
  return MakeSchema({{"vertex_id", TypeKind::kInt64},
                     {"x", TypeKind::kFloat64},
                     {"e", TypeKind::kFloat64}});
}

// 1000 rows in 10 row groups: vertex_id = i, x = i * 0.01, e = 1000 - i.
Bytes SimFile() {
  format::WriterOptions options;
  options.rows_per_group = 100;
  format::FileWriter writer(SimSchema(), options);
  auto id = MakeColumn(TypeKind::kInt64);
  auto x = MakeColumn(TypeKind::kFloat64);
  auto e = MakeColumn(TypeKind::kFloat64);
  for (int i = 0; i < 1000; ++i) {
    id->AppendInt64(i);
    x->AppendFloat64(i * 0.01);
    e->AppendFloat64(1000.0 - i);
  }
  auto batch = MakeBatch(SimSchema(), {id, x, e});
  EXPECT_TRUE(writer.WriteBatch(*batch).ok());
  auto file = writer.Finish();
  EXPECT_TRUE(file.ok());
  return *file;
}

std::unique_ptr<Rel> ReadSim() {
  auto read = std::make_unique<Rel>();
  read->kind = RelKind::kRead;
  read->bucket = "sim";
  read->object = "f0";
  read->base_schema = SimSchema();
  return read;
}

Expression XBetween(double lo, double hi) {
  auto ge = Expression::Call(
      ScalarFunc::kGe,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(lo))},
      TypeKind::kBool);
  auto le = Expression::Call(
      ScalarFunc::kLe,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(hi))},
      TypeKind::kBool);
  return Expression::Call(ScalarFunc::kAnd, {ge, le}, TypeKind::kBool);
}

StorageNode MakeNode(double slowdown = 1.0) {
  auto store = std::make_shared<objectstore::ObjectStore>();
  EXPECT_TRUE(store->CreateBucket("sim").ok());
  EXPECT_TRUE(store->Put("sim", "f0", SimFile()).ok());
  return StorageNode(store, StorageNodeConfig{slowdown});
}

TEST(StorageNodeTest, FilterPlanWithPruning) {
  StorageNode node = MakeNode();
  Plan plan;
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadSim();
  filter->predicate = XBetween(2.0, 3.0);  // rows 200..300
  plan.root = std::move(filter);

  auto result = node.ExecutePlan(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.rows_output, 101u);
  // Only groups 2 and 3 overlap [2.0, 3.0]; 8 of 10 groups pruned.
  EXPECT_EQ(result->stats.row_groups_total, 10u);
  EXPECT_EQ(result->stats.row_groups_skipped, 8u);
  EXPECT_EQ(result->stats.rows_scanned, 200u);
  EXPECT_GT(result->stats.storage_compute_seconds, 0.0);

  auto table = OcsClient::DecodeTable(*result);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 101u);
}

TEST(StorageNodeTest, FullPushdownChainMatchesPaperShape) {
  // Filter -> Aggregate(min id, avg e by nothing...) use group by constant:
  // group by vertex_id % 10 via project first.
  StorageNode node = MakeNode();
  Plan plan;
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadSim();
  filter->predicate = XBetween(0.8, 3.2);

  auto project = std::make_unique<Rel>();
  project->kind = RelKind::kProject;
  project->input = std::move(filter);
  project->expressions = {
      Expression::Call(ScalarFunc::kModulo,
                       {Expression::FieldRef(0, TypeKind::kInt64),
                        Expression::Literal(Datum::Int64(7))},
                       TypeKind::kInt64),
      Expression::FieldRef(2, TypeKind::kFloat64)};
  project->output_names = {"g", "e"};

  auto agg = std::make_unique<Rel>();
  agg->kind = RelKind::kAggregate;
  agg->input = std::move(project);
  agg->group_keys = {0};
  agg->aggregates = {
      {AggFunc::kAvg, Expression::FieldRef(1, TypeKind::kFloat64), "avg_e"},
      {AggFunc::kCountStar, {}, "cnt"}};

  auto sort = std::make_unique<Rel>();
  sort->kind = RelKind::kSort;
  sort->input = std::move(agg);
  sort->sort_fields = {{1, true, true}};
  auto fetch = std::make_unique<Rel>();
  fetch->kind = RelKind::kFetch;
  fetch->input = std::move(sort);
  fetch->count = 3;
  plan.root = std::move(fetch);

  auto result = node.ExecutePlan(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.rows_output, 3u);
  auto table = OcsClient::DecodeTable(*result);
  ASSERT_TRUE(table.ok());
  auto combined = (*table)->Combine();
  ASSERT_EQ(combined->num_rows(), 3u);
  // Sorted ascending by avg_e.
  EXPECT_LE(combined->column(1)->GetFloat64(0),
            combined->column(1)->GetFloat64(1));
}

TEST(StorageNodeTest, CpuSlowdownScalesComputeTime) {
  StorageNode fast = MakeNode(1.0);
  StorageNode slow = MakeNode(10.0);
  // The reported compute time is wall-clock scaled by cpu_slowdown, so a
  // single sample is at the mercy of scheduler jitter (especially under
  // sanitizers with parallel test load). Take the minimum of several runs
  // of each before comparing.
  auto min_seconds = [](StorageNode& node) {
    double best = std::numeric_limits<double>::infinity();
    for (int i = 0; i < 5; ++i) {
      Plan plan;
      plan.root = ReadSim();
      auto result = node.ExecutePlan(plan);
      EXPECT_TRUE(result.ok()) << result.status();
      if (result.ok()) {
        best = std::min(best, result->stats.storage_compute_seconds);
      }
    }
    return best;
  };
  double fast_s = min_seconds(fast);
  double slow_s = min_seconds(slow);
  // Same work, 10x reported time (wall jitter tolerated with wide margin).
  EXPECT_GT(slow_s, fast_s * 2);
}

TEST(StorageNodeTest, MissingObjectErrors) {
  StorageNode node = MakeNode();
  Plan plan;
  plan.root = ReadSim();
  plan.root->object = "missing";
  EXPECT_FALSE(node.ExecutePlan(plan).ok());
}

TEST(StorageNodeTest, SchemaMismatchRejected) {
  StorageNode node = MakeNode();
  Plan plan;
  plan.root = ReadSim();
  plan.root->base_schema = MakeSchema({{"wrong", TypeKind::kInt64}});
  EXPECT_FALSE(node.ExecutePlan(plan).ok());
}

TEST(OcsResultWireTest, EncodeDecode) {
  OcsResult result;
  result.stats.rows_scanned = 100;
  result.stats.rows_output = 5;
  result.stats.object_bytes_read = 4096;
  result.stats.row_groups_total = 10;
  result.stats.row_groups_skipped = 8;
  result.stats.row_groups_lazy_skipped = 1;
  result.stats.cache_hits = 3;
  result.stats.cache_misses = 2;
  result.stats.cache_bytes_saved = 2048;
  result.stats.rows_dict_filtered = 42;
  result.stats.rows_late_materialized = 17;
  result.stats.object_version = 7;
  result.stats.storage_compute_seconds = 0.125;
  result.arrow_ipc = {1, 2, 3};
  BufferWriter w;
  EncodeOcsResult(result, &w);
  BufferReader r(w.span());
  auto rt = DecodeOcsResult(&r);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->stats.rows_scanned, 100u);
  EXPECT_EQ(rt->stats.row_groups_skipped, 8u);
  EXPECT_EQ(rt->stats.row_groups_lazy_skipped, 1u);
  EXPECT_EQ(rt->stats.cache_hits, 3u);
  EXPECT_EQ(rt->stats.cache_misses, 2u);
  EXPECT_EQ(rt->stats.cache_bytes_saved, 2048u);
  EXPECT_EQ(rt->stats.rows_dict_filtered, 42u);
  EXPECT_EQ(rt->stats.rows_late_materialized, 17u);
  EXPECT_EQ(rt->stats.object_version, 7u);
  EXPECT_DOUBLE_EQ(rt->stats.storage_compute_seconds, 0.125);
  EXPECT_EQ(rt->arrow_ipc, (Bytes{1, 2, 3}));
}

// ---- cluster --------------------------------------------------------------

struct ClusterFixture : ::testing::Test {
  void SetUp() override {
    net = std::make_shared<netsim::Network>(netsim::LinkConfig{1.25e9, 1e-4});
    ClusterConfig config;
    config.num_storage_nodes = 3;
    config.storage.cpu_slowdown = 1.0;
    cluster = std::make_unique<OcsCluster>(net, config);
    compute = net->AddNode("compute");
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          cluster->PutObject("sim", "f" + std::to_string(i), SimFile()).ok());
    }
    client = std::make_unique<OcsClient>(
        rpc::Channel(net, compute, cluster->frontend_server()));
  }
  std::shared_ptr<netsim::Network> net;
  std::unique_ptr<OcsCluster> cluster;
  netsim::NodeId compute;
  std::unique_ptr<OcsClient> client;
};

TEST_F(ClusterFixture, ObjectsSpreadAcrossNodes) {
  size_t nodes_with_data = 0;
  for (size_t i = 0; i < cluster->num_storage_nodes(); ++i) {
    if (cluster->storage_node(i).store()->ObjectCount() > 0) {
      ++nodes_with_data;
    }
  }
  EXPECT_EQ(nodes_with_data, 3u);  // round-robin over 3 nodes, 6 objects
  EXPECT_GT(cluster->TotalStoredBytes(), 0u);
}

TEST_F(ClusterFixture, ExecutePlanRoutesThroughFrontend) {
  for (int i = 0; i < 6; ++i) {
    Plan plan;
    auto filter = std::make_unique<Rel>();
    filter->kind = RelKind::kFilter;
    filter->input = ReadSim();
    filter->input->object = "f" + std::to_string(i);
    filter->predicate = XBetween(0.5, 0.6);
    plan.root = std::move(filter);
    objectstore::TransferInfo info;
    auto result = client->ExecutePlan(plan, &info);
    ASSERT_TRUE(result.ok()) << "object f" << i << ": " << result.status();
    EXPECT_EQ(result->stats.rows_output, 11u);
    EXPECT_GT(info.bytes_received, 0u);
  }
  // Traffic exists on compute↔frontend and frontend↔storage links.
  auto total = net->Total();
  EXPECT_GT(total.bytes, 0u);
  auto compute_frontend = net->FlowBetween(compute, cluster->frontend_node());
  EXPECT_GT(compute_frontend.bytes, 0u);
  // Frontend→storage forwarding doubles internal traffic.
  EXPECT_GT(total.bytes, compute_frontend.bytes);
}

TEST_F(ClusterFixture, AggregationPushdownMovesAlmostNothing) {
  net->ResetCounters();
  Plan plan;
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadSim();
  filter->input->object = "f0";
  filter->predicate = XBetween(0.0, 9.99);
  auto agg = std::make_unique<Rel>();
  agg->kind = RelKind::kAggregate;
  agg->input = std::move(filter);
  agg->aggregates = {
      {AggFunc::kAvg, Expression::FieldRef(2, TypeKind::kFloat64), "avg_e"},
      {AggFunc::kCountStar, {}, "cnt"}};
  plan.root = std::move(agg);

  auto result = client->ExecutePlan(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  auto table = OcsClient::DecodeTable(*result);
  ASSERT_TRUE(table.ok());
  auto combined = (*table)->Combine();
  ASSERT_EQ(combined->num_rows(), 1u);
  EXPECT_EQ(combined->column(1)->GetInt64(0), 1000);
  // The aggregate result crossing the wire is tiny vs the object.
  EXPECT_LT(net->Total().bytes, uint64_t{*cluster->storage_node(0).store()
                                               ->Size("sim", "f0")} /
                                    4);
}

TEST_F(ClusterFixture, FrontendProxiesObjectStoreMethods) {
  objectstore::StorageClient store_client(
      rpc::Channel(net, compute, cluster->frontend_server()));
  auto size = store_client.Size("sim", "f2");
  ASSERT_TRUE(size.ok()) << size.status();
  EXPECT_GT(*size, 0u);
  auto keys = store_client.List("sim", "f");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 6u);  // merged across storage nodes
  // Select through the frontend (filter-only path on the same data).
  objectstore::SelectRequest request;
  request.bucket = "sim";
  request.key = "f1";
  request.columns = {"vertex_id"};
  request.predicates = {
      {"x", columnar::CompareOp::kLt, Datum::Float64(0.05)}};
  auto response = store_client.Select(request);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->stats.rows_returned, 5u);
}

TEST_F(ClusterFixture, UnknownObjectNotFound) {
  Plan plan;
  plan.root = ReadSim();
  plan.root->object = "missing";
  EXPECT_FALSE(client->ExecutePlan(plan).ok());
}

}  // namespace
}  // namespace pocs::ocs
