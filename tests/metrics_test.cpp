// Metrics registry: correctness of counters/gauges/histograms, registry
// get-or-create semantics, JSON rendering, and — the part that matters
// under debug-tsan — concurrent updates from many threads, both through
// cached references and through fresh registry lookups.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "netsim/network.h"
#include "rpc/rpc.h"

namespace pocs::metrics {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddNegative) {
  Gauge g;
  g.Set(10);
  g.Add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(Histogram, SummaryStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_seconds(), 0.0);
  for (double s : {0.001, 0.002, 0.004, 0.008}) h.Record(s);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.total_seconds(), 0.015, 1e-9);
  EXPECT_NEAR(h.mean_seconds(), 0.015 / 4, 1e-9);
  EXPECT_NEAR(h.min_seconds(), 0.001, 1e-9);
  EXPECT_NEAR(h.max_seconds(), 0.008, 1e-9);
  // Quantiles are log2-bucket estimates (±~41%), and clamped to the
  // observed range.
  double p50 = h.QuantileSeconds(0.5);
  EXPECT_GE(p50, 0.001);
  EXPECT_LE(p50, 0.008);
  EXPECT_LE(h.QuantileSeconds(0.0), h.QuantileSeconds(1.0));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_seconds(), 0.0);
}

TEST(Histogram, QuantileAccuracyWithinBucketError) {
  Histogram h;
  // 1000 samples at exactly 1ms: every quantile must estimate 1ms within
  // one log2 bucket (x in [lo, 2*lo) → midpoint 1.5*lo → ±50% worst case).
  for (int i = 0; i < 1000; ++i) h.Record(1e-3);
  for (double q : {0.5, 0.95, 0.99}) {
    double est = h.QuantileSeconds(q);
    EXPECT_GE(est, 0.5e-3) << "q=" << q;
    EXPECT_LE(est, 2e-3) << "q=" << q;
  }
}

TEST(Registry, GetOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.GetCounter("x");
  Counter& b = reg.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.value(), 7u);
  // Distinct names, distinct metrics.
  EXPECT_NE(&reg.GetCounter("y"), &a);
}

TEST(Registry, SnapshotSortedAndTyped) {
  Registry reg;
  reg.GetCounter("b.count").Add(3);
  reg.GetGauge("a.depth").Set(-2);
  reg.GetHistogram("c.lat").Record(0.5);
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "a.depth");
  EXPECT_EQ(samples[0].kind, MetricKind::kGauge);
  EXPECT_EQ(samples[0].value, -2);
  EXPECT_EQ(samples[1].name, "b.count");
  EXPECT_EQ(samples[1].kind, MetricKind::kCounter);
  EXPECT_EQ(samples[1].value, 3);
  EXPECT_EQ(samples[2].name, "c.lat");
  EXPECT_EQ(samples[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(samples[2].value, 1);  // histogram sample count
  EXPECT_NEAR(samples[2].sum, 0.5, 1e-9);
}

TEST(Registry, ToJsonContainsMetrics) {
  Registry reg;
  reg.GetCounter("rows").Add(12);
  reg.GetHistogram("lat").Record(0.25);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("12"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

TEST(Registry, ResetAllZeroesButKeepsReferences) {
  Registry reg;
  Counter& c = reg.GetCounter("n");
  c.Add(5);
  Histogram& h = reg.GetHistogram("t");
  h.Record(1.0);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.Increment();  // references stay live after reset
  EXPECT_EQ(reg.GetCounter("n").value(), 1u);
}

TEST(Registry, DefaultIsProcessWide) {
  Counter& a = Registry::Default().GetCounter("metrics_test.default_probe");
  Counter& b = Registry::Default().GetCounter("metrics_test.default_probe");
  EXPECT_EQ(&a, &b);
}

// Regression test: rpc.calls / rpc.request_bytes used to be recorded only
// after a successful dispatch, so failed calls vanished from the request
// side of the ledger. They must be counted per attempt, before dispatch —
// a failed call still put its request on the wire — and every failed
// attempt must show up in rpc.failed_calls.
TEST(RpcMetrics, FailedCallsStillCountRequestSideMetrics) {
  auto net = std::make_shared<pocs::netsim::Network>();
  auto client = net->AddNode("client");
  auto server_node = net->AddNode("server");
  auto server = std::make_shared<pocs::rpc::Server>(server_node, "svc");
  server->RegisterMethod("Flaky", [](pocs::ByteSpan) -> pocs::Result<pocs::Bytes> {
    return pocs::Status::Unavailable("induced");
  });
  pocs::rpc::Channel channel(net, client, server);

  auto& reg = Registry::Default();
  const uint64_t calls0 = reg.GetCounter("rpc.calls").value();
  const uint64_t req0 = reg.GetCounter("rpc.request_bytes").value();
  const uint64_t resp0 = reg.GetCounter("rpc.response_bytes").value();
  const uint64_t failed0 = reg.GetCounter("rpc.failed_calls").value();
  const uint64_t retries0 = reg.GetCounter("rpc.retries").value();

  pocs::Bytes request = {1, 2, 3, 4, 5};
  pocs::rpc::CallOptions options;
  options.max_attempts = 3;
  options.backoff_base_seconds = 0;  // no modelled waiting in this test
  auto result = channel.Call(
      "Flaky", pocs::ByteSpan(request.data(), request.size()), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), pocs::StatusCode::kUnavailable);

  // All three attempts hit the wire: each counts a call + request bytes.
  EXPECT_EQ(reg.GetCounter("rpc.calls").value() - calls0, 3u);
  EXPECT_EQ(reg.GetCounter("rpc.request_bytes").value() - req0,
            3u * request.size());
  EXPECT_EQ(reg.GetCounter("rpc.failed_calls").value() - failed0, 3u);
  EXPECT_EQ(reg.GetCounter("rpc.retries").value() - retries0, 2u);
  // Nothing ever came back.
  EXPECT_EQ(reg.GetCounter("rpc.response_bytes").value() - resp0, 0u);
}

// The TSan target: hammer one counter, one gauge, and one histogram from
// many threads, half through cached references and half through fresh
// name lookups (exercising the registry mutex against the lock-free
// updates).
TEST(MetricsConcurrency, ParallelUpdatesAreExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Counter& counter = reg.GetCounter("stress.counter");
  Histogram& hist = reg.GetHistogram("stress.hist");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &counter, &hist, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          counter.Increment();
          hist.RecordNanos(static_cast<uint64_t>(i % 1000) + 1);
        } else {
          reg.GetCounter("stress.counter").Increment();
          reg.GetHistogram("stress.hist").Record(1e-6);
        }
        reg.GetGauge("stress.gauge").Set(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kIters);
  // Min/max survive the CAS races.
  EXPECT_GT(hist.max_seconds(), 0.0);
  EXPECT_GT(hist.min_seconds(), 0.0);
}

// Snapshots taken while writers are active must be internally sane
// (never torn below zero or above the final value).
TEST(MetricsConcurrency, SnapshotDuringWrites) {
  Registry reg;
  constexpr int kWriters = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("live.rows").Add(2);
        reg.GetHistogram("live.lat").Record(1e-7);
      }
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    for (const MetricSample& s : reg.Snapshot()) {
      if (s.name == "live.rows") {
        auto v = static_cast<uint64_t>(s.value);
        EXPECT_GE(v, last);  // counters are monotone
        EXPECT_LE(v, static_cast<uint64_t>(kWriters) * kIters * 2);
        last = v;
      }
    }
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(reg.GetCounter("live.rows").value(),
            static_cast<uint64_t>(kWriters) * kIters * 2);
}

}  // namespace
}  // namespace pocs::metrics
