// Admission-control unit tests (`ctest -L concurrency`): weighted fair
// ordering under a deterministic arrival schedule, queue-full rejection,
// per-group and global concurrency bounds, bounded in-flight splits, and
// a TSan-hunted concurrent admit/release stress.
#include "engine/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace pocs::engine {
namespace {

AdmissionConfig TwoGroupConfig(uint32_t global_max_concurrent) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent = global_max_concurrent;
  config.groups = {
      {.name = "A", .weight = 3, .max_concurrent = 16, .max_queued = 0},
      {.name = "B", .weight = 1, .max_concurrent = 16, .max_queued = 0},
  };
  return config;
}

uint64_t AdmittedFor(const AdmissionController& controller,
                     const std::string& tenant) {
  for (const auto& g : controller.snapshot().groups) {
    if (g.tenant == tenant) return g.admitted;
  }
  return 0;
}

// With one global slot, grants are strictly sequential, so the WFQ pick
// order is observable through per-group admitted counts after each
// release. A(weight 3)×8 and B(weight 1)×4 enqueued while paused must be
// granted A B A A A B A A A B A B — the smallest admitted/weight wins,
// ties to the lexicographically first group.
TEST(AdmissionController, WeightedFairOrder) {
  AdmissionController controller(TwoGroupConfig(/*global_max_concurrent=*/1));
  controller.SetPaused(true);

  std::vector<std::shared_ptr<AdmissionTicket>> a_tickets, b_tickets;
  for (int i = 0; i < 8; ++i) {
    auto t = controller.Enqueue("A");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    a_tickets.push_back(*std::move(t));
  }
  for (int i = 0; i < 4; ++i) {
    auto t = controller.Enqueue("B");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    b_tickets.push_back(*std::move(t));
  }
  ASSERT_EQ(controller.snapshot().admitted, 0u);  // paused: nothing granted

  controller.SetPaused(false);
  const std::string expected = "ABAAABAAABAB";
  size_t next_a = 0, next_b = 0;
  for (size_t step = 0; step < expected.size(); ++step) {
    uint64_t want_a = 0, want_b = 0;
    for (size_t i = 0; i <= step; ++i) {
      (expected[i] == 'A' ? want_a : want_b) += 1;
    }
    ASSERT_EQ(AdmittedFor(controller, "A"), want_a) << "step " << step;
    ASSERT_EQ(AdmittedFor(controller, "B"), want_b) << "step " << step;
    // Release the just-granted ticket (FIFO within its group) so the
    // next grant fires.
    auto& granted = expected[step] == 'A' ? a_tickets[next_a++]
                                          : b_tickets[next_b++];
    granted->Wait();  // returns immediately: it holds the slot
    EXPECT_GE(granted->queue_wait_seconds(), 0.0);
    granted->Release();
  }

  const auto snap = controller.snapshot();
  EXPECT_EQ(snap.queued, 12u);
  EXPECT_EQ(snap.admitted, 12u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.running, 0u);
  EXPECT_EQ(snap.waiting, 0u);
}

TEST(AdmissionController, QueueFullRejectsWithUnavailable) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent = 8;
  config.groups = {
      {.name = "T", .weight = 1, .max_concurrent = 4, .max_queued = 2}};
  AdmissionController controller(config);
  controller.SetPaused(true);  // keep arrivals waiting so the queue fills

  std::vector<std::shared_ptr<AdmissionTicket>> accepted;
  for (int i = 0; i < 4; ++i) {
    auto t = controller.Enqueue("T");
    if (i < 2) {
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      accepted.push_back(*std::move(t));
    } else {
      ASSERT_FALSE(t.ok());
      EXPECT_EQ(t.status().code(), StatusCode::kUnavailable);
    }
  }
  auto snap = controller.snapshot();
  EXPECT_EQ(snap.queued, 2u);
  EXPECT_EQ(snap.rejected, 2u);
  EXPECT_EQ(snap.waiting, 2u);

  controller.SetPaused(false);
  for (auto& t : accepted) {
    t->Wait();
    t->Release();
  }
  snap = controller.snapshot();
  EXPECT_EQ(snap.admitted, 2u);
  EXPECT_EQ(snap.running, 0u);
}

TEST(AdmissionController, PerGroupAndGlobalConcurrencyBounds) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent = 2;  // global
  config.groups = {
      {.name = "solo", .weight = 1, .max_concurrent = 1, .max_queued = 0},
      {.name = "wide", .weight = 1, .max_concurrent = 4, .max_queued = 0}};
  AdmissionController controller(config);
  controller.SetPaused(true);

  std::vector<std::shared_ptr<AdmissionTicket>> solo, wide;
  for (int i = 0; i < 3; ++i) solo.push_back(*controller.Enqueue("solo"));
  for (int i = 0; i < 3; ++i) wide.push_back(*controller.Enqueue("wide"));
  controller.SetPaused(false);

  // Per-group cap holds "solo" to 1 running; the global cap of 2 lets
  // "wide" take exactly one more despite its headroom of 4.
  auto snap = controller.snapshot();
  EXPECT_EQ(snap.running, 2u);
  EXPECT_EQ(AdmittedFor(controller, "solo"), 1u);
  EXPECT_EQ(AdmittedFor(controller, "wide"), 1u);

  solo[0]->Wait();
  solo[0]->Release();  // frees solo's slot: its next query runs
  snap = controller.snapshot();
  EXPECT_EQ(snap.running, 2u);
  EXPECT_EQ(AdmittedFor(controller, "solo"), 2u);

  // Releasing solo[2] abandons it while still waiting (global cap keeps
  // it queued behind wide's backlog), so only 5 of 6 are ever admitted.
  for (auto& t : solo) t->Release();
  for (auto& t : wide) t->Release();
  snap = controller.snapshot();
  EXPECT_EQ(snap.running, 0u);
  EXPECT_EQ(snap.waiting, 0u);
  EXPECT_EQ(snap.admitted, 5u);
}

TEST(AdmissionController, ReleasingUngrantedTicketLeavesQueue) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent = 1;
  AdmissionController controller(config);
  controller.SetPaused(true);
  auto first = *controller.Enqueue("default");
  auto second = *controller.Enqueue("default");
  second->Release();  // abandon while still waiting
  controller.SetPaused(false);
  first->Wait();
  first->Release();
  const auto snap = controller.snapshot();
  EXPECT_EQ(snap.admitted, 1u);
  EXPECT_EQ(snap.waiting, 0u);
  EXPECT_EQ(snap.running, 0u);
}

TEST(AdmissionController, UnknownTenantGetsDefaultGroup) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent = 8;
  config.defaults = {.name = "", .weight = 1, .max_concurrent = 4,
                     .max_queued = 1};
  AdmissionController controller(config);
  controller.SetPaused(true);
  ASSERT_TRUE(controller.Enqueue("newcomer").ok());
  auto overflow = controller.Enqueue("newcomer");  // defaults.max_queued = 1
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);
  controller.SetPaused(false);
}

TEST(SplitThrottle, BoundsConcurrentPermits) {
  constexpr size_t kCap = 2;
  SplitThrottle throttle(kCap);
  std::atomic<int> inflight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 8; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        SplitThrottle::Permit permit = throttle.Acquire();
        const int now = inflight.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        inflight.fetch_sub(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_LE(max_seen.load(), static_cast<int>(kCap));
  EXPECT_GT(max_seen.load(), 0);
}

TEST(SplitThrottle, ZeroMeansUnbounded) {
  SplitThrottle throttle(0);
  auto a = throttle.Acquire();
  auto b = throttle.Acquire();
  auto c = throttle.Acquire();  // would deadlock if a cap applied
}

// TSan target: many threads enqueue/wait/release against one controller
// while another thread toggles pause and polls snapshots. Correctness
// claim at the end: nothing is left running or waiting, and everything
// accepted was admitted exactly once.
TEST(AdmissionController, ConcurrentAdmitReleaseStress) {
  AdmissionConfig config;
  config.enabled = true;
  config.max_concurrent = 4;
  config.groups = {
      {.name = "A", .weight = 3, .max_concurrent = 3, .max_queued = 0},
      {.name = "B", .weight = 1, .max_concurrent = 2, .max_queued = 0},
  };
  AdmissionController controller(config);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&controller, &accepted, w] {
      const std::string tenant = (w % 2 == 0) ? "A" : "B";
      for (int i = 0; i < kPerThread; ++i) {
        auto ticket = controller.Enqueue(tenant);
        if (!ticket.ok()) continue;  // unbounded queues: not expected
        accepted.fetch_add(1);
        (*ticket)->Wait();
        (*ticket)->Release();
      }
    });
  }
  std::thread observer([&controller] {
    for (int i = 0; i < 50; ++i) {
      const auto snap = controller.snapshot();
      EXPECT_LE(snap.running, 4u);
      std::this_thread::yield();
    }
  });
  for (auto& t : workers) t.join();
  observer.join();

  const auto snap = controller.snapshot();
  EXPECT_EQ(snap.queued, accepted.load());
  EXPECT_EQ(snap.admitted, accepted.load());
  EXPECT_EQ(snap.queued, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.running, 0u);
  EXPECT_EQ(snap.waiting, 0u);
}

}  // namespace
}  // namespace pocs::engine
