// Concurrency stress tests — built to give TSan something to bite on.
// Run under the debug-tsan preset in CI; they hammer the ThreadPool, RPC
// dispatch, the simulated network, and the OCS cluster's placement
// registry from many threads at once.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "netsim/network.h"
#include "ocs/cluster.h"
#include "rpc/rpc.h"

namespace pocs {
namespace {

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolStress, ManyProducersManyTasks) {
  ThreadPool pool(8);
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kTasksPerProducer);
      for (int t = 0; t < kTasksPerProducer; ++t) {
        futures[p].push_back(pool.Submit([&executed, t] {
          executed.fetch_add(1, std::memory_order_relaxed);
          return t;
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    for (int t = 0; t < kTasksPerProducer; ++t) {
      EXPECT_EQ(futures[p][t].get(), t);
    }
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStress, NestedParallelForFromSubmitters) {
  // ParallelFor invoked concurrently from multiple client threads; each
  // iteration touches its own slot so the only sharing is the pool itself.
  ThreadPool pool(4);
  constexpr int kClients = 6;
  constexpr size_t kN = 64;
  std::vector<std::vector<int>> slots(kClients, std::vector<int>(kN, 0));

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      pool.ParallelFor(kN, [&, c](size_t i) { slots[c][i] = 1; });
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& row : slots) {
    for (int v : row) EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPoolStress, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(32, [&](size_t i) {
      ran.fetch_add(1);
      if (i % 7 == 3) throw std::runtime_error("task failed");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
  // All 32 iterations must have run before the rethrow: none may outlive
  // the ParallelFor call that owns their captured state.
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolStress, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      (void)pool.Submit([&executed] { executed.fetch_add(1); });
    }
    pool.Shutdown();
    EXPECT_EQ(executed.load(), 200);  // drained before join returned
    EXPECT_TRUE(pool.stopped());
  }
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPoolDeathTest, SubmitAfterShutdownChecks) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_DEATH((void)pool.Submit([] { return 1; }),
               "Submit after Shutdown");
}

// ---- RPC dispatch ----------------------------------------------------------

TEST(RpcStress, ConcurrentDispatchAndRegistration) {
  auto net = std::make_shared<netsim::Network>();
  netsim::NodeId server_node = net->AddNode("server");
  auto server = std::make_shared<rpc::Server>(server_node, "svc");
  server->RegisterMethod("echo", [](ByteSpan req) -> Result<Bytes> {
    return Bytes(req.begin(), req.end());
  });

  constexpr int kCallers = 8;
  constexpr int kCallsEach = 300;
  std::atomic<int> ok_calls{0};
  std::atomic<int> not_found{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kCallers; ++c) {
    threads.emplace_back([&, c] {
      netsim::NodeId client_node =
          net->AddNode("client-" + std::to_string(c));
      rpc::Channel channel(net, client_node, server);
      Bytes payload{static_cast<uint8_t>(c), 1, 2, 3};
      for (int i = 0; i < kCallsEach; ++i) {
        // Mix known and unknown methods so the dispatch map is probed for
        // hits and misses while another thread mutates it.
        const bool miss = (i % 5 == 0);
        auto result = channel.Call(miss ? "late" : "echo",
                                   ByteSpan(payload.data(), payload.size()));
        if (result.ok()) {
          ok_calls.fetch_add(1);
        } else if (result.status().code() == StatusCode::kNotFound) {
          not_found.fetch_add(1);
        } else {
          ADD_FAILURE() << result.status().ToString();
        }
      }
    });
  }
  // Concurrently register new methods while calls are in flight.
  std::thread registrar([&] {
    for (int i = 0; i < 50; ++i) {
      server->RegisterMethod("method-" + std::to_string(i),
                             [](ByteSpan) -> Result<Bytes> { return Bytes{}; });
      std::this_thread::yield();
    }
    server->RegisterMethod("late", [](ByteSpan) -> Result<Bytes> {
      return Bytes{42};
    });
  });
  for (auto& t : threads) t.join();
  registrar.join();
  EXPECT_EQ(ok_calls.load() + not_found.load(), kCallers * kCallsEach);
}

TEST(NetworkStress, ConcurrentTransfersAndNodeAdds) {
  auto net = std::make_shared<netsim::Network>();
  netsim::NodeId a = net->AddNode("a");
  netsim::NodeId b = net->AddNode("b");

  constexpr int kThreads = 8;
  constexpr int kTransfersEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTransfersEach; ++i) {
        ASSERT_TRUE(net->Transfer(a, b, 1000).ok());
        if (i % 100 == 0) {
          net->AddNode("extra-" + std::to_string(t) + "-" +
                       std::to_string(i));
          EXPECT_EQ(net->NodeName(a), "a");
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  netsim::FlowStats flow = net->FlowBetween(a, b);
  EXPECT_EQ(flow.bytes,
            uint64_t{kThreads} * kTransfersEach * 1000);
  EXPECT_EQ(flow.messages, uint64_t{kThreads} * kTransfersEach);
}

// ---- OCS cluster -----------------------------------------------------------

TEST(OcsClusterStress, ConcurrentPutAndForwardedGet) {
  auto net = std::make_shared<netsim::Network>();
  ocs::ClusterConfig config;
  config.num_storage_nodes = 4;
  ocs::OcsCluster cluster(net, config);

  constexpr int kThreads = 8;
  constexpr int kObjectsEach = 50;

  // Phase 1: concurrent ingest through the placement registry.
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kObjectsEach; ++i) {
        std::string key =
            "obj-" + std::to_string(t) + "-" + std::to_string(i);
        Bytes data(128, static_cast<uint8_t>(t));
        ASSERT_TRUE(cluster.PutObject("bucket", key, std::move(data)).ok());
      }
    });
  }
  for (auto& t : writers) t.join();

  // Phase 2: concurrent reads through the frontend's Get proxy.
  netsim::NodeId client = net->AddNode("compute");
  rpc::Channel channel(net, client, cluster.frontend_server());
  std::vector<std::thread> readers;
  std::atomic<int> hits{0};
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kObjectsEach; ++i) {
        std::string key =
            "obj-" + std::to_string(t) + "-" + std::to_string(i);
        BufferWriter req;
        req.WriteString("bucket");
        req.WriteString(key);
        auto result = channel.Call("Get", req.span());
        if (result.ok()) hits.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(hits.load(), kThreads * kObjectsEach);
  EXPECT_GT(cluster.TotalStoredBytes(), 0u);
}

}  // namespace
}  // namespace pocs
