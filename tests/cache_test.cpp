// Tests for the multi-level caching layer (DESIGN.md §10): the sharded
// byte-budgeted LRU primitive (including concurrent use — run under TSan
// in CI), the storage node's decoded row-group cache (hit/miss/byte
// accounting, PUT-overwrite invalidation, warmers, the lazy-column fast
// path), and the connector's split-result cache (repeat scans served
// without a data RPC, version validation against overwrites).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lru_cache.h"
#include "common/thread_pool.h"
#include "format/parquet_lite.h"
#include "ocs/client.h"
#include "ocs/storage_node.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

namespace pocs {
namespace {

using columnar::Datum;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;
using ocs::OcsClient;
using ocs::StorageNode;
using ocs::StorageNodeConfig;
using substrait::Expression;
using substrait::Plan;
using substrait::Rel;
using substrait::RelKind;
using substrait::ScalarFunc;

// ---- LRU primitive --------------------------------------------------------

using StringCache = ShardedLruCache<std::string, std::string>;

LruCacheConfig Cfg(uint64_t byte_budget, size_t shards) {
  LruCacheConfig config;
  config.byte_budget = byte_budget;
  config.shards = shards;
  return config;
}

std::shared_ptr<const std::string> Val(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruCacheTest, HitMissAndLruEviction) {
  // One shard so eviction order is the plain LRU order.
  StringCache cache(Cfg(100, 1));
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup("a"), nullptr);

  cache.Insert("a", Val("va"), 40);
  cache.Insert("b", Val("vb"), 40);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // "a" becomes MRU
  cache.Insert("c", Val("vc"), 40);       // evicts "b", the LRU entry

  EXPECT_EQ(cache.Lookup("b"), nullptr);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*cache.Lookup("a"), "va");
  ASSERT_NE(cache.Lookup("c"), nullptr);

  auto stats = cache.stats();
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 80u);
}

TEST(LruCacheTest, OversizedEntryNotAdmitted) {
  StringCache cache(Cfg(100, 1));
  cache.Insert("big", Val("x"), 101);
  EXPECT_EQ(cache.Lookup("big"), nullptr);
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruCacheTest, ZeroBudgetDisablesEverything) {
  StringCache cache(Cfg(0, 1));
  EXPECT_FALSE(cache.enabled());
  cache.Insert("a", Val("va"), 1);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(LruCacheTest, ReplaceRechargesBytes) {
  StringCache cache(Cfg(100, 1));
  cache.Insert("a", Val("v1"), 30);
  cache.Insert("a", Val("v2"), 50);
  EXPECT_EQ(cache.stats().bytes, 50u);
  EXPECT_EQ(cache.stats().entries, 1u);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*cache.Lookup("a"), "v2");
}

TEST(LruCacheTest, EraseAndClear) {
  StringCache cache(Cfg(100, 2));
  cache.Insert("a", Val("va"), 10);
  cache.Insert("b", Val("vb"), 10);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(LruCacheTest, ConcurrentHitMissInsert) {
  // Hammer a small keyspace from many threads; TSan (CI) checks the
  // locking, the final stats check the counters' consistency.
  ShardedLruCache<uint64_t, uint64_t> cache(Cfg(1 << 16, 4));
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 4000;
  constexpr uint64_t kKeys = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = (i * 31 + static_cast<uint64_t>(t)) % kKeys;
        if (auto hit = cache.Lookup(key)) {
          EXPECT_EQ(*hit, key);  // value integrity under concurrency
        } else {
          cache.Insert(key, std::make_shared<const uint64_t>(key), 64);
        }
        if (i % 97 == 0) cache.Erase(key);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_LE(stats.bytes, uint64_t{1} << 16);
}

// ---- storage-node row-group cache ----------------------------------------

columnar::SchemaPtr SimSchema() {
  return MakeSchema({{"vertex_id", TypeKind::kInt64},
                     {"x", TypeKind::kFloat64},
                     {"e", TypeKind::kFloat64}});
}

// 1000 rows in 10 row groups: vertex_id = i, x = i * 0.01, e = f(i).
Bytes SimFile(double e_scale = 1.0) {
  format::WriterOptions options;
  options.rows_per_group = 100;
  format::FileWriter writer(SimSchema(), options);
  auto id = MakeColumn(TypeKind::kInt64);
  auto x = MakeColumn(TypeKind::kFloat64);
  auto e = MakeColumn(TypeKind::kFloat64);
  for (int i = 0; i < 1000; ++i) {
    id->AppendInt64(i);
    x->AppendFloat64(i * 0.01);
    e->AppendFloat64((1000.0 - i) * e_scale);
  }
  auto batch = MakeBatch(SimSchema(), {id, x, e});
  EXPECT_TRUE(writer.WriteBatch(*batch).ok());
  auto file = writer.Finish();
  EXPECT_TRUE(file.ok());
  return *file;
}

std::unique_ptr<Rel> ReadSim() {
  auto read = std::make_unique<Rel>();
  read->kind = RelKind::kRead;
  read->bucket = "sim";
  read->object = "f0";
  read->base_schema = SimSchema();
  return read;
}

Expression XBetween(double lo, double hi) {
  auto ge = Expression::Call(
      ScalarFunc::kGe,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(lo))},
      TypeKind::kBool);
  auto le = Expression::Call(
      ScalarFunc::kLe,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(hi))},
      TypeKind::kBool);
  return Expression::Call(ScalarFunc::kAnd, {ge, le}, TypeKind::kBool);
}

Plan FilterPlan(double lo, double hi) {
  Plan plan;
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadSim();
  filter->predicate = XBetween(lo, hi);
  plan.root = std::move(filter);
  return plan;
}

struct NodeFixture {
  explicit NodeFixture(uint64_t cache_bytes = 64ull << 20) {
    store = std::make_shared<objectstore::ObjectStore>();
    EXPECT_TRUE(store->CreateBucket("sim").ok());
    EXPECT_TRUE(store->Put("sim", "f0", SimFile()).ok());
    StorageNodeConfig config;
    config.cpu_slowdown = 1.0;
    config.rowgroup_cache_bytes = cache_bytes;
    node = std::make_unique<StorageNode>(store, config);
  }
  std::shared_ptr<objectstore::ObjectStore> store;
  std::unique_ptr<StorageNode> node;
};

TEST(RowGroupCacheTest, RepeatScanServedFromCache) {
  NodeFixture fx;
  Plan plan = FilterPlan(2.0, 3.0);

  auto cold = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->stats.cache_hits, 0u);
  EXPECT_GT(cold->stats.cache_misses, 0u);
  EXPECT_GT(cold->stats.object_bytes_read, 0u);

  auto warm = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_GT(warm->stats.cache_hits, 0u);
  EXPECT_EQ(warm->stats.cache_misses, 0u);
  // Every media byte of the cold run is avoided on the warm run.
  EXPECT_EQ(warm->stats.object_bytes_read, 0u);
  EXPECT_EQ(warm->stats.cache_bytes_saved, cold->stats.object_bytes_read);
  EXPECT_EQ(warm->stats.media_read_seconds, 0.0);

  // Bit-identical result.
  EXPECT_EQ(warm->arrow_ipc, cold->arrow_ipc);
}

TEST(RowGroupCacheTest, PutOverwriteInvalidates) {
  NodeFixture fx;
  Plan plan = FilterPlan(2.0, 3.0);

  auto before = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(before.ok()) << before.status();
  const uint64_t version_before = before->stats.object_version;

  // Overwrite with different data: the version bumps, so the stale
  // decoded chunks must never be served.
  ASSERT_TRUE(fx.store->Put("sim", "f0", SimFile(/*e_scale=*/2.0)).ok());

  auto after = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_GT(after->stats.object_version, version_before);
  EXPECT_EQ(after->stats.cache_hits, 0u);
  EXPECT_NE(after->arrow_ipc, before->arrow_ipc);

  // The new version matches a fresh, cache-free execution bit-for-bit.
  auto store2 = std::make_shared<objectstore::ObjectStore>();
  ASSERT_TRUE(store2->CreateBucket("sim").ok());
  ASSERT_TRUE(store2->Put("sim", "f0", SimFile(/*e_scale=*/2.0)).ok());
  StorageNodeConfig no_cache;
  no_cache.cpu_slowdown = 1.0;
  no_cache.rowgroup_cache_bytes = 0;
  StorageNode reference(store2, no_cache);
  auto expected = reference.ExecutePlan(plan);
  ASSERT_TRUE(expected.ok()) << expected.status();
  EXPECT_EQ(after->arrow_ipc, expected->arrow_ipc);
}

TEST(RowGroupCacheTest, TinyBudgetNeverAdmitsButStaysCorrect) {
  NodeFixture fx(/*cache_bytes=*/64);  // smaller than any decoded chunk
  Plan plan = FilterPlan(2.0, 3.0);
  auto cold = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_EQ(warm->stats.cache_hits, 0u);
  EXPECT_EQ(warm->arrow_ipc, cold->arrow_ipc);
  EXPECT_EQ(fx.node->rowgroup_cache()->stats().entries, 0u);
}

TEST(RowGroupCacheTest, WarmObjectCachePrimesEverything) {
  NodeFixture fx;
  ThreadPool pool(4);
  ASSERT_TRUE(fx.node->WarmObjectCache("sim", "f0", &pool).ok());
  // 10 row groups x 3 columns decoded into the cache.
  EXPECT_EQ(fx.node->rowgroup_cache()->stats().entries, 30u);

  auto result = fx.node->ExecutePlan(FilterPlan(2.0, 3.0));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.cache_misses, 0u);
  EXPECT_GT(result->stats.cache_hits, 0u);
  EXPECT_EQ(result->stats.object_bytes_read, 0u);
}

TEST(RowGroupCacheTest, LazyColumnFastPathSkipsValueFreeGroups) {
  NodeFixture fx;
  // x == 0.005 falls inside group 0's [0, 0.99] min/max, so statistics
  // cannot prune it — but no row has that value, so the lazy path drops
  // the group after decoding only the predicate column.
  Plan plan;
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadSim();
  filter->predicate = Expression::Call(
      ScalarFunc::kEq,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(0.005))},
      TypeKind::kBool);
  plan.root = std::move(filter);

  auto result = fx.node->ExecutePlan(plan);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.row_groups_total, 10u);
  EXPECT_EQ(result->stats.row_groups_skipped, 9u);       // stats pruning
  EXPECT_EQ(result->stats.row_groups_lazy_skipped, 1u);  // value pruning
  EXPECT_EQ(result->stats.rows_output, 0u);
  EXPECT_EQ(result->stats.rows_scanned, 0u);
}

// ---- connector split-result cache ----------------------------------------

std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

workloads::LaghosConfig SmallLaghos(uint64_t seed = 20251116) {
  workloads::LaghosConfig config;
  config.num_files = 3;
  config.rows_per_file = 1 << 11;
  config.rows_per_group = 1 << 9;
  config.seed = seed;
  return config;
}

struct CachedBedFixture {
  CachedBedFixture() {
    bed = std::make_unique<workloads::Testbed>();
    auto dataset = workloads::GenerateLaghos(SmallLaghos());
    EXPECT_TRUE(dataset.ok()) << dataset.status();
    EXPECT_TRUE(bed->Ingest(std::move(*dataset)).ok());
    connectors::OcsConnectorConfig cached = bed->config().ocs_connector;
    cached.split_result_cache_bytes = 64ull << 20;
    bed->RegisterOcsCatalog("ocs_cached", cached);
  }
  std::unique_ptr<workloads::Testbed> bed;
  std::string sql = workloads::LaghosQuery("laghos");
};

TEST(SplitResultCacheTest, RepeatScanServedWithoutDataRpc) {
  CachedBedFixture fx;
  auto cold = fx.bed->Run(fx.sql, "ocs_cached");
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->metrics.cache_hits, 0u);

  auto warm = fx.bed->Run(fx.sql, "ocs_cached");
  ASSERT_TRUE(warm.ok()) << warm.status();
  // Every split is a hit: only metadata-only Stat probes cross the wire.
  EXPECT_EQ(warm->metrics.cache_hits, warm->metrics.splits);
  EXPECT_GT(warm->metrics.cache_bytes_saved, 0u);
  EXPECT_LT(warm->metrics.bytes_from_storage, cold->metrics.bytes_from_storage);
  EXPECT_EQ(Canonicalize(*warm->table), Canonicalize(*cold->table));
}

TEST(SplitResultCacheTest, PutOverwriteNeverServesStaleResult) {
  CachedBedFixture fx;
  auto cold = fx.bed->Run(fx.sql, "ocs_cached");
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Overwrite every laghos object with differently-seeded data (same
  // schema, same keys) through the regular PUT path.
  auto changed = workloads::GenerateLaghos(SmallLaghos(/*seed=*/42));
  ASSERT_TRUE(changed.ok()) << changed.status();
  for (auto& [key, bytes] : changed->files) {
    ASSERT_TRUE(
        fx.bed->cluster().PutObject(changed->info.bucket, key, std::move(bytes))
            .ok());
  }

  auto after = fx.bed->Run(fx.sql, "ocs_cached");
  ASSERT_TRUE(after.ok()) << after.status();
  // The stale cached results failed version validation: no hits, and the
  // answer matches the uncached catalog over the new data bit-for-bit.
  EXPECT_EQ(after->metrics.cache_hits, 0u);
  EXPECT_NE(Canonicalize(*after->table), Canonicalize(*cold->table));
  auto reference = fx.bed->Run(fx.sql, "ocs");
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_EQ(Canonicalize(*after->table), Canonicalize(*reference->table));
}

}  // namespace
}  // namespace pocs
