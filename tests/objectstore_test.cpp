// Tests for the object store, the S3-Select-style storage-side select
// (operator scope, CSV roundtrip, chunk pruning), and the RPC service.
#include <gtest/gtest.h>

#include "format/parquet_lite.h"
#include "objectstore/object_store.h"
#include "objectstore/select.h"
#include "objectstore/service.h"

namespace pocs::objectstore {
namespace {

using columnar::CompareOp;
using columnar::Datum;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;

TEST(ObjectStoreTest, BucketLifecycle) {
  ObjectStore store;
  EXPECT_TRUE(store.CreateBucket("data").ok());
  EXPECT_TRUE(store.HasBucket("data"));
  EXPECT_EQ(store.CreateBucket("data").code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.DeleteBucket("data").ok());
  EXPECT_FALSE(store.HasBucket("data"));
  EXPECT_EQ(store.DeleteBucket("data").code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, PutGetDelete) {
  ObjectStore store;
  ASSERT_TRUE(store.CreateBucket("b").ok());
  ASSERT_TRUE(store.Put("b", "k", Bytes{1, 2, 3}).ok());
  auto data = store.Get("b", "k");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(**data, (Bytes{1, 2, 3}));
  EXPECT_EQ(*store.Size("b", "k"), 3u);
  EXPECT_TRUE(store.Delete("b", "k").ok());
  EXPECT_EQ(store.Get("b", "k").status().code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, NonEmptyBucketNotDeletable) {
  ObjectStore store;
  ASSERT_TRUE(store.CreateBucket("b").ok());
  ASSERT_TRUE(store.Put("b", "k", Bytes{1}).ok());
  EXPECT_FALSE(store.DeleteBucket("b").ok());
}

TEST(ObjectStoreTest, RangeReads) {
  ObjectStore store;
  ASSERT_TRUE(store.CreateBucket("b").ok());
  ASSERT_TRUE(store.Put("b", "k", Bytes{0, 1, 2, 3, 4, 5}).ok());
  EXPECT_EQ(*store.GetRange("b", "k", 2, 3), (Bytes{2, 3, 4}));
  EXPECT_EQ(*store.GetRange("b", "k", 0, 0), Bytes{});
  EXPECT_FALSE(store.GetRange("b", "k", 4, 3).ok());
  EXPECT_FALSE(store.GetRange("b", "k", 7, 0).ok());
}

TEST(ObjectStoreTest, ListWithPrefix) {
  ObjectStore store;
  ASSERT_TRUE(store.CreateBucket("b").ok());
  ASSERT_TRUE(store.Put("b", "laghos/part-0", Bytes{1}).ok());
  ASSERT_TRUE(store.Put("b", "laghos/part-1", Bytes{1}).ok());
  ASSERT_TRUE(store.Put("b", "tpch/lineitem-0", Bytes{1}).ok());
  auto keys = store.List("b", "laghos/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(*keys, (std::vector<std::string>{"laghos/part-0", "laghos/part-1"}));
  EXPECT_EQ(store.List("b")->size(), 3u);
  EXPECT_EQ(store.ObjectCount(), 3u);
}

// ---- Select -------------------------------------------------------------

// Writes a parquet-lite object with columns (x float64, grp string, n int64)
// and 2 row groups of 100 rows each: x = row * 0.1, grp cycles a..d.
void PutTestObject(ObjectStore* store) {
  ASSERT_TRUE(store->CreateBucket("data").ok());
  auto schema = MakeSchema({{"x", TypeKind::kFloat64},
                            {"grp", TypeKind::kString},
                            {"n", TypeKind::kInt64}});
  format::WriterOptions options;
  options.rows_per_group = 100;
  format::FileWriter writer(schema, options);
  auto x = MakeColumn(TypeKind::kFloat64);
  auto grp = MakeColumn(TypeKind::kString);
  auto n = MakeColumn(TypeKind::kInt64);
  for (int i = 0; i < 200; ++i) {
    x->AppendFloat64(i * 0.1);
    grp->AppendString(std::string(1, static_cast<char>('a' + i % 4)));
    n->AppendInt64(i);
  }
  ASSERT_TRUE(writer.WriteBatch(*MakeBatch(schema, {x, grp, n})).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(store->Put("data", "obj", *file).ok());
}

TEST(SelectTest, FilterAndProject) {
  ObjectStore store;
  PutTestObject(&store);
  SelectRequest request;
  request.bucket = "data";
  request.key = "obj";
  request.columns = {"n", "grp"};
  request.predicates = {{"x", CompareOp::kLt, Datum::Float64(0.35)}};
  auto response = ExecuteSelect(store, request);
  ASSERT_TRUE(response.ok()) << response.status();
  // Rows 0..3 match (x = 0.0, 0.1, 0.2, 0.3).
  EXPECT_EQ(response->stats.rows_returned, 4u);
  EXPECT_EQ(response->csv,
            "n,grp\n0,a\n1,b\n2,c\n3,d\n");
  // Second row group (x >= 10.0) must be pruned by statistics.
  EXPECT_EQ(response->stats.groups_skipped, 1u);
  EXPECT_EQ(response->stats.rows_scanned, 100u);
}

TEST(SelectTest, NoPredicatesReturnsEverything) {
  ObjectStore store;
  PutTestObject(&store);
  SelectRequest request{.bucket = "data", .key = "obj", .columns = {"n"},
                        .predicates = {}};
  auto response = ExecuteSelect(store, request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->stats.rows_returned, 200u);
}

TEST(SelectTest, ConjunctivePredicates) {
  ObjectStore store;
  PutTestObject(&store);
  SelectRequest request;
  request.bucket = "data";
  request.key = "obj";
  request.columns = {"n"};
  request.predicates = {{"x", CompareOp::kGe, Datum::Float64(0.95)},
                        {"grp", CompareOp::kEq, Datum::String("b")}};
  auto response = ExecuteSelect(store, request);
  ASSERT_TRUE(response.ok());
  // x >= 0.95 → rows 10..199; grp == "b" → n % 4 == 1 → 13, 17, ..., 197.
  EXPECT_EQ(response->stats.rows_returned, 47u);
}

TEST(SelectTest, UnknownColumnRejected) {
  ObjectStore store;
  PutTestObject(&store);
  SelectRequest request{.bucket = "data", .key = "obj",
                        .columns = {"nope"}, .predicates = {}};
  EXPECT_FALSE(ExecuteSelect(store, request).ok());
  request.columns = {};
  request.predicates = {{"nope", CompareOp::kEq, Datum::Int64(0)}};
  EXPECT_FALSE(ExecuteSelect(store, request).ok());
}

TEST(SelectTest, CsvRoundtripPreservesDoubles) {
  ObjectStore store;
  PutTestObject(&store);
  SelectRequest request{.bucket = "data", .key = "obj",
                        .columns = {"x", "n"}, .predicates = {}};
  auto response = ExecuteSelect(store, request);
  ASSERT_TRUE(response.ok());
  auto schema = MakeSchema({{"x", TypeKind::kFloat64}, {"n", TypeKind::kInt64}});
  auto batch = ParseSelectCsv(response->csv, schema);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ((*batch)->num_rows(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ((*batch)->column(0)->GetFloat64(i), i * 0.1);
    EXPECT_EQ((*batch)->column(1)->GetInt64(i), i);
  }
}

TEST(SelectTest, CsvParserRejectsGarbage) {
  auto schema = MakeSchema({{"x", TypeKind::kFloat64}});
  EXPECT_FALSE(ParseSelectCsv("x\nnot_a_number\n", schema).ok());
  EXPECT_FALSE(ParseSelectCsv("", schema).ok());
  // Wrong column count in header.
  EXPECT_FALSE(ParseSelectCsv("a,b\n1,2\n", schema).ok());
}

TEST(SelectTest, NullCellsRoundtrip) {
  ObjectStore store;
  ASSERT_TRUE(store.CreateBucket("b").ok());
  auto schema = MakeSchema({{"v", TypeKind::kFloat64}});
  format::FileWriter writer(schema, {});
  auto v = MakeColumn(TypeKind::kFloat64);
  v->AppendFloat64(1.5);
  v->AppendNull();
  v->AppendFloat64(2.5);
  ASSERT_TRUE(writer.WriteBatch(*MakeBatch(schema, {v})).ok());
  auto file = writer.Finish();
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(store.Put("b", "k", *file).ok());
  SelectRequest request{.bucket = "b", .key = "k", .columns = {},
                        .predicates = {}};
  auto response = ExecuteSelect(store, request);
  ASSERT_TRUE(response.ok());
  auto batch = ParseSelectCsv(response->csv, schema);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE((*batch)->column(0)->IsNull(0));
  EXPECT_TRUE((*batch)->column(0)->IsNull(1));
  EXPECT_DOUBLE_EQ((*batch)->column(0)->GetFloat64(2), 2.5);
}

TEST(ChunkMayMatchTest, PruningLogic) {
  format::ColumnStats stats;
  stats.min = Datum::Float64(10.0);
  stats.max = Datum::Float64(20.0);
  EXPECT_TRUE(ChunkMayMatch(stats, {"c", CompareOp::kGe, Datum::Float64(15.0)}));
  EXPECT_FALSE(ChunkMayMatch(stats, {"c", CompareOp::kGt, Datum::Float64(20.0)}));
  EXPECT_TRUE(ChunkMayMatch(stats, {"c", CompareOp::kGe, Datum::Float64(20.0)}));
  EXPECT_FALSE(ChunkMayMatch(stats, {"c", CompareOp::kLt, Datum::Float64(10.0)}));
  EXPECT_TRUE(ChunkMayMatch(stats, {"c", CompareOp::kEq, Datum::Float64(10.0)}));
  EXPECT_FALSE(ChunkMayMatch(stats, {"c", CompareOp::kEq, Datum::Float64(9.0)}));
  EXPECT_TRUE(ChunkMayMatch(stats, {"c", CompareOp::kNe, Datum::Float64(15.0)}));
  // Degenerate chunk (min == max == literal) is prunable for !=.
  format::ColumnStats constant;
  constant.min = Datum::Int64(5);
  constant.max = Datum::Int64(5);
  EXPECT_FALSE(ChunkMayMatch(constant, {"c", CompareOp::kNe, Datum::Int64(5)}));
  // All-null chunk never matches a comparison.
  format::ColumnStats nulls;
  EXPECT_FALSE(ChunkMayMatch(nulls, {"c", CompareOp::kEq, Datum::Int64(1)}));
}

// ---- RPC service ---------------------------------------------------------

struct ServiceFixture : ::testing::Test {
  void SetUp() override {
    net = std::make_shared<netsim::Network>(netsim::LinkConfig{1e9, 1e-4});
    auto compute = net->AddNode("compute");
    auto storage = net->AddNode("storage");
    store = std::make_shared<ObjectStore>();
    server = std::make_shared<rpc::Server>(storage, "objectstore");
    RegisterStorageService(store, server.get());
    client = std::make_unique<StorageClient>(rpc::Channel(net, compute, server));
  }
  std::shared_ptr<netsim::Network> net;
  std::shared_ptr<ObjectStore> store;
  std::shared_ptr<rpc::Server> server;
  std::unique_ptr<StorageClient> client;
};

TEST_F(ServiceFixture, PutGetThroughRpc) {
  Bytes payload = {9, 8, 7};
  ASSERT_TRUE(client->Put("b", "k", ByteSpan(payload.data(), payload.size())).ok());
  auto data = client->Get("b", "k");
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(*data, payload);
  EXPECT_GT(net->Total().bytes, 6u);  // request + response framing
}

TEST_F(ServiceFixture, ListAndSizeThroughRpc) {
  ASSERT_TRUE(client->Put("b", "a1", ByteSpan()).ok());
  ASSERT_TRUE(client->Put("b", "a2", ByteSpan()).ok());
  auto keys = client->List("b", "a");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);
  EXPECT_EQ(*client->Size("b", "a1"), 0u);
}

TEST_F(ServiceFixture, SelectThroughRpcChargesOnlyResults) {
  PutTestObject(store.get());
  net->ResetCounters();

  SelectRequest request;
  request.bucket = "data";
  request.key = "obj";
  request.columns = {"n"};
  request.predicates = {{"x", CompareOp::kLt, Datum::Float64(0.15)}};
  TransferInfo info;
  auto response = client->Select(request, &info);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->stats.rows_returned, 2u);
  // Only the tiny CSV crossed the network, not the object.
  uint64_t object_size = *store->Size("data", "obj");
  EXPECT_LT(net->Total().bytes, object_size / 10);
  EXPECT_GT(info.bytes_received, 0u);
  EXPECT_GT(info.transfer_seconds, 0.0);
}

TEST_F(ServiceFixture, GetMissingObjectErrors) {
  EXPECT_FALSE(client->Get("nope", "k").ok());
}

TEST(SelectWireTest, RequestEncodeDecode) {
  SelectRequest request;
  request.bucket = "data";
  request.key = "obj/part-7";
  request.columns = {"a", "b"};
  request.predicates = {{"x", CompareOp::kLe, Datum::Float64(3.2)},
                        {"s", CompareOp::kEq, Datum::String("N")}};
  BufferWriter w;
  EncodeSelectRequest(request, &w);
  BufferReader r(w.span());
  auto rt = DecodeSelectRequest(&r);
  ASSERT_TRUE(rt.ok());
  EXPECT_EQ(rt->bucket, "data");
  EXPECT_EQ(rt->key, "obj/part-7");
  EXPECT_EQ(rt->columns, request.columns);
  ASSERT_EQ(rt->predicates.size(), 2u);
  EXPECT_EQ(rt->predicates[0].op, CompareOp::kLe);
  EXPECT_DOUBLE_EQ(rt->predicates[0].literal.float64_value(), 3.2);
  EXPECT_EQ(rt->predicates[1].literal.string_value(), "N");
}

}  // namespace
}  // namespace pocs::objectstore
