// Edge-case coverage for Status/Result: moved-from state, error
// propagation through rpc::Server::Dispatch / Channel::Call, and the
// propagation macros. The companion [[nodiscard]] compile-fail check
// lives in tools/pocs_lint.py (--nodiscard-check).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "netsim/network.h"
#include "rpc/rpc.h"

namespace pocs {
namespace {

// ---- moved-from state ------------------------------------------------------

TEST(StatusEdgeTest, MovedFromStatusIsOk) {
  Status s = Status::IOError("disk gone");
  Status t = std::move(s);
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.code(), StatusCode::kIOError);
  // Moved-from Status collapses to OK (null state) — it must stay safe to
  // query and to assign over.
  EXPECT_TRUE(s.ok());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  s = Status::NotFound("reassigned");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(StatusEdgeTest, MoveAssignOverError) {
  Status dst = Status::Internal("old");
  Status src = Status::Corruption("new");
  dst = std::move(src);
  EXPECT_EQ(dst.code(), StatusCode::kCorruption);
  EXPECT_EQ(dst.message(), "new");
}

TEST(StatusEdgeTest, SelfCopyAssignIsNoop) {
  Status s = Status::Unavailable("busy");
  Status& alias = s;
  s = alias;
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.message(), "busy");
}

TEST(ResultEdgeTest, RvalueValueMovesOut) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
  // r still holds the (moved-from, empty) vector alternative: ok() stays
  // true, and the contained value is valid-but-unspecified.
  EXPECT_TRUE(r.ok());  // NOLINT(bugprone-use-after-move)
}

TEST(ResultEdgeTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

TEST(ResultEdgeTest, ErrorResultKeepsStatusAfterCopy) {
  Result<int> r(Status::OutOfRange("index 9"));
  EXPECT_FALSE(r.ok());
  Result<int> copy = r;
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(copy.status().message(), "index 9");
}

TEST(ResultEdgeTest, OkStatusUpgradedToInternalError) {
  // Constructing a Result from an OK status is a bug; it must not produce
  // a Result that claims to hold a value.
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultEdgeTest, ValueOrOnError) {
  Result<int> err(Status::NotFound("x"));
  EXPECT_EQ(err.value_or(-1), -1);
  Result<int> ok(5);
  EXPECT_EQ(ok.value_or(-1), 5);
}

// ---- propagation macros ----------------------------------------------------

Status FailInner() { return Status::Corruption("inner"); }

Status PropagateThroughMacro() {
  POCS_RETURN_NOT_OK(FailInner());
  return Status::Internal("unreachable");
}

Result<int> AssignOrReturnPropagates() {
  POCS_ASSIGN_OR_RETURN(int v, Result<int>(Status::Unavailable("later")));
  return v + 1;
}

TEST(PropagationTest, ReturnNotOkShortCircuits) {
  Status s = PropagateThroughMacro();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "inner");
}

TEST(PropagationTest, AssignOrReturnForwardsStatus) {
  Result<int> r = AssignOrReturnPropagates();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// ---- error propagation through RPC Dispatch --------------------------------

TEST(RpcDispatchTest, UnknownMethodIsNotFound) {
  rpc::Server server(0, "svc");
  Bytes req{1, 2, 3};
  Result<Bytes> r = server.Dispatch("nope", ByteSpan(req.data(), req.size()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  // The error names both the method and the server.
  EXPECT_NE(r.status().message().find("nope"), std::string::npos);
  EXPECT_NE(r.status().message().find("svc"), std::string::npos);
}

TEST(RpcDispatchTest, HandlerErrorReachesCallerVerbatim) {
  auto net = std::make_shared<netsim::Network>();
  netsim::NodeId server_node = net->AddNode("server");
  netsim::NodeId client_node = net->AddNode("client");
  auto server = std::make_shared<rpc::Server>(server_node, "svc");
  server->RegisterMethod("fail", [](ByteSpan) -> Result<Bytes> {
    return Status::Corruption("handler-level corruption");
  });
  rpc::Channel channel(net, client_node, server);

  Bytes req{0};
  Result<rpc::CallResult> r =
      channel.Call("fail", ByteSpan(req.data(), req.size()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.status().message(), "handler-level corruption");
}

TEST(RpcDispatchTest, HandlerStatusDoesNotChargeResponseTraffic) {
  auto net = std::make_shared<netsim::Network>();
  netsim::NodeId server_node = net->AddNode("server");
  netsim::NodeId client_node = net->AddNode("client");
  auto server = std::make_shared<rpc::Server>(server_node, "svc");
  server->RegisterMethod("fail", [](ByteSpan) -> Result<Bytes> {
    return Status::Internal("boom");
  });
  rpc::Channel channel(net, client_node, server);

  Bytes req(100, 0xAB);
  ASSERT_FALSE(channel.Call("fail", ByteSpan(req.data(), req.size())).ok());
  // Only the request hop was charged — the failed call produced no
  // response payload.
  netsim::FlowStats flow = net->FlowBetween(client_node, server_node);
  EXPECT_EQ(flow.bytes, 100u);
  EXPECT_EQ(flow.messages, 1u);
}

}  // namespace
}  // namespace pocs
