// Tests for the shared execution primitives: hash aggregation, sort /
// top-N / fetch, and the plan-chain executor (including the fused
// streaming paths).
#include <gtest/gtest.h>

#include <random>

#include "exec/hash_aggregator.h"
#include "exec/plan_executor.h"
#include "exec/sorter.h"
#include "substrait/eval.h"

namespace pocs::exec {
namespace {

using columnar::Datum;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::RecordBatchPtr;
using columnar::Table;
using columnar::TypeKind;
using substrait::AggFunc;
using substrait::AggregateSpec;
using substrait::Expression;
using substrait::Rel;
using substrait::RelKind;
using substrait::ScalarFunc;

columnar::SchemaPtr KVSchema() {
  return MakeSchema({{"k", TypeKind::kString}, {"v", TypeKind::kFloat64}});
}

RecordBatchPtr KVBatch(const std::vector<std::pair<std::string, double>>& rows,
                       const std::vector<size_t>& null_rows = {}) {
  auto k = MakeColumn(TypeKind::kString);
  auto v = MakeColumn(TypeKind::kFloat64);
  for (size_t i = 0; i < rows.size(); ++i) {
    k->AppendString(rows[i].first);
    if (std::find(null_rows.begin(), null_rows.end(), i) != null_rows.end()) {
      v->AppendNull();
    } else {
      v->AppendFloat64(rows[i].second);
    }
  }
  return MakeBatch(KVSchema(), {k, v});
}

TEST(HashAggregatorTest, GroupedSumAvgCount) {
  HashAggregator agg(
      KVSchema(), {0},
      {{AggFunc::kSum, Expression::FieldRef(1, TypeKind::kFloat64), "sum_v"},
       {AggFunc::kAvg, Expression::FieldRef(1, TypeKind::kFloat64), "avg_v"},
       {AggFunc::kCountStar, {}, "cnt"}});
  ASSERT_TRUE(agg.Consume(*KVBatch({{"a", 1}, {"b", 10}, {"a", 3}})).ok());
  ASSERT_TRUE(agg.Consume(*KVBatch({{"b", 20}, {"a", 2}})).ok());
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ((*result)->num_rows(), 2u);
  // Group order = first-seen: a then b.
  EXPECT_EQ((*result)->column(0)->GetString(0), "a");
  EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(0), 6.0);
  EXPECT_DOUBLE_EQ((*result)->column(2)->GetFloat64(0), 2.0);
  EXPECT_EQ((*result)->column(3)->GetInt64(0), 3);
  EXPECT_EQ((*result)->column(0)->GetString(1), "b");
  EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(1), 30.0);
}

TEST(HashAggregatorTest, NullArgumentsSkipped) {
  HashAggregator agg(
      KVSchema(), {0},
      {{AggFunc::kSum, Expression::FieldRef(1, TypeKind::kFloat64), "s"},
       {AggFunc::kCount, Expression::FieldRef(1, TypeKind::kFloat64), "c"},
       {AggFunc::kCountStar, {}, "cs"}});
  // a: values 5, null → SUM 5, COUNT 1, COUNT(*) 2.
  ASSERT_TRUE(agg.Consume(*KVBatch({{"a", 5}, {"a", 99}}, {1})).ok());
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(0), 5.0);
  EXPECT_EQ((*result)->column(2)->GetInt64(0), 1);
  EXPECT_EQ((*result)->column(3)->GetInt64(0), 2);
}

TEST(HashAggregatorTest, MinMaxOverStringsAndDoubles) {
  HashAggregator agg(
      KVSchema(), {},
      {{AggFunc::kMin, Expression::FieldRef(0, TypeKind::kString), "min_k"},
       {AggFunc::kMax, Expression::FieldRef(1, TypeKind::kFloat64), "max_v"}});
  ASSERT_TRUE(agg.Consume(*KVBatch({{"pear", 3}, {"apple", 9}, {"fig", 1}})).ok());
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 1u);
  EXPECT_EQ((*result)->column(0)->GetString(0), "apple");
  EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(0), 9.0);
}

TEST(HashAggregatorTest, GlobalAggregateOverZeroRows) {
  HashAggregator agg(
      KVSchema(), {},
      {{AggFunc::kCountStar, {}, "c"},
       {AggFunc::kSum, Expression::FieldRef(1, TypeKind::kFloat64), "s"}});
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 1u);  // SQL: one row even with no input
  EXPECT_EQ((*result)->column(0)->GetInt64(0), 0);
  EXPECT_TRUE((*result)->column(1)->IsNull(0));
}

TEST(HashAggregatorTest, GroupedAggregateOverZeroRowsIsEmpty) {
  HashAggregator agg(
      KVSchema(), {0},
      {{AggFunc::kCountStar, {}, "c"}});
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 0u);  // grouped: no groups, no rows
}

TEST(HashAggregatorTest, IntegerSumStaysExact) {
  auto schema = MakeSchema({{"n", TypeKind::kInt64}});
  auto col = MakeColumn(TypeKind::kInt64);
  // Values whose double sum would lose precision.
  col->AppendInt64((int64_t{1} << 53) + 1);
  col->AppendInt64(1);
  HashAggregator agg(schema, {},
                     {{AggFunc::kSum,
                       Expression::FieldRef(0, TypeKind::kInt64), "s"}});
  ASSERT_TRUE(agg.Consume(*MakeBatch(schema, {col})).ok());
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->column(0)->GetInt64(0), (int64_t{1} << 53) + 2);
}

TEST(HashAggregatorTest, ManyGroupsSurviveRehash) {
  auto schema = MakeSchema({{"g", TypeKind::kInt64}, {"v", TypeKind::kFloat64}});
  HashAggregator agg(schema, {0},
                     {{AggFunc::kSum,
                       Expression::FieldRef(1, TypeKind::kFloat64), "s"}});
  // 10k groups, each appearing twice.
  for (int pass = 0; pass < 2; ++pass) {
    auto g = MakeColumn(TypeKind::kInt64);
    auto v = MakeColumn(TypeKind::kFloat64);
    for (int i = 0; i < 10000; ++i) {
      g->AppendInt64(i);
      v->AppendFloat64(1.0);
    }
    ASSERT_TRUE(agg.Consume(*MakeBatch(schema, {g, v})).ok());
  }
  auto result = agg.Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 10000u);
  for (size_t i = 0; i < 10000; ++i) {
    EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(i), 2.0);
  }
}

TEST(SorterTest, SortTableMultiBatch) {
  Table table(KVSchema());
  table.AppendBatch(KVBatch({{"c", 3}, {"a", 1}}));
  table.AppendBatch(KVBatch({{"b", 2}}));
  auto sorted = SortTable(table, {{0, true, true}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ((*sorted)->column(0)->GetString(0), "a");
  EXPECT_EQ((*sorted)->column(0)->GetString(1), "b");
  EXPECT_EQ((*sorted)->column(0)->GetString(2), "c");
}

TEST(TopNTest, KeepsBestNAcrossManyBatches) {
  TopNAccumulator topn(KVSchema(), {{1, true, true}}, 3);  // 3 smallest v
  std::mt19937 rng(11);
  std::vector<double> all;
  for (int b = 0; b < 50; ++b) {
    std::vector<std::pair<std::string, double>> rows;
    for (int i = 0; i < 100; ++i) {
      double v = std::uniform_real_distribution<>(0, 1000)(rng);
      rows.push_back({"x", v});
      all.push_back(v);
    }
    ASSERT_TRUE(topn.Consume(*KVBatch(rows)).ok());
  }
  auto result = topn.Finish();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ((*result)->num_rows(), 3u);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(i), all[i]);
  }
}

TEST(TopNTest, FewerRowsThanLimit) {
  TopNAccumulator topn(KVSchema(), {{1, false, true}}, 100);
  ASSERT_TRUE(topn.Consume(*KVBatch({{"a", 1}, {"b", 2}})).ok());
  auto result = topn.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2u);
  EXPECT_DOUBLE_EQ((*result)->column(1)->GetFloat64(0), 2.0);  // desc
}

TEST(FetchTest, OffsetAndLimitAcrossBatches) {
  Table table(KVSchema());
  table.AppendBatch(KVBatch({{"a", 0}, {"b", 1}, {"c", 2}}));
  table.AppendBatch(KVBatch({{"d", 3}, {"e", 4}}));
  auto out = FetchTable(table, 2, 2);
  ASSERT_TRUE(out.ok());
  auto combined = (*out)->Combine();
  ASSERT_EQ(combined->num_rows(), 2u);
  EXPECT_EQ(combined->column(0)->GetString(0), "c");
  EXPECT_EQ(combined->column(0)->GetString(1), "d");
  // Unlimited.
  out = FetchTable(table, 1, -1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 4u);
  // Zero count.
  out = FetchTable(table, 0, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);
  // Offset past end.
  out = FetchTable(table, 100, 5);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 0u);
}

// ---- plan executor --------------------------------------------------------

std::shared_ptr<Table> SourceTable() {
  auto table = std::make_shared<Table>(KVSchema());
  table->AppendBatch(KVBatch({{"a", 1}, {"b", 5}, {"a", 3}}));
  table->AppendBatch(KVBatch({{"c", 7}, {"b", 9}, {"a", 11}}));
  return table;
}

ScanFactory TableFactory(std::shared_ptr<Table> table) {
  return [table](const Rel&) -> Result<std::unique_ptr<BatchSource>> {
    return std::unique_ptr<BatchSource>(std::make_unique<TableSource>(table));
  };
}

std::unique_ptr<Rel> ReadRel() {
  auto read = std::make_unique<Rel>();
  read->kind = RelKind::kRead;
  read->bucket = "b";
  read->object = "o";
  read->base_schema = KVSchema();
  return read;
}

TEST(PlanExecutorTest, ScanOnly) {
  ExecStats stats;
  auto result = ExecuteRel(*ReadRel(), TableFactory(SourceTable()), &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ((*result)->num_rows(), 6u);
  EXPECT_EQ(stats.rows_scanned, 6u);
  EXPECT_EQ(stats.batches_scanned, 2u);
}

TEST(PlanExecutorTest, FilterProjectStreaming) {
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadRel();
  filter->predicate = Expression::Call(
      ScalarFunc::kGt,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(4.0))},
      TypeKind::kBool);
  auto project = std::make_unique<Rel>();
  project->kind = RelKind::kProject;
  project->input = std::move(filter);
  project->expressions = {Expression::Call(
      ScalarFunc::kMultiply,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(2.0))},
      TypeKind::kFloat64)};
  project->output_names = {"v2"};

  auto result = ExecuteRel(*project, TableFactory(SourceTable()));
  ASSERT_TRUE(result.ok()) << result.status();
  auto combined = (*result)->Combine();
  ASSERT_EQ(combined->num_rows(), 4u);  // v in {5,7,9,11}
  EXPECT_DOUBLE_EQ(combined->column(0)->GetFloat64(0), 10.0);
  EXPECT_DOUBLE_EQ(combined->column(0)->GetFloat64(3), 22.0);
}

TEST(PlanExecutorTest, StreamingAggregate) {
  auto agg = std::make_unique<Rel>();
  agg->kind = RelKind::kAggregate;
  agg->input = ReadRel();
  agg->group_keys = {0};
  agg->aggregates = {
      {AggFunc::kSum, Expression::FieldRef(1, TypeKind::kFloat64), "sum_v"}};
  ExecStats stats;
  auto result = ExecuteRel(*agg, TableFactory(SourceTable()), &stats);
  ASSERT_TRUE(result.ok()) << result.status();
  auto combined = (*result)->Combine();
  ASSERT_EQ(combined->num_rows(), 3u);
  EXPECT_EQ(stats.rows_output, 3u);
  // a: 1+3+11=15, b: 5+9=14, c: 7
  EXPECT_EQ(combined->column(0)->GetString(0), "a");
  EXPECT_DOUBLE_EQ(combined->column(1)->GetFloat64(0), 15.0);
}

TEST(PlanExecutorTest, SortPlusFetchFusesToTopN) {
  auto sort = std::make_unique<Rel>();
  sort->kind = RelKind::kSort;
  sort->input = ReadRel();
  sort->sort_fields = {{1, false, true}};  // by v desc
  auto fetch = std::make_unique<Rel>();
  fetch->kind = RelKind::kFetch;
  fetch->input = std::move(sort);
  fetch->count = 2;
  auto result = ExecuteRel(*fetch, TableFactory(SourceTable()));
  ASSERT_TRUE(result.ok()) << result.status();
  auto combined = (*result)->Combine();
  ASSERT_EQ(combined->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(combined->column(1)->GetFloat64(0), 11.0);
  EXPECT_DOUBLE_EQ(combined->column(1)->GetFloat64(1), 9.0);
}

TEST(PlanExecutorTest, FullChainFilterAggSortFetch) {
  // Filter v > 1 -> group by k sum v -> sort by sum desc -> limit 2.
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;
  filter->input = ReadRel();
  filter->predicate = Expression::Call(
      ScalarFunc::kGt,
      {Expression::FieldRef(1, TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(1.0))},
      TypeKind::kBool);
  auto agg = std::make_unique<Rel>();
  agg->kind = RelKind::kAggregate;
  agg->input = std::move(filter);
  agg->group_keys = {0};
  agg->aggregates = {
      {AggFunc::kSum, Expression::FieldRef(1, TypeKind::kFloat64), "sum_v"}};
  auto sort = std::make_unique<Rel>();
  sort->kind = RelKind::kSort;
  sort->input = std::move(agg);
  sort->sort_fields = {{1, false, true}};
  auto fetch = std::make_unique<Rel>();
  fetch->kind = RelKind::kFetch;
  fetch->input = std::move(sort);
  fetch->count = 2;

  auto result = ExecuteRel(*fetch, TableFactory(SourceTable()));
  ASSERT_TRUE(result.ok()) << result.status();
  auto combined = (*result)->Combine();
  ASSERT_EQ(combined->num_rows(), 2u);
  // sums: a=14 (3+11), b=14 (5+9), c=7 → top2 = a,b (stable for ties)
  double s0 = combined->column(1)->GetFloat64(0);
  double s1 = combined->column(1)->GetFloat64(1);
  EXPECT_DOUBLE_EQ(s0, 14.0);
  EXPECT_DOUBLE_EQ(s1, 14.0);
}

TEST(PlanExecutorTest, FetchWithOffsetMaterializes) {
  auto sort = std::make_unique<Rel>();
  sort->kind = RelKind::kSort;
  sort->input = ReadRel();
  sort->sort_fields = {{1, true, true}};
  auto fetch = std::make_unique<Rel>();
  fetch->kind = RelKind::kFetch;
  fetch->input = std::move(sort);
  fetch->offset = 1;
  fetch->count = 2;
  auto result = ExecuteRel(*fetch, TableFactory(SourceTable()));
  ASSERT_TRUE(result.ok()) << result.status();
  auto combined = (*result)->Combine();
  ASSERT_EQ(combined->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(combined->column(1)->GetFloat64(0), 3.0);
  EXPECT_DOUBLE_EQ(combined->column(1)->GetFloat64(1), 5.0);
}

TEST(PlanExecutorTest, MalformedChainRejected) {
  auto filter = std::make_unique<Rel>();
  filter->kind = RelKind::kFilter;  // no input
  auto result = ExecuteRel(*filter, TableFactory(SourceTable()));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace pocs::exec
