// Property test: pushdown must never change query answers. A generator
// enumerates a family of queries over the Laghos schema (filters of
// varying selectivity, aggregates, group keys, projections, sort/top-N/
// limit combinations); every query runs through hive_raw (reference),
// hive (Select pushdown), and ocs (full pushdown) and results must agree
// bit-for-bit after canonicalization. Also covers failure injection:
// corrupt objects, missing objects, and strict-typed S3 mode.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "workloads/laghos.h"
#include "workloads/testbed.h"

namespace pocs::workloads {
namespace {

std::string Canonicalize(const columnar::RecordBatch& batch,
                         bool order_sensitive) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  if (!order_sensitive) std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

struct EquivalenceFixture : ::testing::Test {
  static void SetUpTestSuite() {
    testbed = std::make_unique<Testbed>();
    LaghosConfig config;
    config.num_files = 3;
    config.rows_per_file = 1 << 12;
    config.rows_per_vertex = 8;
    auto data = GenerateLaghos(config);
    ASSERT_TRUE(data.ok());
    ASSERT_TRUE(testbed->Ingest(std::move(*data)).ok());
  }
  static void TearDownTestSuite() { testbed.reset(); }
  static std::unique_ptr<Testbed> testbed;
};

std::unique_ptr<Testbed> EquivalenceFixture::testbed;

// The query family. ORDER BY-less aggregate/selection results are
// compared order-insensitively; sorted queries order-sensitively.
struct QueryCase {
  const char* sql;
  bool order_sensitive;
};

const QueryCase kQueries[] = {
    // filters of varying selectivity
    {"SELECT vertex_id, e FROM laghos WHERE x < 0.01", false},
    {"SELECT vertex_id, e FROM laghos WHERE x < 2.0 AND y > 1.0", false},
    {"SELECT vertex_id FROM laghos WHERE x BETWEEN 0.8 AND 3.2 "
     "AND y BETWEEN 0.8 AND 3.2 AND z BETWEEN 0.8 AND 3.2", false},
    {"SELECT vertex_id FROM laghos WHERE x > 100.0", false},  // empty result
    {"SELECT vertex_id FROM laghos WHERE x > 1.0 OR z < 0.5", false},
    {"SELECT vertex_id FROM laghos WHERE NOT (e > 500.0)", false},
    // projections with arithmetic
    {"SELECT vertex_id % 7 AS b, e * 2.0 + 1.0 AS ee FROM laghos "
     "WHERE e > 990", false},
    // global aggregates
    {"SELECT COUNT(*) AS n FROM laghos", false},
    {"SELECT COUNT(*) AS n, SUM(e) AS s, MIN(x) AS lo, MAX(y) AS hi, "
     "AVG(z) AS m FROM laghos WHERE x < 3.0", false},
    {"SELECT COUNT(*) AS n FROM laghos WHERE x > 100.0", false},  // zero rows
    // grouped aggregates (vertex ranges are split-disjoint)
    {"SELECT vertex_id, COUNT(*) AS n, AVG(e) AS m FROM laghos "
     "GROUP BY vertex_id", false},
    {"SELECT min(x), avg(e) AS m FROM laghos WHERE y < 2.0 "
     "GROUP BY vertex_id", false},
    // expression group keys force a pre-agg project
    {"SELECT vertex_id % 5 AS b, SUM(e) AS s FROM laghos "
     "GROUP BY vertex_id % 5", false},
    // sort / top-N / limit
    {"SELECT vertex_id, e FROM laghos WHERE e > 995 ORDER BY e DESC", true},
    {"SELECT vertex_id, e FROM laghos ORDER BY e LIMIT 13", true},
    {"SELECT vertex_id, AVG(e) AS m FROM laghos GROUP BY vertex_id "
     "ORDER BY m LIMIT 9", true},
    {"SELECT vertex_id, AVG(e) AS m FROM laghos WHERE x < 3.5 "
     "GROUP BY vertex_id ORDER BY m DESC LIMIT 4", true},
    // multi-key sort with ties
    {"SELECT vertex_id % 3 AS a, vertex_id % 2 AS b, COUNT(*) AS n "
     "FROM laghos GROUP BY vertex_id % 3, vertex_id % 2 "
     "ORDER BY a, b", true},
    // IN lists (desugar to OR chains; hive cannot push disjunctions)
    {"SELECT vertex_id, x FROM laghos WHERE vertex_id IN (1, 5, 9)", false},
    {"SELECT vertex_id FROM laghos WHERE vertex_id NOT IN (1, 5, 9) "
     "AND vertex_id < 12", false},
    // IS [NOT] NULL (generator data has no nulls: exercises both branches)
    {"SELECT COUNT(*) AS n FROM laghos WHERE e IS NULL", false},
    {"SELECT COUNT(*) AS n FROM laghos WHERE e IS NOT NULL AND x < 1.0",
     false},
    // HAVING over aggregation output (residual filter, never pushed)
    {"SELECT vertex_id, COUNT(*) AS n FROM laghos GROUP BY vertex_id "
     "HAVING n > 7", false},
    {"SELECT vertex_id, AVG(e) AS m FROM laghos GROUP BY vertex_id "
     "HAVING m > 500.0 ORDER BY m DESC LIMIT 5", true},
};

class PushdownEquivalence
    : public EquivalenceFixture,
      public ::testing::WithParamInterface<size_t> {};

TEST_P(PushdownEquivalence, AllPathsAgree) {
  const QueryCase& qc = kQueries[GetParam()];
  std::map<std::string, std::string> canon;
  for (const char* catalog : {"hive_raw", "hive", "ocs"}) {
    auto result = testbed->Run(qc.sql, catalog);
    ASSERT_TRUE(result.ok()) << catalog << ": " << result.status() << "\n"
                             << qc.sql;
    canon[catalog] = Canonicalize(*result->table, qc.order_sensitive);
  }
  EXPECT_EQ(canon["hive"], canon["hive_raw"]) << qc.sql;
  EXPECT_EQ(canon["ocs"], canon["hive_raw"]) << qc.sql;
}

INSTANTIATE_TEST_SUITE_P(QueryFamily, PushdownEquivalence,
                         ::testing::Range(size_t{0}, std::size(kQueries)));

// LIMIT-only pushdown: row count correct; per-split cap recorded.
TEST_F(EquivalenceFixture, LimitOnlyPushdown) {
  auto result = testbed->Run("SELECT vertex_id FROM laghos LIMIT 17", "ocs");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->table->num_rows(), 17u);
  EXPECT_NE(result->optimized_plan.find("pushed:limit"), std::string::npos)
      << result->optimized_plan;
  // Each of the 3 splits returns at most 17 rows.
  EXPECT_LE(result->metrics.rows_from_storage, 3u * 17u);
}

TEST_F(EquivalenceFixture, LimitAfterFilterPushdown) {
  auto raw =
      testbed->Run("SELECT COUNT(*) AS n FROM laghos WHERE e > 900", "hive_raw");
  ASSERT_TRUE(raw.ok());
  int64_t matching = raw->table->column(0)->GetInt64(0);
  auto result = testbed->Run(
      "SELECT vertex_id FROM laghos WHERE e > 900 LIMIT 5", "ocs");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->num_rows(),
            std::min<int64_t>(5, matching));
  EXPECT_NE(result->optimized_plan.find("pushed:filter,limit"),
            std::string::npos)
      << result->optimized_plan;
}

// ---- failure injection ------------------------------------------------------

TEST_F(EquivalenceFixture, CorruptObjectFailsCleanlyOnAllPaths) {
  // Separate testbed so we do not poison the shared fixture.
  Testbed local;
  LaghosConfig config;
  config.num_files = 2;
  config.rows_per_file = 1 << 10;
  auto data = GenerateLaghos(config);
  ASSERT_TRUE(data.ok());
  // Corrupt the second file's body before ingest.
  auto& bytes = data->files[1].second;
  for (size_t i = 100; i < 200 && i < bytes.size(); ++i) bytes[i] ^= 0xFF;
  ASSERT_TRUE(local.Ingest(std::move(*data)).ok());
  for (const char* catalog : {"hive_raw", "hive", "ocs"}) {
    auto result = local.Run(LaghosQuery(), catalog);
    EXPECT_FALSE(result.ok()) << catalog << " accepted corrupt data";
  }
}

TEST_F(EquivalenceFixture, MissingObjectFailsCleanly) {
  Testbed local;
  LaghosConfig config;
  config.num_files = 2;
  config.rows_per_file = 1 << 10;
  auto data = GenerateLaghos(config);
  ASSERT_TRUE(data.ok());
  // Register a table that claims an object which is never uploaded.
  data->info.objects.push_back("laghos/ghost");
  for (auto& [key, bytes] : data->files) {
    ASSERT_TRUE(local.cluster().PutObject("hpc", key, std::move(bytes)).ok());
  }
  data->files.clear();
  ASSERT_TRUE(local.metastore().RegisterTable(std::move(data->info)).ok());
  for (const char* catalog : {"hive_raw", "hive", "ocs"}) {
    auto result = local.Run("SELECT COUNT(*) AS n FROM laghos", catalog);
    EXPECT_FALSE(result.ok()) << catalog;
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound) << catalog;
  }
}

TEST_F(EquivalenceFixture, StrictS3ModeFallsBackAndStaysCorrect) {
  TestbedConfig config;
  config.hive.s3_strict_types = true;  // real S3 Select: no doubles
  Testbed local(config);
  LaghosConfig laghos;
  laghos.num_files = 2;
  laghos.rows_per_file = 1 << 10;
  auto data = GenerateLaghos(laghos);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(local.Ingest(std::move(*data)).ok());

  // The float64 filter cannot be pushed in strict mode...
  auto strict = local.Run(
      "SELECT vertex_id, e FROM laghos WHERE x < 1.0", "hive");
  ASSERT_TRUE(strict.ok()) << strict.status();
  ASSERT_EQ(strict->metrics.pushdown_decisions.size(), 1u);
  EXPECT_FALSE(strict->metrics.pushdown_decisions[0].accepted);
  // ...but results are still correct (compute-side filtering).
  auto reference = local.Run(
      "SELECT vertex_id, e FROM laghos WHERE x < 1.0", "hive_raw");
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(Canonicalize(*strict->table, false),
            Canonicalize(*reference->table, false));
  // And strict mode moves more data than permissive Select mode would.
  EXPECT_EQ(strict->metrics.bytes_from_storage,
            reference->metrics.bytes_from_storage);
}

TEST_F(EquivalenceFixture, ConcurrentQueriesAreIsolated) {
  // The engine, connectors, cluster, and network must tolerate concurrent
  // queries (Presto serves many). Fire a mixed workload from 4 threads.
  const char* sqls[] = {
      "SELECT COUNT(*) AS n FROM laghos",
      "SELECT vertex_id, AVG(e) AS m FROM laghos GROUP BY vertex_id "
      "ORDER BY m LIMIT 3",
      "SELECT vertex_id FROM laghos WHERE x < 0.5",
      "SELECT MIN(x) AS lo, MAX(x) AS hi FROM laghos",
  };
  // Reference results, sequential.
  std::vector<std::string> expected;
  for (const char* sql : sqls) {
    auto r = testbed->Run(sql, "ocs");
    ASSERT_TRUE(r.ok());
    expected.push_back(Canonicalize(*r->table, false));
  }
  std::vector<std::thread> threads;
  std::vector<Status> statuses(16);
  std::vector<std::string> got(16);
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&, t] {
      // Note: Run() resets network counters; metrics races are expected
      // under concurrency, result correctness is not.
      auto r = testbed->engine().Execute(sqls[t % 4], "ocs");
      if (!r.ok()) {
        statuses[t] = r.status();
        return;
      }
      got[t] = Canonicalize(*r->table, false);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 16; ++t) {
    ASSERT_TRUE(statuses[t].ok()) << statuses[t];
    EXPECT_EQ(got[t], expected[t % 4]) << sqls[t % 4];
  }
}

TEST_F(EquivalenceFixture, EmptyTableQueries) {
  Testbed local;
  metastore::TableInfo info;
  info.schema_name = "default";
  info.table_name = "empty";
  info.bucket = "hpc";
  info.schema = LaghosSchema();
  info.column_stats.resize(info.schema->num_fields());
  ASSERT_TRUE(local.metastore().RegisterTable(std::move(info)).ok());
  for (const char* catalog : {"hive_raw", "hive", "ocs"}) {
    auto count = local.Run("SELECT COUNT(*) AS n FROM empty", catalog);
    ASSERT_TRUE(count.ok()) << catalog << ": " << count.status();
    ASSERT_EQ(count->table->num_rows(), 1u);  // SQL: global agg over void
    EXPECT_EQ(count->table->column(0)->GetInt64(0), 0);
    auto rows = local.Run("SELECT x FROM empty WHERE x > 1.0", catalog);
    ASSERT_TRUE(rows.ok()) << catalog;
    EXPECT_EQ(rows->table->num_rows(), 0u);
  }
}

TEST_F(EquivalenceFixture, CsvRowFormatCostsMoreThanArrow) {
  // §2.2: S3 Select returns row-oriented text, losing columnar-format
  // efficiency. Same filter-only pushdown, two transports: the Select
  // CSV path must move more bytes than the OCS Arrow path.
  connectors::OcsConnectorConfig filter_only;
  filter_only.pushdown_projection = false;
  filter_only.pushdown_aggregation = false;
  filter_only.pushdown_topn = false;
  testbed->RegisterOcsCatalog("ocs_filter_only", filter_only);
  const char* sql = "SELECT vertex_id, e FROM laghos WHERE x < 2.0";
  auto csv = testbed->Run(sql, "hive");
  auto arrow = testbed->Run(sql, "ocs_filter_only");
  ASSERT_TRUE(csv.ok() && arrow.ok());
  EXPECT_EQ(csv->metrics.rows_from_storage, arrow->metrics.rows_from_storage);
  EXPECT_GT(csv->metrics.bytes_from_storage,
            arrow->metrics.bytes_from_storage)
      << "row-format results must be bulkier than columnar ones";
}

TEST_F(EquivalenceFixture, MultiStorageNodeClusterAgrees) {
  TestbedConfig config;
  config.cluster.num_storage_nodes = 3;
  Testbed local(config);
  LaghosConfig laghos;
  laghos.num_files = 6;
  laghos.rows_per_file = 1 << 10;
  auto data = GenerateLaghos(laghos);
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(local.Ingest(std::move(*data)).ok());
  auto ocs = local.Run(LaghosQuery("laghos", 20), "ocs");
  auto raw = local.Run(LaghosQuery("laghos", 20), "hive_raw");
  ASSERT_TRUE(ocs.ok()) << ocs.status();
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(Canonicalize(*ocs->table, true), Canonicalize(*raw->table, true));
  // Objects really are spread over multiple nodes.
  size_t populated = 0;
  for (size_t i = 0; i < local.cluster().num_storage_nodes(); ++i) {
    if (local.cluster().storage_node(i).store()->ObjectCount() > 0) {
      ++populated;
    }
  }
  EXPECT_EQ(populated, 3u);
}

}  // namespace
}  // namespace pocs::workloads
