// Tests for the connectors: the Hive connector's Select-API predicate
// decomposition and capability limits, the Presto-OCS connector's
// Selectivity Analyzer (distribution assumptions, NDV-based aggregation
// estimates, threshold behaviour), the ScanSpec→Substrait translator, and
// the pushdown history monitor.
#include <gtest/gtest.h>

#include "connectors/hive/hive_connector.h"
#include "connectors/ocs/ocs_connector.h"
#include "connectors/ocs/pushdown_history.h"
#include "connectors/ocs/selectivity_analyzer.h"
#include "connectors/ocs/sql_reconstruction.h"
#include "connectors/ocs/translator.h"
#include "engine/two_phase.h"
#include "sql/parser.h"
#include "workloads/laghos.h"

namespace pocs::connectors {
namespace {

using columnar::Datum;
using columnar::TypeKind;
using connector::PushedOperator;
using connector::ScanSpec;
using connector::TableHandle;
using substrait::AggFunc;
using substrait::Expression;
using substrait::ScalarFunc;

Expression Cmp(ScalarFunc op, int field, TypeKind type, Datum lit) {
  return Expression::Call(op,
                          {Expression::FieldRef(field, type),
                           Expression::Literal(std::move(lit))},
                          TypeKind::kBool);
}

columnar::SchemaPtr XySchema() {
  return columnar::MakeSchema(
      {{"x", TypeKind::kFloat64}, {"y", TypeKind::kFloat64}});
}

TEST(HiveDecomposeTest, ConjunctiveComparisonsAccepted) {
  auto pred = Expression::Call(
      ScalarFunc::kAnd,
      {Cmp(ScalarFunc::kGe, 0, TypeKind::kFloat64, Datum::Float64(0.8)),
       Cmp(ScalarFunc::kLe, 1, TypeKind::kFloat64, Datum::Float64(3.2))},
      TypeKind::kBool);
  std::vector<objectstore::SelectPredicate> terms;
  ASSERT_TRUE(DecomposeSelectPredicate(pred, *XySchema(), &terms));
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].column, "x");
  EXPECT_EQ(terms[0].op, columnar::CompareOp::kGe);
  EXPECT_EQ(terms[1].column, "y");
}

TEST(HiveDecomposeTest, FlippedLiteralSideNormalized) {
  // 5.0 < x  ≡  x > 5.0
  auto pred = Expression::Call(
      ScalarFunc::kLt,
      {Expression::Literal(Datum::Float64(5.0)),
       Expression::FieldRef(0, TypeKind::kFloat64)},
      TypeKind::kBool);
  std::vector<objectstore::SelectPredicate> terms;
  ASSERT_TRUE(DecomposeSelectPredicate(pred, *XySchema(), &terms));
  EXPECT_EQ(terms[0].op, columnar::CompareOp::kGt);
}

TEST(HiveDecomposeTest, DisjunctionRejected) {
  auto pred = Expression::Call(
      ScalarFunc::kOr,
      {Cmp(ScalarFunc::kGt, 0, TypeKind::kFloat64, Datum::Float64(1)),
       Cmp(ScalarFunc::kLt, 1, TypeKind::kFloat64, Datum::Float64(2))},
      TypeKind::kBool);
  std::vector<objectstore::SelectPredicate> terms;
  EXPECT_FALSE(DecomposeSelectPredicate(pred, *XySchema(), &terms));
}

TEST(HiveDecomposeTest, ArithmeticOperandRejected) {
  // (x + 1) > 2 is not a simple column comparison.
  auto pred = Expression::Call(
      ScalarFunc::kGt,
      {Expression::Call(ScalarFunc::kAdd,
                        {Expression::FieldRef(0, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(1))},
                        TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(2))},
      TypeKind::kBool);
  std::vector<objectstore::SelectPredicate> terms;
  EXPECT_FALSE(DecomposeSelectPredicate(pred, *XySchema(), &terms));
}

// ---- selectivity analyzer ---------------------------------------------------

metastore::TableInfo StatsTable(double min, double max, uint64_t ndv,
                                uint64_t rows) {
  metastore::TableInfo info;
  info.schema = XySchema();
  info.row_count = rows;
  format::ColumnStats stats;
  stats.min = Datum::Float64(min);
  stats.max = Datum::Float64(max);
  stats.ndv = ndv;
  stats.row_count = rows;
  info.column_stats = {stats, stats};
  return info;
}

TEST(SelectivityTest, UniformRangeEstimate) {
  auto info = StatsTable(0.0, 4.0, 1000, 10000);
  SelectivityAnalyzer analyzer(info, {ValueDistribution::kUniform});
  // x <= 1.0 over U(0,4): 25%.
  auto pred = Cmp(ScalarFunc::kLe, 0, TypeKind::kFloat64, Datum::Float64(1.0));
  EXPECT_NEAR(analyzer.EstimateFilterSelectivity(pred, *info.schema), 0.25,
              1e-9);
  // x >= 3.0: 25%.
  pred = Cmp(ScalarFunc::kGe, 0, TypeKind::kFloat64, Datum::Float64(3.0));
  EXPECT_NEAR(analyzer.EstimateFilterSelectivity(pred, *info.schema), 0.25,
              1e-9);
}

TEST(SelectivityTest, NormalAssumptionConcentratesMass) {
  auto info = StatsTable(0.0, 4.0, 1000, 10000);
  SelectivityAnalyzer normal(info, {ValueDistribution::kNormal});
  SelectivityAnalyzer uniform(info, {ValueDistribution::kUniform});
  // Mid-range band [1.5, 2.5] holds more mass under the normal assumption.
  auto band = Expression::Call(
      ScalarFunc::kAnd,
      {Cmp(ScalarFunc::kGe, 0, TypeKind::kFloat64, Datum::Float64(1.5)),
       Cmp(ScalarFunc::kLe, 0, TypeKind::kFloat64, Datum::Float64(2.5))},
      TypeKind::kBool);
  EXPECT_GT(normal.EstimateFilterSelectivity(band, *info.schema),
            uniform.EstimateFilterSelectivity(band, *info.schema));
  // The paper's known limitation: on skewed data (mass near min) the
  // normal assumption badly overestimates a tail predicate — document by
  // construction: P(x >= 3.9) estimated ≈ tiny even if the real data were
  // all at 3.95.
  auto tail = Cmp(ScalarFunc::kGe, 0, TypeKind::kFloat64, Datum::Float64(3.9));
  EXPECT_LT(normal.EstimateFilterSelectivity(tail, *info.schema), 0.01);
}

TEST(SelectivityTest, ConjunctionMultipliesDisjunctionAdds) {
  auto info = StatsTable(0.0, 1.0, 100, 1000);
  SelectivityAnalyzer analyzer(info, {ValueDistribution::kUniform});
  auto half_x = Cmp(ScalarFunc::kLe, 0, TypeKind::kFloat64, Datum::Float64(0.5));
  auto half_y = Cmp(ScalarFunc::kLe, 1, TypeKind::kFloat64, Datum::Float64(0.5));
  auto both = Expression::Call(ScalarFunc::kAnd, {half_x, half_y},
                               TypeKind::kBool);
  EXPECT_NEAR(analyzer.EstimateFilterSelectivity(both, *info.schema), 0.25,
              1e-9);
  auto either = Expression::Call(ScalarFunc::kOr, {half_x, half_y},
                                 TypeKind::kBool);
  EXPECT_NEAR(analyzer.EstimateFilterSelectivity(either, *info.schema), 0.75,
              1e-9);
}

TEST(SelectivityTest, EqualityUsesNdv) {
  auto info = StatsTable(0.0, 1.0, 200, 1000);
  SelectivityAnalyzer analyzer(info, {});
  auto eq = Cmp(ScalarFunc::kEq, 0, TypeKind::kFloat64, Datum::Float64(0.5));
  EXPECT_NEAR(analyzer.EstimateFilterSelectivity(eq, *info.schema), 1.0 / 200,
              1e-9);
}

TEST(SelectivityTest, MissingStatsAreConservative) {
  metastore::TableInfo info;
  info.schema = XySchema();
  info.row_count = 1000;
  info.column_stats.resize(2);  // null min/max, ndv 0
  SelectivityAnalyzer analyzer(info, {});
  auto pred = Cmp(ScalarFunc::kLe, 0, TypeKind::kFloat64, Datum::Float64(1.0));
  EXPECT_EQ(analyzer.EstimateFilterSelectivity(pred, *info.schema), 1.0);
  EXPECT_EQ(analyzer.EstimateAggregationSelectivity({0}, *info.schema, 1000),
            1.0);
}

TEST(SelectivityTest, AggregationCardinalityFromNdv) {
  auto info = StatsTable(0, 1, 50, 10000);
  SelectivityAnalyzer analyzer(info, {});
  // 50 groups over 10000 rows.
  EXPECT_NEAR(analyzer.EstimateAggregationSelectivity({0}, *info.schema, 10000),
              0.005, 1e-9);
  // Two keys: 50 × 50 = 2500 groups.
  EXPECT_NEAR(
      analyzer.EstimateAggregationSelectivity({0, 1}, *info.schema, 10000),
      0.25, 1e-9);
  // Global aggregate: single row.
  EXPECT_NEAR(analyzer.EstimateAggregationSelectivity({}, *info.schema, 10000),
              1e-4, 1e-12);
}

TEST(SelectivityTest, CappedNdvTreatedAsHighCardinality) {
  auto info = StatsTable(0, 1, 1 << 16, 100000);
  info.column_stats[0].ndv_capped = true;
  SelectivityAnalyzer analyzer(info, {});
  EXPECT_NEAR(
      analyzer.EstimateAggregationSelectivity({0}, *info.schema, 100000), 1.0,
      1e-9);
}

TEST(SelectivityTest, TopNExact) {
  auto info = StatsTable(0, 1, 10, 1000);
  SelectivityAnalyzer analyzer(info, {});
  EXPECT_NEAR(analyzer.EstimateTopNSelectivity(100, 10000), 0.01, 1e-12);
  EXPECT_EQ(analyzer.EstimateTopNSelectivity(100, 50), 1.0);
}

// ---- translator ------------------------------------------------------------

TableHandle LaghosHandle() {
  TableHandle handle;
  handle.info.schema = workloads::LaghosSchema();
  handle.info.bucket = "hpc";
  handle.info.row_count = 1000;
  handle.info.column_stats.resize(10);
  return handle;
}

TEST(TranslatorTest, FilterAggTopnPipeline) {
  TableHandle table = LaghosHandle();
  connector::Split split{"hpc", "laghos/part-0"};
  ScanSpec spec;
  spec.columns = {0, 1, 4};  // vertex_id, x, e
  spec.output_schema = columnar::MakeSchema({{"vertex_id", TypeKind::kInt64},
                                             {"x", TypeKind::kFloat64},
                                             {"e", TypeKind::kFloat64}});
  PushedOperator filter;
  filter.kind = PushedOperator::Kind::kFilter;
  filter.predicate =
      Cmp(ScalarFunc::kGe, 1, TypeKind::kFloat64, Datum::Float64(0.8));
  spec.operators.push_back(filter);

  PushedOperator agg;
  agg.kind = PushedOperator::Kind::kPartialAggregation;
  agg.group_keys = {0};
  agg.aggregates = engine::PartialAggSpecs(
      {{AggFunc::kAvg, Expression::FieldRef(2, TypeKind::kFloat64), "e"}});
  spec.operators.push_back(agg);

  PushedOperator topn;
  topn.kind = PushedOperator::Kind::kPartialTopN;
  topn.sort_fields = {{1, true, true}};  // original agg output col "e"
  topn.limit = 10;
  spec.operators.push_back(topn);

  auto plan = TranslateScanSpec(table, split, spec);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Read -> Filter -> Aggregate -> Project(aux) -> Sort -> Fetch -> Project
  // (the pushed aggregation is the storage-side partial phase)
  EXPECT_EQ(substrait::PlanToString(*plan),
            "Read(hpc/laghos/part-0) -> Filter -> Aggregate(partial) -> "
            "Project -> Sort -> Fetch -> Project");
  // The plan's final schema is the canonical partial schema.
  auto schema = substrait::OutputSchema(*plan->root);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ((*schema)->num_fields(), 3u);
  EXPECT_EQ((*schema)->field(0).name, "vertex_id");
  EXPECT_EQ((*schema)->field(1).name, "e$sum");
  EXPECT_EQ((*schema)->field(2).name, "e$cnt");
  // Serialization roundtrip of the full translated plan.
  Bytes wire = substrait::SerializePlan(*plan);
  EXPECT_TRUE(substrait::DeserializePlan(ByteSpan(wire.data(), wire.size()))
                  .ok());
}

TEST(TranslatorTest, TopNWithoutAggSortsRawRows) {
  TableHandle table = LaghosHandle();
  ScanSpec spec;
  spec.columns = {1};
  spec.output_schema = columnar::MakeSchema({{"x", TypeKind::kFloat64}});
  PushedOperator topn;
  topn.kind = PushedOperator::Kind::kPartialTopN;
  topn.sort_fields = {{0, false, true}};
  topn.limit = 5;
  spec.operators.push_back(topn);
  auto plan = TranslateScanSpec(table, {"hpc", "laghos/part-0"}, spec);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(substrait::PlanToString(*plan),
            "Read(hpc/laghos/part-0) -> Sort -> Fetch");
}

TEST(TranslatorTest, MissingLimitRejected) {
  TableHandle table = LaghosHandle();
  ScanSpec spec;
  spec.output_schema = table.info.schema;
  PushedOperator topn;
  topn.kind = PushedOperator::Kind::kPartialTopN;
  topn.sort_fields = {{0, true, true}};
  topn.limit = -1;
  spec.operators.push_back(topn);
  EXPECT_FALSE(TranslateScanSpec(table, {"hpc", "o"}, spec).ok());
}

// ---- SQL reconstruction (§4) -------------------------------------------------

TEST(SqlReconstructionTest, FullPipelineReconstructsAndReparses) {
  TableHandle table = LaghosHandle();
  table.info.table_name = "laghos";
  ScanSpec spec;
  spec.columns = {0, 1, 4};  // vertex_id, x, e
  spec.output_schema = columnar::MakeSchema({{"vertex_id", TypeKind::kInt64},
                                             {"x", TypeKind::kFloat64},
                                             {"e", TypeKind::kFloat64}});
  PushedOperator filter;
  filter.kind = PushedOperator::Kind::kFilter;
  filter.predicate =
      Cmp(ScalarFunc::kGe, 1, TypeKind::kFloat64, Datum::Float64(0.8));
  spec.operators.push_back(filter);
  PushedOperator agg;
  agg.kind = PushedOperator::Kind::kPartialAggregation;
  agg.group_keys = {0};
  agg.aggregates = engine::PartialAggSpecs(
      {{AggFunc::kAvg, Expression::FieldRef(2, TypeKind::kFloat64), "e"},
       {AggFunc::kMin, Expression::FieldRef(1, TypeKind::kFloat64), "mx"}});
  spec.operators.push_back(agg);
  PushedOperator topn;
  topn.kind = PushedOperator::Kind::kPartialTopN;
  topn.sort_fields = {{1, true, true}};  // original agg output "e"
  topn.limit = 10;
  spec.operators.push_back(topn);

  auto sql = ReconstructSql(table, spec);
  ASSERT_TRUE(sql.ok()) << sql.status();
  // The statement must parse with the repo's own SQL parser (modulo the
  // $-suffixed partial aliases, which are valid identifiers here).
  auto reparsed = sql::ParseQuery(*sql);
  ASSERT_TRUE(reparsed.ok()) << *sql << "\n" << reparsed.status();
  EXPECT_EQ(reparsed->table_name, "laghos");
  EXPECT_NE(sql->find("WHERE (x >= 0.8)"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("GROUP BY vertex_id"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("ORDER BY e"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("LIMIT 10"), std::string::npos) << *sql;
  // The reconstructed statement shows the PARTIAL decomposition actually
  // shipped to storage: avg(e) appears as its sum/count pair.
  EXPECT_NE(sql->find("sum(e) AS e$sum"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("count(e) AS e$cnt"), std::string::npos) << *sql;
}

TEST(SqlReconstructionTest, FilterOnlyWithResultProjection) {
  TableHandle table = LaghosHandle();
  table.info.table_name = "laghos";
  ScanSpec spec;
  spec.columns = {0, 1};
  spec.output_schema = columnar::MakeSchema(
      {{"vertex_id", TypeKind::kInt64}});
  spec.result_columns = {0};  // drop the filter column x
  PushedOperator filter;
  filter.kind = PushedOperator::Kind::kFilter;
  filter.predicate =
      Cmp(ScalarFunc::kLt, 1, TypeKind::kFloat64, Datum::Float64(1.0));
  spec.operators.push_back(filter);
  auto sql = ReconstructSql(table, spec);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(*sql, "SELECT vertex_id FROM laghos WHERE (x < 1)");
}

TEST(SqlReconstructionTest, LimitOnly) {
  TableHandle table = LaghosHandle();
  table.info.table_name = "laghos";
  ScanSpec spec;
  spec.columns = {0};
  spec.output_schema =
      columnar::MakeSchema({{"vertex_id", TypeKind::kInt64}});
  PushedOperator limit;
  limit.kind = PushedOperator::Kind::kPartialLimit;
  limit.limit = 42;
  spec.operators.push_back(limit);
  auto sql = ReconstructSql(table, spec);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "SELECT vertex_id FROM laghos LIMIT 42");
}

// ---- pushdown history --------------------------------------------------------

connector::QueryEvent Event(bool accepted, uint64_t bytes) {
  connector::QueryEvent event;
  connector::PushdownDecision d;
  d.kind = PushedOperator::Kind::kPartialAggregation;
  d.accepted = accepted;
  event.decisions = {d};
  event.bytes_from_storage = bytes;
  return event;
}

TEST(PushdownHistoryTest, SlidingWindowAndRates) {
  PushdownHistory history(3);
  history.QueryCompleted(Event(true, 100));
  history.QueryCompleted(Event(false, 200));
  history.QueryCompleted(Event(true, 300));
  EXPECT_EQ(history.window_size(), 3u);
  auto stats = history.StatsFor(PushedOperator::Kind::kPartialAggregation);
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_NEAR(history.AverageBytesFromStorage(), 200.0, 1e-9);
  // Fourth event evicts the first (an accepted one).
  history.QueryCompleted(Event(false, 400));
  EXPECT_EQ(history.window_size(), 3u);
  stats = history.StatsFor(PushedOperator::Kind::kPartialAggregation);
  EXPECT_EQ(stats.offered, 3u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_NEAR(stats.accept_rate(), 1.0 / 3.0, 1e-9);
}

TEST(PushdownHistoryTest, EmptyHistory) {
  PushdownHistory history;
  EXPECT_EQ(history.window_size(), 0u);
  EXPECT_EQ(history.AverageBytesFromStorage(), 0.0);
  EXPECT_EQ(history.StatsFor(PushedOperator::Kind::kFilter).offered, 0u);
}

}  // namespace
}  // namespace pocs::connectors
