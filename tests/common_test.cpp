// Unit tests for the common module: Status/Result, buffers, varints,
// hashing, thread pool, annotated mutexes.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <limits>
#include <random>
#include <thread>

#include "common/buffer.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace pocs {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing object");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing object");
  EXPECT_EQ(s.ToString(), "NotFound: missing object");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad page");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kCorruption);
  EXPECT_EQ(t.message(), "bad page");
  EXPECT_EQ(s.message(), "bad page");
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::IOError("disk");
  Status t = std::move(s);
  EXPECT_EQ(t.code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  POCS_ASSIGN_OR_RETURN(int h, Half(x));
  POCS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(BufferTest, FixedWidthRoundtrip) {
  BufferWriter w;
  w.WriteLE<uint32_t>(0xdeadbeef);
  w.WriteLE<int64_t>(-123456789012345LL);
  w.WriteLE<double>(3.14159);
  w.WriteU8(7);

  BufferReader r(w.span());
  EXPECT_EQ(*r.ReadLE<uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadLE<int64_t>(), -123456789012345LL);
  EXPECT_DOUBLE_EQ(*r.ReadLE<double>(), 3.14159);
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_TRUE(r.exhausted());
}

TEST(BufferTest, VarintRoundtripEdgeValues) {
  const uint64_t values[] = {0,    1,    127,   128,   16383, 16384,
                             1u << 20, 1ull << 35, std::numeric_limits<uint64_t>::max()};
  BufferWriter w;
  for (uint64_t v : values) w.WriteVarint(v);
  BufferReader r(w.span());
  for (uint64_t v : values) EXPECT_EQ(*r.ReadVarint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BufferTest, SignedVarintRoundtrip) {
  const int64_t values[] = {0, -1, 1, -64, 63, -65, 1000000, -1000000,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  BufferWriter w;
  for (int64_t v : values) w.WriteSVarint(v);
  BufferReader r(w.span());
  for (int64_t v : values) EXPECT_EQ(*r.ReadSVarint(), v);
}

TEST(BufferTest, StringRoundtrip) {
  BufferWriter w;
  w.WriteString("");
  w.WriteString("hello");
  w.WriteString(std::string(1000, 'x'));
  BufferReader r(w.span());
  EXPECT_EQ(*r.ReadString(), "");
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString()->size(), 1000u);
}

TEST(BufferTest, UnderflowIsCorruption) {
  BufferWriter w;
  w.WriteLE<uint32_t>(1);
  BufferReader r(w.span());
  EXPECT_TRUE(r.ReadLE<uint64_t>().status().code() == StatusCode::kCorruption);
}

TEST(BufferTest, TruncatedVarintIsCorruption) {
  Bytes data = {0x80, 0x80};  // continuation bits with no terminator
  BufferReader r(ByteSpan(data.data(), data.size()));
  EXPECT_EQ(r.ReadVarint().status().code(), StatusCode::kCorruption);
}

TEST(BufferTest, TruncatedStringIsCorruption) {
  BufferWriter w;
  w.WriteVarint(100);  // claims 100 bytes, provides none
  BufferReader r(w.span());
  EXPECT_EQ(r.ReadString().status().code(), StatusCode::kCorruption);
}

TEST(BufferTest, PatchLE) {
  BufferWriter w;
  w.WriteLE<uint32_t>(0);
  w.WriteLE<uint32_t>(42);
  w.PatchLE<uint32_t>(0, 99);
  BufferReader r(w.span());
  EXPECT_EQ(*r.ReadLE<uint32_t>(), 99u);
  EXPECT_EQ(*r.ReadLE<uint32_t>(), 42u);
}

TEST(HashTest, DeterministicAndSpread) {
  uint64_t h1 = HashString("hello");
  uint64_t h2 = HashString("hello");
  uint64_t h3 = HashString("hellp");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(HashString("", 1), HashString("", 2));
}

TEST(HashTest, SeedChangesValue) {
  EXPECT_NE(HashString("abc", 0), HashString("abc", 1));
}

TEST(HashTest, BytesMatchString) {
  std::string s = "some payload";
  EXPECT_EQ(HashBytes(s.data(), s.size()), HashString(s));
}

TEST(HashTest, LowCollisionOnSequentialInts) {
  std::vector<uint64_t> hashes;
  for (int64_t i = 0; i < 10000; ++i) hashes.push_back(HashValue(i));
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto fut = pool.Submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksLargeRanges) {
  // n far above 4 * num_threads exercises the block-chunked path; every
  // index must still run exactly once.
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstErrorByIndex) {
  ThreadPool pool(4);
  // Large n (chunked) with two throwing indices: the rethrown exception
  // must be the lowest-index one, matching the serial-loop contract.
  try {
    pool.ParallelFor(5000, [&](size_t i) {
      if (i == 777 || i == 4200) {
        throw std::runtime_error("boom@" + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom@777");
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  int count = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 1000; ++i) {
    futs.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 499500);
}

// A counter in the shape the repo's annotated classes use: a Mutex, a
// guarded field, and RAII locking. Exercised from many threads so the
// TSan job would catch a broken wrapper even though the thread safety
// analysis itself is compile-time only.
class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++value_;
  }
  int value() const {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ POCS_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, MutexLockSerializesWriters) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  // Plain booleans (not gtest assertion wrappers) around TryLock: the
  // thread safety analysis tracks the boolean to know the lock's state
  // on each branch. Manual Unlock is the point of this test.
  Mutex mu;
  const bool first = mu.TryLock();
  EXPECT_TRUE(first);
  // Same-thread re-acquisition of a std::mutex is UB, so probe from
  // another thread: it must see the mutex as held.
  bool second = true;
  std::thread probe([&mu, &second] {
    second = mu.TryLock();
    if (second) mu.Unlock();  // pocs-lint: allow(manual-lock)
  });
  probe.join();
  EXPECT_FALSE(second);
  if (first) mu.Unlock();  // pocs-lint: allow(manual-lock)
}

// Guarded-by on locals is not portable across clang versions, so the
// shared-mutex fixture is a tiny annotated struct like production code.
struct SharedState {
  SharedMutex mu;
  int value POCS_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, SharedMutexAllowsConcurrentReaders) {
  SharedState state;
  {
    SharedMutexLock writer(state.mu);
    state.value = 42;
  }
  // Each reader takes the shared lock and then waits for the other to
  // arrive while still holding it. This only completes if the reader
  // side is genuinely shared — an accidentally exclusive lock would
  // deadlock here (and trip the test timeout).
  std::atomic<int> readers_inside{0};
  auto read = [&] {
    SharedReaderLock lock(state.mu);
    readers_inside.fetch_add(1);
    while (readers_inside.load() < 2) std::this_thread::yield();
    EXPECT_EQ(state.value, 42);
  };
  std::thread a(read);
  std::thread b(read);
  a.join();
  b.join();
  EXPECT_EQ(readers_inside.load(), 2);
}

struct WaitState {
  Mutex mu;
  std::condition_variable cv;
  bool ready POCS_GUARDED_BY(mu) = false;
};

TEST(MutexTest, MutexLockNativeSupportsConditionWait) {
  WaitState state;
  std::thread waiter([&state] {
    MutexLock lock(state.mu);
    while (!state.ready) state.cv.wait(lock.native());
    EXPECT_TRUE(state.ready);
  });
  {
    MutexLock lock(state.mu);
    state.ready = true;
  }
  state.cv.notify_one();
  waiter.join();
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GT(x, 0);
  EXPECT_GT(sw.ElapsedNanos(), 0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace pocs
