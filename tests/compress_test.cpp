// Tests for the compression stack: LZ77 core, Huffman stage, and the three
// composed codecs. Includes property sweeps over data distributions and
// corruption injection.
#include <gtest/gtest.h>

#include <random>

#include "compress/codec.h"
#include "compress/huffman.h"
#include "compress/lz77.h"

namespace pocs::compress {
namespace {

Bytes MakeRepetitive(size_t n) {
  Bytes data;
  data.reserve(n);
  const char* pattern = "sensor_reading,timestep,value;";
  while (data.size() < n) {
    for (const char* p = pattern; *p && data.size() < n; ++p) {
      data.push_back(static_cast<uint8_t>(*p));
    }
  }
  return data;
}

Bytes MakeRandom(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  Bytes data(n);
  for (auto& b : data) b = static_cast<uint8_t>(rng());
  return data;
}

// Float-heavy "scientific" data: doubles from a smooth function, produced
// at float32 precision and widened to float64 (zero low-mantissa bytes) —
// the layout simulation snapshot columns typically have, and the
// distribution that Fig. 6's datasets present to the codecs.
Bytes MakeScientific(size_t n_doubles) {
  Bytes data;
  data.reserve(n_doubles * 8);
  for (size_t i = 0; i < n_doubles; ++i) {
    double v = static_cast<double>(
        static_cast<float>(0.5 + 0.3 * std::sin(i * 0.001)));
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    data.insert(data.end(), p, p + 8);
  }
  return data;
}

TEST(Lz77Test, RoundtripRepetitive) {
  Lz77Params params;
  Bytes input = MakeRepetitive(10000);
  Bytes comp = Lz77Compress(ByteSpan(input.data(), input.size()), params);
  EXPECT_LT(comp.size(), input.size() / 3) << "repetitive data should shrink";
  auto out = Lz77Decompress(ByteSpan(comp.data(), comp.size()), input.size(),
                            params);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, input);
}

TEST(Lz77Test, RoundtripRandomIncompressible) {
  Lz77Params params;
  Bytes input = MakeRandom(5000, 1);
  Bytes comp = Lz77Compress(ByteSpan(input.data(), input.size()), params);
  auto out = Lz77Decompress(ByteSpan(comp.data(), comp.size()), input.size(),
                            params);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Lz77Test, EmptyAndTinyInputs) {
  Lz77Params params;
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7}}) {
    Bytes input = MakeRandom(n, 99);
    Bytes comp = Lz77Compress(ByteSpan(input.data(), input.size()), params);
    auto out = Lz77Decompress(ByteSpan(comp.data(), comp.size()), n, params);
    ASSERT_TRUE(out.ok()) << "n=" << n;
    EXPECT_EQ(*out, input);
  }
}

TEST(Lz77Test, OverlappingMatchRle) {
  // A run of one byte forces overlapping matches (offset 1).
  Lz77Params params;
  Bytes input(10000, 0xAB);
  Bytes comp = Lz77Compress(ByteSpan(input.data(), input.size()), params);
  EXPECT_LT(comp.size(), 100u);
  auto out = Lz77Decompress(ByteSpan(comp.data(), comp.size()), input.size(),
                            params);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(Lz77Test, WrongExpectedSizeIsCorruption) {
  Lz77Params params;
  Bytes input = MakeRepetitive(1000);
  Bytes comp = Lz77Compress(ByteSpan(input.data(), input.size()), params);
  auto out = Lz77Decompress(ByteSpan(comp.data(), comp.size()),
                            input.size() - 1, params);
  EXPECT_FALSE(out.ok());
}

TEST(Lz77Test, LazyParsesAtLeastAsSmall) {
  Bytes input = MakeScientific(20000);
  Lz77Params greedy{.hash_bits = 15, .window = 1u << 15, .min_match = 4,
                    .lazy = false};
  Lz77Params lazy{.hash_bits = 15, .window = 1u << 15, .min_match = 4,
                  .lazy = true};
  Bytes cg = Lz77Compress(ByteSpan(input.data(), input.size()), greedy);
  Bytes cl = Lz77Compress(ByteSpan(input.data(), input.size()), lazy);
  auto out = Lz77Decompress(ByteSpan(cl.data(), cl.size()), input.size(), lazy);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
  // Lazy matching should not be much worse; usually better.
  EXPECT_LE(cl.size(), cg.size() + cg.size() / 10);
}

TEST(HuffmanTest, RoundtripSkewedDistribution) {
  std::mt19937 rng(3);
  Bytes input(20000);
  for (auto& b : input) b = static_cast<uint8_t>(rng() % 8);  // 8 symbols
  Bytes enc = HuffmanEncode(ByteSpan(input.data(), input.size()));
  EXPECT_LT(enc.size(), input.size() / 2) << "3-bit entropy should shrink";
  auto dec = HuffmanDecode(ByteSpan(enc.data(), enc.size()));
  ASSERT_TRUE(dec.ok()) << dec.status();
  EXPECT_EQ(*dec, input);
}

TEST(HuffmanTest, RandomDataFallsBackToRaw) {
  Bytes input = MakeRandom(10000, 5);
  Bytes enc = HuffmanEncode(ByteSpan(input.data(), input.size()));
  EXPECT_LE(enc.size(), input.size() + 16);
  auto dec = HuffmanDecode(ByteSpan(enc.data(), enc.size()));
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, input);
}

TEST(HuffmanTest, SingleSymbolInput) {
  Bytes input(5000, 'z');
  Bytes enc = HuffmanEncode(ByteSpan(input.data(), input.size()));
  auto dec = HuffmanDecode(ByteSpan(enc.data(), enc.size()));
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(*dec, input);
  EXPECT_LT(enc.size(), 1000u);
}

TEST(HuffmanTest, EmptyInput) {
  Bytes enc = HuffmanEncode(ByteSpan());
  auto dec = HuffmanDecode(ByteSpan(enc.data(), enc.size()));
  ASSERT_TRUE(dec.ok());
  EXPECT_TRUE(dec->empty());
}

TEST(HuffmanTest, TruncatedStreamIsCorruption) {
  std::mt19937 rng(9);
  Bytes input(5000);
  for (auto& b : input) b = static_cast<uint8_t>(rng() % 4);
  Bytes enc = HuffmanEncode(ByteSpan(input.data(), input.size()));
  auto dec = HuffmanDecode(ByteSpan(enc.data(), enc.size() / 2));
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, NamesRoundtrip) {
  for (CodecType t : {CodecType::kNone, CodecType::kFastLz,
                      CodecType::kDeflateLite, CodecType::kZsLite}) {
    auto back = CodecFromName(CodecName(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
  // Paper-name aliases map to stand-ins.
  EXPECT_EQ(*CodecFromName("snappy"), CodecType::kFastLz);
  EXPECT_EQ(*CodecFromName("gzip"), CodecType::kDeflateLite);
  EXPECT_EQ(*CodecFromName("zstd"), CodecType::kZsLite);
  EXPECT_FALSE(CodecFromName("lzma").ok());
}

class CodecSweep
    : public ::testing::TestWithParam<std::tuple<CodecType, int>> {};

TEST_P(CodecSweep, Roundtrip) {
  auto [type, dataset] = GetParam();
  const Codec& codec = GetCodec(type);
  Bytes input;
  switch (dataset) {
    case 0: input = MakeRepetitive(30000); break;
    case 1: input = MakeRandom(30000, 11); break;
    case 2: input = MakeScientific(4000); break;
    case 3: input = Bytes{}; break;
    case 4: input = MakeRandom(17, 13); break;
  }
  Bytes comp = codec.Compress(ByteSpan(input.data(), input.size()));
  auto out = codec.Decompress(ByteSpan(comp.data(), comp.size()));
  ASSERT_TRUE(out.ok()) << CodecName(type) << " ds=" << dataset << ": "
                        << out.status();
  EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllData, CodecSweep,
    ::testing::Combine(::testing::Values(CodecType::kNone, CodecType::kFastLz,
                                         CodecType::kDeflateLite,
                                         CodecType::kZsLite),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(CodecTest, RatioOrderingOnScientificData) {
  // The Fig. 6 reproduction depends on this ordering (see DESIGN.md).
  Bytes input = MakeScientific(50000);
  ByteSpan span(input.data(), input.size());
  size_t none = GetCodec(CodecType::kNone).Compress(span).size();
  size_t fast = GetCodec(CodecType::kFastLz).Compress(span).size();
  size_t deflate = GetCodec(CodecType::kDeflateLite).Compress(span).size();
  size_t zs = GetCodec(CodecType::kZsLite).Compress(span).size();
  EXPECT_LT(fast, none);
  EXPECT_LT(deflate, fast);
  EXPECT_LE(zs, deflate + deflate / 20);  // zs-lite ~best ratio
}

TEST(CodecTest, CorruptPayloadDetected) {
  const Codec& codec = GetCodec(CodecType::kZsLite);
  Bytes input = MakeRepetitive(5000);
  Bytes comp = codec.Compress(ByteSpan(input.data(), input.size()));
  comp.resize(comp.size() / 2);
  auto out = codec.Decompress(ByteSpan(comp.data(), comp.size()));
  EXPECT_FALSE(out.ok());
}

}  // namespace
}  // namespace pocs::compress
