// Tests for the SQL frontend: lexer, parser, AST printing, and the
// paper's three workload queries.
#include <gtest/gtest.h>

#include "columnar/types.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/tpch.h"

namespace pocs::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT x, 42 FROM t WHERE y >= 3.5 AND s = 'N'");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 13u);
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "select");  // lower-cased
  EXPECT_EQ((*tokens)[0].raw, "SELECT");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, OperatorsAndComments) {
  auto tokens = Lex("a <= b -- trailing comment\n <> c != d");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> ops;
  for (const auto& t : *tokens) {
    if (t.kind == TokenKind::kOperator) ops.push_back(t.text);
  }
  EXPECT_EQ(ops, (std::vector<std::string>{"<=", "<>", "<>"}));
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, ScientificFloats) {
  auto tokens = Lex("1.5e-3 2E9");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kFloat);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kFloat);
}

TEST(ParserTest, SimpleSelect) {
  auto query = ParseQuery("SELECT a, b FROM t");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->items.size(), 2u);
  EXPECT_EQ(query->table_name, "t");
  EXPECT_EQ(query->items[0].expr->name, "a");
  EXPECT_FALSE(query->where);
}

TEST(ParserTest, QualifiedTableName) {
  auto query = ParseQuery("SELECT a FROM myschema.mytable");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->schema_name, "myschema");
  EXPECT_EQ(query->table_name, "mytable");
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto query = ParseQuery("SELECT a AS x, b y FROM t");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(*query->items[0].alias, "x");
  EXPECT_EQ(*query->items[1].alias, "y");
}

TEST(ParserTest, WherePrecedence) {
  auto query = ParseQuery("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3");
  ASSERT_TRUE(query.ok());
  // OR binds loosest: ((a>1 AND b<2) OR c=3)
  EXPECT_EQ(query->where->ToString(), "(((a > 1) AND (b < 2)) OR (c = 3))");
}

TEST(ParserTest, BetweenDesugars) {
  auto query = ParseQuery("SELECT a FROM t WHERE x BETWEEN 0.8 AND 3.2");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->where->ToString(), "((x >= 0.8) AND (x <= 3.2))");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto expr = ParseExpression("a + b * c % 2 - d / e");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->ToString(), "((a + ((b * c) % 2)) - (d / e))");
}

TEST(ParserTest, UnaryMinusAndNot) {
  auto expr = ParseExpression("NOT a > -5");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->ToString(), "NOT (a > -5)");
}

TEST(ParserTest, FunctionCalls) {
  auto query = ParseQuery(
      "SELECT min(x), COUNT(*), sum(a * b) FROM t GROUP BY g");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->items[0].expr->kind, AstExprKind::kFuncCall);
  EXPECT_EQ(query->items[0].expr->name, "min");
  EXPECT_EQ(query->items[1].expr->args[0]->kind, AstExprKind::kStarLiteral);
  EXPECT_EQ(query->group_by.size(), 1u);
}

TEST(ParserTest, DateAndIntervalLiterals) {
  auto expr = ParseExpression("shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY");
  ASSERT_TRUE(expr.ok()) << expr.status();
  std::string s = (*expr)->ToString();
  EXPECT_NE(s.find("DATE '1998-12-01'"), std::string::npos);
  EXPECT_NE(s.find("INTERVAL '90' DAY"), std::string::npos);
}

TEST(ParserTest, OrderByLimit) {
  auto query = ParseQuery(
      "SELECT a FROM t ORDER BY a DESC, b ASC, c LIMIT 100");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->order_by.size(), 3u);
  EXPECT_FALSE(query->order_by[0].ascending);
  EXPECT_TRUE(query->order_by[1].ascending);
  EXPECT_TRUE(query->order_by[2].ascending);
  EXPECT_EQ(*query->limit, 100);
}

TEST(ParserTest, IsNullAndInDesugar) {
  auto expr = ParseExpression("x IS NULL");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, AstExprKind::kFuncCall);
  EXPECT_EQ((*expr)->name, "$is_null");
  expr = ParseExpression("x IS NOT NULL");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->name, "$is_not_null");
  expr = ParseExpression("a IN (1, 2, 3)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->ToString(), "(((a = 1) OR (a = 2)) OR (a = 3))");
  expr = ParseExpression("a NOT IN (1, 2)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->ToString(), "NOT ((a = 1) OR (a = 2))");
  EXPECT_FALSE(ParseExpression("a IN ()").ok());
  EXPECT_FALSE(ParseExpression("a IS 5").ok());
}

TEST(ParserTest, HavingClause) {
  auto query = ParseQuery(
      "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n > 5 ORDER BY g");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_NE(query->having, nullptr);
  EXPECT_EQ(query->having->ToString(), "(n > 5)");
  // Round-trips through ToString.
  auto reparsed = ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok()) << query->ToString();
  EXPECT_NE(reparsed->having, nullptr);
}

TEST(ParserTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseQuery("SELECT a FROM t;").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t extra garbage").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t GROUP a").ok());
}

TEST(ParserTest, PaperQueriesParse) {
  auto laghos = ParseQuery(workloads::LaghosQuery());
  ASSERT_TRUE(laghos.ok()) << laghos.status();
  EXPECT_EQ(laghos->items.size(), 5u);
  EXPECT_EQ(laghos->group_by.size(), 1u);
  EXPECT_EQ(*laghos->limit, 100);

  auto deepwater = ParseQuery(workloads::DeepWaterQuery());
  ASSERT_TRUE(deepwater.ok()) << deepwater.status();
  EXPECT_EQ(deepwater->items.size(), 2u);
  EXPECT_FALSE(deepwater->limit);

  auto q1 = ParseQuery(workloads::TpchQ1());
  ASSERT_TRUE(q1.ok()) << q1.status();
  EXPECT_EQ(q1->items.size(), 10u);
  EXPECT_EQ(q1->group_by.size(), 2u);
  EXPECT_EQ(q1->order_by.size(), 2u);
}

TEST(ParserTest, QueryToStringRoundParses) {
  auto query = ParseQuery(workloads::TpchQ1());
  ASSERT_TRUE(query.ok());
  auto reparsed = ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok()) << query->ToString() << "\n" << reparsed.status();
  EXPECT_EQ(reparsed->ToString(), query->ToString());
}

}  // namespace
}  // namespace pocs::sql
