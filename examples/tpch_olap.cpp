// Business OLAP scenario: TPC-H Query 1 (decision-support aggregation)
// over object storage, with the per-stage breakdown the paper reports in
// Table 3 and the full Q1 result table.
//
//   $ ./examples/tpch_olap
#include <cstdio>

#include "workloads/testbed.h"
#include "workloads/tpch.h"

using namespace pocs;

int main() {
  workloads::Testbed testbed;
  workloads::TpchConfig config;
  config.num_files = 4;
  config.rows_per_file = 1 << 15;
  auto data = workloads::GenerateLineitem(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }

  std::string sql = workloads::TpchQ1();
  std::printf("TPC-H Q1:\n%s\n\n", sql.c_str());

  auto result = testbed.Run(sql, "ocs");
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Q1 result (4 groups).
  const auto& table = *result->table;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf("%-16s", table.schema()->field(c).name.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      std::printf("%-16s", table.column(c)->GetDatum(r).ToString().c_str());
    }
    std::printf("\n");
  }

  // Table-3-style breakdown.
  const auto& m = result->metrics;
  struct Row {
    const char* stage;
    double seconds;
  } rows[] = {
      {"Logical Plan Analysis", m.logical_plan_analysis},
      {"Substrait IR Generation", m.ir_generation},
      {"Pushdown & Result Transfer", m.pushdown_and_transfer},
      {"Presto Execution (Post-Scan)", m.post_scan_execution},
      {"Others", m.others},
  };
  std::printf("\n%-30s %10s %8s\n", "Execution Stage", "Time (ms)", "Share");
  for (const Row& row : rows) {
    std::printf("%-30s %10.3f %7.2f%%\n", row.stage, row.seconds * 1e3,
                m.total > 0 ? 100.0 * row.seconds / m.total : 0.0);
  }
  std::printf("%-30s %10.3f %7s\n", "Total", m.total * 1e3, "100%");

  std::printf("\ndata movement: %.1f KB (vs %.1f MB stored)\n",
              m.bytes_from_storage / 1024.0,
              testbed.metastore().GetTable("default", "lineitem")->total_bytes /
                  (1024.0 * 1024.0));

  // Q6: the opposite filter regime (highly selective) — even filter-only
  // pushdown pays off, and the global aggregate returns a single number.
  std::string q6 = workloads::TpchQ6();
  std::printf("\nTPC-H Q6:\n%s\n\n", q6.c_str());
  for (const char* catalog : {"hive", "ocs"}) {
    auto r = testbed.Run(q6, catalog);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", catalog, r.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s revenue=%-14.2f moved=%8.1f KB  time=%.4f s\n",
                catalog, r->table->column(0)->GetFloat64(0),
                r->metrics.bytes_from_storage / 1024.0, r->metrics.total);
  }
  return 0;
}
