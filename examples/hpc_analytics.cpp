// HPC analytics scenario (the paper's motivating workload): a scientist
// interactively queries simulation snapshots stored in a disaggregated
// object store. The same query runs through the three access paths the
// paper compares —
//   hive_raw : no pushdown (whole files over the network),
//   hive     : S3-Select-style filter+projection pushdown,
//   ocs      : Presto-OCS full operator pushdown —
// and prints the movement/time comparison for both LANL-style datasets.
//
//   $ ./examples/hpc_analytics
#include <cstdio>

#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

using namespace pocs;

namespace {

void RunComparison(workloads::Testbed& testbed, const char* title,
                   const std::string& sql) {
  std::printf("=== %s ===\n%s\n\n", title, sql.c_str());
  std::printf("%-10s %16s %14s %14s  %s\n", "path", "moved (KB)", "rows",
              "sim time (s)", "plan after local optimization");
  for (const char* catalog : {"hive_raw", "hive", "ocs"}) {
    auto result = testbed.Run(sql, catalog);
    if (!result.ok()) {
      std::printf("%-10s FAILED: %s\n", catalog,
                  result.status().ToString().c_str());
      continue;
    }
    const auto& m = result->metrics;
    std::printf("%-10s %16.1f %14llu %14.4f  %s\n", catalog,
                m.bytes_from_storage / 1024.0,
                static_cast<unsigned long long>(m.rows_from_storage), m.total,
                result->optimized_plan.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  workloads::Testbed testbed;

  workloads::LaghosConfig laghos;
  laghos.num_files = 8;
  laghos.rows_per_file = 1 << 15;
  auto laghos_data = workloads::GenerateLaghos(laghos);
  if (!laghos_data.ok() || !testbed.Ingest(std::move(*laghos_data)).ok()) {
    std::fprintf(stderr, "laghos ingest failed\n");
    return 1;
  }

  workloads::DeepWaterConfig deepwater;
  deepwater.num_files = 8;
  deepwater.rows_per_file = 1 << 15;
  auto dw_data = workloads::GenerateDeepWater(deepwater);
  if (!dw_data.ok() || !testbed.Ingest(std::move(*dw_data)).ok()) {
    std::fprintf(stderr, "deepwater ingest failed\n");
    return 1;
  }

  RunComparison(testbed, "Laghos: filter + GROUP BY vertex + top-100",
                workloads::LaghosQuery());
  RunComparison(testbed, "Deep Water Impact: filter + projection + GROUP BY",
                workloads::DeepWaterQuery());

  // Monitoring: the connector's sliding-window pushdown history.
  auto& history = testbed.history();
  std::printf("pushdown history (%zu queries tracked):\n",
              history.window_size());
  for (auto kind : {connector::PushedOperator::Kind::kFilter,
                    connector::PushedOperator::Kind::kProject,
                    connector::PushedOperator::Kind::kPartialAggregation,
                    connector::PushedOperator::Kind::kPartialTopN}) {
    auto stats = history.StatsFor(kind);
    if (stats.offered == 0) continue;
    std::printf("  %-12s offered %llu, accepted %llu (%.0f%%)\n",
                connector::PushedOperatorKindName(kind).data(),
                static_cast<unsigned long long>(stats.offered),
                static_cast<unsigned long long>(stats.accepted),
                100.0 * stats.accept_rate());
  }
  return 0;
}
