// Compression × pushdown interaction study (the paper's Q3 / Fig. 6
// scenario as an API walkthrough): the same Deep Water dataset is stored
// under each codec, and the filter-only vs all-operator paths are
// compared within each.
//
//   $ ./examples/compression_study
#include <cstdio>

#include "workloads/deepwater.h"
#include "workloads/testbed.h"

using namespace pocs;

int main() {
  std::printf("%-14s %-10s %14s %14s %12s\n", "codec", "path", "stored (KB)",
              "moved (KB)", "sim time (s)");
  for (auto codec :
       {compress::CodecType::kNone, compress::CodecType::kFastLz,
        compress::CodecType::kDeflateLite, compress::CodecType::kZsLite}) {
    workloads::Testbed testbed;
    workloads::DeepWaterConfig config;
    config.num_files = 4;
    config.rows_per_file = 1 << 15;
    config.codec = codec;
    auto data = workloads::GenerateDeepWater(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
    double stored_kb =
        testbed.metastore().GetTable("default", "deepwater")->total_bytes /
        1024.0;
    for (const char* catalog : {"hive", "ocs"}) {
      auto result = testbed.Run(workloads::DeepWaterQuery(), catalog);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", catalog,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-14s %-10s %14.1f %14.1f %12.4f\n",
                  compress::CodecName(codec).data(),
                  catalog == std::string("hive") ? "filter-only" : "all-ops",
                  stored_kb, result->metrics.bytes_from_storage / 1024.0,
                  result->metrics.total);
    }
  }
  std::printf("\nNote: fastlz/deflate-lite/zs-lite are the repo's Snappy/"
              "GZip/Zstd stand-ins (see DESIGN.md).\n");
  return 0;
}
