// Quickstart: stand up the full simulated stack — object storage with
// OCS, metastore, the minipresto engine with the Presto-OCS connector —
// load a small scientific dataset, and run one SQL query with full
// operator pushdown.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "workloads/laghos.h"
#include "workloads/testbed.h"

using namespace pocs;

int main() {
  // 1. Wire the testbed: compute node ↔ OCS frontend ↔ storage node over
  //    a simulated 10 GbE network (paper Table 1 defaults).
  workloads::Testbed testbed;

  // 2. Generate and ingest a Laghos-like dataset (4 Parquet-lite files).
  workloads::LaghosConfig config;
  config.num_files = 4;
  config.rows_per_file = 1 << 15;
  auto dataset = workloads::GenerateLaghos(config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if (auto st = testbed.Ingest(std::move(*dataset)); !st.ok()) {
    std::fprintf(stderr, "ingest: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Run the paper's Laghos query through the Presto-OCS connector.
  std::string sql = workloads::LaghosQuery();
  std::printf("SQL: %s\n\n", sql.c_str());
  auto result = testbed.Run(sql, "ocs");
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("logical plan : %s\n", result->logical_plan.c_str());
  std::printf("after pushdown: %s\n\n", result->optimized_plan.c_str());

  // 4. Show the first rows of the result.
  const auto& table = *result->table;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::printf("%-14s", table.schema()->field(c).name.c_str());
  }
  std::printf("\n");
  for (size_t r = 0; r < std::min<size_t>(table.num_rows(), 8); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      std::printf("%-14s", table.column(c)->GetDatum(r).ToString().c_str());
    }
    std::printf("\n");
  }
  std::printf("... (%zu rows total)\n\n", table.num_rows());

  // 5. Metrics: the two axes of the paper's evaluation.
  const auto& m = result->metrics;
  std::printf("data movement : %.1f KB from storage (%llu rows)\n",
              m.bytes_from_storage / 1024.0,
              static_cast<unsigned long long>(m.rows_from_storage));
  std::printf("simulated time: %.4f s (plan %.4f, IR %.4f, pushdown+transfer "
              "%.4f, post-scan %.4f)\n",
              m.total, m.logical_plan_analysis, m.ir_generation,
              m.pushdown_and_transfer, m.post_scan_execution);
  std::printf("pushdown      : ");
  for (const auto& d : m.pushdown_decisions) {
    std::printf("%s=%s ", connector::PushedOperatorKindName(d.kind).data(),
                d.accepted ? "yes" : "no");
  }
  std::printf("\n");
  return 0;
}
