#!/usr/bin/env python3
"""Repo linter enforcing presto_ocs C++ invariants.

Rules (each can be suppressed on a line with  // pocs-lint: allow(<rule>)):

  ignored-status     A statement-level call to a function declared to return
                     Status/Result<T> whose value is discarded. These are
                     [[nodiscard]] so the compiler also warns, but the lint
                     catches them even in code that is not compiled (e.g.
                     cfg'd-out branches) and does not depend on warning flags.
  naked-new          `new` outside make_unique/make_shared/placement forms.
                     Ownership must be expressed with smart pointers.
  std-rand           std::rand/srand/rand(). Benchmarks and tests must use
                     <random> engines with fixed seeds for reproducibility.
  pragma-once        Every header starts with `#pragma once` (after the
                     leading comment block).
  relative-include   Project includes are rooted at src/ ("common/status.h"),
                     never relative ("../common/status.h").
  quoted-system      System/third-party headers use <>, project headers "".
  manual-lock        .lock()/.unlock() (or .Lock()/.Unlock()) on a mutex
                     object outside an RAII guard (pocs::MutexLock and
                     friends). Manual unlock paths leak the lock on early
                     return and break exception safety.
  unannotated-mutex  Three sub-checks feeding the compiler-enforced lock
                     discipline (common/thread_annotations.h):
                     (a) declaring a raw std::mutex/std::shared_mutex
                     object — Thread Safety Analysis cannot see it; use
                     pocs::Mutex / pocs::SharedMutex; (b) declaring a
                     std::counting_semaphore/binary_semaphore/latch/
                     barrier — blocking primitives the analysis is equally
                     blind to; build admission/throttle state on
                     pocs::Mutex + condition_variable (see
                     engine/admission.h) so the guard annotations keep
                     working; (c) inside a class that declares a
                     pocs::Mutex member, any data member declared *after*
                     the mutex that carries no POCS_GUARDED_BY/
                     POCS_PT_GUARDED_BY (atomics, condition variables,
                     const and static members are exempt — they need no
                     guard).
  planning-data-rpc  A data-path StorageClient call (.Get/.GetRange/
                     .GetVersioned/.Select) inside split-planning code:
                     a connector's GetSplits body or a metadata_cache.*
                     file. Planning is metadata-only by contract
                     (Stat/DescribeObject/LocateObject) — a data RPC
                     there silently re-moves the bytes pruning exists
                     to avoid (DESIGN.md §13).
  row-loop-in-hot-path
                     A per-row typed accessor (Get{Bool,Int32,Int64,
                     Float64,String}) called inside a for/while body in a
                     hot-path TU (src/exec/*.cpp, src/ocs/*.cpp). Row
                     loops over virtual per-element getters are exactly
                     what the vectorized kernels (columnar/kernels.h,
                     DESIGN.md §15) replace: batch operators should go
                     through CompareScalar/Take/HashRows or typed spans.
                     Suppress with the allow comment where per-row access
                     is genuinely required (e.g. key equality probes on
                     hash collisions).
  partial-agg-merge-sync
                     Cross-file: every aggregate kind inside the
                     `// pocs-lint: begin/end partial-agg-whitelist`
                     markers of the OCS connector (the kinds it pushes
                     to storage in partial form) must have a matching
                     `case AggFunc::k...` in engine::FinalAggSpecs
                     (src/engine/two_phase.cpp). A whitelisted partial
                     without an engine-side merge would silently return
                     per-split rows as if they were global aggregates
                     (DESIGN.md §14).

Modes:
  pocs_lint.py --root <repo>                 lint src/ tests/ bench/ examples/
  pocs_lint.py --root <repo> --nodiscard-check
                                             additionally compile a snippet
                                             that discards a Status and a
                                             Result and require the compiler
                                             to reject both (guards the
                                             [[nodiscard]] annotations).
  pocs_lint.py --root <repo> --thread-safety-check [--clang <clang++>]
                                             compile probe snippets with
                                             clang and require the thread
                                             safety analysis to reject a
                                             lock-free read of a
                                             POCS_GUARDED_BY field and an
                                             out-of-order acquisition —
                                             guards against the annotation
                                             macros silently compiling away.

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

LINT_DIRS = ["src", "tests", "bench", "examples"]
CPP_EXTENSIONS = {".cpp", ".cc", ".h", ".hpp"}

ALLOW_RE = re.compile(r"pocs-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Headers that live outside this repo and therefore must use <> includes.
SYSTEM_INCLUDE_PREFIXES = ("gtest/", "gmock/", "benchmark/")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    Lint regexes run on the result so `new` in a comment or "rand" in a
    string never fires. Raw strings are handled; escapes inside normal
    literals are respected.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == 'R' and nxt == '"':
                m = re.match(r'R"([^(]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * (len(m.group(0))))
                    i += len(m.group(0))
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_status_returning_names(root):
    """Scan headers for functions declared to return Status or Result<T>.

    Used by the ignored-status rule: only calls to *known* Status-returning
    names are flagged, which keeps false positives near zero.
    """
    names = set()
    decl_re = re.compile(
        r"(?:^|[;{}]|\bvirtual\s+|\bstatic\s+)\s*"
        r"(?:\[\[nodiscard\]\]\s*)?"
        r"(?:::)?(?:\w+::)*(?:Status|Result<[^;{}()]*>)\s+"
        r"(\w+)\s*\(",
        re.M,
    )
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for fn in filenames:
            if os.path.splitext(fn)[1] not in {".h", ".hpp"}:
                continue
            with open(os.path.join(dirpath, fn), encoding="utf-8") as f:
                text = strip_comments_and_strings(f.read())
            for m in decl_re.finditer(text):
                names.add(m.group(1))
    # Propagation macros already handle their own statuses.
    names.discard("OK")
    return names


def line_allows(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    if not m:
        return False
    allowed = {r.strip() for r in m.group(1).split(",")}
    return rule in allowed


def allows(raw_lines, line_no, rule):
    """A suppression applies on the flagged line or the line above it."""
    for no in (line_no, line_no - 1):
        if 1 <= no <= len(raw_lines) and line_allows(raw_lines[no - 1], rule):
            return True
    return False


def lint_file(path, rel_path, status_names, findings):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw)
    lines = stripped.splitlines()
    is_header = os.path.splitext(path)[1] in {".h", ".hpp"}

    def report(line_no, rule, message):
        if not allows(raw_lines, line_no, rule):
            findings.append(Finding(rel_path, line_no, rule, message))

    # ---- pragma-once -------------------------------------------------------
    if is_header:
        has_pragma = any(line.strip() == "#pragma once" for line in lines)
        if not has_pragma:
            report(1, "pragma-once", "header missing #pragma once")

    naked_new_re = re.compile(r"(?<![:_\w])new\s+[\w:<]")
    std_rand_re = re.compile(r"\b(?:std::)?s?rand\s*\(")
    manual_lock_re = re.compile(
        r"\b(\w*(?:mu|mutex|mtx)\w*)(?:_)?\s*(?:\.|->)\s*"
        r"(lock_shared|unlock_shared|lock|unlock|"
        r"LockShared|UnlockShared|Lock|Unlock)\s*\(\s*\)"
    )
    raw_mutex_decl_re = re.compile(
        r"\bstd\s*::\s*((?:recursive_|timed_|shared_timed_|shared_)?mutex)"
        r"\s+\w+\s*[;={[]"
    )
    # Blocking primitives Thread Safety Analysis cannot model: a guarded
    # member protected by a semaphore/latch/barrier looks unguarded to the
    # compiler, so the discipline silently erodes. Build on pocs::Mutex +
    # std::condition_variable instead (engine/admission.h,
    # connectors/ocs/split_dispatcher.h are the reference patterns).
    raw_blocking_decl_re = re.compile(
        r"\bstd\s*::\s*(counting_semaphore|binary_semaphore|latch|barrier)"
        r"\b\s*(?:<[^<>;]*>)?\s+\w+\s*[;={[(]"
    )
    include_re = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

    for idx, line in enumerate(lines):
        line_no = idx + 1

        # Include paths live inside string literals, which the stripped
        # text blanks out — match them on the raw line.
        raw_line = raw_lines[idx] if idx < len(raw_lines) else ""
        m = include_re.match(raw_line)
        if m:
            quote, target = m.groups()
            if quote == '"':
                if target.startswith("../") or "/../" in target:
                    report(line_no, "relative-include",
                           f'relative include "{target}"; root at src/')
                if target.startswith(SYSTEM_INCLUDE_PREFIXES):
                    report(line_no, "quoted-system",
                           f'third-party header "{target}" must use <>')

        if naked_new_re.search(line):
            report(line_no, "naked-new",
                   "naked new; use std::make_unique/make_shared")

        if std_rand_re.search(line):
            report(line_no, "std-rand",
                   "std::rand/srand; use a seeded <random> engine")

        m = manual_lock_re.search(line)
        if m:
            report(line_no, "manual-lock",
                   f"manual {m.group(2)}() on '{m.group(1)}'; use "
                   "pocs::MutexLock (or SharedMutexLock/SharedReaderLock)")

        m = raw_mutex_decl_re.search(line)
        if m:
            report(line_no, "unannotated-mutex",
                   f"raw std::{m.group(1)} declaration; use pocs::Mutex / "
                   "pocs::SharedMutex (common/thread_annotations.h) so the "
                   "thread safety analysis can see it")

        m = raw_blocking_decl_re.search(line)
        if m:
            report(line_no, "unannotated-mutex",
                   f"std::{m.group(1)} declaration; thread safety analysis "
                   "cannot model it, so guarded state behind it goes "
                   "unchecked — use pocs::Mutex + std::condition_variable "
                   "(see engine/admission.h for the pattern)")

    check_unannotated_members(stripped, report)
    check_planning_data_rpc(stripped, rel_path, report)
    check_row_loop_in_hot_path(stripped, rel_path, report)

    # ---- ignored-status (needs statement joining) --------------------------
    joined = stripped
    # Join continuation lines so a multi-line call reads as one statement.
    statements = re.split(r"[;{}]", joined)
    offset_line = 1
    pos = 0
    stmt_call_re = re.compile(
        r"^\s*(?:[\w\]\)]+(?:\.|->))?(\w+)\s*\((?:[^()]|\([^()]*\))*\)\s*$"
    )
    consumed_re = re.compile(
        r"(=|\breturn\b|POCS_RETURN_NOT_OK|POCS_ASSIGN_OR_RETURN|"
        r"EXPECT|ASSERT|CHECK|\bco_return\b|\?|\bthrow\b)"
    )
    for stmt in statements:
        stmt_line = offset_line + joined.count("\n", 0, pos)
        pos += len(stmt) + 1
        m = stmt_call_re.match(stmt.replace("\n", " ").rstrip())
        if not m:
            continue
        name = m.group(1)
        if name not in status_names:
            continue
        if consumed_re.search(stmt):
            continue
        first_line = stmt_line + stmt.lstrip("\n").count("", 0, 0)
        report(first_line, "ignored-status",
               f"result of Status/Result-returning '{name}(...)' is discarded")


POCS_MUTEX_MEMBER_RE = re.compile(
    r"^(?:mutable\s+)?(?:pocs\s*::\s*)?(?:Mutex|SharedMutex)\s+\w+")

# Member types that need no POCS_GUARDED_BY: they synchronize themselves
# (atomics), are waited on rather than guarded (condition variables), or
# cannot be written after construction (const/static/constexpr).
UNGUARDED_EXEMPT_RE = re.compile(
    r"std\s*::\s*atomic|condition_variable|"
    r"^(?:static|constexpr|const|using|typedef|friend)\b")


def check_unannotated_members(stripped, report):
    """Part (b) of unannotated-mutex: inside a class/struct that declares a
    pocs::Mutex member, every data member declared after it must carry
    POCS_GUARDED_BY/POCS_PT_GUARDED_BY (or be exempt/suppressed).

    Works on the comment/string-stripped text: class bodies are brace-
    matched, nested brace groups (methods, nested types, initializers) are
    blanked to `;`, and the remaining `;`-separated member declarations are
    inspected in order.
    """
    for head in re.finditer(r"\b(?:class|struct)\b[^;{}()]*{", stripped):
        open_pos = head.end() - 1
        depth = 0
        close_pos = None
        for i in range(open_pos, len(stripped)):
            c = stripped[i]
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    close_pos = i
                    break
        if close_pos is None:
            continue
        body = list(stripped[open_pos + 1:close_pos])
        # Blank nested brace groups, keeping newlines for line numbers and
        # terminating each with `;` so inline method definitions read as
        # complete (skippable) statements.
        depth = 0
        for i, c in enumerate(body):
            if c == "{":
                depth += 1
                body[i] = " "
            elif c == "}":
                depth -= 1
                body[i] = ";"
            elif depth > 0 and c != "\n":
                body[i] = " "
        body = "".join(body)

        saw_mutex = False
        pos = 0
        for stmt in body.split(";"):
            stmt_start = pos
            pos += len(stmt) + 1
            # Line of the first non-blank character of the statement.
            lead = len(stmt) - len(stmt.lstrip())
            line_no = 1 + stripped.count("\n", 0, open_pos + 1 + stmt_start +
                                         lead)
            flat = " ".join(stmt.split())
            flat = re.sub(r"^(?:public|protected|private)\s*:\s*", "", flat)
            if not flat:
                continue
            if POCS_MUTEX_MEMBER_RE.match(flat):
                saw_mutex = True
                continue
            if not saw_mutex:
                continue
            if "POCS_GUARDED_BY" in flat or "POCS_PT_GUARDED_BY" in flat:
                continue
            # Anything with parens that is not an annotation is a function
            # declaration/definition, not a data member.
            if "(" in flat:
                continue
            if UNGUARDED_EXEMPT_RE.search(flat):
                continue
            m = re.search(r"(\w+)\s*(?:=.*)?$", flat)
            member = m.group(1) if m else flat
            report(line_no, "unannotated-mutex",
                   f"member '{member}' follows a pocs::Mutex in this class "
                   "but has no POCS_GUARDED_BY; annotate it (or suppress "
                   "with a comment explaining why it needs no guard)")


# Split-planning code paths: whole metadata-cache translation units plus
# every GetSplits body. Planning may Stat/DescribeObject/LocateObject —
# metadata-only — but never fetch or scan object data.
PLANNING_FILE_RE = re.compile(r"(?:^|/)metadata_cache\.(?:h|hpp|cpp|cc)$")
PLANNING_DATA_RPC_RE = re.compile(
    r"(?:\.|->)\s*(Get|GetRange|GetVersioned|Select)\s*\(")


def check_planning_data_rpc(stripped, rel_path, report):
    """planning-data-rpc: flag data-path StorageClient calls inside
    split-planning code (GetSplits bodies, metadata_cache.* files)."""
    regions = []
    if PLANNING_FILE_RE.search(rel_path.replace(os.sep, "/")):
        regions.append((0, len(stripped)))
    else:
        for m in re.finditer(r"\bGetSplits\s*\(", stripped):
            # Walk past the parameter list, then decide declaration (';'
            # first) vs definition ('{' first); brace-match the body.
            i, depth = m.end() - 1, 0
            while i < len(stripped):
                if stripped[i] == "(":
                    depth += 1
                elif stripped[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            j = i + 1
            while j < len(stripped) and stripped[j] not in "{;":
                j += 1
            if j >= len(stripped) or stripped[j] == ";":
                continue
            k, depth = j, 0
            while k < len(stripped):
                if stripped[k] == "{":
                    depth += 1
                elif stripped[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            regions.append((j, k))
    for start, end in regions:
        for m in PLANNING_DATA_RPC_RE.finditer(stripped, start, end):
            line_no = 1 + stripped.count("\n", 0, m.start())
            report(line_no, "planning-data-rpc",
                   f"data RPC '{m.group(1)}()' in split-planning code; "
                   "planning is metadata-only — use Stat/DescribeObject/"
                   "LocateObject, or move the data access to the page "
                   "source")


# TUs on the batch-execution hot path: the engine's operators and the
# storage node's embedded engine. Headers are exempt (inline helpers like
# Column::GetInt64 itself live there), as are tests/benches (naive
# reference loops are the point there).
HOT_PATH_FILE_RE = re.compile(r"^src/(?:exec|ocs)/[^/]+\.(?:cpp|cc)$")
ROW_GET_RE = re.compile(
    r"(?:\.|->)\s*(Get(?:Bool|Int32|Int64|Float64|String))\s*\(")


def check_row_loop_in_hot_path(stripped, rel_path, report):
    """row-loop-in-hot-path: flag per-row typed accessors inside loop
    bodies in hot-path TUs; batch work belongs in the vectorized kernels
    (DESIGN.md §15)."""
    if not HOT_PATH_FILE_RE.match(rel_path.replace(os.sep, "/")):
        return
    reported = set()
    for m in re.finditer(r"\b(?:for|while)\s*\(", stripped):
        # Walk past the loop header's parens, then bound the body: a
        # braced compound statement or a single statement up to ';'.
        i, depth = m.end() - 1, 0
        while i < len(stripped):
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(stripped) and stripped[j] in " \t\n":
            j += 1
        if j >= len(stripped):
            continue
        if stripped[j] == "{":
            k, depth = j, 0
            while k < len(stripped):
                if stripped[k] == "{":
                    depth += 1
                elif stripped[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            start, stop = j, k
        else:
            stop = stripped.find(";", j)
            if stop == -1:
                continue
            start = j
        for g in ROW_GET_RE.finditer(stripped, start, stop):
            line_no = 1 + stripped.count("\n", 0, g.start())
            if line_no in reported:  # nested loops: report a line once
                continue
            reported.add(line_no)
            report(line_no, "row-loop-in-hot-path",
                   f"per-row {g.group(1)}() in a loop on the execution "
                   "hot path; use the vectorized kernels "
                   "(columnar/kernels.h) or typed spans instead")


PARTIAL_AGG_WHITELIST_FILE = "src/connectors/ocs/ocs_connector.cpp"
PARTIAL_AGG_MERGE_FILE = "src/engine/two_phase.cpp"
PARTIAL_AGG_BEGIN = "pocs-lint: begin partial-agg-whitelist"
PARTIAL_AGG_END = "pocs-lint: end partial-agg-whitelist"
AGG_CASE_RE = re.compile(r"\bcase\s+(?:\w+::)*AggFunc::(k\w+)\s*:")


def check_partial_agg_merge_sync(root):
    """partial-agg-merge-sync: every aggregate kind the OCS connector
    whitelists for storage-side partial execution must have a merge case
    in engine::FinalAggSpecs. Cross-file, so it runs once per lint
    invocation rather than per file. Quiet when the connector file is
    absent (throwaway test roots)."""
    findings = []
    wl_rel = PARTIAL_AGG_WHITELIST_FILE.replace("/", os.sep)
    wl_path = os.path.join(root, wl_rel)
    if not os.path.isfile(wl_path):
        return findings
    with open(wl_path, encoding="utf-8") as f:
        wl_lines = f.read().splitlines()

    begin = end = None
    for i, line in enumerate(wl_lines):
        if PARTIAL_AGG_BEGIN in line and begin is None:
            begin = i
        elif PARTIAL_AGG_END in line and end is None:
            end = i
    if begin is None or end is None or end <= begin:
        findings.append(Finding(
            wl_rel, 1, "partial-agg-merge-sync",
            f"missing or malformed '{PARTIAL_AGG_BEGIN}' / "
            f"'{PARTIAL_AGG_END}' markers — the storage partial-agg "
            "whitelist must stay lintable"))
        return findings

    whitelist = []  # (line_no, kind)
    for i in range(begin + 1, end):
        for m in AGG_CASE_RE.finditer(wl_lines[i]):
            whitelist.append((i + 1, m.group(1)))
    if not whitelist:
        findings.append(Finding(
            wl_rel, begin + 1, "partial-agg-merge-sync",
            "whitelist markers enclose no 'case AggFunc::k...:' labels"))
        return findings

    merge_rel = PARTIAL_AGG_MERGE_FILE.replace("/", os.sep)
    merge_path = os.path.join(root, merge_rel)
    if not os.path.isfile(merge_path):
        findings.append(Finding(
            wl_rel, begin + 1, "partial-agg-merge-sync",
            f"{PARTIAL_AGG_MERGE_FILE} not found — cannot verify the "
            "engine-side merges for the storage partial-agg whitelist"))
        return findings
    with open(merge_path, encoding="utf-8") as f:
        merge_text = f.read()

    # Scope the merge cases to the FinalAggSpecs definition body.
    defn = re.search(r"\bFinalAggSpecs\s*\(", merge_text)
    body_cases = set()
    if defn:
        i, depth = defn.end() - 1, 0
        while i < len(merge_text):
            if merge_text[i] == "(":
                depth += 1
            elif merge_text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(merge_text) and merge_text[j] not in "{;":
            j += 1
        if j < len(merge_text) and merge_text[j] == "{":
            k, depth = j, 0
            while k < len(merge_text):
                if merge_text[k] == "{":
                    depth += 1
                elif merge_text[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            for m in AGG_CASE_RE.finditer(merge_text, j, k):
                body_cases.add(m.group(1))
    if not body_cases:
        findings.append(Finding(
            wl_rel, begin + 1, "partial-agg-merge-sync",
            f"no FinalAggSpecs switch cases found in "
            f"{PARTIAL_AGG_MERGE_FILE} — cannot verify the storage "
            "partial-agg whitelist"))
        return findings

    for line_no, kind in whitelist:
        if kind in body_cases:
            continue
        if line_allows(wl_lines[line_no - 1], "partial-agg-merge-sync"):
            continue
        findings.append(Finding(
            wl_rel, line_no, "partial-agg-merge-sync",
            f"AggFunc::{kind} is whitelisted for storage-side partial "
            f"aggregation but has no merge case in FinalAggSpecs "
            f"({PARTIAL_AGG_MERGE_FILE}) — the engine would treat "
            "per-split partials as final results"))
    return findings


def run_nodiscard_check(root):
    """Compile-fail check: discarding Status/Result must not compile warning-
    free. Returns a list of error strings (empty = pass)."""
    cxx = os.environ.get("CXX", "c++")
    snippet = r"""
#include "common/status.h"
pocs::Status MakeStatus() { return pocs::Status::Internal("x"); }
pocs::Result<int> MakeResult() { return pocs::Status::Internal("x"); }
int main() {
  MakeStatus();   // must trigger -Werror=unused-result
  MakeResult();   // must trigger -Werror=unused-result
  return 0;
}
"""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "nodiscard_check.cpp")
        with open(src, "w", encoding="utf-8") as f:
            f.write(snippet)
        cmd = [cxx, "-std=c++20", "-I", os.path.join(root, "src"),
               "-Werror=unused-result", "-fsyntax-only", src]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
        except FileNotFoundError:
            return [f"nodiscard-check: compiler '{cxx}' not found"]
        if proc.returncode == 0:
            errors.append(
                "nodiscard-check: discarding Status/Result compiled clean — "
                "[[nodiscard]] annotations are missing or broken")
        else:
            for probe in ("MakeStatus", "MakeResult"):
                if probe not in proc.stderr:
                    errors.append(
                        f"nodiscard-check: no unused-result diagnostic for "
                        f"{probe}()")
    return errors


def find_clang(explicit):
    """Resolve a clang++ binary: --clang flag, then $POCS_CLANGXX, then
    common names on PATH. Returns None when unavailable."""
    candidates = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("POCS_CLANGXX")
    if env:
        candidates.append(env)
    candidates += ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]
    for cand in candidates:
        found = shutil.which(cand)
        if found:
            return found
    return None


# Probe 1: a lock-free read of a guarded field. The analysis MUST reject
# this; if it compiles, the annotations are compiling away (wrong compiler,
# broken macro plumbing) and the entire discipline is silently off.
TS_PROBE_BAD_READ = r"""
#include "common/thread_annotations.h"
struct Probe {
  pocs::Mutex mu;
  int guarded POCS_GUARDED_BY(mu) = 0;
  int ReadWithoutLock() { return guarded; }
};
int main() {
  Probe p;
  return p.ReadWithoutLock();
}
"""

# Probe 2: the same read under pocs::MutexLock. MUST compile: proves the
# scoped capability actually satisfies the requirement (a false positive
# here would make the whole build unshippable).
TS_PROBE_GOOD_READ = r"""
#include "common/thread_annotations.h"
struct Probe {
  pocs::Mutex mu;
  int guarded POCS_GUARDED_BY(mu) = 0;
  int ReadWithLock() {
    pocs::MutexLock lock(mu);
    return guarded;
  }
};
int main() {
  Probe p;
  return p.ReadWithLock();
}
"""

# Probe 3: acquiring in violation of a declared ACQUIRED_AFTER ordering.
# MUST be rejected under -Wthread-safety-beta — this is the sub-analysis
# that enforces the repo's documented lock nesting (DESIGN.md SS11).
TS_PROBE_BAD_ORDER = r"""
#include "common/thread_annotations.h"
struct Probe {
  pocs::Mutex a;
  pocs::Mutex b POCS_ACQUIRED_AFTER(a);
  void WrongOrder() {
    b.Lock();
    a.Lock();
    a.Unlock();
    b.Unlock();
  }
};
int main() {
  Probe p;
  p.WrongOrder();
  return 0;
}
"""


def run_thread_safety_check(root, clang):
    """Compile-fail checks for the thread safety annotations. Returns a
    list of error strings (empty = pass)."""
    cxx = find_clang(clang)
    if cxx is None:
        return ["thread-safety-check: no clang++ found (the analysis is "
                "clang-only); pass --clang or set $POCS_CLANGXX"]
    base = [cxx, "-std=c++20", "-I", os.path.join(root, "src"),
            "-Wthread-safety", "-Wthread-safety-beta",
            "-Werror=thread-safety", "-Werror=thread-safety-beta",
            "-fsyntax-only"]
    probes = [
        ("guarded-read-without-lock", TS_PROBE_BAD_READ, False),
        ("guarded-read-with-lock", TS_PROBE_GOOD_READ, True),
        ("out-of-order-acquire", TS_PROBE_BAD_ORDER, False),
    ]
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        for name, snippet, must_compile in probes:
            src = os.path.join(tmp, name.replace("-", "_") + ".cpp")
            with open(src, "w", encoding="utf-8") as f:
                f.write(snippet)
            try:
                proc = subprocess.run(base + [src], capture_output=True,
                                      text=True, timeout=120)
            except (FileNotFoundError, subprocess.TimeoutExpired) as e:
                return [f"thread-safety-check: cannot run {cxx}: {e}"]
            if must_compile and proc.returncode != 0:
                errors.append(
                    f"thread-safety-check: probe '{name}' must compile "
                    f"clean but was rejected:\n{proc.stderr.strip()}")
            elif not must_compile:
                if proc.returncode == 0:
                    errors.append(
                        f"thread-safety-check: probe '{name}' compiled "
                        "clean — the annotations are compiling away or the "
                        "analysis is off")
                elif "thread-safety" not in proc.stderr:
                    errors.append(
                        f"thread-safety-check: probe '{name}' failed for a "
                        f"reason other than the thread safety analysis:\n"
                        f"{proc.stderr.strip()}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument("--nodiscard-check", action="store_true",
                        help="also run the [[nodiscard]] compile-fail check")
    parser.add_argument("--thread-safety-check", action="store_true",
                        help="also run the clang thread-safety compile-fail "
                             "probes")
    parser.add_argument("--clang", default=None,
                        help="clang++ binary for --thread-safety-check")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: repo dirs)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    status_names = collect_status_returning_names(root)

    files = []
    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
    else:
        for d in LINT_DIRS:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, filenames in os.walk(base):
                for fn in sorted(filenames):
                    if os.path.splitext(fn)[1] in CPP_EXTENSIONS:
                        files.append(os.path.join(dirpath, fn))

    if not files:
        # A typo'd --root or an empty checkout must not read as a clean
        # pass, especially in CI.
        print(f"pocs_lint: no lintable files under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        try:
            lint_file(path, rel, status_names, findings)
        except (OSError, UnicodeDecodeError) as e:
            print(f"pocs_lint: cannot read {rel}: {e}", file=sys.stderr)
            return 2

    findings += check_partial_agg_merge_sync(root)

    for f in findings:
        print(f)

    check_errors = []
    if args.nodiscard_check:
        check_errors += run_nodiscard_check(root)
    if args.thread_safety_check:
        check_errors += run_thread_safety_check(root, args.clang)
    for e in check_errors:
        print(e)

    total = len(findings) + len(check_errors)
    print(f"pocs_lint: {total} finding(s) across {len(files)} file(s)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
