#!/usr/bin/env python3
"""Repo linter enforcing presto_ocs C++ invariants.

Rules (each can be suppressed on a line with  // pocs-lint: allow(<rule>)):

  ignored-status     A statement-level call to a function declared to return
                     Status/Result<T> whose value is discarded. These are
                     [[nodiscard]] so the compiler also warns, but the lint
                     catches them even in code that is not compiled (e.g.
                     cfg'd-out branches) and does not depend on warning flags.
  naked-new          `new` outside make_unique/make_shared/placement forms.
                     Ownership must be expressed with smart pointers.
  std-rand           std::rand/srand/rand(). Benchmarks and tests must use
                     <random> engines with fixed seeds for reproducibility.
  pragma-once        Every header starts with `#pragma once` (after the
                     leading comment block).
  relative-include   Project includes are rooted at src/ ("common/status.h"),
                     never relative ("../common/status.h").
  quoted-system      System/third-party headers use <>, project headers "".
  manual-lock        .lock()/.unlock() on a mutex object outside an RAII
                     guard (std::lock_guard / std::unique_lock /
                     std::scoped_lock). Manual unlock paths leak the lock on
                     early return and break exception safety.

Modes:
  pocs_lint.py --root <repo>                 lint src/ tests/ bench/ examples/
  pocs_lint.py --root <repo> --nodiscard-check
                                             additionally compile a snippet
                                             that discards a Status and a
                                             Result and require the compiler
                                             to reject both (guards the
                                             [[nodiscard]] annotations).

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

LINT_DIRS = ["src", "tests", "bench", "examples"]
CPP_EXTENSIONS = {".cpp", ".cc", ".h", ".hpp"}

ALLOW_RE = re.compile(r"pocs-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Headers that live outside this repo and therefore must use <> includes.
SYSTEM_INCLUDE_PREFIXES = ("gtest/", "gmock/", "benchmark/")


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    Lint regexes run on the result so `new` in a comment or "rand" in a
    string never fires. Raw strings are handled; escapes inside normal
    literals are respected.
    """
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == 'R' and nxt == '"':
                m = re.match(r'R"([^(]*)\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * (len(m.group(0))))
                    i += len(m.group(0))
                else:
                    out.append(c)
                    i += 1
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                state = "code"
                out.append('"')
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                state = "code"
                out.append("'")
                i += 1
            else:
                out.append(" ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_status_returning_names(root):
    """Scan headers for functions declared to return Status or Result<T>.

    Used by the ignored-status rule: only calls to *known* Status-returning
    names are flagged, which keeps false positives near zero.
    """
    names = set()
    decl_re = re.compile(
        r"(?:^|[;{}]|\bvirtual\s+|\bstatic\s+)\s*"
        r"(?:\[\[nodiscard\]\]\s*)?"
        r"(?:::)?(?:\w+::)*(?:Status|Result<[^;{}()]*>)\s+"
        r"(\w+)\s*\(",
        re.M,
    )
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for fn in filenames:
            if os.path.splitext(fn)[1] not in {".h", ".hpp"}:
                continue
            with open(os.path.join(dirpath, fn), encoding="utf-8") as f:
                text = strip_comments_and_strings(f.read())
            for m in decl_re.finditer(text):
                names.add(m.group(1))
    # Propagation macros already handle their own statuses.
    names.discard("OK")
    return names


def line_allows(raw_line, rule):
    m = ALLOW_RE.search(raw_line)
    if not m:
        return False
    allowed = {r.strip() for r in m.group(1).split(",")}
    return rule in allowed


def allows(raw_lines, line_no, rule):
    """A suppression applies on the flagged line or the line above it."""
    for no in (line_no, line_no - 1):
        if 1 <= no <= len(raw_lines) and line_allows(raw_lines[no - 1], rule):
            return True
    return False


def lint_file(path, rel_path, status_names, findings):
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    raw_lines = raw.splitlines()
    stripped = strip_comments_and_strings(raw)
    lines = stripped.splitlines()
    is_header = os.path.splitext(path)[1] in {".h", ".hpp"}

    def report(line_no, rule, message):
        if not allows(raw_lines, line_no, rule):
            findings.append(Finding(rel_path, line_no, rule, message))

    # ---- pragma-once -------------------------------------------------------
    if is_header:
        has_pragma = any(line.strip() == "#pragma once" for line in lines)
        if not has_pragma:
            report(1, "pragma-once", "header missing #pragma once")

    naked_new_re = re.compile(r"(?<![:_\w])new\s+[\w:<]")
    std_rand_re = re.compile(r"\b(?:std::)?s?rand\s*\(")
    manual_lock_re = re.compile(
        r"\b(\w*(?:mu|mutex|mtx)\w*)(?:_)?\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\)"
    )
    include_re = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')

    for idx, line in enumerate(lines):
        line_no = idx + 1

        # Include paths live inside string literals, which the stripped
        # text blanks out — match them on the raw line.
        raw_line = raw_lines[idx] if idx < len(raw_lines) else ""
        m = include_re.match(raw_line)
        if m:
            quote, target = m.groups()
            if quote == '"':
                if target.startswith("../") or "/../" in target:
                    report(line_no, "relative-include",
                           f'relative include "{target}"; root at src/')
                if target.startswith(SYSTEM_INCLUDE_PREFIXES):
                    report(line_no, "quoted-system",
                           f'third-party header "{target}" must use <>')

        if naked_new_re.search(line):
            report(line_no, "naked-new",
                   "naked new; use std::make_unique/make_shared")

        if std_rand_re.search(line):
            report(line_no, "std-rand",
                   "std::rand/srand; use a seeded <random> engine")

        m = manual_lock_re.search(line)
        if m:
            report(line_no, "manual-lock",
                   f"manual {m.group(2)}() on '{m.group(1)}'; use "
                   "std::lock_guard/std::unique_lock")

    # ---- ignored-status (needs statement joining) --------------------------
    joined = stripped
    # Join continuation lines so a multi-line call reads as one statement.
    statements = re.split(r"[;{}]", joined)
    offset_line = 1
    pos = 0
    stmt_call_re = re.compile(
        r"^\s*(?:[\w\]\)]+(?:\.|->))?(\w+)\s*\((?:[^()]|\([^()]*\))*\)\s*$"
    )
    consumed_re = re.compile(
        r"(=|\breturn\b|POCS_RETURN_NOT_OK|POCS_ASSIGN_OR_RETURN|"
        r"EXPECT|ASSERT|CHECK|\bco_return\b|\?|\bthrow\b)"
    )
    for stmt in statements:
        stmt_line = offset_line + joined.count("\n", 0, pos)
        pos += len(stmt) + 1
        m = stmt_call_re.match(stmt.replace("\n", " ").rstrip())
        if not m:
            continue
        name = m.group(1)
        if name not in status_names:
            continue
        if consumed_re.search(stmt):
            continue
        first_line = stmt_line + stmt.lstrip("\n").count("", 0, 0)
        report(first_line, "ignored-status",
               f"result of Status/Result-returning '{name}(...)' is discarded")


def run_nodiscard_check(root):
    """Compile-fail check: discarding Status/Result must not compile warning-
    free. Returns a list of error strings (empty = pass)."""
    cxx = os.environ.get("CXX", "c++")
    snippet = r"""
#include "common/status.h"
pocs::Status MakeStatus() { return pocs::Status::Internal("x"); }
pocs::Result<int> MakeResult() { return pocs::Status::Internal("x"); }
int main() {
  MakeStatus();   // must trigger -Werror=unused-result
  MakeResult();   // must trigger -Werror=unused-result
  return 0;
}
"""
    errors = []
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "nodiscard_check.cpp")
        with open(src, "w", encoding="utf-8") as f:
            f.write(snippet)
        cmd = [cxx, "-std=c++20", "-I", os.path.join(root, "src"),
               "-Werror=unused-result", "-fsyntax-only", src]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=120)
        except FileNotFoundError:
            return [f"nodiscard-check: compiler '{cxx}' not found"]
        if proc.returncode == 0:
            errors.append(
                "nodiscard-check: discarding Status/Result compiled clean — "
                "[[nodiscard]] annotations are missing or broken")
        else:
            for probe in ("MakeStatus", "MakeResult"):
                if probe not in proc.stderr:
                    errors.append(
                        f"nodiscard-check: no unused-result diagnostic for "
                        f"{probe}()")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument("--nodiscard-check", action="store_true",
                        help="also run the [[nodiscard]] compile-fail check")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: repo dirs)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    status_names = collect_status_returning_names(root)

    files = []
    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
    else:
        for d in LINT_DIRS:
            base = os.path.join(root, d)
            if not os.path.isdir(base):
                continue
            for dirpath, _, filenames in os.walk(base):
                for fn in sorted(filenames):
                    if os.path.splitext(fn)[1] in CPP_EXTENSIONS:
                        files.append(os.path.join(dirpath, fn))

    if not files:
        # A typo'd --root or an empty checkout must not read as a clean
        # pass, especially in CI.
        print(f"pocs_lint: no lintable files under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in files:
        rel = os.path.relpath(path, root)
        try:
            lint_file(path, rel, status_names, findings)
        except (OSError, UnicodeDecodeError) as e:
            print(f"pocs_lint: cannot read {rel}: {e}", file=sys.stderr)
            return 2

    for f in findings:
        print(f)

    nodiscard_errors = []
    if args.nodiscard_check:
        nodiscard_errors = run_nodiscard_check(root)
        for e in nodiscard_errors:
            print(e)

    total = len(findings) + len(nodiscard_errors)
    print(f"pocs_lint: {total} finding(s) across {len(files)} file(s)")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
