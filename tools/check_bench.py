#!/usr/bin/env python3
"""Diff a BENCH_*.json report against a committed baseline.

Usage:
    tools/check_bench.py BENCH_PR7.json --baseline bench/baselines/BENCH_PR7.smoke.json

The report schema (bench/report.h) tags every metric with a kind that
decides how it is compared:

  exact   Counts — rows, bytes, splits, pruning/pushdown decisions.
          Functions of (seed, scale, code); any drift beyond
          --exact-tolerance (default 0, i.e. bit-for-bit) fails.

  timing  Wall-derived seconds. Machine-dependent, so the gate is
          deliberately loose: a metric fails only when it exceeds the
          baseline by more than --timing-tolerance (a ratio; default 10.0
          = 11x slower) AND by more than --timing-floor seconds (default
          0.05, so microsecond noise can never trip it). Faster is
          always fine.

Config (smoke/scale/seed) must match between the two reports — exact
metrics are only comparable for identical workload parameters.

--require-nonzero NAME (repeatable) additionally fails the gate when the
named candidate metric is missing or zero, regardless of the baseline.
CI uses it to catch silently disabled machinery — e.g. a repeat-scan
bench where `process.ocs.rowgroup_cache.hit` dropping to zero means the
row-group cache stopped caching even though every count still matches.

--require-nonzero-glob PATTERN (repeatable) is the fnmatch-style variant
for metric families whose exact names depend on workload config — e.g.
`concurrent.tenant.*.queries` gates that every tenant of the concurrent
bench saw traffic. The gate fails when NO candidate metric matches the
pattern, or when any matching metric is zero.

Exit codes: 0 ok, 1 regression or malformed input, 2 usage error.
Metrics present in the candidate but not the baseline are reported as
informational only; refresh the baseline when instrumentation grows.
"""

import argparse
import fnmatch
import json
import sys

KNOWN_SCHEMA_VERSIONS = (1,)


def load_report(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"check_bench: cannot read {path}: {e}")
    version = report.get("schema_version")
    if version not in KNOWN_SCHEMA_VERSIONS:
        raise SystemExit(
            f"check_bench: {path}: unsupported schema_version {version!r} "
            f"(known: {KNOWN_SCHEMA_VERSIONS})")
    metrics = {}
    for m in report.get("metrics", []):
        name, kind, value = m.get("name"), m.get("kind"), m.get("value")
        if not isinstance(name, str) or kind not in ("exact", "timing") \
                or not isinstance(value, (int, float)):
            raise SystemExit(f"check_bench: {path}: malformed metric {m!r}")
        if name in metrics:
            raise SystemExit(f"check_bench: {path}: duplicate metric {name!r}")
        metrics[name] = (kind, float(value))
    return report, metrics


def main():
    parser = argparse.ArgumentParser(
        description="Compare a bench report against a baseline.")
    parser.add_argument("candidate", help="freshly generated BENCH_*.json")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline BENCH_*.json")
    parser.add_argument("--exact-tolerance", type=float, default=0.0,
                        help="max relative drift for 'exact' metrics "
                             "(default 0: identical)")
    parser.add_argument("--timing-tolerance", type=float, default=10.0,
                        help="max slowdown ratio above baseline for "
                             "'timing' metrics (default 10.0 = 11x)")
    parser.add_argument("--timing-floor", type=float, default=0.05,
                        help="absolute seconds a timing metric must exceed "
                             "the baseline by before it can fail "
                             "(default 0.05)")
    parser.add_argument("--require-nonzero", action="append", default=[],
                        metavar="NAME",
                        help="fail if the named candidate metric is missing "
                             "or zero (repeatable; independent of the "
                             "baseline)")
    parser.add_argument("--require-nonzero-glob", action="append", default=[],
                        metavar="PATTERN",
                        help="fnmatch pattern: fail if no candidate metric "
                             "matches, or any matching metric is zero "
                             "(repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="print every comparison, not just failures")
    args = parser.parse_args()
    if args.exact_tolerance < 0 or args.timing_tolerance < 0 \
            or args.timing_floor < 0:
        parser.error("tolerances must be non-negative")

    cand_report, cand = load_report(args.candidate)
    base_report, base = load_report(args.baseline)

    for key in ("smoke", "scale", "seed"):
        if cand_report.get(key) != base_report.get(key):
            print(f"FAIL: config mismatch: {key}: candidate="
                  f"{cand_report.get(key)!r} baseline={base_report.get(key)!r}"
                  f" — exact metrics are not comparable across configs")
            return 1

    failures = []
    compared = 0
    for name, (kind, base_value) in sorted(base.items()):
        if name not in cand:
            failures.append(f"{name}: missing from candidate "
                            f"(baseline {kind} = {base_value:g})")
            continue
        cand_kind, cand_value = cand[name]
        if cand_kind != kind:
            failures.append(f"{name}: kind changed {kind} -> {cand_kind}")
            continue
        compared += 1
        if kind == "exact":
            denom = max(abs(base_value), 1e-12)
            drift = abs(cand_value - base_value) / denom
            ok = drift <= args.exact_tolerance
            detail = (f"{name}: exact {base_value:g} -> {cand_value:g} "
                      f"(drift {drift:.3%}, tol {args.exact_tolerance:.3%})")
        else:
            excess = cand_value - base_value
            ratio = cand_value / base_value if base_value > 0 else 0.0
            ok = (excess <= args.timing_floor
                  or cand_value <= base_value * (1.0 + args.timing_tolerance))
            detail = (f"{name}: timing {base_value:g}s -> {cand_value:g}s "
                      f"(x{ratio:.2f}, tol x{1.0 + args.timing_tolerance:g} "
                      f"or +{args.timing_floor:g}s)")
        if not ok:
            failures.append(detail)
        elif args.list:
            print(f"ok    {detail}")

    for name in args.require_nonzero:
        if name not in cand:
            failures.append(f"{name}: required-nonzero metric missing "
                            f"from candidate")
        elif cand[name][1] == 0:
            failures.append(f"{name}: required-nonzero metric is 0")

    for pattern in args.require_nonzero_glob:
        matches = sorted(fnmatch.filter(cand, pattern))
        if not matches:
            failures.append(f"{pattern}: no candidate metric matches "
                            f"required-nonzero pattern")
            continue
        for name in matches:
            if cand[name][1] == 0:
                failures.append(f"{name}: required-nonzero metric is 0 "
                                f"(pattern {pattern})")

    new_metrics = sorted(set(cand) - set(base))
    if new_metrics:
        print(f"note: {len(new_metrics)} metric(s) not in baseline "
              f"(refresh it to start gating them): "
              + ", ".join(new_metrics[:8])
              + (", ..." if len(new_metrics) > 8 else ""))

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) against "
              f"{args.baseline}:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"ok: {compared} metric(s) within tolerance of {args.baseline}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `check_bench.py ... | head`
        sys.exit(0)
