#!/usr/bin/env python3
"""Self-checks for tools/pocs_lint.py — the repo's C++ invariant linter.

The linter gates every PR, so each rule gets positive (fires), negative
(stays quiet), and suppression coverage here. The thread-safety compile
probes run only where a clang++ is available (the analysis is clang-only);
everything else is pure-Python and runs everywhere. Run directly:

    python3 tools/test_pocs_lint.py
"""

import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
POCS_LINT = os.path.join(TOOLS_DIR, "pocs_lint.py")
REPO_ROOT = os.path.dirname(TOOLS_DIR)

sys.path.insert(0, TOOLS_DIR)
import pocs_lint  # noqa: E402  (needs TOOLS_DIR on sys.path)

HAVE_CLANG = pocs_lint.find_clang(None) is not None


class LintRunner(unittest.TestCase):
    """Base: a throwaway repo root with a src/ dir the linter scans."""

    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)
        self.root = self._dir.name
        os.mkdir(os.path.join(self.root, "src"))

    def write(self, rel_path, content):
        path = os.path.join(self.root, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return path

    def run_lint(self, *extra):
        return subprocess.run(
            [sys.executable, POCS_LINT, "--root", self.root, *extra],
            capture_output=True, text=True)

    def assert_finding(self, result, rule, path_fragment=None):
        self.assertEqual(result.returncode, 1,
                         result.stdout + result.stderr)
        self.assertIn(f"[{rule}]", result.stdout)
        if path_fragment:
            self.assertIn(path_fragment, result.stdout)

    def assert_clean(self, result):
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)


class BasicRulesTest(LintRunner):
    def test_missing_pragma_once_fires(self):
        self.write("src/a.h", "namespace x {}\n")
        self.assert_finding(self.run_lint(), "pragma-once", "a.h")

    def test_pragma_once_present_is_clean(self):
        self.write("src/a.h", "#pragma once\nnamespace x {}\n")
        self.assert_clean(self.run_lint())

    def test_relative_include_fires(self):
        self.write("src/a.cpp", '#include "../common/status.h"\n')
        self.assert_finding(self.run_lint(), "relative-include")

    def test_quoted_system_include_fires(self):
        self.write("src/a.cpp", '#include "gtest/gtest.h"\n')
        self.assert_finding(self.run_lint(), "quoted-system")

    def test_angle_system_include_is_clean(self):
        self.write("src/a.cpp", "#include <gtest/gtest.h>\n")
        self.assert_clean(self.run_lint())

    def test_naked_new_fires(self):
        self.write("src/a.cpp", "int* p = new int(3);\n")
        self.assert_finding(self.run_lint(), "naked-new")

    def test_naked_new_in_comment_is_clean(self):
        self.write("src/a.cpp", "// a new int would be wrong here\n")
        self.assert_clean(self.run_lint())

    def test_std_rand_fires(self):
        self.write("src/a.cpp", "int x() { return std::rand(); }\n")
        self.assert_finding(self.run_lint(), "std-rand")

    def test_suppression_on_same_line(self):
        self.write("src/a.cpp",
                   "int* p = new int(3);  // pocs-lint: allow(naked-new)\n")
        self.assert_clean(self.run_lint())

    def test_suppression_on_previous_line(self):
        self.write("src/a.cpp",
                   "// pocs-lint: allow(naked-new)\nint* p = new int(3);\n")
        self.assert_clean(self.run_lint())

    def test_suppression_is_rule_specific(self):
        self.write("src/a.cpp",
                   "int* p = new int(3);  // pocs-lint: allow(std-rand)\n")
        self.assert_finding(self.run_lint(), "naked-new")

    def test_empty_root_is_hard_error(self):
        self.assertEqual(self.run_lint().returncode, 2)


class ManualLockTest(LintRunner):
    def test_lowercase_manual_lock_fires(self):
        self.write("src/a.cpp", "void f() { mu_.lock(); }\n")
        self.assert_finding(self.run_lint(), "manual-lock")

    def test_capitalized_manual_lock_fires(self):
        self.write("src/a.cpp", "void f() { mu_.Lock(); }\n")
        self.assert_finding(self.run_lint(), "manual-lock")

    def test_manual_unlock_shared_fires(self):
        self.write("src/a.cpp", "void f() { mutex->unlock_shared(); }\n")
        self.assert_finding(self.run_lint(), "manual-lock")

    def test_raii_guard_is_clean(self):
        self.write("src/a.cpp", "void f() { pocs::MutexLock lock(mu_); }\n")
        self.assert_clean(self.run_lint())

    def test_non_mutex_object_is_clean(self):
        self.write("src/a.cpp", "void f() { file_.lock(); }\n")
        self.assert_clean(self.run_lint())


class IgnoredStatusTest(LintRunner):
    HEADER = ("#pragma once\n"
              "namespace pocs {\n"
              "Status DoWork();\n"
              "}\n")

    def test_discarded_status_fires(self):
        self.write("src/api.h", self.HEADER)
        self.write("src/a.cpp", "void f() {\n  DoWork();\n}\n")
        self.assert_finding(self.run_lint(), "ignored-status")

    def test_consumed_status_is_clean(self):
        self.write("src/api.h", self.HEADER)
        self.write("src/a.cpp",
                   "void f() {\n  Status s = DoWork();\n  (void)s;\n}\n")
        self.assert_clean(self.run_lint())

    def test_propagated_status_is_clean(self):
        self.write("src/api.h", self.HEADER)
        self.write("src/a.cpp",
                   "Status f() {\n  POCS_RETURN_NOT_OK(DoWork());\n"
                   "  return Status::OK();\n}\n")
        self.assert_clean(self.run_lint())


class UnannotatedMutexTest(LintRunner):
    def test_raw_std_mutex_member_fires(self):
        self.write("src/a.h",
                   "#pragma once\n#include <mutex>\n"
                   "class A {\n  std::mutex mu_;\n};\n")
        self.assert_finding(self.run_lint(), "unannotated-mutex")

    def test_raw_shared_mutex_member_fires(self):
        self.write("src/a.h",
                   "#pragma once\n#include <shared_mutex>\n"
                   "class A {\n  mutable std::shared_mutex mu_;\n};\n")
        self.assert_finding(self.run_lint(), "unannotated-mutex")

    def test_raw_mutex_local_fires(self):
        self.write("src/a.cpp",
                   "#include <mutex>\nvoid f() { std::mutex local_mu; }\n")
        self.assert_finding(self.run_lint(), "unannotated-mutex")

    def test_mutex_reference_param_is_clean(self):
        # References/pointers don't own a new lock; only declarations of
        # raw mutex objects are flagged.
        self.write("src/a.cpp",
                   "#include <mutex>\nvoid f(std::mutex& mu);\n")
        self.assert_clean(self.run_lint())

    def test_counting_semaphore_member_fires(self):
        # Semaphores are invisible to Thread Safety Analysis: state they
        # protect looks unguarded, so admission/throttle layers must be
        # built on pocs::Mutex + condition_variable instead.
        self.write("src/a.h",
                   "#pragma once\n#include <semaphore>\n"
                   "class Throttle {\n"
                   "  std::counting_semaphore<8> slots_{8};\n"
                   "};\n")
        result = self.run_lint()
        self.assert_finding(result, "unannotated-mutex")
        self.assertIn("counting_semaphore", result.stdout)

    def test_binary_semaphore_local_fires(self):
        self.write("src/a.cpp",
                   "#include <semaphore>\n"
                   "void f() { std::binary_semaphore ready{0}; }\n")
        self.assert_finding(self.run_lint(), "unannotated-mutex")

    def test_latch_and_barrier_fire(self):
        self.write("src/a.cpp",
                   "#include <latch>\n#include <barrier>\n"
                   "void f() {\n"
                   "  std::latch done(4);\n"
                   "  std::barrier sync_point(4);\n"
                   "}\n")
        result = self.run_lint()
        self.assert_finding(result, "unannotated-mutex")
        self.assertIn("latch", result.stdout)
        self.assertIn("barrier", result.stdout)

    def test_semaphore_suppression_is_honored(self):
        self.write("src/a.cpp",
                   "#include <semaphore>\n"
                   "// Bounded handoff to a C API; no guarded state.\n"
                   "std::binary_semaphore g_io_gate{1};"
                   "  // pocs-lint: allow(unannotated-mutex)\n")
        self.assert_clean(self.run_lint())

    def test_unguarded_member_after_pocs_mutex_fires(self):
        self.write("src/a.h",
                   "#pragma once\n"
                   '#include "common/thread_annotations.h"\n'
                   "class A {\n"
                   "  mutable pocs::Mutex mu_;\n"
                   "  int counter_ = 0;\n"
                   "};\n")
        result = self.run_lint()
        self.assert_finding(result, "unannotated-mutex")
        self.assertIn("counter_", result.stdout)

    def test_guarded_members_are_clean(self):
        self.write("src/a.h",
                   "#pragma once\n"
                   '#include "common/thread_annotations.h"\n'
                   "class A {\n"
                   "  mutable pocs::Mutex mu_;\n"
                   "  int counter_ POCS_GUARDED_BY(mu_) = 0;\n"
                   "  int* data_ POCS_PT_GUARDED_BY(mu_) = nullptr;\n"
                   "};\n")
        self.assert_clean(self.run_lint())

    def test_exempt_member_types_are_clean(self):
        # Atomics synchronize themselves, condition variables are waited
        # on rather than guarded, const/static members cannot be written.
        self.write("src/a.h",
                   "#pragma once\n"
                   "#include <atomic>\n"
                   "#include <condition_variable>\n"
                   '#include "common/thread_annotations.h"\n'
                   "class A {\n"
                   "  pocs::Mutex mu_;\n"
                   "  std::condition_variable cv_;\n"
                   "  std::atomic<int> hits_{0};\n"
                   "  const int limit_ = 8;\n"
                   "  static int shared_default;\n"
                   "};\n")
        self.assert_clean(self.run_lint())

    def test_members_before_the_mutex_are_clean(self):
        # Declaration order is the annotation contract: only members after
        # the mutex are assumed to be in its footprint.
        self.write("src/a.h",
                   "#pragma once\n"
                   '#include "common/thread_annotations.h"\n'
                   "class A {\n"
                   "  int config_value_ = 0;\n"
                   "  pocs::Mutex mu_;\n"
                   "  int state_ POCS_GUARDED_BY(mu_) = 0;\n"
                   "};\n")
        self.assert_clean(self.run_lint())

    def test_suppressed_member_is_clean(self):
        self.write("src/a.h",
                   "#pragma once\n"
                   '#include "common/thread_annotations.h"\n'
                   "class A {\n"
                   "  pocs::Mutex mu_;\n"
                   "  // Joined lock-free in the destructor only.\n"
                   "  int threads_;  // pocs-lint: allow(unannotated-mutex)\n"
                   "};\n")
        self.assert_clean(self.run_lint())

    def test_class_without_mutex_is_clean(self):
        self.write("src/a.h",
                   "#pragma once\n"
                   "class A {\n  int x_ = 0;\n  double y_ = 0;\n};\n")
        self.assert_clean(self.run_lint())

    def test_methods_are_not_flagged_as_members(self):
        self.write("src/a.h",
                   "#pragma once\n"
                   '#include "common/thread_annotations.h"\n'
                   "class A {\n"
                   " public:\n"
                   "  int Get() const {\n"
                   "    pocs::MutexLock lock(mu_);\n"
                   "    return state_;\n"
                   "  }\n"
                   " private:\n"
                   "  mutable pocs::Mutex mu_;\n"
                   "  int state_ POCS_GUARDED_BY(mu_) = 0;\n"
                   "};\n")
        self.assert_clean(self.run_lint())


class PlanningDataRpcTest(LintRunner):
    def test_get_in_getsplits_body_fires(self):
        self.write("src/conn.cpp",
                   "Result<SplitPlan> C::GetSplits(const TableHandle& t,\n"
                   "                               const ScanSpec& s) {\n"
                   "  auto obj = client_.Get(t.bucket, key);\n"
                   "  return plan;\n"
                   "}\n")
        self.assert_finding(self.run_lint(), "planning-data-rpc", "conn.cpp")

    def test_select_in_getsplits_body_fires(self):
        self.write("src/conn.cpp",
                   "Result<SplitPlan> C::GetSplits(const TableHandle& t,\n"
                   "                               const ScanSpec& s) {\n"
                   "  auto rows = store->Select(req);\n"
                   "  return plan;\n"
                   "}\n")
        self.assert_finding(self.run_lint(), "planning-data-rpc")

    def test_data_rpc_in_metadata_cache_file_fires(self):
        self.write("src/connectors/ocs/metadata_cache.cpp",
                   "int f(Client& c) { return c.GetRange(k, 0, 10); }\n")
        self.assert_finding(self.run_lint(), "planning-data-rpc",
                            "metadata_cache.cpp")

    def test_metadata_only_planning_is_clean(self):
        self.write("src/conn.cpp",
                   "Result<SplitPlan> C::GetSplits(const TableHandle& t,\n"
                   "                               const ScanSpec& s) {\n"
                   "  auto desc = cache_->GetDescriptor(store, t.bucket, k);\n"
                   "  auto info = store.Stat(t.bucket, k);\n"
                   "  auto d = store.DescribeObject(t.bucket, k);\n"
                   "  auto where = client_.LocateObject(t.bucket, k);\n"
                   "  return plan;\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_get_outside_planning_code_is_clean(self):
        self.write("src/conn.cpp",
                   "Result<Page> C::CreatePageSource(const Split& split) {\n"
                   "  auto obj = client_.Get(split.bucket, split.object);\n"
                   "  return page;\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_getsplits_declaration_is_clean(self):
        self.write("src/conn.h",
                   "#pragma once\n"
                   "class C {\n"
                   "  Result<SplitPlan> GetSplits(const TableHandle& t,\n"
                   "                              const ScanSpec& s);\n"
                   "};\n")
        self.assert_clean(self.run_lint())

    def test_suppression_is_honored(self):
        self.write("src/conn.cpp",
                   "Result<SplitPlan> C::GetSplits(const TableHandle& t,\n"
                   "                               const ScanSpec& s) {\n"
                   "  // pocs-lint: allow(planning-data-rpc)\n"
                   "  auto obj = client_.Get(t.bucket, key);\n"
                   "  return plan;\n"
                   "}\n")
        self.assert_clean(self.run_lint())


class RowLoopInHotPathTest(LintRunner):
    """row-loop-in-hot-path: per-row Get*() loops in src/exec/ and
    src/ocs/ TUs must use the vectorized kernels instead."""

    def test_get_in_for_body_in_exec_fires(self):
        self.write("src/exec/op.cpp",
                   "void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < c.length(); ++i) {\n"
                   "    Use(c.GetInt64(i));\n"
                   "  }\n"
                   "}\n")
        self.assert_finding(self.run_lint(), "row-loop-in-hot-path",
                            "op.cpp")

    def test_get_in_while_body_in_ocs_fires(self):
        self.write("src/ocs/node.cpp",
                   "void f(const Column& c) {\n"
                   "  size_t i = 0;\n"
                   "  while (i < c.length()) {\n"
                   "    Use(c.GetString(i));\n"
                   "    ++i;\n"
                   "  }\n"
                   "}\n")
        self.assert_finding(self.run_lint(), "row-loop-in-hot-path",
                            "node.cpp")

    def test_single_statement_loop_body_fires(self):
        self.write("src/exec/op.cpp",
                   "void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < c.length(); ++i)\n"
                   "    sum += c.GetFloat64(i);\n"
                   "}\n")
        self.assert_finding(self.run_lint(), "row-loop-in-hot-path")

    def test_header_is_not_covered(self):
        # Headers carry declarations and inline accessors; the rule is
        # scoped to translation units where execution loops live.
        self.write("src/exec/op.h",
                   "#pragma once\n"
                   "inline void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < c.length(); ++i) {\n"
                   "    Use(c.GetInt64(i));\n"
                   "  }\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_non_hot_path_dir_is_clean(self):
        self.write("src/columnar/util.cpp",
                   "void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < c.length(); ++i) {\n"
                   "    Use(c.GetInt64(i));\n"
                   "  }\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_get_outside_loop_is_clean(self):
        self.write("src/exec/op.cpp",
                   "void f(const Column& c, size_t row) {\n"
                   "  Use(c.GetInt64(row));\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_suppression_on_same_line(self):
        self.write("src/exec/op.cpp",
                   "void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < c.length(); ++i) {\n"
                   "    Use(c.GetInt64(i));"
                   "  // pocs-lint: allow(row-loop-in-hot-path)\n"
                   "  }\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_suppression_on_previous_line(self):
        self.write("src/ocs/node.cpp",
                   "void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < c.length(); ++i) {\n"
                   "    // pocs-lint: allow(row-loop-in-hot-path)\n"
                   "    Use(c.GetString(i));\n"
                   "  }\n"
                   "}\n")
        self.assert_clean(self.run_lint())

    def test_nested_loops_report_each_line_once(self):
        self.write("src/exec/op.cpp",
                   "void f(const Column& c) {\n"
                   "  for (size_t i = 0; i < 4; ++i) {\n"
                   "    for (size_t j = 0; j < c.length(); ++j) {\n"
                   "      Use(c.GetInt32(j));\n"
                   "    }\n"
                   "  }\n"
                   "}\n")
        result = self.run_lint()
        self.assert_finding(result, "row-loop-in-hot-path")
        self.assertEqual(result.stdout.count("row-loop-in-hot-path"), 1)


class PartialAggMergeSyncTest(LintRunner):
    """partial-agg-merge-sync: the connector's storage partial-agg
    whitelist must stay in lockstep with engine::FinalAggSpecs."""

    WHITELIST = ("// pocs-lint: begin partial-agg-whitelist\n"
                 "bool PartialAggSupported(substrait::AggFunc func) {\n"
                 "  switch (func) {\n"
                 "    case substrait::AggFunc::kSum:\n"
                 "    case substrait::AggFunc::kAvg:\n"
                 "      return true;\n"
                 "  }\n"
                 "  return false;\n"
                 "}\n"
                 "// pocs-lint: end partial-agg-whitelist\n")

    MERGES = ("std::vector<AggregateSpec> FinalAggSpecs(\n"
              "    const std::vector<AggregateSpec>& aggregates, size_t n) {\n"
              "  for (const AggregateSpec& agg : aggregates) {\n"
              "    switch (agg.func) {\n"
              "      case AggFunc::kSum:\n"
              "        break;\n"
              "      case AggFunc::kAvg:\n"
              "        break;\n"
              "    }\n"
              "  }\n"
              "  return {};\n"
              "}\n")

    def test_matching_whitelist_and_merges_are_clean(self):
        self.write("src/connectors/ocs/ocs_connector.cpp", self.WHITELIST)
        self.write("src/engine/two_phase.cpp", self.MERGES)
        self.assert_clean(self.run_lint())

    def test_whitelisted_kind_without_merge_fires(self):
        extended = self.WHITELIST.replace(
            "    case substrait::AggFunc::kAvg:\n",
            "    case substrait::AggFunc::kAvg:\n"
            "    case substrait::AggFunc::kStddev:\n")
        self.write("src/connectors/ocs/ocs_connector.cpp", extended)
        self.write("src/engine/two_phase.cpp", self.MERGES)
        result = self.run_lint()
        self.assert_finding(result, "partial-agg-merge-sync",
                            "ocs_connector.cpp")
        self.assertIn("kStddev", result.stdout)

    def test_extra_merge_case_is_clean(self):
        # The merge side may cover more kinds than the whitelist (e.g.
        # engine-only aggregations); only the reverse direction is a bug.
        extended = self.MERGES.replace(
            "      case AggFunc::kAvg:\n",
            "      case AggFunc::kAvg:\n"
            "      case AggFunc::kCount:\n")
        self.write("src/connectors/ocs/ocs_connector.cpp", self.WHITELIST)
        self.write("src/engine/two_phase.cpp", extended)
        self.assert_clean(self.run_lint())

    def test_missing_markers_fire(self):
        self.write("src/connectors/ocs/ocs_connector.cpp",
                   "bool PartialAggSupported(substrait::AggFunc func) {\n"
                   "  return false;\n"
                   "}\n")
        self.write("src/engine/two_phase.cpp", self.MERGES)
        self.assert_finding(self.run_lint(), "partial-agg-merge-sync")

    def test_missing_merge_file_fires(self):
        self.write("src/connectors/ocs/ocs_connector.cpp", self.WHITELIST)
        self.assert_finding(self.run_lint(), "partial-agg-merge-sync")

    def test_root_without_connector_is_quiet(self):
        self.write("src/a.cpp", "int x = 0;\n")
        self.assert_clean(self.run_lint())

    def test_suppression_is_honored(self):
        extended = self.WHITELIST.replace(
            "    case substrait::AggFunc::kAvg:\n",
            "    case substrait::AggFunc::kAvg:\n"
            "    case substrait::AggFunc::kStddev:"
            "  // pocs-lint: allow(partial-agg-merge-sync)\n")
        self.write("src/connectors/ocs/ocs_connector.cpp", extended)
        self.write("src/engine/two_phase.cpp", self.MERGES)
        self.assert_clean(self.run_lint())


class RepoIsCleanTest(unittest.TestCase):
    def test_real_repo_has_no_findings(self):
        result = subprocess.run(
            [sys.executable, POCS_LINT, "--root", REPO_ROOT],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)


@unittest.skipUnless(HAVE_CLANG, "thread-safety probes need clang++")
class ThreadSafetyCheckTest(unittest.TestCase):
    def test_probes_pass_against_real_header(self):
        result = subprocess.run(
            [sys.executable, POCS_LINT, "--root", REPO_ROOT,
             "--thread-safety-check"],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)

    def test_probes_fail_when_macros_are_noops(self):
        # A root whose thread_annotations.h defines the macros away must
        # be rejected: the bad-read probe would compile clean.
        with tempfile.TemporaryDirectory() as tmp:
            common = os.path.join(tmp, "src", "common")
            os.makedirs(common)
            real = os.path.join(REPO_ROOT, "src", "common",
                                "thread_annotations.h")
            with open(real) as f:
                gutted = f.read().replace("__attribute__((x))", "")
            with open(os.path.join(common, "thread_annotations.h"),
                      "w") as f:
                f.write(gutted)
            # One lintable file so the directory scan doesn't hard-error
            # before the compile check runs.
            with open(os.path.join(tmp, "src", "ok.cpp"), "w") as f:
                f.write("int main() { return 0; }\n")
            result = subprocess.run(
                [sys.executable, POCS_LINT, "--root", tmp,
                 "--thread-safety-check"],
                capture_output=True, text=True)
            self.assertEqual(result.returncode, 1,
                             result.stdout + result.stderr)
            self.assertIn("compiling away", result.stdout)


class NodiscardCheckTest(unittest.TestCase):
    def test_nodiscard_check_passes_against_real_repo(self):
        result = subprocess.run(
            [sys.executable, POCS_LINT, "--root", REPO_ROOT,
             "--nodiscard-check"],
            capture_output=True, text=True)
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
