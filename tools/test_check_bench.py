#!/usr/bin/env python3
"""Self-checks for tools/check_bench.py — the perf gate's comparator.

The gate guards every PR, so its pass/fail semantics get their own tests:
exact metrics are bit-for-bit, timing metrics fail only past ratio AND
floor, config mismatches refuse comparison, malformed input is a hard
error, candidate-only metrics are informational. Run directly:

    python3 tools/test_check_bench.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "check_bench.py")


def make_report(metrics, smoke=True, scale=1, seed=42, schema_version=1):
    return {
        "schema_version": schema_version,
        "smoke": smoke,
        "scale": scale,
        "seed": seed,
        "metrics": [
            {"name": name, "kind": kind, "value": value}
            for name, (kind, value) in sorted(metrics.items())
        ],
    }


class CheckBenchTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, report):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            if isinstance(report, str):
                f.write(report)
            else:
                json.dump(report, f)
        return path

    def run_check(self, candidate, baseline, *extra):
        return subprocess.run(
            [sys.executable, CHECK_BENCH, candidate,
             "--baseline", baseline, *extra],
            capture_output=True, text=True)

    BASE = {
        "fig5.laghos.bytes_moved": ("exact", 14200),
        "fig5.laghos.rows": ("exact", 4096),
        "micro.decode.seconds": ("timing", 0.010),
    }

    def test_identical_reports_pass(self):
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(self.BASE))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("ok:", result.stdout)

    def test_exact_drift_fails(self):
        cand_metrics = dict(self.BASE)
        cand_metrics["fig5.laghos.rows"] = ("exact", 4097)
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("fig5.laghos.rows", result.stdout)

    def test_timing_within_tolerance_passes(self):
        cand_metrics = dict(self.BASE)
        cand_metrics["micro.decode.seconds"] = ("timing", 0.05)  # 5x, < floor
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        self.assertEqual(self.run_check(cand, base).returncode, 0)

    def test_timing_regression_fails_past_ratio_and_floor(self):
        cand_metrics = dict(self.BASE)
        # 50x the baseline and 0.49 s over it: beyond both gates.
        cand_metrics["micro.decode.seconds"] = ("timing", 0.5)
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("micro.decode.seconds", result.stdout)

    def test_timing_faster_is_always_fine(self):
        cand_metrics = dict(self.BASE)
        cand_metrics["micro.decode.seconds"] = ("timing", 0.0001)
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        self.assertEqual(self.run_check(cand, base).returncode, 0)

    def test_missing_baseline_metric_fails(self):
        cand_metrics = dict(self.BASE)
        del cand_metrics["fig5.laghos.bytes_moved"]
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("missing from candidate", result.stdout)

    def test_candidate_only_metrics_are_informational(self):
        cand_metrics = dict(self.BASE)
        cand_metrics["process.rpc.failed_calls"] = ("exact", 0)
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 0)
        self.assertIn("not in baseline", result.stdout)

    def test_config_mismatch_fails(self):
        base = self.write("base.json", make_report(self.BASE, seed=42))
        cand = self.write("cand.json", make_report(self.BASE, seed=43))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("config mismatch", result.stdout)

    def test_kind_change_fails(self):
        cand_metrics = dict(self.BASE)
        cand_metrics["micro.decode.seconds"] = ("exact", 0.010)
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(cand_metrics))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("kind changed", result.stdout)

    def test_malformed_kind_is_hard_error(self):
        bad = make_report({"x": ("exact", 1)})
        bad["metrics"][0]["kind"] = "fuzzy"
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", bad)
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("malformed metric", result.stderr)

    def test_unsupported_schema_version_is_hard_error(self):
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(self.BASE,
                                                   schema_version=99))
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("unsupported schema_version", result.stderr)

    def test_require_nonzero_passes_when_positive(self):
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(self.BASE))
        result = self.run_check(cand, base,
                                "--require-nonzero", "fig5.laghos.rows")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_require_nonzero_fails_on_zero(self):
        metrics = dict(self.BASE)
        metrics["cache.hits"] = ("exact", 0)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(cand, base,
                                "--require-nonzero", "cache.hits")
        self.assertEqual(result.returncode, 1)
        self.assertIn("required-nonzero metric is 0", result.stdout)

    def test_require_nonzero_fails_on_missing(self):
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(self.BASE))
        result = self.run_check(cand, base,
                                "--require-nonzero", "no.such.metric")
        self.assertEqual(result.returncode, 1)
        self.assertIn("required-nonzero metric missing", result.stdout)

    TENANTS = {
        "concurrent.tenant.interactive.queries": ("exact", 10),
        "concurrent.tenant.batch.queries": ("exact", 7),
    }

    def test_require_nonzero_glob_passes_when_all_positive(self):
        metrics = dict(self.BASE, **self.TENANTS)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(cand, base, "--require-nonzero-glob",
                                "concurrent.tenant.*.queries")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_require_nonzero_glob_fails_on_zero_match(self):
        metrics = dict(self.BASE, **self.TENANTS)
        metrics["concurrent.tenant.batch.queries"] = ("exact", 0)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(cand, base, "--require-nonzero-glob",
                                "concurrent.tenant.*.queries")
        self.assertEqual(result.returncode, 1)
        self.assertIn("concurrent.tenant.batch.queries", result.stdout)
        self.assertIn("required-nonzero metric is 0", result.stdout)

    def test_require_nonzero_glob_fails_when_nothing_matches(self):
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", make_report(self.BASE))
        result = self.run_check(cand, base, "--require-nonzero-glob",
                                "concurrent.tenant.*.queries")
        self.assertEqual(result.returncode, 1)
        self.assertIn("no candidate metric matches", result.stdout)

    # The PR 8 perf-smoke gates: split pruning must actually prune, and
    # the planner metadata cache must actually hit on the warm repeat.
    PRUNING = {
        "laghos.selective.splits_pruned": ("exact", 1),
        "process.connector.metadata_cache.hit": ("exact", 2),
    }

    def test_pruning_gates_pass_when_positive(self):
        metrics = dict(self.BASE, **self.PRUNING)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(
            cand, base,
            "--require-nonzero-glob", "laghos.selective.splits_pruned",
            "--require-nonzero-glob", "process.connector.metadata_cache.hit")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_pruning_gate_fails_when_pruning_stops(self):
        metrics = dict(self.BASE, **self.PRUNING)
        metrics["laghos.selective.splits_pruned"] = ("exact", 0)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(
            cand, base,
            "--require-nonzero-glob", "laghos.selective.splits_pruned")
        self.assertEqual(result.returncode, 1)
        self.assertIn("laghos.selective.splits_pruned", result.stdout)

    def test_pruning_gate_fails_when_cache_never_hits(self):
        metrics = dict(self.BASE, **self.PRUNING)
        metrics["process.connector.metadata_cache.hit"] = ("exact", 0)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(
            cand, base,
            "--require-nonzero-glob", "process.connector.metadata_cache.hit")
        self.assertEqual(result.returncode, 1)
        self.assertIn("process.connector.metadata_cache.hit", result.stdout)

    # The PR 9 pushdown gates: the pushed join must actually prune fact
    # rows with the bloom at storage, and the engine must actually merge
    # storage-computed partial aggregates.
    PUSHDOWN = {
        "tpch.join_pushdown.pushdown.bloom_rows_pruned": ("exact", 6457),
        "process.engine.partial_agg_merges": ("exact", 395),
    }

    def test_pushdown_gates_pass_when_positive(self):
        metrics = dict(self.BASE, **self.PUSHDOWN)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(
            cand, base,
            "--require-nonzero-glob",
            "tpch.join_pushdown.pushdown.bloom_rows_pruned",
            "--require-nonzero-glob", "process.engine.partial_agg_merges")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_pushdown_gate_fails_when_bloom_stops_pruning(self):
        metrics = dict(self.BASE, **self.PUSHDOWN)
        metrics["tpch.join_pushdown.pushdown.bloom_rows_pruned"] = ("exact", 0)
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(
            cand, base,
            "--require-nonzero-glob",
            "tpch.join_pushdown.pushdown.bloom_rows_pruned")
        self.assertEqual(result.returncode, 1)
        self.assertIn("bloom_rows_pruned", result.stdout)

    def test_pushdown_gate_fails_when_merges_disappear(self):
        metrics = dict(self.BASE, **self.PUSHDOWN)
        del metrics["process.engine.partial_agg_merges"]
        base = self.write("base.json", make_report(metrics))
        cand = self.write("cand.json", make_report(metrics))
        result = self.run_check(
            cand, base,
            "--require-nonzero-glob", "process.engine.partial_agg_merges")
        self.assertEqual(result.returncode, 1)
        self.assertIn("no candidate metric matches", result.stdout)

    def test_unreadable_candidate_is_hard_error(self):
        base = self.write("base.json", make_report(self.BASE))
        cand = self.write("cand.json", "{not json")
        result = self.run_check(cand, base)
        self.assertEqual(result.returncode, 1)
        self.assertIn("cannot read", result.stderr)


if __name__ == "__main__":
    unittest.main()
