// Fig. 5(c): TPC-H Q1 — progressive operator pushdown on the OLAP
// workload.
//
// Paper (SF with 194 MB scanned):
//   none          11 s, 194 MB moved
//   +filter        9 s, 192 MB         (1.22x, but only a 1% movement cut —
//                                       Q1's filter keeps ~99% of rows)
//   +projection   14 s, ~192 MB        (55% SLOWDOWN)
//   +aggregation  2.21 s, 0.5 MB       (4.07x vs filter-only, −99.7% DM)
// Shape to reproduce: the filter barely moves fewer bytes, projection
// pushdown hurts, aggregation pushdown delivers the big win.
#include "bench/fig5_common.h"
#include "workloads/tpch.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  workloads::Testbed testbed;
  workloads::TpchConfig config;
  config.seed = args.SeedOr(config.seed);
  config.num_files = args.smoke ? 2 : 6;
  config.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
  auto data = workloads::GenerateLineitem(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/true,
                                       /*with_topn=*/false);
  return bench::RunFig5("Fig 5(c): TPC-H Q1 progressive pushdown", testbed,
                        workloads::TpchQ1(), steps, args, "fig5_tpch");
}
