// Shared bench plumbing: a tiny CLI parser every bench binary uses
// (`--seed`, `--scale`, `--smoke`, `--json`) and a schema-versioned JSON
// report writer consumed by tools/check_bench.py.
//
// Determinism contract: benches never seed from the wall clock. Each
// workload has a fixed default seed; `--seed` overrides it so a run can
// be reproduced or varied explicitly. Report metrics are tagged with a
// kind the regression gate interprets:
//   "exact"  — counts (rows, bytes, splits, pruning decisions) that are
//              functions of (seed, scale, code); compared strictly.
//   "timing" — wall-derived values (even "simulated" seconds include a
//              measured-compute component); compared loosely.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace pocs::bench {

// Current schema of the BENCH_*.json files. Bump when the report shape
// changes; tools/check_bench.py refuses to diff mismatched versions.
inline constexpr int kReportSchemaVersion = 1;

// Legacy env knob, kept as the default so existing wrappers still work;
// `--scale` wins when both are given.
inline size_t BenchScale() {
  const char* env = std::getenv("POCS_BENCH_SCALE");
  if (!env) return 1;
  long v = std::atol(env);
  return v < 1 ? 1 : static_cast<size_t>(v);
}

struct BenchArgs {
  uint64_t seed = 0;  // meaningful only when seed_set
  bool seed_set = false;
  size_t scale = BenchScale();
  bool smoke = false;       // shrink the workload for CI perf-smoke runs
  std::string json_path;    // empty = no JSON report

  // The workload's fixed default seed unless --seed was given.
  uint64_t SeedOr(uint64_t fallback) const {
    return seed_set ? seed : fallback;
  }
};

inline void PrintBenchUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --seed N    RNG seed for data generation (default: fixed per\n"
      "              workload; never derived from the clock)\n"
      "  --scale N   dataset scale multiplier (default: POCS_BENCH_SCALE\n"
      "              env or 1)\n"
      "  --smoke     shrink the workload to CI smoke size\n"
      "  --json P    write a schema-versioned JSON report to P\n"
      "  --help      show this message\n",
      argv0);
}

// Parses the shared flags. Exits on --help (0) or an unknown/malformed
// flag (2) — benches are leaf binaries, so failing fast beats silently
// benchmarking the wrong configuration.
inline BenchArgs ParseBenchArgs(int argc, char** argv) {
  BenchArgs args;
  auto value_of = [&](const char* flag, int& i) -> const char* {
    size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintBenchUsage(argv[0]);
      std::exit(0);
    }
    if (std::strcmp(argv[i], "--smoke") == 0) {
      args.smoke = true;
      continue;
    }
    if (const char* v = value_of("--seed", i)) {
      args.seed = std::strtoull(v, nullptr, 10);
      args.seed_set = true;
      continue;
    }
    if (const char* v = value_of("--scale", i)) {
      long parsed = std::atol(v);
      args.scale = parsed < 1 ? 1 : static_cast<size_t>(parsed);
      continue;
    }
    if (const char* v = value_of("--json", i)) {
      args.json_path = v;
      continue;
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
    PrintBenchUsage(argv[0]);
    std::exit(2);
  }
  return args;
}

// ---------------------------------------------------------------------------
// JSON report

enum class MetricClass { kExact, kTiming };

struct ReportMetric {
  std::string name;
  MetricClass cls = MetricClass::kExact;
  double value = 0;
  std::string unit;
};

class BenchReport {
 public:
  BenchReport(std::string suite, const BenchArgs& args)
      : suite_(std::move(suite)), args_(args) {}

  void AddExact(const std::string& name, double value,
                const std::string& unit = "") {
    metrics_.push_back({name, MetricClass::kExact, value, unit});
  }
  void AddTiming(const std::string& name, double seconds) {
    metrics_.push_back({name, MetricClass::kTiming, seconds, "seconds"});
  }

  size_t num_metrics() const { return metrics_.size(); }

  std::string ToJson() const {
    std::string out;
    out += "{\n";
    out += "  \"schema_version\": " + std::to_string(kReportSchemaVersion) +
           ",\n";
    out += "  \"suite\": \"" + Escape(suite_) + "\",\n";
    out += "  \"smoke\": " + std::string(args_.smoke ? "true" : "false") +
           ",\n";
    out += "  \"scale\": " + std::to_string(args_.scale) + ",\n";
    out += args_.seed_set
               ? "  \"seed\": " + std::to_string(args_.seed) + ",\n"
               : std::string("  \"seed\": null,\n");
    out += "  \"metrics\": [\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const ReportMetric& m = metrics_[i];
      out += "    {\"name\": \"" + Escape(m.name) + "\", \"kind\": \"" +
             (m.cls == MetricClass::kExact ? "exact" : "timing") +
             "\", \"value\": " + FormatDouble(m.value);
      if (!m.unit.empty()) out += ", \"unit\": \"" + Escape(m.unit) + "\"";
      out += "}";
      if (i + 1 < metrics_.size()) out += ",";
      out += "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  // Returns false (with a message on stderr) if the file can't be written.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write report to %s\n", path.c_str());
      return false;
    }
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size()) {
      std::fprintf(stderr, "bench: short write to %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %zu metrics to %s\n", metrics_.size(), path.c_str());
    return true;
  }

  // Writes to args.json_path when set; no-op (success) otherwise.
  bool MaybeWriteJson() const {
    if (args_.json_path.empty()) return true;
    return WriteJson(args_.json_path);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
        continue;
      }
      out += c;
    }
    return out;
  }

  static std::string FormatDouble(double v) {
    // Integral values (counters) print without a fraction so diffs read
    // cleanly; %.17g keeps full precision for timings.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v > -1e15 && v < 1e15) {
      return std::to_string(static_cast<long long>(v));
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  std::string suite_;
  BenchArgs args_;
  std::vector<ReportMetric> metrics_;
};

}  // namespace pocs::bench
