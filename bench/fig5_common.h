// Shared driver for the Fig. 5 progressive-pushdown benches: runs one
// query with a cumulative sequence of pushdown configurations and prints
// execution time (bars) + data movement (line) per step, exactly the two
// axes of the paper's figure.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/report.h"
#include "workloads/testbed.h"

namespace pocs::bench {

struct Fig5Step {
  std::string label;    // e.g. "no pushdown", "+filter", "+aggregation"
  std::string catalog;  // engine catalog to run through
};

// Steps for a progressive OCS pushdown sequence: registers one OCS
// catalog per cumulative configuration.
inline std::vector<Fig5Step> ProgressiveSteps(
    workloads::Testbed& testbed, bool with_project, bool with_topn) {
  std::vector<Fig5Step> steps;
  steps.push_back({"no pushdown", "hive_raw"});

  connectors::OcsConnectorConfig config;
  config.pushdown_projection = false;
  config.pushdown_aggregation = false;
  config.pushdown_topn = false;
  testbed.RegisterOcsCatalog("ocs_filter", config);
  steps.push_back({"+filter", "ocs_filter"});

  if (with_project) {
    config.pushdown_projection = true;
    testbed.RegisterOcsCatalog("ocs_project", config);
    steps.push_back({"+projection", "ocs_project"});
  }

  config.pushdown_projection = with_project;
  config.pushdown_aggregation = true;
  testbed.RegisterOcsCatalog("ocs_agg", config);
  steps.push_back({"+aggregation", "ocs_agg"});

  if (with_topn) {
    config.pushdown_topn = true;
    testbed.RegisterOcsCatalog("ocs_topn", config);
    steps.push_back({"+topn", "ocs_topn"});
  }
  return steps;
}

struct Fig5Row {
  std::string label;
  double seconds = 0;
  uint64_t bytes_moved = 0;
  std::string plan;
};

// Step labels like "+filter" become JSON metric path segments like
// "filter"; "no pushdown" becomes "no_pushdown".
inline std::string StepSlug(const std::string& label) {
  std::string slug;
  for (char c : label) {
    if (c == '+') continue;
    slug += (c == ' ') ? '_' : c;
  }
  return slug;
}

inline int RunFig5(const char* title, workloads::Testbed& testbed,
                   const std::string& sql, const std::vector<Fig5Step>& steps,
                   const BenchArgs& args = {},
                   const std::string& suite = "fig5") {
  std::printf("=== %s ===\n", title);
  std::printf("query: %s\n\n", sql.c_str());
  std::printf("%-14s %14s %16s   %s\n", "pushdown", "sim time (s)",
              "moved (KB)", "optimized plan");
  BenchReport report(suite, args);
  std::vector<Fig5Row> rows;
  for (const Fig5Step& step : steps) {
    auto result = testbed.Run(sql, step.catalog);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", step.label.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    Fig5Row row;
    row.label = step.label;
    row.seconds = result->metrics.total;
    row.bytes_moved = result->metrics.bytes_from_storage;
    row.plan = result->optimized_plan;
    std::printf("%-14s %14.4f %16.1f   %s\n", row.label.c_str(), row.seconds,
                row.bytes_moved / 1024.0, row.plan.c_str());
    const std::string prefix = StepSlug(step.label) + ".";
    report.AddExact(prefix + "bytes_moved",
                    static_cast<double>(row.bytes_moved), "bytes");
    report.AddExact(prefix + "rows_scanned",
                    static_cast<double>(result->metrics.rows_scanned), "rows");
    report.AddExact(prefix + "result_rows",
                    static_cast<double>(result->table->num_rows()), "rows");
    report.AddExact(prefix + "row_groups_skipped",
                    static_cast<double>(result->metrics.row_groups_skipped));
    report.AddTiming(prefix + "sim_seconds", row.seconds);
    rows.push_back(std::move(row));
  }
  // Headline ratios in the paper's terms (vs the filter-only step).
  const Fig5Row* filter_row = nullptr;
  for (const auto& row : rows) {
    if (row.label == "+filter") filter_row = &row;
  }
  if (filter_row && rows.size() > 1) {
    const Fig5Row& last = rows.back();
    std::printf("\nfull vs filter-only: %.2fx speedup, %.2f%% less data "
                "movement\n",
                filter_row->seconds / last.seconds,
                100.0 * (1.0 - static_cast<double>(last.bytes_moved) /
                                   static_cast<double>(filter_row->bytes_moved)));
  }
  std::printf("\n");
  return report.MaybeWriteJson() ? 0 : 1;
}

}  // namespace pocs::bench
