// Fig. 5(b): Deep Water Impact — progressive operator pushdown, including
// the paper's negative result for expression-projection pushdown.
//
// Paper (30 GB):
//   none         1033 s, 30 GB moved
//   +filter       441 s, 5.37 GB       (2.33x vs none)
//   +projection   472 s, ~5.37 GB      (7% SLOWDOWN — storage CPU is
//                                       weaker and projection reduces no
//                                       bytes)
//   +aggregation  335 s, 1 MB          (1.32x vs filter-only)
// Shape to reproduce: projection pushdown does not reduce movement and
// costs time; aggregation pushdown recovers and wins.
#include "bench/fig5_common.h"
#include "workloads/deepwater.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  workloads::Testbed testbed;
  workloads::DeepWaterConfig config;
  config.seed = args.SeedOr(config.seed);
  config.num_files = args.smoke ? 2 : 8;
  config.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
  auto data = workloads::GenerateDeepWater(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/true,
                                       /*with_topn=*/false);
  return bench::RunFig5("Fig 5(b): Deep Water Impact progressive pushdown",
                        testbed, workloads::DeepWaterQuery(), steps, args,
                        "fig5_deepwater");
}
