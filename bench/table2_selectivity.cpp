// Table 2: queries, measured selectivity (result size / input size), and
// logical execution plans for each dataset.
//
// Paper selectivities: Laghos 0.0023842%, Deep Water 0.0000032%,
// TPC-H Q1 0.0000667%. Ours differ in absolute value (scaled data) but
// sit in the same "tiny result over huge input" regime and the plan
// chains match Table 2 exactly.
#include <cstdio>

#include "bench/report.h"
#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"
#include "workloads/tpch.h"

using namespace pocs;

namespace {

int Report(workloads::Testbed& testbed, const char* dataset,
           const std::string& sql, const std::string& table_name) {
  auto result = testbed.Run(sql, "ocs");
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", dataset,
                 result.status().ToString().c_str());
    return 1;
  }
  auto info = testbed.metastore().GetTable("default", table_name);
  if (!info.ok()) return 1;
  double result_bytes = static_cast<double>(result->table->ByteSize());
  double input_bytes = static_cast<double>(info->total_bytes);
  std::printf("%-12s rows_in=%-10llu rows_out=%-6zu selectivity=%.7f%%\n",
              dataset, static_cast<unsigned long long>(info->row_count),
              result->table->num_rows(),
              100.0 * result_bytes / input_bytes);
  std::printf("  query: %s\n", sql.c_str());
  std::printf("  plan : %s\n\n", result->logical_plan.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  const size_t rows_per_file =
      (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
  std::printf("=== Table 2: queries, selectivity, execution plans ===\n\n");
  workloads::Testbed testbed;

  workloads::LaghosConfig laghos;
  laghos.seed = args.SeedOr(laghos.seed);
  laghos.num_files = args.smoke ? 2 : 8;
  laghos.rows_per_file = rows_per_file;
  auto l = workloads::GenerateLaghos(laghos);
  if (!l.ok() || !testbed.Ingest(std::move(*l)).ok()) return 1;

  workloads::DeepWaterConfig deepwater;
  deepwater.seed = args.SeedOr(deepwater.seed);
  deepwater.num_files = args.smoke ? 2 : 8;
  deepwater.rows_per_file = rows_per_file;
  auto d = workloads::GenerateDeepWater(deepwater);
  if (!d.ok() || !testbed.Ingest(std::move(*d)).ok()) return 1;

  workloads::TpchConfig tpch;
  tpch.seed = args.SeedOr(tpch.seed);
  tpch.num_files = args.smoke ? 2 : 4;
  tpch.rows_per_file = rows_per_file;
  auto t = workloads::GenerateLineitem(tpch);
  if (!t.ok() || !testbed.Ingest(std::move(*t)).ok()) return 1;

  int rc = 0;
  rc |= Report(testbed, "Laghos", workloads::LaghosQuery(), "laghos");
  rc |= Report(testbed, "Deep Water", workloads::DeepWaterQuery(), "deepwater");
  rc |= Report(testbed, "TPC-H Q1", workloads::TpchQ1(), "lineitem");
  return rc;
}
