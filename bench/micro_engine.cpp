// Micro: end-to-end engine latencies — parse→plan→optimize cost and full
// small-query round trips per access path. Complements Table 3 by
// isolating the coordinator-side costs at high iteration counts.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "engine/analyzer.h"
#include "engine/optimizer.h"
#include "sql/parser.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

namespace {

using namespace pocs;

workloads::Testbed* SharedTestbed() {
  static std::unique_ptr<workloads::Testbed> testbed = [] {
    auto t = std::make_unique<workloads::Testbed>();
    workloads::LaghosConfig config;
    config.num_files = 2;
    config.rows_per_file = 1 << 12;
    auto data = workloads::GenerateLaghos(config);
    if (!data.ok() || !t->Ingest(std::move(*data)).ok()) std::abort();
    return t;
  }();
  return testbed.get();
}

void BM_ParseQuery(benchmark::State& state) {
  std::string sql = workloads::LaghosQuery();
  for (auto _ : state) {
    auto query = sql::ParseQuery(sql);
    benchmark::DoNotOptimize(query.ok());
  }
}
BENCHMARK(BM_ParseQuery);

void BM_AnalyzeAndPrune(benchmark::State& state) {
  auto query = sql::ParseQuery(workloads::LaghosQuery());
  connector::TableHandle handle;
  handle.connector_id = "bench";
  handle.info.schema = workloads::LaghosSchema();
  handle.info.table_name = "laghos";
  handle.info.row_count = 1 << 20;
  handle.info.column_stats.resize(10);
  for (auto _ : state) {
    auto plan = engine::AnalyzeQuery(*query, handle);
    benchmark::DoNotOptimize(plan.ok());
    if (plan.ok()) {
      benchmark::DoNotOptimize(engine::PruneColumns(*plan).ok());
    }
  }
}
BENCHMARK(BM_AnalyzeAndPrune);

void BM_EndToEndQuery(benchmark::State& state) {
  auto* testbed = SharedTestbed();
  const char* catalogs[] = {"hive_raw", "hive", "ocs"};
  const char* catalog = catalogs[state.range(0)];
  std::string sql = workloads::LaghosQuery("laghos", 10);
  for (auto _ : state) {
    auto result = testbed->engine().Execute(sql, catalog);
    benchmark::DoNotOptimize(result.ok());
    if (!result.ok()) state.SkipWithError("query failed");
  }
  state.SetLabel(catalog);
}
BENCHMARK(BM_EndToEndQuery)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

}  // namespace

POCS_MICRO_BENCH_MAIN();
