// Micro: plan-IR costs — Substrait-style serialization/parsing and full
// ScanSpec → IR translation, the overheads Table 3 shows stay under 2%.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include "connectors/ocs/translator.h"
#include "engine/two_phase.h"
#include "substrait/serialize.h"
#include "workloads/laghos.h"

namespace {

using namespace pocs;
using columnar::Datum;
using columnar::TypeKind;
using connector::PushedOperator;
using substrait::AggFunc;
using substrait::Expression;
using substrait::ScalarFunc;

connector::TableHandle Handle() {
  connector::TableHandle handle;
  handle.info.schema = workloads::LaghosSchema();
  handle.info.bucket = "hpc";
  handle.info.row_count = 1 << 20;
  handle.info.column_stats.resize(10);
  return handle;
}

connector::ScanSpec FullSpec() {
  connector::ScanSpec spec;
  spec.columns = {0, 1, 2, 3, 4};
  spec.output_schema = columnar::MakeSchema({{"vertex_id", TypeKind::kInt64},
                                             {"x", TypeKind::kFloat64},
                                             {"y", TypeKind::kFloat64},
                                             {"z", TypeKind::kFloat64},
                                             {"e", TypeKind::kFloat64}});
  PushedOperator filter;
  filter.kind = PushedOperator::Kind::kFilter;
  auto band = [](int field) {
    return Expression::Call(
        ScalarFunc::kAnd,
        {Expression::Call(ScalarFunc::kGe,
                          {Expression::FieldRef(field, TypeKind::kFloat64),
                           Expression::Literal(Datum::Float64(0.8))},
                          TypeKind::kBool),
         Expression::Call(ScalarFunc::kLe,
                          {Expression::FieldRef(field, TypeKind::kFloat64),
                           Expression::Literal(Datum::Float64(3.2))},
                          TypeKind::kBool)},
        TypeKind::kBool);
  };
  filter.predicate = Expression::Call(
      ScalarFunc::kAnd,
      {Expression::Call(ScalarFunc::kAnd, {band(1), band(2)}, TypeKind::kBool),
       band(3)},
      TypeKind::kBool);
  spec.operators.push_back(filter);

  PushedOperator agg;
  agg.kind = PushedOperator::Kind::kPartialAggregation;
  agg.group_keys = {0};
  agg.aggregates = engine::PartialAggSpecs(
      {{AggFunc::kMin, Expression::FieldRef(1, TypeKind::kFloat64), "mx"},
       {AggFunc::kAvg, Expression::FieldRef(4, TypeKind::kFloat64), "e"}});
  spec.operators.push_back(agg);

  PushedOperator topn;
  topn.kind = PushedOperator::Kind::kPartialTopN;
  topn.sort_fields = {{2, true, true}};
  topn.limit = 100;
  spec.operators.push_back(topn);
  return spec;
}

void BM_TranslateScanSpec(benchmark::State& state) {
  auto handle = Handle();
  auto spec = FullSpec();
  connector::Split split{"hpc", "laghos/part-0"};
  for (auto _ : state) {
    auto plan = connectors::TranslateScanSpec(handle, split, spec);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_TranslateScanSpec);

void BM_SerializePlan(benchmark::State& state) {
  auto plan = connectors::TranslateScanSpec(Handle(), {"hpc", "o"}, FullSpec());
  for (auto _ : state) {
    auto wire = substrait::SerializePlan(*plan);
    benchmark::DoNotOptimize(wire.data());
  }
}
BENCHMARK(BM_SerializePlan);

void BM_DeserializePlan(benchmark::State& state) {
  auto plan = connectors::TranslateScanSpec(Handle(), {"hpc", "o"}, FullSpec());
  auto wire = substrait::SerializePlan(*plan);
  for (auto _ : state) {
    auto parsed = substrait::DeserializePlan(ByteSpan(wire.data(), wire.size()));
    benchmark::DoNotOptimize(parsed.ok());
  }
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
}
BENCHMARK(BM_DeserializePlan);

}  // namespace

POCS_MICRO_BENCH_MAIN();
