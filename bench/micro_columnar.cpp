// Micro: columnar kernel throughput — scalar comparison (selection
// vectors), gather, row hashing, multi-key sort, IPC serialization.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <random>

#include "columnar/batch.h"
#include "columnar/ipc.h"
#include "columnar/kernels.h"

namespace {

using namespace pocs::columnar;

RecordBatchPtr MakeBatchRows(size_t n) {
  std::mt19937_64 rng(pocs::bench::MicroSeed(7));
  auto id = MakeColumn(TypeKind::kInt64);
  auto value = MakeColumn(TypeKind::kFloat64);
  auto tag = MakeColumn(TypeKind::kString);
  std::uniform_real_distribution<double> dist(0.0, 4.0);
  for (size_t i = 0; i < n; ++i) {
    id->AppendInt64(static_cast<int64_t>(i));
    value->AppendFloat64(dist(rng));
    tag->AppendString(std::string(1, static_cast<char>('a' + i % 8)));
  }
  return MakeBatch(MakeSchema({{"id", TypeKind::kInt64},
                               {"value", TypeKind::kFloat64},
                               {"tag", TypeKind::kString}}),
                   {id, value, tag});
}

void BM_CompareScalar(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 18);
  for (auto _ : state) {
    auto sel = CompareScalar(*batch->column(1), CompareOp::kGe,
                             Datum::Float64(2.0));
    benchmark::DoNotOptimize(sel.data());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_CompareScalar);

void BM_Between(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 18);
  for (auto _ : state) {
    auto sel = Between(*batch->column(1), Datum::Float64(0.8),
                       Datum::Float64(3.2));
    benchmark::DoNotOptimize(sel.data());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_Between);

void BM_TakeBatch(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 18);
  auto sel =
      CompareScalar(*batch->column(1), CompareOp::kGe, Datum::Float64(2.0));
  for (auto _ : state) {
    auto taken = TakeBatch(*batch, sel);
    benchmark::DoNotOptimize(taken.get());
  }
  state.SetItemsProcessed(state.iterations() * sel.size());
}
BENCHMARK(BM_TakeBatch);

void BM_HashRows(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 18);
  std::vector<ColumnPtr> keys = {batch->column(2), batch->column(0)};
  std::vector<uint64_t> hashes;
  for (auto _ : state) {
    HashRows(keys, &hashes);
    benchmark::DoNotOptimize(hashes.data());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_HashRows);

void BM_SortIndices(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 16);
  std::vector<SortKey> keys = {{2, true, true}, {1, false, true}};
  for (auto _ : state) {
    auto idx = SortIndices(*batch, keys);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_SortIndices);

void BM_IpcSerialize(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 16);
  for (auto _ : state) {
    auto data = ipc::SerializeBatch(*batch);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() * batch->ByteSize());
}
BENCHMARK(BM_IpcSerialize);

void BM_IpcDeserialize(benchmark::State& state) {
  auto batch = MakeBatchRows(1 << 16);
  auto data = ipc::SerializeBatch(*batch);
  for (auto _ : state) {
    auto rt = ipc::DeserializeBatch(pocs::ByteSpan(data.data(), data.size()));
    benchmark::DoNotOptimize(rt->get());
  }
  state.SetBytesProcessed(state.iterations() * batch->ByteSize());
}
BENCHMARK(BM_IpcDeserialize);

}  // namespace

POCS_MICRO_BENCH_MAIN();
