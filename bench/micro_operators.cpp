// Micro: execution-operator throughput — hash aggregation (few vs many
// groups), top-N accumulation, expression evaluation — the compute
// kernels whose storage-vs-compute placement the paper's pushdown
// decisions trade off.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <random>

#include "exec/hash_aggregator.h"
#include "exec/sorter.h"
#include "substrait/eval.h"

namespace {

using namespace pocs;
using columnar::ColumnPtr;
using columnar::Datum;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::RecordBatchPtr;
using columnar::TypeKind;
using substrait::AggFunc;
using substrait::Expression;
using substrait::ScalarFunc;

RecordBatchPtr GroupedBatch(size_t rows, int64_t groups) {
  std::mt19937_64 rng(pocs::bench::MicroSeed(3));
  auto g = MakeColumn(TypeKind::kInt64);
  auto v = MakeColumn(TypeKind::kFloat64);
  for (size_t i = 0; i < rows; ++i) {
    g->AppendInt64(static_cast<int64_t>(rng() % groups));
    v->AppendFloat64(static_cast<double>(rng() % 1000));
  }
  return MakeBatch(
      MakeSchema({{"g", TypeKind::kInt64}, {"v", TypeKind::kFloat64}}),
      {g, v});
}

void BM_HashAggregate(benchmark::State& state) {
  const int64_t groups = state.range(0);
  auto batch = GroupedBatch(1 << 17, groups);
  for (auto _ : state) {
    exec::HashAggregator agg(
        batch->schema(), {0},
        {{AggFunc::kSum, Expression::FieldRef(1, TypeKind::kFloat64), "s"},
         {AggFunc::kAvg, Expression::FieldRef(1, TypeKind::kFloat64), "m"}});
    benchmark::DoNotOptimize(agg.Consume(*batch).ok());
    auto out = agg.Finish();
    benchmark::DoNotOptimize(out->get());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
  state.SetLabel(std::to_string(groups) + " groups");
}
BENCHMARK(BM_HashAggregate)->Arg(4)->Arg(1024)->Arg(65536);

void BM_TopN(benchmark::State& state) {
  auto batch = GroupedBatch(1 << 17, 1 << 17);
  for (auto _ : state) {
    exec::TopNAccumulator topn(batch->schema(), {{1, true, true}},
                               static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(topn.Consume(*batch).ok());
    auto out = topn.Finish();
    benchmark::DoNotOptimize(out->get());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_TopN)->Arg(100)->Arg(10000);

void BM_ExpressionEval(benchmark::State& state) {
  auto batch = GroupedBatch(1 << 17, 1024);
  // (v * (1 - 0.05)) * (1 + 0.08): the Q1-style arithmetic chain.
  auto expr = Expression::Call(
      ScalarFunc::kMultiply,
      {Expression::Call(ScalarFunc::kMultiply,
                        {Expression::FieldRef(1, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(0.95))},
                        TypeKind::kFloat64),
       Expression::Literal(Datum::Float64(1.08))},
      TypeKind::kFloat64);
  for (auto _ : state) {
    auto col = substrait::Evaluate(expr, *batch);
    benchmark::DoNotOptimize(col->get());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_ExpressionEval);

void BM_FilterEval(benchmark::State& state) {
  auto batch = GroupedBatch(1 << 17, 1024);
  auto pred = Expression::Call(
      ScalarFunc::kAnd,
      {Expression::Call(ScalarFunc::kGe,
                        {Expression::FieldRef(1, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(200.0))},
                        TypeKind::kBool),
       Expression::Call(ScalarFunc::kLe,
                        {Expression::FieldRef(1, TypeKind::kFloat64),
                         Expression::Literal(Datum::Float64(800.0))},
                        TypeKind::kBool)},
      TypeKind::kBool);
  for (auto _ : state) {
    auto out = substrait::FilterBatch(pred, *batch);
    benchmark::DoNotOptimize(out->get());
  }
  state.SetItemsProcessed(state.iterations() * batch->num_rows());
}
BENCHMARK(BM_FilterEval);

}  // namespace

POCS_MICRO_BENCH_MAIN();
