// Ablation: the Selectivity Analyzer's two knobs (§4's acknowledged
// limitations / future work):
//   1. the pushdown threshold (min_reduction) — sweeping it shows which
//      operators get vetoed as the threshold rises, and the performance
//      consequences (notably: a positive threshold vetoes the harmful
//      expression-projection pushdown of Fig. 5(b)/(c));
//   2. the value-distribution assumption (normal vs uniform) for range
//      filter selectivity.
#include <cstdio>

#include "bench/report.h"
#include "workloads/testbed.h"
#include "workloads/tpch.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  workloads::Testbed testbed;
  workloads::TpchConfig config;
  config.seed = args.SeedOr(config.seed);
  config.num_files = args.smoke ? 2 : 4;
  config.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
  auto data = workloads::GenerateLineitem(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }

  std::printf("=== Ablation: pushdown threshold sweep (TPC-H Q1) ===\n");
  std::printf("%-12s %-30s %14s %14s\n", "threshold", "pushed operators",
              "sim time (s)", "moved (KB)");
  int idx = 0;
  for (double threshold : {-1.0, 0.0, 0.05, 0.5, 0.999}) {
    connectors::OcsConnectorConfig conn;
    conn.min_reduction = threshold;
    std::string catalog = "ocs_thr" + std::to_string(idx++);
    testbed.RegisterOcsCatalog(catalog, conn);
    auto result = testbed.Run(workloads::TpchQ1(), catalog);
    if (!result.ok()) {
      std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::string pushed;
    for (const auto& d : result->metrics.pushdown_decisions) {
      if (d.accepted) {
        if (!pushed.empty()) pushed += ",";
        pushed += connector::PushedOperatorKindName(d.kind);
      }
    }
    if (pushed.empty()) pushed = "(none)";
    std::printf("%-12.3f %-30s %14.4f %14.1f\n", threshold, pushed.c_str(),
                result->metrics.total,
                result->metrics.bytes_from_storage / 1024.0);
  }

  std::printf("\n=== Ablation: distribution assumption (estimates for "
              "Q1's shipdate filter) ===\n");
  auto info = testbed.metastore().GetTable("default", "lineitem");
  if (!info.ok()) return 1;
  const auto* stats = info->StatsFor("shipdate");
  for (auto dist : {connectors::ValueDistribution::kNormal,
                    connectors::ValueDistribution::kUniform}) {
    connectors::SelectivityAnalyzer analyzer(*info, {dist});
    double est = analyzer.ComparisonSelectivity(
        *stats, substrait::ScalarFunc::kLe,
        columnar::Datum::Date32(
            columnar::DaysFromCivil(1998, 9, 2)));
    std::printf("  %-8s P(shipdate <= 1998-09-02) ≈ %.4f\n",
                dist == connectors::ValueDistribution::kNormal ? "normal"
                                                               : "uniform",
                est);
  }
  std::printf("  (actual pass rate is ~0.99; the normal assumption "
              "overestimates mid-range mass — the skew limitation the paper "
              "notes)\n");
  return 0;
}
