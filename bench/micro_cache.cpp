// Micro: ShardedLruCache primitive — hit/miss lookup latency, insert
// with eviction churn, and multi-threaded mixed workloads (the shape
// both deployments see: the storage-side row-group cache under
// concurrent splits and the connector-side split-result cache under
// concurrent queries). Also measures the row-group key hash, which sits
// on every storage-side lookup.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "common/buffer.h"
#include "common/lru_cache.h"
#include "ocs/storage_node.h"

namespace {

using pocs::Bytes;
using pocs::LruCacheConfig;
using pocs::ShardedLruCache;

using U64Cache = ShardedLruCache<uint64_t, uint64_t>;

constexpr uint64_t kResident = 4096;  // entries pre-loaded before timing

LruCacheConfig Cfg(uint64_t byte_budget) {
  LruCacheConfig config;
  config.byte_budget = byte_budget;
  config.shards = 8;
  return config;
}

std::unique_ptr<U64Cache> MakeLoadedCache(uint64_t budget_entries) {
  // Each entry is charged 64 bytes; the budget admits `budget_entries`.
  auto cache = std::make_unique<U64Cache>(Cfg(budget_entries * 64));
  for (uint64_t k = 0; k < kResident; ++k) {
    cache->Insert(k, std::make_shared<const uint64_t>(k), 64);
  }
  return cache;
}

void BM_LruCacheHit(benchmark::State& state) {
  auto cache = MakeLoadedCache(2 * kResident);
  uint64_t k = 0;
  for (auto _ : state) {
    auto v = cache->Lookup(k);
    benchmark::DoNotOptimize(v.get());
    k = (k + 1) % kResident;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheHit);

void BM_LruCacheMiss(benchmark::State& state) {
  auto cache = MakeLoadedCache(2 * kResident);
  uint64_t k = kResident;  // never inserted
  for (auto _ : state) {
    auto v = cache->Lookup(k++);
    benchmark::DoNotOptimize(v.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheMiss);

void BM_LruCacheInsertEvict(benchmark::State& state) {
  // Budget half the key space: every insert past warmup evicts a tail
  // entry, so this times the full admit-and-evict path.
  auto cache = MakeLoadedCache(kResident / 2);
  uint64_t k = kResident;
  for (auto _ : state) {
    cache->Insert(k, std::make_shared<const uint64_t>(k), 64);
    ++k;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheInsertEvict);

// The deployment-shaped workload: mostly hits, some misses, an insert on
// each miss. Shared cache across benchmark threads — the sharded mutexes
// are exactly what this is measuring.
U64Cache& SharedCache() {
  static auto cache = []() {
    auto c = std::make_unique<U64Cache>(Cfg(2 * kResident * 64));
    for (uint64_t k = 0; k < kResident; ++k) {
      c->Insert(k, std::make_shared<const uint64_t>(k), 64);
    }
    return c;
  }();
  return *cache;
}

void BM_LruCacheMixedThreaded(benchmark::State& state) {
  U64Cache& cache = SharedCache();
  // ~90% of lookups land in the resident range; the rest miss and insert.
  std::mt19937_64 rng(pocs::bench::MicroSeed(11) + state.thread_index());
  std::uniform_int_distribution<uint64_t> dist(0,
                                               kResident + kResident / 8 - 1);
  for (auto _ : state) {
    uint64_t k = dist(rng);
    auto v = cache.Lookup(k);
    if (!v) cache.Insert(k, std::make_shared<const uint64_t>(k), 64);
    benchmark::DoNotOptimize(v.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheMixedThreaded)->Threads(1)->Threads(4)->Threads(8);

void BM_RowGroupCacheKeyHash(benchmark::State& state) {
  pocs::ocs::RowGroupCacheKey key{"bucket/laghos/part-00000.plite", 3, 17, 2};
  pocs::ocs::RowGroupCacheKeyHash hasher;
  for (auto _ : state) {
    uint64_t h = hasher(key);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowGroupCacheKeyHash);

}  // namespace

POCS_MICRO_BENCH_MAIN();
