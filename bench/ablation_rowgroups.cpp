// Ablation: row-group granularity vs statistics-based pruning.
//
// Chunk min/max statistics let both the Select path and the OCS embedded
// engine skip row groups that cannot match a range predicate (§2.2's
// "efficient predicate pushdown"). Smaller groups prune more precisely
// but pay more per-chunk overhead; this sweep quantifies the trade-off
// on a range-partitionable column (Laghos vertex_id) and a uniform one
// (x), where pruning cannot help.
#include <cstdio>

#include "bench/report.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  std::printf("=== Ablation: row-group size vs chunk pruning (Laghos) ===\n");
  std::printf("%-14s %-22s %12s %14s %14s\n", "rows/group", "predicate",
              "groups", "skipped", "sim time (s)");
  for (size_t rows_per_group : {size_t{1} << 12, size_t{1} << 14,
                                size_t{1} << 16}) {
    workloads::Testbed testbed;
    workloads::LaghosConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 4;
    config.rows_per_file = (args.smoke ? (1 << 14) : (1 << 16)) * args.scale;
    config.rows_per_group = rows_per_group;
    auto data = workloads::GenerateLaghos(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
    struct Case {
      const char* label;
      std::string sql;
    } cases[] = {
        // vertex_id is monotone within files → chunk ranges are disjoint
        // and a narrow range prunes almost everything.
        {"vertex_id<200 (sorted)",
         "SELECT COUNT(*) AS n FROM laghos WHERE vertex_id < 200"},
        // x is uniform in every chunk → min/max cannot prune.
        {"x<0.5 (uniform)",
         "SELECT COUNT(*) AS n FROM laghos WHERE x < 0.5"},
    };
    for (const Case& c : cases) {
      auto result = testbed.Run(c.sql, "ocs");
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.label,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-14zu %-22s %12llu %14llu %14.4f\n", rows_per_group,
                  c.label,
                  static_cast<unsigned long long>(
                      result->metrics.row_groups_total),
                  static_cast<unsigned long long>(
                      result->metrics.row_groups_skipped),
                  result->metrics.total);
    }
  }
  std::printf("\nSmaller row groups cut the media/decode term on the "
              "sorted-column predicate\nand change nothing on the uniform "
              "one — statistics only prune when value\nranges correlate "
              "with storage order.\n");
  return 0;
}
