// Micro: codec compression/decompression throughput and ratios over
// float-heavy scientific payloads — the substrate under Fig. 6.
#include <benchmark/benchmark.h>

#include "bench/micro_common.h"

#include <cmath>

#include "compress/codec.h"

namespace {

using pocs::ByteSpan;
using pocs::Bytes;
using pocs::compress::CodecType;
using pocs::compress::GetCodec;

Bytes ScientificPayload(size_t n_doubles) {
  Bytes data;
  data.reserve(n_doubles * 8);
  for (size_t i = 0; i < n_doubles; ++i) {
    double v = static_cast<double>(
        static_cast<float>(0.5 + 0.3 * std::sin(i * 0.001)));
    const auto* p = reinterpret_cast<const uint8_t*>(&v);
    data.insert(data.end(), p, p + 8);
  }
  return data;
}

void BM_Compress(benchmark::State& state) {
  CodecType type = static_cast<CodecType>(state.range(0));
  Bytes input = ScientificPayload(1 << 16);
  const auto& codec = GetCodec(type);
  size_t compressed_size = 0;
  for (auto _ : state) {
    Bytes out = codec.Compress(ByteSpan(input.data(), input.size()));
    compressed_size = out.size();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  state.counters["ratio"] =
      static_cast<double>(input.size()) / compressed_size;
  state.SetLabel(std::string(pocs::compress::CodecName(type)));
}
BENCHMARK(BM_Compress)->DenseRange(0, 3);

void BM_Decompress(benchmark::State& state) {
  CodecType type = static_cast<CodecType>(state.range(0));
  Bytes input = ScientificPayload(1 << 16);
  const auto& codec = GetCodec(type);
  Bytes compressed = codec.Compress(ByteSpan(input.data(), input.size()));
  for (auto _ : state) {
    auto out = codec.Decompress(ByteSpan(compressed.data(), compressed.size()));
    benchmark::DoNotOptimize(out->data());
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  state.SetLabel(std::string(pocs::compress::CodecName(type)));
}
BENCHMARK(BM_Decompress)->DenseRange(0, 3);

}  // namespace

POCS_MICRO_BENCH_MAIN();
