// Table 3: breakdown of execution time for a single query on one Laghos
// file through the Presto-OCS connector.
//
// Paper: Logical Plan Analysis 0.06%, Substrait IR Generation 1.94%,
// Pushdown & Result Transfer 40.12%, Presto Execution (Post-Scan) 47.90%,
// Others 9.97%. Shape to reproduce: plan analysis + IR generation stay a
// negligible share (<2%) — the connector's own overhead is the claim.
#include <cstdio>

#include "bench/report.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  workloads::Testbed testbed;
  workloads::LaghosConfig config;
  config.seed = args.SeedOr(config.seed);
  config.num_files = 1;  // the paper measures a single Parquet file
  config.rows_per_file = (args.smoke ? (1 << 14) : (1 << 18)) * args.scale;
  auto data = workloads::GenerateLaghos(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }

  // Warm-up run (excluded), then the measured run.
  (void)testbed.Run(workloads::LaghosQuery(), "ocs");
  auto result = testbed.Run(workloads::LaghosQuery(), "ocs");
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const auto& m = result->metrics;

  std::printf("=== Table 3: single-query execution-time breakdown ===\n\n");
  struct Row {
    const char* stage;
    double seconds;
    double paper_share;
  } rows[] = {
      {"Logical Plan Analysis", m.logical_plan_analysis, 0.06},
      {"Substrait IR Generation", m.ir_generation, 1.94},
      {"Pushdown & Result Transfer", m.pushdown_and_transfer, 40.12},
      {"Presto Execution (Post-Scan)", m.post_scan_execution, 47.90},
      {"Others", m.others, 9.97},
  };
  std::printf("%-30s %10s %9s %14s\n", "Execution Stage", "Time (ms)",
              "Share", "paper share");
  for (const Row& row : rows) {
    std::printf("%-30s %10.3f %8.2f%% %13.2f%%\n", row.stage,
                row.seconds * 1e3,
                m.total > 0 ? 100.0 * row.seconds / m.total : 0.0,
                row.paper_share);
  }
  std::printf("%-30s %10.3f %9s %14s\n", "Total", m.total * 1e3, "100%",
              "100%");

  double connector_overhead_pct =
      m.total > 0
          ? 100.0 * (m.logical_plan_analysis + m.ir_generation) / m.total
          : 0.0;
  std::printf("\nconnector overhead (plan analysis + IR generation): %.2f%% "
              "%s the paper's <2%% claim\n",
              connector_overhead_pct,
              connector_overhead_pct < 2.0 ? "— consistent with"
                                           : "— ABOVE");

  bench::BenchReport report("table3_breakdown", args);
  report.AddTiming("logical_plan_analysis_seconds", m.logical_plan_analysis);
  report.AddTiming("ir_generation_seconds", m.ir_generation);
  report.AddTiming("pushdown_and_transfer_seconds", m.pushdown_and_transfer);
  report.AddTiming("post_scan_execution_seconds", m.post_scan_execution);
  report.AddTiming("total_seconds", m.total);
  report.AddExact("bytes_from_storage",
                  static_cast<double>(m.bytes_from_storage), "bytes");
  report.AddExact("rows_scanned", static_cast<double>(m.rows_scanned),
                  "rows");
  return report.MaybeWriteJson() ? 0 : 1;
}
