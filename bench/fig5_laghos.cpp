// Fig. 5(a): Laghos — progressive operator pushdown.
//
// Paper (24 GB, physical 10 GbE testbed):
//   none          2710 s, 24 GB moved
//   +filter       1015 s, 5.1 GB
//   +aggregation   828 s, 0.75 GB
//   +topn          450 s, 0.0005 GB     → 2.25x vs filter-only, −99.99% DM
// We reproduce the SHAPE at laptop scale on a simulated network: each
// added operator reduces both data movement and execution time, and full
// pushdown beats filter-only by a >2x factor with a ≥99.9% movement cut.
//
// Appendix: a warm-cache repeat of the same query through a
// split-result-cached catalog. The repeat must return bit-identical
// rows from the connector cache at ≥2x lower simulated time with
// cache_bytes_saved > 0 — the multi-level caching acceptance bar
// (DESIGN.md §10).
#include <string>
#include <vector>

#include "bench/fig5_common.h"
#include "workloads/laghos.h"

using namespace pocs;

namespace {

// Order-insensitive canonical form of a result table, enough to assert
// bit-identical rows between the cold and warm runs.
std::string Canonicalize(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) {
    out += row;
    out += "\n";
  }
  return out;
}

int RunWarmCacheRepeat(workloads::Testbed& testbed, const std::string& sql,
                       bool smoke) {
  // Filter-only pushdown so the cold run moves real data; the warm
  // repeat is served from the split-result cache after a metadata-only
  // version revalidation.
  connectors::OcsConnectorConfig cached;
  cached.pushdown_projection = false;
  cached.pushdown_aggregation = false;
  cached.pushdown_topn = false;
  cached.split_result_cache_bytes = 64ull << 20;
  testbed.RegisterOcsCatalog("ocs_cached", cached);

  auto cold = testbed.Run(sql, "ocs_cached");
  if (!cold.ok()) {
    std::fprintf(stderr, "cached cold run failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  auto warm = testbed.Run(sql, "ocs_cached");
  if (!warm.ok()) {
    std::fprintf(stderr, "cached warm run failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }

  const double speedup = warm->metrics.total > 0
                             ? cold->metrics.total / warm->metrics.total
                             : 0.0;
  std::printf("warm-cache repeat (filter-only + split-result cache):\n");
  std::printf("  cold  %10.4f s %12.1f KB moved\n", cold->metrics.total,
              cold->metrics.bytes_from_storage / 1024.0);
  std::printf("  warm  %10.4f s %12.1f KB moved   %llu hits, %.1f KB saved, "
              "%.2fx speedup\n",
              warm->metrics.total,
              warm->metrics.bytes_from_storage / 1024.0,
              static_cast<unsigned long long>(warm->metrics.cache_hits),
              warm->metrics.cache_bytes_saved / 1024.0, speedup);

  int failures = 0;
  if (Canonicalize(*warm->table) != Canonicalize(*cold->table)) {
    std::fprintf(stderr, "FAIL: warm rows differ from cold rows\n");
    ++failures;
  }
  if (warm->metrics.cache_bytes_saved == 0) {
    std::fprintf(stderr, "FAIL: warm run saved no bytes via the cache\n");
    ++failures;
  }
  // Timing gate only at full scale: at smoke size both runs finish in a
  // couple of milliseconds and measured-compute noise swamps the ratio
  // (the exact gates above still hold). Full scale clears 2x by ~5x.
  if (!smoke && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: warm repeat only %.2fx faster (acceptance: >=2x)\n",
                 speedup);
    ++failures;
  }
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  workloads::Testbed testbed;
  workloads::LaghosConfig config;
  config.seed = args.SeedOr(config.seed);
  config.num_files = args.smoke ? 2 : 8;
  config.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
  auto data = workloads::GenerateLaghos(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/false,
                                       /*with_topn=*/true);
  int rc = bench::RunFig5("Fig 5(a): Laghos progressive pushdown", testbed,
                          workloads::LaghosQuery(), steps, args,
                          "fig5_laghos");
  if (rc != 0) return rc;
  return RunWarmCacheRepeat(testbed, workloads::LaghosQuery(), args.smoke);
}
