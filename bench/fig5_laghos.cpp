// Fig. 5(a): Laghos — progressive operator pushdown.
//
// Paper (24 GB, physical 10 GbE testbed):
//   none          2710 s, 24 GB moved
//   +filter       1015 s, 5.1 GB
//   +aggregation   828 s, 0.75 GB
//   +topn          450 s, 0.0005 GB     → 2.25x vs filter-only, −99.99% DM
// We reproduce the SHAPE at laptop scale on a simulated network: each
// added operator reduces both data movement and execution time, and full
// pushdown beats filter-only by a >2x factor with a ≥99.9% movement cut.
#include "bench/fig5_common.h"
#include "workloads/laghos.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  workloads::Testbed testbed;
  workloads::LaghosConfig config;
  config.seed = args.SeedOr(config.seed);
  config.num_files = args.smoke ? 2 : 8;
  config.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
  auto data = workloads::GenerateLaghos(config);
  if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/false,
                                       /*with_topn=*/true);
  return bench::RunFig5("Fig 5(a): Laghos progressive pushdown", testbed,
                        workloads::LaghosQuery(), steps, args, "fig5_laghos");
}
