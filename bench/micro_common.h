// Entry point shared by the google-benchmark micro benches. Google
// benchmark owns the flag namespace (`--benchmark_*`), so the pocs
// flags (`--seed`, `--smoke`) are stripped here before Initialize();
// everything else passes through untouched.
//
// Seeds: micro benches default to small fixed constants (never the
// clock); `--seed N` overrides them via MicroSeed().
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace pocs::bench {

namespace internal {
inline uint64_t& MicroSeedValue() {
  static uint64_t seed = 0;
  return seed;
}
inline bool& MicroSeedSet() {
  static bool set = false;
  return set;
}
}  // namespace internal

// The bench's fixed default seed unless --seed was passed on the CLI.
inline uint64_t MicroSeed(uint64_t fallback) {
  return internal::MicroSeedSet() ? internal::MicroSeedValue() : fallback;
}

inline int MicroBenchMain(int argc, char** argv) {
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      internal::MicroSeedValue() = std::strtoull(argv[i] + 7, nullptr, 10);
      internal::MicroSeedSet() = true;
      continue;
    }
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      internal::MicroSeedValue() = std::strtoull(argv[++i], nullptr, 10);
      internal::MicroSeedSet() = true;
      continue;
    }
    if (std::strcmp(argv[i], "--smoke") == 0) continue;  // accepted, no-op
    passthrough.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace pocs::bench

// Drop-in replacement for BENCHMARK_MAIN() in pocs micro benches.
#define POCS_MICRO_BENCH_MAIN()                                  \
  int main(int argc, char** argv) {                              \
    return pocs::bench::MicroBenchMain(argc, argv);              \
  }                                                              \
  int main(int, char**)
