// Fig. 6: impact of compression algorithms on pushdown performance
// (Deep Water Impact dataset).
//
// Paper:
//                 filter-only   all-operator    speedup
//   none            649.3 s        530.4 s       1.22x
//   Snappy          ~620 s         ~452 s        1.37x
//   GZip            ~600 s         ~432 s        1.39x
//   Zstd            451.7 s        331.6 s       1.36x
// Shapes to reproduce: (1) within every codec, all-operator pushdown
// beats filter-only; (2) stronger compression lowers both bars; (3) the
// compressed filter-only path can beat the UNCOMPRESSED all-operator
// path. Codecs are the repo's stand-ins: fastlz≈Snappy,
// deflate-lite≈GZip, zs-lite≈Zstd (DESIGN.md).
#include <cstdio>

#include "bench/fig5_common.h"
#include "workloads/deepwater.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  std::printf("=== Fig 6: compression x pushdown (Deep Water Impact) ===\n");
  std::printf("%-14s %18s %18s %10s %16s\n", "codec", "filter-only (s)",
              "all-operator (s)", "speedup", "stored (MB)");

  struct Cell {
    double filter_only = 0;
    double all_ops = 0;
  };
  std::vector<std::pair<std::string, Cell>> grid;

  for (auto codec :
       {compress::CodecType::kNone, compress::CodecType::kFastLz,
        compress::CodecType::kDeflateLite, compress::CodecType::kZsLite}) {
    workloads::Testbed testbed;
    workloads::DeepWaterConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 8;
    config.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
    config.codec = codec;
    auto data = workloads::GenerateDeepWater(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
    double stored_mb =
        testbed.metastore().GetTable("default", "deepwater")->total_bytes /
        (1024.0 * 1024.0);

    // filter-only: OCS path restricted to filter pushdown (columnar
    // results, storage-side decompression — the conventional path).
    connectors::OcsConnectorConfig filter_only;
    filter_only.pushdown_projection = false;
    filter_only.pushdown_aggregation = false;
    filter_only.pushdown_topn = false;
    testbed.RegisterOcsCatalog("ocs_filter", filter_only);

    Cell cell;
    auto fo = testbed.Run(workloads::DeepWaterQuery(), "ocs_filter");
    auto all = testbed.Run(workloads::DeepWaterQuery(), "ocs");
    if (!fo.ok() || !all.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    cell.filter_only = fo->metrics.total;
    cell.all_ops = all->metrics.total;
    std::printf("%-14s %18.4f %18.4f %9.2fx %16.2f\n",
                compress::CodecName(codec).data(), cell.filter_only,
                cell.all_ops, cell.filter_only / cell.all_ops, stored_mb);
    grid.emplace_back(std::string(compress::CodecName(codec)), cell);
  }

  // Paper's cross-check: compressed filter-only vs uncompressed all-op.
  if (grid.size() == 4) {
    double uncompressed_all = grid[0].second.all_ops;
    double zs_filter_only = grid[3].second.filter_only;
    std::printf("\ncompressed (zs-lite) filter-only %.4f s vs uncompressed "
                "all-operator %.4f s → %s\n",
                zs_filter_only, uncompressed_all,
                zs_filter_only < uncompressed_all
                    ? "compression+basic pushdown wins (as in the paper)"
                    : "all-operator wins at this scale");
  }
  return 0;
}
