// Unified bench driver for CI: runs a curated subset of the paper's
// experiments (Fig. 5 progressive pushdown on TPC-H Q1 and Laghos, the
// Table 3 stage breakdown, an S3-Select-path query, a warm-cache repeat
// scan through the connector split-result cache, a selective scan
// through the split-pruning metadata cache, and the multi-table join —
// dimension filter + fact scan + group-by — with and without the
// join-key bloom / storage-side partial aggregation) and emits one
// schema-versioned JSON report — BENCH_PR9.json by default — that
// tools/check_bench.py diffs against a committed baseline.
//
// `--smoke` shrinks every dataset to CI size (seconds, not minutes);
// the default seeds are the workloads' fixed ones, so two runs of the
// same binary on the same tree produce identical "exact" metrics.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/fig5_common.h"
#include "bench/report.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "workloads/chaos.h"
#include "workloads/concurrent.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"
#include "workloads/tpch.h"

using namespace pocs;

namespace {

// Order-insensitive 32-bit result fingerprint: rows canonicalized
// (%.9g doubles), sorted, FNV-1a hashed and folded. Used to assert the
// pushed join plan returns exactly the engine-only plan's answer.
uint32_t ResultFingerprint(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& row : rows) {
    for (char ch : row) {
      h ^= static_cast<unsigned char>(ch);
      h *= 0x100000001b3ull;
    }
    h ^= '\n';
    h *= 0x100000001b3ull;
  }
  return static_cast<uint32_t>((h ^ (h >> 32)) & 0xffffffffull);
}

// Runs one catalog and appends the per-query metrics under `prefix.`.
// Returns false (after printing the error) when the query fails.
bool RunAndRecord(workloads::Testbed& testbed, const std::string& sql,
                  const std::string& catalog, const std::string& prefix,
                  bench::BenchReport* report,
                  engine::QueryResult* out = nullptr) {
  auto result = testbed.Run(sql, catalog);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_report: %s via %s failed: %s\n", sql.c_str(),
                 catalog.c_str(), result.status().ToString().c_str());
    return false;
  }
  const engine::QueryMetrics& m = result->metrics;
  report->AddExact(prefix + ".bytes_moved",
                   static_cast<double>(m.bytes_from_storage), "bytes");
  report->AddExact(prefix + ".rows_scanned",
                   static_cast<double>(m.rows_scanned), "rows");
  report->AddExact(prefix + ".result_rows",
                   static_cast<double>(result->table->num_rows()), "rows");
  report->AddExact(prefix + ".splits", static_cast<double>(m.splits));
  report->AddExact(prefix + ".splits_planned",
                   static_cast<double>(m.splits_planned));
  report->AddExact(prefix + ".splits_pruned",
                   static_cast<double>(m.splits_pruned));
  report->AddExact(prefix + ".row_groups_skipped",
                   static_cast<double>(m.row_groups_skipped));
  report->AddExact(prefix + ".cache_hits",
                   static_cast<double>(m.cache_hits));
  report->AddExact(prefix + ".cache_bytes_saved",
                   static_cast<double>(m.cache_bytes_saved), "bytes");
  report->AddExact(prefix + ".bytes_refetched_on_retry",
                   static_cast<double>(m.bytes_refetched_on_retry), "bytes");
  report->AddExact(prefix + ".pushdown.bloom_pushed",
                   static_cast<double>(m.bloom_pushed));
  report->AddExact(prefix + ".pushdown.bloom_rows_pruned",
                   static_cast<double>(m.bloom_rows_pruned), "rows");
  report->AddExact(prefix + ".pushdown.partial_agg_accepted",
                   static_cast<double>(m.partial_agg_accepted));
  report->AddExact(prefix + ".pushdown.partial_agg_merges",
                   static_cast<double>(m.partial_agg_merges), "rows");
  report->AddTiming(prefix + ".sim_seconds", m.total);
  std::printf("%-28s %14.4f s %12.1f KB moved\n", prefix.c_str(), m.total,
              m.bytes_from_storage / 1024.0);
  if (out) *out = std::move(*result);
  return true;
}

bool RunProgressive(workloads::Testbed& testbed, const std::string& sql,
                    const std::vector<bench::Fig5Step>& steps,
                    const std::string& dataset, bench::BenchReport* report) {
  for (const bench::Fig5Step& step : steps) {
    if (!RunAndRecord(testbed, sql, step.catalog,
                      dataset + "." + bench::StepSlug(step.label), report)) {
      return false;
    }
  }
  return true;
}

// Query-completion totals the EventListener collected for this testbed.
void RecordCollectorTotals(workloads::Testbed& testbed,
                           const std::string& prefix,
                           bench::BenchReport* report) {
  const auto totals = testbed.stats().totals();
  report->AddExact(prefix + ".queries", static_cast<double>(totals.queries));
  report->AddExact(prefix + ".rows_scanned",
                   static_cast<double>(totals.rows_scanned), "rows");
  report->AddExact(prefix + ".rows_returned",
                   static_cast<double>(totals.rows_returned), "rows");
  report->AddExact(prefix + ".bytes_moved",
                   static_cast<double>(totals.bytes_moved()), "bytes");
  report->AddExact(prefix + ".pushdown_accepted",
                   static_cast<double>(totals.pushdown_accepted));
  report->AddExact(prefix + ".pushdown_rejected",
                   static_cast<double>(totals.pushdown_rejected));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.json_path.empty()) args.json_path = "BENCH_PR9.json";
  const size_t rows_per_file =
      (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;

  Stopwatch wall;
  bench::BenchReport report("bench_report", args);

  // --- Fig. 5(c): TPC-H Q1 progressive pushdown --------------------------
  {
    workloads::Testbed testbed;
    workloads::TpchConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 4;
    config.rows_per_file = rows_per_file;
    auto data = workloads::GenerateLineitem(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "bench_report: tpch ingest failed\n");
      return 1;
    }
    auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/true,
                                         /*with_topn=*/false);
    if (!RunProgressive(testbed, workloads::TpchQ1(), steps, "tpch",
                        &report)) {
      return 1;
    }
    // S3-Select path on the same data: covers the Hive connector's
    // Select request/CSV decode machinery in the smoke run.
    if (!RunAndRecord(testbed, workloads::TpchQ1(), "hive", "tpch.s3select",
                      &report)) {
      return 1;
    }

    // --- Multi-table join: bloom semi-join + storage partial agg ---------
    // The same join twice: "ocs_join_engine" disables the join-key bloom
    // and aggregation pushdown (engine-side single plan), "ocs" takes
    // both. The pushed run must return the identical answer while moving
    // strictly fewer bytes (DESIGN.md §14).
    {
      auto dim = workloads::GenerateSupplier(workloads::SupplierConfig{});
      if (!dim.ok() || !testbed.Ingest(std::move(*dim)).ok()) {
        std::fprintf(stderr, "bench_report: supplier ingest failed\n");
        return 1;
      }
      connectors::OcsConnectorConfig engine_only;
      engine_only.pushdown_aggregation = false;
      engine_only.pushdown_join_bloom = false;
      testbed.RegisterOcsCatalog("ocs_join_engine", engine_only);
      const std::string join_sql = workloads::TpchJoinQuery();
      engine::QueryResult ref;
      engine::QueryResult pushed;
      if (!RunAndRecord(testbed, join_sql, "ocs_join_engine", "tpch.join",
                        &report, &ref) ||
          !RunAndRecord(testbed, join_sql, "ocs", "tpch.join_pushdown",
                        &report, &pushed)) {
        return 1;
      }
      const uint32_t ref_fp = ResultFingerprint(*ref.table);
      const uint32_t pushed_fp = ResultFingerprint(*pushed.table);
      report.AddExact("tpch.join.result_fingerprint",
                      static_cast<double>(ref_fp));
      report.AddExact("tpch.join_pushdown.result_fingerprint",
                      static_cast<double>(pushed_fp));
      if (pushed_fp != ref_fp) {
        std::fprintf(stderr,
                     "bench_report: pushed join answer diverged from the "
                     "engine-only plan (%u vs %u)\n",
                     pushed_fp, ref_fp);
        return 1;
      }
      if (pushed.metrics.bytes_from_storage >= ref.metrics.bytes_from_storage) {
        std::fprintf(stderr,
                     "bench_report: pushed join moved %llu bytes, engine-only "
                     "moved %llu — pushdown must move strictly fewer\n",
                     static_cast<unsigned long long>(
                         pushed.metrics.bytes_from_storage),
                     static_cast<unsigned long long>(
                         ref.metrics.bytes_from_storage));
        return 1;
      }
    }
    RecordCollectorTotals(testbed, "tpch.listener", &report);
  }

  // --- Fig. 5(a): Laghos progressive pushdown (incl. topN) ---------------
  {
    workloads::Testbed testbed;
    workloads::LaghosConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 4;
    config.rows_per_file = rows_per_file;
    auto data = workloads::GenerateLaghos(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "bench_report: laghos ingest failed\n");
      return 1;
    }
    auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/false,
                                         /*with_topn=*/true);
    if (!RunProgressive(testbed, workloads::LaghosQuery(), steps, "laghos",
                        &report)) {
      return 1;
    }
    RecordCollectorTotals(testbed, "laghos.listener", &report);

    // --- Repeat scan through the split-result cache ----------------------
    // Filter-only pushdown so the cold run moves real data; the warm
    // repeat revalidates object versions with metadata-only Stat calls
    // and replays the cached decoded splits — cache_hits covers every
    // split and cache_bytes_saved equals the cold run's data movement.
    {
      connectors::OcsConnectorConfig cached;
      cached.pushdown_projection = false;
      cached.pushdown_aggregation = false;
      cached.pushdown_topn = false;
      cached.split_result_cache_bytes = 64ull << 20;
      testbed.RegisterOcsCatalog("ocs_cached", cached);
      if (!RunAndRecord(testbed, workloads::LaghosQuery(), "ocs_cached",
                        "laghos.cached_cold", &report) ||
          !RunAndRecord(testbed, workloads::LaghosQuery(), "ocs_cached",
                        "laghos.cached_warm", &report)) {
        return 1;
      }
    }

    // --- Selective scan through the split-pruning metadata cache ---------
    // vertex ranges are disjoint per file, so a vertex_id prefix bound
    // proves trailing files empty from cached footer stats: the cold run
    // pays one DescribeObject per object and prunes their splits before
    // any data RPC (splits_pruned > 0); the warm repeat revalidates each
    // descriptor with a metadata-only Stat (metadata_cache.hit > 0).
    {
      connectors::OcsConnectorConfig pruning;
      pruning.metadata_cache_bytes = 8ull << 20;
      testbed.RegisterOcsCatalog("ocs_pruned", pruning);
      const size_t vertices_per_file =
          config.rows_per_file / config.rows_per_vertex;
      const std::string selective = workloads::LaghosSelectiveQuery(
          "laghos", static_cast<int64_t>(vertices_per_file));
      if (!RunAndRecord(testbed, selective, "ocs_pruned", "laghos.selective",
                        &report) ||
          !RunAndRecord(testbed, selective, "ocs_pruned",
                        "laghos.selective_warm", &report)) {
        return 1;
      }
    }

    // --- Table 3 stage breakdown on the last testbed ---------------------
    auto result = testbed.Run(workloads::LaghosQuery(), "ocs");
    if (!result.ok()) {
      std::fprintf(stderr, "bench_report: breakdown query failed\n");
      return 1;
    }
    const engine::QueryMetrics& m = result->metrics;
    report.AddTiming("breakdown.logical_plan_analysis_seconds",
                     m.logical_plan_analysis);
    report.AddTiming("breakdown.ir_generation_seconds", m.ir_generation);
    report.AddTiming("breakdown.pushdown_and_transfer_seconds",
                     m.pushdown_and_transfer);
    report.AddTiming("breakdown.post_scan_execution_seconds",
                     m.post_scan_execution);
    report.AddTiming("breakdown.total_seconds", m.total);
  }

  // --- Concurrent multi-tenant workload (DESIGN.md §12) ------------------
  // N seeded queries across the three standard tenants, under admission
  // control and load-aware dispatch. Accept/reject outcomes, per-tenant
  // arrival counts, result rows/fingerprint, and per-node routed-plan
  // counts are pure functions of the schedule → exact; latency quantiles
  // are wall-clock → timings.
  {
    workloads::ConcurrentWorkloadConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_queries = args.smoke ? 24 : 48;
    workloads::Testbed testbed(workloads::MakeConcurrentTestbedConfig(config));
    if (!workloads::IngestChaosDatasets(&testbed).ok()) {
      std::fprintf(stderr, "bench_report: concurrent ingest failed\n");
      return 1;
    }
    auto run = workloads::RunConcurrentWorkload(&testbed, config);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_report: concurrent workload failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    report.AddExact("concurrent.admission.queued",
                    static_cast<double>(run->admission_queued));
    report.AddExact("concurrent.admission.admitted",
                    static_cast<double>(run->admission_admitted));
    report.AddExact("concurrent.admission.rejected",
                    static_cast<double>(run->admission_rejected));
    report.AddExact("concurrent.rows_total",
                    static_cast<double>(run->rows_total), "rows");
    // 64-bit fingerprint folded to 32 bits so it survives the JSON
    // double round-trip losslessly.
    const uint64_t fp = run->result_fingerprint;
    report.AddExact("concurrent.result_fingerprint",
                    static_cast<double>((fp ^ (fp >> 32)) & 0xffffffffull));
    for (size_t i = 0; i < run->node_plans.size(); ++i) {
      report.AddExact("concurrent.dispatch.node" + std::to_string(i) +
                          ".plans",
                      static_cast<double>(run->node_plans[i]));
    }
    report.AddExact("concurrent.dispatch.max_node_plans",
                    static_cast<double>(run->max_node_plans));
    report.AddExact("concurrent.dispatch.load_skew",
                    static_cast<double>(run->max_node_plans -
                                        run->min_node_plans));
    for (const workloads::TenantReport& t : run->tenants) {
      const std::string prefix = "concurrent.tenant." + t.tenant;
      report.AddExact(prefix + ".queries", static_cast<double>(t.queries));
      report.AddExact(prefix + ".admitted", static_cast<double>(t.admitted));
      report.AddExact(prefix + ".rejected", static_cast<double>(t.rejected));
      report.AddTiming(prefix + ".p50_seconds", t.p50_seconds);
      report.AddTiming(prefix + ".p95_seconds", t.p95_seconds);
      report.AddTiming(prefix + ".p99_seconds", t.p99_seconds);
      report.AddTiming(prefix + ".queue_wait_p95_seconds",
                       t.queue_wait_p95_seconds);
      std::printf("%-28s %14.4f s p95 %10llu admitted\n", prefix.c_str(),
                  t.p95_seconds,
                  static_cast<unsigned long long>(t.admitted));
    }
  }

  // --- Process-wide registry rollup --------------------------------------
  // Counters are order-independent sums over fixed-seed workloads →
  // exact. Histograms carry wall time → only their populations are
  // exact; means are reported as timings.
  for (const metrics::MetricSample& s :
       metrics::Registry::Default().Snapshot()) {
    switch (s.kind) {
      case metrics::MetricKind::kCounter:
        report.AddExact("process." + s.name, s.value);
        break;
      case metrics::MetricKind::kGauge:
        break;  // gauges are instantaneous, not comparable across runs
      case metrics::MetricKind::kHistogram:
        report.AddExact("process." + s.name + ".count", s.value);
        if (s.value > 0) {
          report.AddTiming("process." + s.name + ".mean_seconds", s.mean);
        }
        break;
    }
  }

  report.AddTiming("driver.wall_seconds", wall.ElapsedSeconds());
  if (!report.WriteJson(args.json_path)) return 1;
  return 0;
}
