// Unified bench driver for CI: runs a curated subset of the paper's
// experiments (Fig. 5 progressive pushdown on TPC-H Q1 and Laghos, the
// Table 3 stage breakdown, an S3-Select-path query, a warm-cache repeat
// scan through the connector split-result cache, a selective scan
// through the split-pruning metadata cache, and the multi-table join —
// dimension filter + fact scan + group-by — with and without the
// join-key bloom / storage-side partial aggregation, a dictionary-string
// filter exercising code-domain predicate evaluation plus late
// materialization, and `micro_kernels` naive-vs-vectorized kernel
// comparisons) and emits one
// schema-versioned JSON report — BENCH_PR10.json by default — that
// tools/check_bench.py diffs against a committed baseline.
//
// `--smoke` shrinks every dataset to CI size (seconds, not minutes);
// the default seeds are the workloads' fixed ones, so two runs of the
// same binary on the same tree produce identical "exact" metrics.
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/fig5_common.h"
#include "bench/report.h"
#include "columnar/kernels.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "format/encoding.h"
#include "workloads/chaos.h"
#include "workloads/concurrent.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"
#include "workloads/tpch.h"

// Sanitizer instrumentation skews the naive-vs-kernel ratios, so the
// micro_kernels speedup floors are enforced only in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define POCS_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define POCS_BENCH_SANITIZED 1
#endif
#endif
#ifndef POCS_BENCH_SANITIZED
#define POCS_BENCH_SANITIZED 0
#endif

using namespace pocs;

namespace {

// Order-insensitive 32-bit result fingerprint: rows canonicalized
// (%.9g doubles), sorted, FNV-1a hashed and folded. Used to assert the
// pushed join plan returns exactly the engine-only plan's answer.
uint32_t ResultFingerprint(const columnar::RecordBatch& batch) {
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& row : rows) {
    for (char ch : row) {
      h ^= static_cast<unsigned char>(ch);
      h *= 0x100000001b3ull;
    }
    h ^= '\n';
    h *= 0x100000001b3ull;
  }
  return static_cast<uint32_t>((h ^ (h >> 32)) & 0xffffffffull);
}

// --- micro_kernels naive references ------------------------------------
// Faithful replicas of the pre-vectorization scalar kernels: a per-row
// loop with the comparison op resolved by a switch inside the loop and
// matches collected via push_back. The vectorized kernels must beat
// these by the margins DESIGN.md §15 records (≥2x int64 filter, ≥3x
// dictionary-string filter).

bool NaiveOpTest(columnar::CompareOp op, int cmp) {
  switch (op) {
    case columnar::CompareOp::kEq: return cmp == 0;
    case columnar::CompareOp::kNe: return cmp != 0;
    case columnar::CompareOp::kLt: return cmp < 0;
    case columnar::CompareOp::kLe: return cmp <= 0;
    case columnar::CompareOp::kGt: return cmp > 0;
    case columnar::CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

columnar::SelectionVector NaiveFilterInt64(const columnar::Column& col,
                                           columnar::CompareOp op,
                                           int64_t lit) {
  columnar::SelectionVector out;
  out.reserve(col.length());
  const bool nulls = col.has_nulls();
  for (uint32_t i = 0; i < col.length(); ++i) {
    if (nulls && col.IsNull(i)) continue;
    const int64_t v = col.GetInt64(i);
    if (NaiveOpTest(op, v < lit ? -1 : (v > lit ? 1 : 0))) out.push_back(i);
  }
  return out;
}

columnar::SelectionVector NaiveFilterString(const columnar::Column& col,
                                            columnar::CompareOp op,
                                            std::string_view lit) {
  columnar::SelectionVector out;
  out.reserve(col.length());
  const bool nulls = col.has_nulls();
  for (uint32_t i = 0; i < col.length(); ++i) {
    if (nulls && col.IsNull(i)) continue;
    const int cmp = col.GetString(i).compare(lit);
    if (NaiveOpTest(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0))) out.push_back(i);
  }
  return out;
}

columnar::ColumnPtr NaiveGather(const columnar::Column& col,
                                const columnar::SelectionVector& sel) {
  auto out = columnar::MakeColumn(col.type());
  for (uint32_t i : sel) out->AppendFrom(col, i);
  return out;
}

// Best wall time over `reps` runs of `fn` (returns a checksum folded
// into *sink so the work cannot be optimized away).
template <typename Fn>
double BestSeconds(int reps, uint64_t* sink, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    *sink += fn();
    const double s = sw.ElapsedSeconds();
    if (s < best) best = s;
  }
  return best;
}

// Runs one catalog and appends the per-query metrics under `prefix.`.
// Returns false (after printing the error) when the query fails.
bool RunAndRecord(workloads::Testbed& testbed, const std::string& sql,
                  const std::string& catalog, const std::string& prefix,
                  bench::BenchReport* report,
                  engine::QueryResult* out = nullptr) {
  auto result = testbed.Run(sql, catalog);
  if (!result.ok()) {
    std::fprintf(stderr, "bench_report: %s via %s failed: %s\n", sql.c_str(),
                 catalog.c_str(), result.status().ToString().c_str());
    return false;
  }
  const engine::QueryMetrics& m = result->metrics;
  report->AddExact(prefix + ".bytes_moved",
                   static_cast<double>(m.bytes_from_storage), "bytes");
  report->AddExact(prefix + ".rows_scanned",
                   static_cast<double>(m.rows_scanned), "rows");
  report->AddExact(prefix + ".result_rows",
                   static_cast<double>(result->table->num_rows()), "rows");
  report->AddExact(prefix + ".splits", static_cast<double>(m.splits));
  report->AddExact(prefix + ".splits_planned",
                   static_cast<double>(m.splits_planned));
  report->AddExact(prefix + ".splits_pruned",
                   static_cast<double>(m.splits_pruned));
  report->AddExact(prefix + ".row_groups_skipped",
                   static_cast<double>(m.row_groups_skipped));
  report->AddExact(prefix + ".cache_hits",
                   static_cast<double>(m.cache_hits));
  report->AddExact(prefix + ".cache_bytes_saved",
                   static_cast<double>(m.cache_bytes_saved), "bytes");
  report->AddExact(prefix + ".bytes_refetched_on_retry",
                   static_cast<double>(m.bytes_refetched_on_retry), "bytes");
  report->AddExact(prefix + ".pushdown.bloom_pushed",
                   static_cast<double>(m.bloom_pushed));
  report->AddExact(prefix + ".pushdown.bloom_rows_pruned",
                   static_cast<double>(m.bloom_rows_pruned), "rows");
  report->AddExact(prefix + ".pushdown.partial_agg_accepted",
                   static_cast<double>(m.partial_agg_accepted));
  report->AddExact(prefix + ".pushdown.partial_agg_merges",
                   static_cast<double>(m.partial_agg_merges), "rows");
  report->AddTiming(prefix + ".sim_seconds", m.total);
  std::printf("%-28s %14.4f s %12.1f KB moved\n", prefix.c_str(), m.total,
              m.bytes_from_storage / 1024.0);
  if (out) *out = std::move(*result);
  return true;
}

bool RunProgressive(workloads::Testbed& testbed, const std::string& sql,
                    const std::vector<bench::Fig5Step>& steps,
                    const std::string& dataset, bench::BenchReport* report) {
  for (const bench::Fig5Step& step : steps) {
    if (!RunAndRecord(testbed, sql, step.catalog,
                      dataset + "." + bench::StepSlug(step.label), report)) {
      return false;
    }
  }
  return true;
}

// Query-completion totals the EventListener collected for this testbed.
void RecordCollectorTotals(workloads::Testbed& testbed,
                           const std::string& prefix,
                           bench::BenchReport* report) {
  const auto totals = testbed.stats().totals();
  report->AddExact(prefix + ".queries", static_cast<double>(totals.queries));
  report->AddExact(prefix + ".rows_scanned",
                   static_cast<double>(totals.rows_scanned), "rows");
  report->AddExact(prefix + ".rows_returned",
                   static_cast<double>(totals.rows_returned), "rows");
  report->AddExact(prefix + ".bytes_moved",
                   static_cast<double>(totals.bytes_moved()), "bytes");
  report->AddExact(prefix + ".pushdown_accepted",
                   static_cast<double>(totals.pushdown_accepted));
  report->AddExact(prefix + ".pushdown_rejected",
                   static_cast<double>(totals.pushdown_rejected));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  if (args.json_path.empty()) args.json_path = "BENCH_PR10.json";
  const size_t rows_per_file =
      (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;

  Stopwatch wall;
  bench::BenchReport report("bench_report", args);

  // --- Fig. 5(c): TPC-H Q1 progressive pushdown --------------------------
  {
    workloads::Testbed testbed;
    workloads::TpchConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 4;
    config.rows_per_file = rows_per_file;
    auto data = workloads::GenerateLineitem(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "bench_report: tpch ingest failed\n");
      return 1;
    }
    auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/true,
                                         /*with_topn=*/false);
    if (!RunProgressive(testbed, workloads::TpchQ1(), steps, "tpch",
                        &report)) {
      return 1;
    }
    // S3-Select path on the same data: covers the Hive connector's
    // Select request/CSV decode machinery in the smoke run.
    if (!RunAndRecord(testbed, workloads::TpchQ1(), "hive", "tpch.s3select",
                      &report)) {
      return 1;
    }

    // --- Multi-table join: bloom semi-join + storage partial agg ---------
    // The same join twice: "ocs_join_engine" disables the join-key bloom
    // and aggregation pushdown (engine-side single plan), "ocs" takes
    // both. The pushed run must return the identical answer while moving
    // strictly fewer bytes (DESIGN.md §14).
    {
      auto dim = workloads::GenerateSupplier(workloads::SupplierConfig{});
      if (!dim.ok() || !testbed.Ingest(std::move(*dim)).ok()) {
        std::fprintf(stderr, "bench_report: supplier ingest failed\n");
        return 1;
      }
      connectors::OcsConnectorConfig engine_only;
      engine_only.pushdown_aggregation = false;
      engine_only.pushdown_join_bloom = false;
      testbed.RegisterOcsCatalog("ocs_join_engine", engine_only);
      const std::string join_sql = workloads::TpchJoinQuery();
      engine::QueryResult ref;
      engine::QueryResult pushed;
      if (!RunAndRecord(testbed, join_sql, "ocs_join_engine", "tpch.join",
                        &report, &ref) ||
          !RunAndRecord(testbed, join_sql, "ocs", "tpch.join_pushdown",
                        &report, &pushed)) {
        return 1;
      }
      const uint32_t ref_fp = ResultFingerprint(*ref.table);
      const uint32_t pushed_fp = ResultFingerprint(*pushed.table);
      report.AddExact("tpch.join.result_fingerprint",
                      static_cast<double>(ref_fp));
      report.AddExact("tpch.join_pushdown.result_fingerprint",
                      static_cast<double>(pushed_fp));
      if (pushed_fp != ref_fp) {
        std::fprintf(stderr,
                     "bench_report: pushed join answer diverged from the "
                     "engine-only plan (%u vs %u)\n",
                     pushed_fp, ref_fp);
        return 1;
      }
      if (pushed.metrics.bytes_from_storage >= ref.metrics.bytes_from_storage) {
        std::fprintf(stderr,
                     "bench_report: pushed join moved %llu bytes, engine-only "
                     "moved %llu — pushdown must move strictly fewer\n",
                     static_cast<unsigned long long>(
                         pushed.metrics.bytes_from_storage),
                     static_cast<unsigned long long>(
                         ref.metrics.bytes_from_storage));
        return 1;
      }
    }
    RecordCollectorTotals(testbed, "tpch.listener", &report);
  }

  // --- Dictionary code-domain filter + late materialization --------------
  // The same string-predicate scan twice on a fresh testbed: "ocs"
  // pushes the filter first — on a cold row-group cache the storage node
  // sees the encoded returnflag pages, evaluates the string conjunct in
  // the dictionary code domain, and materializes only the surviving
  // rows' strings (DESIGN.md §15) — then "ocs_scan_engine" disables
  // filter pushdown so full pages decode and the engine filters. The
  // pushed run must return the identical answer; its rows_dict_filtered /
  // rows_late_materialized counters feed the CI nonzero gates. The
  // testbed is fresh because a warm row-group cache legitimately
  // short-circuits the dict path (a cached chunk is already decoded).
  {
    workloads::Testbed testbed;
    workloads::TpchConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 4;
    config.rows_per_file = rows_per_file;
    auto data = workloads::GenerateLineitem(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "bench_report: dict tpch ingest failed\n");
      return 1;
    }
    connectors::OcsConnectorConfig scan_engine;
    scan_engine.pushdown_filter = false;
    scan_engine.pushdown_projection = false;
    scan_engine.pushdown_aggregation = false;
    testbed.RegisterOcsCatalog("ocs_scan_engine", scan_engine);
    const std::string dict_sql = workloads::TpchDictFilterQuery();
    engine::QueryResult ref;
    engine::QueryResult pushed;
    if (!RunAndRecord(testbed, dict_sql, "ocs", "dict.pushed", &report,
                      &pushed) ||
        !RunAndRecord(testbed, dict_sql, "ocs_scan_engine",
                      "dict.scan_engine", &report, &ref)) {
      return 1;
    }
    const uint32_t ref_fp = ResultFingerprint(*ref.table);
    const uint32_t pushed_fp = ResultFingerprint(*pushed.table);
    report.AddExact("dict.scan_engine.result_fingerprint",
                    static_cast<double>(ref_fp));
    report.AddExact("dict.pushed.result_fingerprint",
                    static_cast<double>(pushed_fp));
    if (pushed_fp != ref_fp) {
      std::fprintf(stderr,
                   "bench_report: dict-filtered answer diverged from the "
                   "engine-side plan (%u vs %u)\n",
                   pushed_fp, ref_fp);
      return 1;
    }
    if (pushed.metrics.rows_dict_filtered == 0 ||
        pushed.metrics.rows_late_materialized == 0) {
      std::fprintf(stderr,
                   "bench_report: pushed dict scan reported "
                   "rows_dict_filtered=%llu rows_late_materialized=%llu — "
                   "both must be nonzero\n",
                   static_cast<unsigned long long>(
                       pushed.metrics.rows_dict_filtered),
                   static_cast<unsigned long long>(
                       pushed.metrics.rows_late_materialized));
      return 1;
    }
    report.AddExact("dict.pushed.rows_dict_filtered",
                    static_cast<double>(pushed.metrics.rows_dict_filtered),
                    "rows");
    report.AddExact(
        "dict.pushed.rows_late_materialized",
        static_cast<double>(pushed.metrics.rows_late_materialized), "rows");
  }

  // --- Fig. 5(a): Laghos progressive pushdown (incl. topN) ---------------
  {
    workloads::Testbed testbed;
    workloads::LaghosConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_files = args.smoke ? 2 : 4;
    config.rows_per_file = rows_per_file;
    auto data = workloads::GenerateLaghos(config);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "bench_report: laghos ingest failed\n");
      return 1;
    }
    auto steps = bench::ProgressiveSteps(testbed, /*with_project=*/false,
                                         /*with_topn=*/true);
    if (!RunProgressive(testbed, workloads::LaghosQuery(), steps, "laghos",
                        &report)) {
      return 1;
    }
    RecordCollectorTotals(testbed, "laghos.listener", &report);

    // --- Repeat scan through the split-result cache ----------------------
    // Filter-only pushdown so the cold run moves real data; the warm
    // repeat revalidates object versions with metadata-only Stat calls
    // and replays the cached decoded splits — cache_hits covers every
    // split and cache_bytes_saved equals the cold run's data movement.
    {
      connectors::OcsConnectorConfig cached;
      cached.pushdown_projection = false;
      cached.pushdown_aggregation = false;
      cached.pushdown_topn = false;
      cached.split_result_cache_bytes = 64ull << 20;
      testbed.RegisterOcsCatalog("ocs_cached", cached);
      if (!RunAndRecord(testbed, workloads::LaghosQuery(), "ocs_cached",
                        "laghos.cached_cold", &report) ||
          !RunAndRecord(testbed, workloads::LaghosQuery(), "ocs_cached",
                        "laghos.cached_warm", &report)) {
        return 1;
      }
    }

    // --- Selective scan through the split-pruning metadata cache ---------
    // vertex ranges are disjoint per file, so a vertex_id prefix bound
    // proves trailing files empty from cached footer stats: the cold run
    // pays one DescribeObject per object and prunes their splits before
    // any data RPC (splits_pruned > 0); the warm repeat revalidates each
    // descriptor with a metadata-only Stat (metadata_cache.hit > 0).
    {
      connectors::OcsConnectorConfig pruning;
      pruning.metadata_cache_bytes = 8ull << 20;
      testbed.RegisterOcsCatalog("ocs_pruned", pruning);
      const size_t vertices_per_file =
          config.rows_per_file / config.rows_per_vertex;
      const std::string selective = workloads::LaghosSelectiveQuery(
          "laghos", static_cast<int64_t>(vertices_per_file));
      if (!RunAndRecord(testbed, selective, "ocs_pruned", "laghos.selective",
                        &report) ||
          !RunAndRecord(testbed, selective, "ocs_pruned",
                        "laghos.selective_warm", &report)) {
        return 1;
      }
    }

    // --- Table 3 stage breakdown on the last testbed ---------------------
    auto result = testbed.Run(workloads::LaghosQuery(), "ocs");
    if (!result.ok()) {
      std::fprintf(stderr, "bench_report: breakdown query failed\n");
      return 1;
    }
    const engine::QueryMetrics& m = result->metrics;
    report.AddTiming("breakdown.logical_plan_analysis_seconds",
                     m.logical_plan_analysis);
    report.AddTiming("breakdown.ir_generation_seconds", m.ir_generation);
    report.AddTiming("breakdown.pushdown_and_transfer_seconds",
                     m.pushdown_and_transfer);
    report.AddTiming("breakdown.post_scan_execution_seconds",
                     m.post_scan_execution);
    report.AddTiming("breakdown.total_seconds", m.total);
  }

  // --- Concurrent multi-tenant workload (DESIGN.md §12) ------------------
  // N seeded queries across the three standard tenants, under admission
  // control and load-aware dispatch. Accept/reject outcomes, per-tenant
  // arrival counts, result rows/fingerprint, and per-node routed-plan
  // counts are pure functions of the schedule → exact; latency quantiles
  // are wall-clock → timings.
  {
    workloads::ConcurrentWorkloadConfig config;
    config.seed = args.SeedOr(config.seed);
    config.num_queries = args.smoke ? 24 : 48;
    workloads::Testbed testbed(workloads::MakeConcurrentTestbedConfig(config));
    if (!workloads::IngestChaosDatasets(&testbed).ok()) {
      std::fprintf(stderr, "bench_report: concurrent ingest failed\n");
      return 1;
    }
    auto run = workloads::RunConcurrentWorkload(&testbed, config);
    if (!run.ok()) {
      std::fprintf(stderr, "bench_report: concurrent workload failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    report.AddExact("concurrent.admission.queued",
                    static_cast<double>(run->admission_queued));
    report.AddExact("concurrent.admission.admitted",
                    static_cast<double>(run->admission_admitted));
    report.AddExact("concurrent.admission.rejected",
                    static_cast<double>(run->admission_rejected));
    report.AddExact("concurrent.rows_total",
                    static_cast<double>(run->rows_total), "rows");
    // 64-bit fingerprint folded to 32 bits so it survives the JSON
    // double round-trip losslessly.
    const uint64_t fp = run->result_fingerprint;
    report.AddExact("concurrent.result_fingerprint",
                    static_cast<double>((fp ^ (fp >> 32)) & 0xffffffffull));
    for (size_t i = 0; i < run->node_plans.size(); ++i) {
      report.AddExact("concurrent.dispatch.node" + std::to_string(i) +
                          ".plans",
                      static_cast<double>(run->node_plans[i]));
    }
    report.AddExact("concurrent.dispatch.max_node_plans",
                    static_cast<double>(run->max_node_plans));
    report.AddExact("concurrent.dispatch.load_skew",
                    static_cast<double>(run->max_node_plans -
                                        run->min_node_plans));
    for (const workloads::TenantReport& t : run->tenants) {
      const std::string prefix = "concurrent.tenant." + t.tenant;
      report.AddExact(prefix + ".queries", static_cast<double>(t.queries));
      report.AddExact(prefix + ".admitted", static_cast<double>(t.admitted));
      report.AddExact(prefix + ".rejected", static_cast<double>(t.rejected));
      report.AddTiming(prefix + ".p50_seconds", t.p50_seconds);
      report.AddTiming(prefix + ".p95_seconds", t.p95_seconds);
      report.AddTiming(prefix + ".p99_seconds", t.p99_seconds);
      report.AddTiming(prefix + ".queue_wait_p95_seconds",
                       t.queue_wait_p95_seconds);
      std::printf("%-28s %14.4f s p95 %10llu admitted\n", prefix.c_str(),
                  t.p95_seconds,
                  static_cast<unsigned long long>(t.admitted));
    }
  }

  // --- micro_kernels: vectorized kernels vs the pre-PR scalar loops ------
  // Seeded data, best-of-N wall time per variant. Per-variant seconds
  // and the naive/kernel speedup are recorded as timings (the 11x
  // baseline tolerance absorbs machine variance); the DESIGN.md §15
  // floors (≥2x int64 filter, ≥3x dictionary-string filter) are enforced
  // here in optimized builds so a kernel regression fails the bench run
  // itself, not just the baseline diff.
  {
    const size_t n = args.smoke ? (1u << 19) : (1u << 21);
    const int reps = 5;
    std::mt19937_64 rng(args.SeedOr(20260807));
    uint64_t sink = 0;

    auto ints = columnar::MakeColumn(columnar::TypeKind::kInt64);
    ints->Reserve(n);
    std::uniform_int_distribution<int64_t> int_dist(0, 999);
    for (size_t i = 0; i < n; ++i) ints->AppendInt64(int_dist(rng));
    const columnar::Datum int_lit = columnar::Datum::Int64(500);

    const char* flags[] = {"R", "A", "N"};
    auto strs = columnar::MakeColumn(columnar::TypeKind::kString);
    strs->Reserve(n);
    for (size_t i = 0; i < n; ++i) strs->AppendString(flags[rng() % 3]);
    const columnar::Field str_field{"flag", columnar::TypeKind::kString};
    const Bytes str_page = format::EncodePage(*strs, str_field);
    auto dict = format::DecodeDictionaryPage(str_page, str_field, n);
    if (!dict.ok() || !dict->has_value()) {
      std::fprintf(stderr, "bench_report: micro_kernels dictionary page "
                           "unexpectedly plain\n");
      return 1;
    }

    struct MicroResult {
      const char* name;
      double naive_seconds;
      double kernel_seconds;
    };
    std::vector<MicroResult> micro;

    // int64 filter: per-row switch + push_back vs branch-free
    // compress-store over the raw buffer.
    {
      const double naive = BestSeconds(reps, &sink, [&] {
        return NaiveFilterInt64(*ints, columnar::CompareOp::kLt, 500).size();
      });
      const double kernel = BestSeconds(reps, &sink, [&] {
        return columnar::CompareScalar(*ints, columnar::CompareOp::kLt,
                                       int_lit)
            .size();
      });
      micro.push_back({"int64_filter", naive, kernel});
    }

    // Dictionary-string filter: per-row string compares over the decoded
    // column (the pre-PR scan evaluated string predicates only after full
    // materialization) vs one compare per distinct value + a byte-table
    // pass over the codes. Materialization is deliberately outside both
    // timings — the late-materialization saving is tracked separately by
    // the dict.pushed.rows_late_materialized metric.
    {
      auto materialized = format::MaterializeDictionary(**dict);
      const double naive = BestSeconds(reps, &sink, [&] {
        return NaiveFilterString(*materialized, columnar::CompareOp::kEq, "R")
            .size();
      });
      const double kernel = BestSeconds(reps, &sink, [&] {
        const std::vector<uint8_t> match = format::TranslateDictPredicate(
            **dict, columnar::CompareOp::kEq,
            columnar::Datum::String("R"));
        return format::FilterDictCodes(**dict, match).size();
      });
      micro.push_back({"dict_string_filter", naive, kernel});
    }

    // String gather: per-row AppendFrom vs bulk offset/char gather.
    {
      columnar::SelectionVector sel;
      for (uint32_t i = 0; i < n; i += 3) sel.push_back(i);
      const double naive = BestSeconds(reps, &sink, [&] {
        return NaiveGather(*strs, sel)->length();
      });
      const double kernel = BestSeconds(reps, &sink, [&] {
        return columnar::Take(*strs, sel)->length();
      });
      micro.push_back({"take_string", naive, kernel});
    }

    // Row hashing has no pre-PR per-row counterpart to race (the old
    // code hashed Datum copies inside the aggregator); record absolute
    // throughput only.
    {
      std::vector<uint64_t> hashes;
      const double s = BestSeconds(reps, &sink, [&] {
        columnar::HashRows({ints, strs}, &hashes);
        return hashes.empty() ? 0u : static_cast<uint32_t>(hashes[0]);
      });
      report.AddTiming("micro_kernels.hash_rows.kernel_seconds", s);
      std::printf("micro_kernels.hash_rows      %11.1f Mrows/s\n",
                  n / s / 1e6);
    }

    for (const MicroResult& m : micro) {
      const double speedup = m.naive_seconds / m.kernel_seconds;
      const std::string prefix = std::string("micro_kernels.") + m.name;
      report.AddTiming(prefix + ".naive_seconds", m.naive_seconds);
      report.AddTiming(prefix + ".kernel_seconds", m.kernel_seconds);
      report.AddTiming(prefix + ".speedup", speedup);
      std::printf("%-28s %11.1f Mrows/s naive %9.1f Mrows/s kernel "
                  "(%.1fx)\n",
                  prefix.c_str(), n / m.naive_seconds / 1e6,
                  n / m.kernel_seconds / 1e6, speedup);
    }
#if !POCS_BENCH_SANITIZED
    const double int64_speedup = micro[0].naive_seconds /
                                 micro[0].kernel_seconds;
    const double dict_speedup = micro[1].naive_seconds /
                                micro[1].kernel_seconds;
    if (int64_speedup < 2.0 || dict_speedup < 3.0) {
      std::fprintf(stderr,
                   "bench_report: kernel speedups below the §15 floors "
                   "(int64 %.2fx < 2x or dict %.2fx < 3x)\n",
                   int64_speedup, dict_speedup);
      return 1;
    }
#endif
    if (sink == 0xdeadbeef) std::printf("sink %llu\n",
                                        (unsigned long long)sink);
  }

  // --- Process-wide registry rollup --------------------------------------
  // Counters are order-independent sums over fixed-seed workloads →
  // exact. Histograms carry wall time → only their populations are
  // exact; means are reported as timings.
  for (const metrics::MetricSample& s :
       metrics::Registry::Default().Snapshot()) {
    switch (s.kind) {
      case metrics::MetricKind::kCounter:
        report.AddExact("process." + s.name, s.value);
        break;
      case metrics::MetricKind::kGauge:
        break;  // gauges are instantaneous, not comparable across runs
      case metrics::MetricKind::kHistogram:
        report.AddExact("process." + s.name + ".count", s.value);
        if (s.value > 0) {
          report.AddTiming("process." + s.name + ".mean_seconds", s.mean);
        }
        break;
    }
  }

  report.AddTiming("driver.wall_seconds", wall.ElapsedSeconds());
  if (!report.WriteJson(args.json_path)) return 1;
  return 0;
}
