// Ablation: OCS backend scale-out. The paper evaluates a single storage
// node (§5.1) but its hierarchical design (frontend + N backends) exists
// to scale; this bench sweeps backend counts and shows how the pushdown
// advantage grows as storage-side media/CPU parallelism rises while the
// compute↔frontend link stays fixed.
#include <cstdio>

#include "bench/report.h"
#include "workloads/laghos.h"
#include "workloads/testbed.h"

using namespace pocs;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv);
  std::printf("=== Ablation: OCS storage-node scale-out (Laghos) ===\n");
  std::printf("%-8s %-12s %14s %16s\n", "nodes", "path", "sim time (s)",
              "moved (KB)");
  for (size_t nodes : {size_t{1}, size_t{2}, size_t{4}}) {
    workloads::TestbedConfig config;
    config.cluster.num_storage_nodes = nodes;
    workloads::Testbed testbed(config);
    workloads::LaghosConfig laghos;
    laghos.seed = args.SeedOr(laghos.seed);
    laghos.num_files = args.smoke ? 2 : 8;
    laghos.rows_per_file = (args.smoke ? (1 << 12) : (1 << 16)) * args.scale;
    auto data = workloads::GenerateLaghos(laghos);
    if (!data.ok() || !testbed.Ingest(std::move(*data)).ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
    for (const char* catalog : {"hive", "ocs"}) {
      auto result = testbed.Run(workloads::LaghosQuery(), catalog);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", catalog,
                     result.status().ToString().c_str());
        return 1;
      }
      std::printf("%-8zu %-12s %14.4f %16.1f\n", nodes,
                  catalog == std::string("hive") ? "filter-only" : "all-ops",
                  result->metrics.total,
                  result->metrics.bytes_from_storage / 1024.0);
    }
  }
  std::printf("\nStorage-side media and CPU scale with nodes; the\n"
              "compute-side link does not — so the filter-only path "
              "plateaus on transfer\nwhile full pushdown keeps scaling.\n");
  return 0;
}
