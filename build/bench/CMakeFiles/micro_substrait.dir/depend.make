# Empty dependencies file for micro_substrait.
# This may be replaced when dependencies are built.
