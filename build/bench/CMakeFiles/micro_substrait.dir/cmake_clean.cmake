file(REMOVE_RECURSE
  "CMakeFiles/micro_substrait.dir/micro_substrait.cpp.o"
  "CMakeFiles/micro_substrait.dir/micro_substrait.cpp.o.d"
  "micro_substrait"
  "micro_substrait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_substrait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
