file(REMOVE_RECURSE
  "CMakeFiles/ablation_rowgroups.dir/ablation_rowgroups.cpp.o"
  "CMakeFiles/ablation_rowgroups.dir/ablation_rowgroups.cpp.o.d"
  "ablation_rowgroups"
  "ablation_rowgroups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rowgroups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
