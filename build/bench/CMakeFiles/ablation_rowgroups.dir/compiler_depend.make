# Empty compiler generated dependencies file for ablation_rowgroups.
# This may be replaced when dependencies are built.
