# Empty compiler generated dependencies file for table2_selectivity.
# This may be replaced when dependencies are built.
