file(REMOVE_RECURSE
  "CMakeFiles/table2_selectivity.dir/table2_selectivity.cpp.o"
  "CMakeFiles/table2_selectivity.dir/table2_selectivity.cpp.o.d"
  "table2_selectivity"
  "table2_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
