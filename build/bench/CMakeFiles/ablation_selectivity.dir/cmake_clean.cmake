file(REMOVE_RECURSE
  "CMakeFiles/ablation_selectivity.dir/ablation_selectivity.cpp.o"
  "CMakeFiles/ablation_selectivity.dir/ablation_selectivity.cpp.o.d"
  "ablation_selectivity"
  "ablation_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
