file(REMOVE_RECURSE
  "CMakeFiles/fig5_laghos.dir/fig5_laghos.cpp.o"
  "CMakeFiles/fig5_laghos.dir/fig5_laghos.cpp.o.d"
  "fig5_laghos"
  "fig5_laghos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_laghos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
