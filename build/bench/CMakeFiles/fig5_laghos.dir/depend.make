# Empty dependencies file for fig5_laghos.
# This may be replaced when dependencies are built.
