# Empty dependencies file for fig5_deepwater.
# This may be replaced when dependencies are built.
