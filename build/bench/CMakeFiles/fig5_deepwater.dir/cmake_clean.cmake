file(REMOVE_RECURSE
  "CMakeFiles/fig5_deepwater.dir/fig5_deepwater.cpp.o"
  "CMakeFiles/fig5_deepwater.dir/fig5_deepwater.cpp.o.d"
  "fig5_deepwater"
  "fig5_deepwater.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_deepwater.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
