# Empty compiler generated dependencies file for fig6_compression.
# This may be replaced when dependencies are built.
