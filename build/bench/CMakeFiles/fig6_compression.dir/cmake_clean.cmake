file(REMOVE_RECURSE
  "CMakeFiles/fig6_compression.dir/fig6_compression.cpp.o"
  "CMakeFiles/fig6_compression.dir/fig6_compression.cpp.o.d"
  "fig6_compression"
  "fig6_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
