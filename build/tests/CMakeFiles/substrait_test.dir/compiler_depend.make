# Empty compiler generated dependencies file for substrait_test.
# This may be replaced when dependencies are built.
