file(REMOVE_RECURSE
  "CMakeFiles/substrait_test.dir/substrait_test.cpp.o"
  "CMakeFiles/substrait_test.dir/substrait_test.cpp.o.d"
  "substrait_test"
  "substrait_test.pdb"
  "substrait_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrait_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
