# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/columnar_test[1]_include.cmake")
include("/root/repo/build/tests/compress_test[1]_include.cmake")
include("/root/repo/build/tests/format_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/objectstore_test[1]_include.cmake")
include("/root/repo/build/tests/substrait_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/ocs_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/connectors_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
