# Empty dependencies file for hpc_analytics.
# This may be replaced when dependencies are built.
