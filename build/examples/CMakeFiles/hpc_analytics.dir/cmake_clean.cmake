file(REMOVE_RECURSE
  "CMakeFiles/hpc_analytics.dir/hpc_analytics.cpp.o"
  "CMakeFiles/hpc_analytics.dir/hpc_analytics.cpp.o.d"
  "hpc_analytics"
  "hpc_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
