file(REMOVE_RECURSE
  "CMakeFiles/tpch_olap.dir/tpch_olap.cpp.o"
  "CMakeFiles/tpch_olap.dir/tpch_olap.cpp.o.d"
  "tpch_olap"
  "tpch_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
