# Empty dependencies file for tpch_olap.
# This may be replaced when dependencies are built.
