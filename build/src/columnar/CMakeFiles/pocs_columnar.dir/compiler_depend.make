# Empty compiler generated dependencies file for pocs_columnar.
# This may be replaced when dependencies are built.
