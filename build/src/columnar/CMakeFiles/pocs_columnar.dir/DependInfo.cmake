
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/batch.cpp" "src/columnar/CMakeFiles/pocs_columnar.dir/batch.cpp.o" "gcc" "src/columnar/CMakeFiles/pocs_columnar.dir/batch.cpp.o.d"
  "/root/repo/src/columnar/column.cpp" "src/columnar/CMakeFiles/pocs_columnar.dir/column.cpp.o" "gcc" "src/columnar/CMakeFiles/pocs_columnar.dir/column.cpp.o.d"
  "/root/repo/src/columnar/ipc.cpp" "src/columnar/CMakeFiles/pocs_columnar.dir/ipc.cpp.o" "gcc" "src/columnar/CMakeFiles/pocs_columnar.dir/ipc.cpp.o.d"
  "/root/repo/src/columnar/kernels.cpp" "src/columnar/CMakeFiles/pocs_columnar.dir/kernels.cpp.o" "gcc" "src/columnar/CMakeFiles/pocs_columnar.dir/kernels.cpp.o.d"
  "/root/repo/src/columnar/types.cpp" "src/columnar/CMakeFiles/pocs_columnar.dir/types.cpp.o" "gcc" "src/columnar/CMakeFiles/pocs_columnar.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
