file(REMOVE_RECURSE
  "libpocs_columnar.a"
)
