file(REMOVE_RECURSE
  "CMakeFiles/pocs_columnar.dir/batch.cpp.o"
  "CMakeFiles/pocs_columnar.dir/batch.cpp.o.d"
  "CMakeFiles/pocs_columnar.dir/column.cpp.o"
  "CMakeFiles/pocs_columnar.dir/column.cpp.o.d"
  "CMakeFiles/pocs_columnar.dir/ipc.cpp.o"
  "CMakeFiles/pocs_columnar.dir/ipc.cpp.o.d"
  "CMakeFiles/pocs_columnar.dir/kernels.cpp.o"
  "CMakeFiles/pocs_columnar.dir/kernels.cpp.o.d"
  "CMakeFiles/pocs_columnar.dir/types.cpp.o"
  "CMakeFiles/pocs_columnar.dir/types.cpp.o.d"
  "libpocs_columnar.a"
  "libpocs_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
