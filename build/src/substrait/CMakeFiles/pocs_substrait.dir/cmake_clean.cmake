file(REMOVE_RECURSE
  "CMakeFiles/pocs_substrait.dir/eval.cpp.o"
  "CMakeFiles/pocs_substrait.dir/eval.cpp.o.d"
  "CMakeFiles/pocs_substrait.dir/expr.cpp.o"
  "CMakeFiles/pocs_substrait.dir/expr.cpp.o.d"
  "CMakeFiles/pocs_substrait.dir/rel.cpp.o"
  "CMakeFiles/pocs_substrait.dir/rel.cpp.o.d"
  "CMakeFiles/pocs_substrait.dir/serialize.cpp.o"
  "CMakeFiles/pocs_substrait.dir/serialize.cpp.o.d"
  "libpocs_substrait.a"
  "libpocs_substrait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_substrait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
