# Empty compiler generated dependencies file for pocs_substrait.
# This may be replaced when dependencies are built.
