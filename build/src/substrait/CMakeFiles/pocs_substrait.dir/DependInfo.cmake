
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/substrait/eval.cpp" "src/substrait/CMakeFiles/pocs_substrait.dir/eval.cpp.o" "gcc" "src/substrait/CMakeFiles/pocs_substrait.dir/eval.cpp.o.d"
  "/root/repo/src/substrait/expr.cpp" "src/substrait/CMakeFiles/pocs_substrait.dir/expr.cpp.o" "gcc" "src/substrait/CMakeFiles/pocs_substrait.dir/expr.cpp.o.d"
  "/root/repo/src/substrait/rel.cpp" "src/substrait/CMakeFiles/pocs_substrait.dir/rel.cpp.o" "gcc" "src/substrait/CMakeFiles/pocs_substrait.dir/rel.cpp.o.d"
  "/root/repo/src/substrait/serialize.cpp" "src/substrait/CMakeFiles/pocs_substrait.dir/serialize.cpp.o" "gcc" "src/substrait/CMakeFiles/pocs_substrait.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/pocs_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
