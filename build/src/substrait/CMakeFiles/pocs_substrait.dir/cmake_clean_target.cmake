file(REMOVE_RECURSE
  "libpocs_substrait.a"
)
