file(REMOVE_RECURSE
  "libpocs_metastore.a"
)
