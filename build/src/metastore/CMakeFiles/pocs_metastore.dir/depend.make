# Empty dependencies file for pocs_metastore.
# This may be replaced when dependencies are built.
