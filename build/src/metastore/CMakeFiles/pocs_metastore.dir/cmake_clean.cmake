file(REMOVE_RECURSE
  "CMakeFiles/pocs_metastore.dir/metastore.cpp.o"
  "CMakeFiles/pocs_metastore.dir/metastore.cpp.o.d"
  "libpocs_metastore.a"
  "libpocs_metastore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_metastore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
