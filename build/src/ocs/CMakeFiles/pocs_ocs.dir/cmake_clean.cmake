file(REMOVE_RECURSE
  "CMakeFiles/pocs_ocs.dir/cluster.cpp.o"
  "CMakeFiles/pocs_ocs.dir/cluster.cpp.o.d"
  "CMakeFiles/pocs_ocs.dir/storage_node.cpp.o"
  "CMakeFiles/pocs_ocs.dir/storage_node.cpp.o.d"
  "libpocs_ocs.a"
  "libpocs_ocs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_ocs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
