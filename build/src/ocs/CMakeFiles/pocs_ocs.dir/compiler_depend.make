# Empty compiler generated dependencies file for pocs_ocs.
# This may be replaced when dependencies are built.
