file(REMOVE_RECURSE
  "libpocs_ocs.a"
)
