file(REMOVE_RECURSE
  "CMakeFiles/pocs_connector_spi.dir/spi.cpp.o"
  "CMakeFiles/pocs_connector_spi.dir/spi.cpp.o.d"
  "libpocs_connector_spi.a"
  "libpocs_connector_spi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_connector_spi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
