file(REMOVE_RECURSE
  "libpocs_connector_spi.a"
)
