# Empty dependencies file for pocs_connector_spi.
# This may be replaced when dependencies are built.
