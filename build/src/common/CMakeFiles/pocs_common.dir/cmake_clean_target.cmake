file(REMOVE_RECURSE
  "libpocs_common.a"
)
