file(REMOVE_RECURSE
  "CMakeFiles/pocs_common.dir/logging.cpp.o"
  "CMakeFiles/pocs_common.dir/logging.cpp.o.d"
  "CMakeFiles/pocs_common.dir/status.cpp.o"
  "CMakeFiles/pocs_common.dir/status.cpp.o.d"
  "CMakeFiles/pocs_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pocs_common.dir/thread_pool.cpp.o.d"
  "libpocs_common.a"
  "libpocs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
