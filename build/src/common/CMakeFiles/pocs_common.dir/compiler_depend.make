# Empty compiler generated dependencies file for pocs_common.
# This may be replaced when dependencies are built.
