
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objectstore/object_store.cpp" "src/objectstore/CMakeFiles/pocs_objectstore.dir/object_store.cpp.o" "gcc" "src/objectstore/CMakeFiles/pocs_objectstore.dir/object_store.cpp.o.d"
  "/root/repo/src/objectstore/select.cpp" "src/objectstore/CMakeFiles/pocs_objectstore.dir/select.cpp.o" "gcc" "src/objectstore/CMakeFiles/pocs_objectstore.dir/select.cpp.o.d"
  "/root/repo/src/objectstore/service.cpp" "src/objectstore/CMakeFiles/pocs_objectstore.dir/service.cpp.o" "gcc" "src/objectstore/CMakeFiles/pocs_objectstore.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/format/CMakeFiles/pocs_format.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/pocs_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pocs_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pocs_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
