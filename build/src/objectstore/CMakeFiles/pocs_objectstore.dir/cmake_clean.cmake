file(REMOVE_RECURSE
  "CMakeFiles/pocs_objectstore.dir/object_store.cpp.o"
  "CMakeFiles/pocs_objectstore.dir/object_store.cpp.o.d"
  "CMakeFiles/pocs_objectstore.dir/select.cpp.o"
  "CMakeFiles/pocs_objectstore.dir/select.cpp.o.d"
  "CMakeFiles/pocs_objectstore.dir/service.cpp.o"
  "CMakeFiles/pocs_objectstore.dir/service.cpp.o.d"
  "libpocs_objectstore.a"
  "libpocs_objectstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_objectstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
