# Empty dependencies file for pocs_objectstore.
# This may be replaced when dependencies are built.
