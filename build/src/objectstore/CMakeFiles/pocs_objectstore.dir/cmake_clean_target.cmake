file(REMOVE_RECURSE
  "libpocs_objectstore.a"
)
