file(REMOVE_RECURSE
  "CMakeFiles/pocs_compress.dir/codec.cpp.o"
  "CMakeFiles/pocs_compress.dir/codec.cpp.o.d"
  "CMakeFiles/pocs_compress.dir/huffman.cpp.o"
  "CMakeFiles/pocs_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/pocs_compress.dir/lz77.cpp.o"
  "CMakeFiles/pocs_compress.dir/lz77.cpp.o.d"
  "libpocs_compress.a"
  "libpocs_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
