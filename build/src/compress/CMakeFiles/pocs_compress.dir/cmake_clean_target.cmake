file(REMOVE_RECURSE
  "libpocs_compress.a"
)
