# Empty dependencies file for pocs_compress.
# This may be replaced when dependencies are built.
