file(REMOVE_RECURSE
  "CMakeFiles/pocs_engine.dir/analyzer.cpp.o"
  "CMakeFiles/pocs_engine.dir/analyzer.cpp.o.d"
  "CMakeFiles/pocs_engine.dir/engine.cpp.o"
  "CMakeFiles/pocs_engine.dir/engine.cpp.o.d"
  "CMakeFiles/pocs_engine.dir/optimizer.cpp.o"
  "CMakeFiles/pocs_engine.dir/optimizer.cpp.o.d"
  "CMakeFiles/pocs_engine.dir/plan.cpp.o"
  "CMakeFiles/pocs_engine.dir/plan.cpp.o.d"
  "CMakeFiles/pocs_engine.dir/two_phase.cpp.o"
  "CMakeFiles/pocs_engine.dir/two_phase.cpp.o.d"
  "libpocs_engine.a"
  "libpocs_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
