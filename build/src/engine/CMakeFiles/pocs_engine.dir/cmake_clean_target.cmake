file(REMOVE_RECURSE
  "libpocs_engine.a"
)
