# Empty compiler generated dependencies file for pocs_engine.
# This may be replaced when dependencies are built.
