file(REMOVE_RECURSE
  "libpocs_netsim.a"
)
