file(REMOVE_RECURSE
  "CMakeFiles/pocs_netsim.dir/network.cpp.o"
  "CMakeFiles/pocs_netsim.dir/network.cpp.o.d"
  "libpocs_netsim.a"
  "libpocs_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
