# Empty compiler generated dependencies file for pocs_netsim.
# This may be replaced when dependencies are built.
