# Empty compiler generated dependencies file for pocs_connectors.
# This may be replaced when dependencies are built.
