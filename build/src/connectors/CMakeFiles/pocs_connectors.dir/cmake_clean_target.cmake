file(REMOVE_RECURSE
  "libpocs_connectors.a"
)
