file(REMOVE_RECURSE
  "CMakeFiles/pocs_connectors.dir/hive/hive_connector.cpp.o"
  "CMakeFiles/pocs_connectors.dir/hive/hive_connector.cpp.o.d"
  "CMakeFiles/pocs_connectors.dir/ocs/ocs_connector.cpp.o"
  "CMakeFiles/pocs_connectors.dir/ocs/ocs_connector.cpp.o.d"
  "CMakeFiles/pocs_connectors.dir/ocs/pushdown_history.cpp.o"
  "CMakeFiles/pocs_connectors.dir/ocs/pushdown_history.cpp.o.d"
  "CMakeFiles/pocs_connectors.dir/ocs/selectivity_analyzer.cpp.o"
  "CMakeFiles/pocs_connectors.dir/ocs/selectivity_analyzer.cpp.o.d"
  "CMakeFiles/pocs_connectors.dir/ocs/sql_reconstruction.cpp.o"
  "CMakeFiles/pocs_connectors.dir/ocs/sql_reconstruction.cpp.o.d"
  "CMakeFiles/pocs_connectors.dir/ocs/translator.cpp.o"
  "CMakeFiles/pocs_connectors.dir/ocs/translator.cpp.o.d"
  "libpocs_connectors.a"
  "libpocs_connectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_connectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
