file(REMOVE_RECURSE
  "CMakeFiles/pocs_sql.dir/ast.cpp.o"
  "CMakeFiles/pocs_sql.dir/ast.cpp.o.d"
  "CMakeFiles/pocs_sql.dir/lexer.cpp.o"
  "CMakeFiles/pocs_sql.dir/lexer.cpp.o.d"
  "CMakeFiles/pocs_sql.dir/parser.cpp.o"
  "CMakeFiles/pocs_sql.dir/parser.cpp.o.d"
  "libpocs_sql.a"
  "libpocs_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
