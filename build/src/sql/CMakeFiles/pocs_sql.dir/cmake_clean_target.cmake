file(REMOVE_RECURSE
  "libpocs_sql.a"
)
