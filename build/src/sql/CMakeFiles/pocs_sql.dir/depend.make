# Empty dependencies file for pocs_sql.
# This may be replaced when dependencies are built.
