file(REMOVE_RECURSE
  "CMakeFiles/pocs_workloads.dir/dataset.cpp.o"
  "CMakeFiles/pocs_workloads.dir/dataset.cpp.o.d"
  "CMakeFiles/pocs_workloads.dir/deepwater.cpp.o"
  "CMakeFiles/pocs_workloads.dir/deepwater.cpp.o.d"
  "CMakeFiles/pocs_workloads.dir/laghos.cpp.o"
  "CMakeFiles/pocs_workloads.dir/laghos.cpp.o.d"
  "CMakeFiles/pocs_workloads.dir/testbed.cpp.o"
  "CMakeFiles/pocs_workloads.dir/testbed.cpp.o.d"
  "CMakeFiles/pocs_workloads.dir/tpch.cpp.o"
  "CMakeFiles/pocs_workloads.dir/tpch.cpp.o.d"
  "libpocs_workloads.a"
  "libpocs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
