file(REMOVE_RECURSE
  "libpocs_workloads.a"
)
