# Empty dependencies file for pocs_workloads.
# This may be replaced when dependencies are built.
