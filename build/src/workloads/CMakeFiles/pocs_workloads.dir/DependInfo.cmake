
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/dataset.cpp" "src/workloads/CMakeFiles/pocs_workloads.dir/dataset.cpp.o" "gcc" "src/workloads/CMakeFiles/pocs_workloads.dir/dataset.cpp.o.d"
  "/root/repo/src/workloads/deepwater.cpp" "src/workloads/CMakeFiles/pocs_workloads.dir/deepwater.cpp.o" "gcc" "src/workloads/CMakeFiles/pocs_workloads.dir/deepwater.cpp.o.d"
  "/root/repo/src/workloads/laghos.cpp" "src/workloads/CMakeFiles/pocs_workloads.dir/laghos.cpp.o" "gcc" "src/workloads/CMakeFiles/pocs_workloads.dir/laghos.cpp.o.d"
  "/root/repo/src/workloads/testbed.cpp" "src/workloads/CMakeFiles/pocs_workloads.dir/testbed.cpp.o" "gcc" "src/workloads/CMakeFiles/pocs_workloads.dir/testbed.cpp.o.d"
  "/root/repo/src/workloads/tpch.cpp" "src/workloads/CMakeFiles/pocs_workloads.dir/tpch.cpp.o" "gcc" "src/workloads/CMakeFiles/pocs_workloads.dir/tpch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pocs_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/connectors/CMakeFiles/pocs_connectors.dir/DependInfo.cmake"
  "/root/repo/build/src/ocs/CMakeFiles/pocs_ocs.dir/DependInfo.cmake"
  "/root/repo/build/src/format/CMakeFiles/pocs_format.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/pocs_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/pocs_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/connector/CMakeFiles/pocs_connector_spi.dir/DependInfo.cmake"
  "/root/repo/build/src/substrait/CMakeFiles/pocs_substrait.dir/DependInfo.cmake"
  "/root/repo/build/src/metastore/CMakeFiles/pocs_metastore.dir/DependInfo.cmake"
  "/root/repo/build/src/objectstore/CMakeFiles/pocs_objectstore.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/pocs_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pocs_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pocs_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
