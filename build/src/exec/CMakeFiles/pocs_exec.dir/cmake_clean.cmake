file(REMOVE_RECURSE
  "CMakeFiles/pocs_exec.dir/hash_aggregator.cpp.o"
  "CMakeFiles/pocs_exec.dir/hash_aggregator.cpp.o.d"
  "CMakeFiles/pocs_exec.dir/plan_executor.cpp.o"
  "CMakeFiles/pocs_exec.dir/plan_executor.cpp.o.d"
  "CMakeFiles/pocs_exec.dir/sorter.cpp.o"
  "CMakeFiles/pocs_exec.dir/sorter.cpp.o.d"
  "libpocs_exec.a"
  "libpocs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
