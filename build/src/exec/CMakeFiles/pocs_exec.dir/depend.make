# Empty dependencies file for pocs_exec.
# This may be replaced when dependencies are built.
