
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/hash_aggregator.cpp" "src/exec/CMakeFiles/pocs_exec.dir/hash_aggregator.cpp.o" "gcc" "src/exec/CMakeFiles/pocs_exec.dir/hash_aggregator.cpp.o.d"
  "/root/repo/src/exec/plan_executor.cpp" "src/exec/CMakeFiles/pocs_exec.dir/plan_executor.cpp.o" "gcc" "src/exec/CMakeFiles/pocs_exec.dir/plan_executor.cpp.o.d"
  "/root/repo/src/exec/sorter.cpp" "src/exec/CMakeFiles/pocs_exec.dir/sorter.cpp.o" "gcc" "src/exec/CMakeFiles/pocs_exec.dir/sorter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/substrait/CMakeFiles/pocs_substrait.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/pocs_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
