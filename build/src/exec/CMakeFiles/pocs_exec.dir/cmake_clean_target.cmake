file(REMOVE_RECURSE
  "libpocs_exec.a"
)
