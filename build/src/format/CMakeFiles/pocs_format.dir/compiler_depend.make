# Empty compiler generated dependencies file for pocs_format.
# This may be replaced when dependencies are built.
