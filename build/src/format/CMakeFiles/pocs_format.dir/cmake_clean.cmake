file(REMOVE_RECURSE
  "CMakeFiles/pocs_format.dir/encoding.cpp.o"
  "CMakeFiles/pocs_format.dir/encoding.cpp.o.d"
  "CMakeFiles/pocs_format.dir/parquet_lite.cpp.o"
  "CMakeFiles/pocs_format.dir/parquet_lite.cpp.o.d"
  "CMakeFiles/pocs_format.dir/stats.cpp.o"
  "CMakeFiles/pocs_format.dir/stats.cpp.o.d"
  "libpocs_format.a"
  "libpocs_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pocs_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
