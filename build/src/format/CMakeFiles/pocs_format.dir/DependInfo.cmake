
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/format/encoding.cpp" "src/format/CMakeFiles/pocs_format.dir/encoding.cpp.o" "gcc" "src/format/CMakeFiles/pocs_format.dir/encoding.cpp.o.d"
  "/root/repo/src/format/parquet_lite.cpp" "src/format/CMakeFiles/pocs_format.dir/parquet_lite.cpp.o" "gcc" "src/format/CMakeFiles/pocs_format.dir/parquet_lite.cpp.o.d"
  "/root/repo/src/format/stats.cpp" "src/format/CMakeFiles/pocs_format.dir/stats.cpp.o" "gcc" "src/format/CMakeFiles/pocs_format.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/pocs_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/pocs_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pocs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
