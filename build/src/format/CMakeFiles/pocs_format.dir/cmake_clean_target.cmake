file(REMOVE_RECURSE
  "libpocs_format.a"
)
