#include "connectors/hive/hive_connector.h"

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "format/parquet_lite.h"

namespace pocs::connectors {

using columnar::RecordBatchPtr;
using columnar::SchemaPtr;
using connector::PageSourceStats;
using connector::PushedOperator;
using connector::ScanSpec;
using connector::Split;
using connector::TableHandle;
using substrait::Expression;
using substrait::ExprKind;
using substrait::ScalarFunc;

bool DecomposeSelectPredicate(
    const Expression& predicate, const columnar::Schema& schema,
    std::vector<objectstore::SelectPredicate>* terms) {
  if (predicate.kind != ExprKind::kCall) return false;
  if (predicate.func == ScalarFunc::kAnd) {
    return DecomposeSelectPredicate(predicate.args[0], schema, terms) &&
           DecomposeSelectPredicate(predicate.args[1], schema, terms);
  }
  if (!substrait::IsComparison(predicate.func)) return false;
  const Expression* field = nullptr;
  const Expression* literal = nullptr;
  bool flipped = false;
  if (predicate.args[0].kind == ExprKind::kFieldRef &&
      predicate.args[1].kind == ExprKind::kLiteral) {
    field = &predicate.args[0];
    literal = &predicate.args[1];
  } else if (predicate.args[1].kind == ExprKind::kFieldRef &&
             predicate.args[0].kind == ExprKind::kLiteral) {
    field = &predicate.args[1];
    literal = &predicate.args[0];
    flipped = true;
  } else {
    return false;
  }
  if (field->field_index < 0 ||
      static_cast<size_t>(field->field_index) >= schema.num_fields()) {
    return false;
  }
  columnar::CompareOp op;
  switch (predicate.func) {
    case ScalarFunc::kEq: op = columnar::CompareOp::kEq; break;
    case ScalarFunc::kNe: op = columnar::CompareOp::kNe; break;
    case ScalarFunc::kLt: op = columnar::CompareOp::kLt; break;
    case ScalarFunc::kLe: op = columnar::CompareOp::kLe; break;
    case ScalarFunc::kGt: op = columnar::CompareOp::kGt; break;
    case ScalarFunc::kGe: op = columnar::CompareOp::kGe; break;
    default: return false;
  }
  if (flipped) {
    switch (op) {
      case columnar::CompareOp::kLt: op = columnar::CompareOp::kGt; break;
      case columnar::CompareOp::kLe: op = columnar::CompareOp::kGe; break;
      case columnar::CompareOp::kGt: op = columnar::CompareOp::kLt; break;
      case columnar::CompareOp::kGe: op = columnar::CompareOp::kLe; break;
      default: break;
    }
  }
  terms->push_back(
      {schema.field(field->field_index).name, op, literal->literal});
  return true;
}

Result<TableHandle> HiveConnector::GetTableHandle(
    const std::string& schema_name, const std::string& table) {
  POCS_ASSIGN_OR_RETURN(metastore::TableInfo info,
                        metastore_->GetTable(schema_name, table));
  TableHandle handle;
  handle.connector_id = id_;
  handle.info = std::move(info);
  return handle;
}

Result<connector::SplitPlan> HiveConnector::GetSplits(const TableHandle& table,
                                                      const ScanSpec&) {
  // S3-style storage exposes no object statistics, so hive plans one
  // split per object with no pruning.
  connector::SplitPlan plan;
  for (const std::string& object : table.info.objects) {
    plan.splits.push_back({table.info.bucket, object});
  }
  plan.splits_planned = plan.splits.size();
  return plan;
}

namespace {

// Mirrors every OfferPushdown outcome into the registry.
bool RecordHivePushdownDecision(bool accepted) {
  auto& reg = metrics::Registry::Default();
  static auto& offered = reg.GetCounter("connector.hive.pushdown_offered");
  static auto& ok = reg.GetCounter("connector.hive.pushdown_accepted");
  static auto& rejected = reg.GetCounter("connector.hive.pushdown_rejected");
  offered.Increment();
  (accepted ? ok : rejected).Increment();
  return accepted;
}

}  // namespace

Result<bool> HiveConnector::OfferPushdown(
    const TableHandle& table, const PushedOperator& op, ScanSpec* spec,
    connector::PushdownDecision* decision) {
  (void)table;
  decision->kind = op.kind;
  if (!config_.select_pushdown) {
    decision->accepted = false;
    decision->reason = "select pushdown disabled (raw GET mode)";
    return RecordHivePushdownDecision(false);
  }
  if (op.kind != PushedOperator::Kind::kFilter) {
    decision->accepted = false;
    decision->reason = "S3 Select API supports only filter and projection";
    return RecordHivePushdownDecision(false);
  }
  if (spec->HasOperator(PushedOperator::Kind::kFilter)) {
    decision->accepted = false;
    decision->reason = "one Select filter per scan";
    return RecordHivePushdownDecision(false);
  }
  std::vector<objectstore::SelectPredicate> terms;
  if (!DecomposeSelectPredicate(op.predicate, *spec->output_schema, &terms)) {
    decision->accepted = false;
    decision->reason = "predicate not expressible in the Select API";
    return RecordHivePushdownDecision(false);
  }
  if (config_.s3_strict_types) {
    // Strict S3 Select cannot process or return doubles: any float64 in
    // the scanned schema forces the whole scan off the Select path.
    for (const columnar::Field& f : spec->output_schema->fields()) {
      if (f.type == columnar::TypeKind::kFloat64) {
        decision->accepted = false;
        decision->reason =
            "S3 Select (strict mode) does not support float64 column '" +
            f.name + "'";
        return RecordHivePushdownDecision(false);
      }
    }
  }
  spec->operators.push_back(op);  // filter preserves the schema
  decision->accepted = true;
  decision->reason = "conjunctive comparison filter via S3 Select";
  return RecordHivePushdownDecision(true);
}

namespace {

// Page source for the Select path: one CSV response per split.
class SelectPageSource final : public connector::PageSource {
 public:
  SelectPageSource(SchemaPtr schema, RecordBatchPtr batch,
                   PageSourceStats stats)
      : schema_(std::move(schema)), batch_(std::move(batch)), stats_(stats) {}

  SchemaPtr schema() const override { return schema_; }
  Result<RecordBatchPtr> Next() override {
    RecordBatchPtr out = std::move(batch_);
    batch_ = nullptr;
    return out;
  }
  const PageSourceStats& stats() const override { return stats_; }

 private:
  SchemaPtr schema_;
  RecordBatchPtr batch_;
  PageSourceStats stats_;
};

// Page source for the Select→GET degradation path: whole object
// downloaded, the accepted filter re-applied compute-side per row group
// so the rows still honour the pushdown contract, then the result
// projection.
class SelectFallbackPageSource final : public connector::PageSource {
 public:
  SelectFallbackPageSource(std::shared_ptr<format::FileReader> reader,
                           std::vector<int> scan_columns,
                           SchemaPtr scan_schema,
                           std::vector<objectstore::SelectPredicate> predicates,
                           std::vector<int> result_columns, SchemaPtr schema,
                           PageSourceStats stats)
      : reader_(std::move(reader)),
        scan_columns_(std::move(scan_columns)),
        scan_schema_(std::move(scan_schema)),
        predicates_(std::move(predicates)),
        result_columns_(std::move(result_columns)),
        schema_(std::move(schema)),
        stats_(stats) {}

  SchemaPtr schema() const override { return schema_; }

  Result<RecordBatchPtr> Next() override {
    if (group_ >= reader_->num_row_groups()) return RecordBatchPtr{};
    Stopwatch decode;
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                          reader_->ReadRowGroup(group_++, scan_columns_));
    stats_.rows_scanned += batch->num_rows();
    columnar::SelectionVector sel;
    const columnar::SelectionVector* input = nullptr;
    for (const objectstore::SelectPredicate& pred : predicates_) {
      int idx = scan_schema_->FieldIndex(pred.column);
      if (idx < 0) {
        return Status::Internal("hive fallback: unknown filter column '" +
                                pred.column + "'");
      }
      sel = columnar::CompareScalar(*batch->column(idx), pred.op,
                                    pred.literal, input);
      input = &sel;
    }
    if (input != nullptr) batch = columnar::TakeBatch(*batch, sel);
    if (!result_columns_.empty()) batch = batch->Project(result_columns_);
    stats_.decode_seconds += decode.ElapsedSeconds();
    stats_.rows_received += batch->num_rows();
    return batch;
  }
  const PageSourceStats& stats() const override { return stats_; }

 private:
  std::shared_ptr<format::FileReader> reader_;
  std::vector<int> scan_columns_;
  SchemaPtr scan_schema_;
  std::vector<objectstore::SelectPredicate> predicates_;
  std::vector<int> result_columns_;
  SchemaPtr schema_;
  PageSourceStats stats_;
  size_t group_ = 0;
};

// Page source for the raw-GET path: whole object downloaded, decoded per
// row group at the compute node.
class RawGetPageSource final : public connector::PageSource {
 public:
  RawGetPageSource(std::shared_ptr<format::FileReader> reader,
                   std::vector<int> columns, SchemaPtr schema,
                   PageSourceStats stats)
      : reader_(std::move(reader)),
        columns_(std::move(columns)),
        schema_(std::move(schema)),
        stats_(stats) {}

  SchemaPtr schema() const override { return schema_; }

  Result<RecordBatchPtr> Next() override {
    if (group_ >= reader_->num_row_groups()) return RecordBatchPtr{};
    Stopwatch decode;
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                          reader_->ReadRowGroup(group_++, columns_));
    stats_.decode_seconds += decode.ElapsedSeconds();
    stats_.rows_received += batch->num_rows();
    // Raw GET ships everything; every decoded row was "scanned" — at the
    // compute node, which is exactly the baseline's problem.
    stats_.rows_scanned += batch->num_rows();
    return batch;
  }
  const PageSourceStats& stats() const override { return stats_; }

 private:
  std::shared_ptr<format::FileReader> reader_;
  std::vector<int> columns_;
  SchemaPtr schema_;
  PageSourceStats stats_;
  size_t group_ = 0;
};

}  // namespace

Result<std::unique_ptr<connector::PageSource>> HiveConnector::CreatePageSource(
    const TableHandle& table, const Split& split, const ScanSpec& spec) {
  const SchemaPtr& table_schema = table.info.schema;

  // Scan-level column pruning...
  std::vector<int> columns = spec.columns;
  SchemaPtr scan_schema;
  if (columns.empty()) {
    scan_schema = table_schema;
  } else {
    std::vector<columnar::Field> fields;
    for (int c : columns) fields.push_back(table_schema->field(c));
    scan_schema = columnar::MakeSchema(std::move(fields));
  }
  // ...then the result-column projection (drops predicate-only columns;
  // in raw-GET mode this is decode-side projection, in Select mode it is
  // the request's SELECT list).
  SchemaPtr projected = scan_schema;
  if (!spec.result_columns.empty()) {
    std::vector<columnar::Field> fields;
    std::vector<int> table_indices;
    for (int c : spec.result_columns) {
      fields.push_back(scan_schema->field(c));
      table_indices.push_back(columns.empty() ? c : columns[c]);
    }
    projected = columnar::MakeSchema(std::move(fields));
    columns = std::move(table_indices);  // raw-GET decodes only these
  }

  // Strict mode: a float64 anywhere in the projection forces raw GET.
  bool strict_blocks_select = false;
  if (config_.s3_strict_types) {
    for (const columnar::Field& f : projected->fields()) {
      if (f.type == columnar::TypeKind::kFloat64) strict_blocks_select = true;
    }
  }

  if (!config_.select_pushdown || strict_blocks_select ||
      spec.operators.empty()) {
    if (config_.select_pushdown && !strict_blocks_select &&
        !spec.columns.empty()) {
      // Select path without a filter: projection-only Select.
      // (Falls through to the Select request below with no predicates.)
    } else if (!config_.select_pushdown || strict_blocks_select) {
      // Raw GET: the entire object crosses the network.
      PageSourceStats stats;
      objectstore::TransferInfo info;
      POCS_ASSIGN_OR_RETURN(
          Bytes object,
          client_.Get(split.bucket, split.object, &info, config_.call));
      stats.dispatch_retries = info.retries;
      {
        auto& reg = metrics::Registry::Default();
        static auto& gets = reg.GetCounter("connector.hive.raw_gets");
        static auto& bytes = reg.GetCounter("connector.hive.bytes_received");
        gets.Increment();
        bytes.Add(info.bytes_received);
      }
      stats.bytes_received = info.bytes_received;
      stats.bytes_sent = info.bytes_sent;
      stats.transfer_seconds = info.transfer_seconds;
      // The GET reads the whole object off the storage node's media.
      stats.media_read_seconds =
          static_cast<double>(object.size()) / config_.media_read_bandwidth;
      POCS_ASSIGN_OR_RETURN(auto reader,
                            format::FileReader::Open(std::move(object)));
      return std::unique_ptr<connector::PageSource>(
          std::make_unique<RawGetPageSource>(std::move(reader), columns,
                                             projected, stats));
    }
  }

  // Select path: filter (if pushed) + projection at storage, CSV back.
  objectstore::SelectRequest request;
  request.bucket = split.bucket;
  request.key = split.object;
  for (const columnar::Field& f : projected->fields()) {
    request.columns.push_back(f.name);
  }
  for (const auto& op : spec.operators) {
    if (op.kind != PushedOperator::Kind::kFilter) {
      return Status::Internal("hive: unsupported pushed operator");
    }
    // Predicate field refs are relative to the scan schema (they may name
    // columns dropped from the result projection).
    if (!DecomposeSelectPredicate(op.predicate, *scan_schema,
                                  &request.predicates)) {
      return Status::Internal("hive: accepted filter not expressible");
    }
  }

  PageSourceStats stats;
  objectstore::TransferInfo info;
  Stopwatch select_timer;
  Result<objectstore::SelectResponse> select_or =
      client_.Select(request, &info, config_.call);
  if (!select_or.ok()) {
    stats.bytes_received = info.bytes_received;
    stats.bytes_sent = info.bytes_sent;
    stats.transfer_seconds = info.transfer_seconds;
    stats.dispatch_retries = info.retries;
    stats.failed_dispatches = 1;
    {
      auto& reg = metrics::Registry::Default();
      static auto& failed = reg.GetCounter("connector.hive.failed_selects");
      failed.Increment();
    }
    if (!config_.fallback_to_raw_get || !rpc::IsRetryable(select_or.status())) {
      return select_or.status();
    }
    // Degrade to a raw GET of the whole object; the accepted filter is
    // re-applied compute-side by the page source so rows stay correct.
    objectstore::TransferInfo get_info;
    POCS_ASSIGN_OR_RETURN(
        Bytes object,
        client_.Get(split.bucket, split.object, &get_info,
                    config_.fallback_call));
    stats.bytes_received += get_info.bytes_received;
    stats.bytes_sent += get_info.bytes_sent;
    stats.transfer_seconds += get_info.transfer_seconds;
    stats.dispatch_retries += get_info.retries;
    stats.media_read_seconds +=
        static_cast<double>(object.size()) / config_.media_read_bandwidth;
    stats.fallbacks = 1;
    {
      auto& reg = metrics::Registry::Default();
      static auto& fallbacks = reg.GetCounter("connector.hive.fallbacks");
      fallbacks.Increment();
    }
    POCS_ASSIGN_OR_RETURN(auto reader,
                          format::FileReader::Open(std::move(object)));
    return std::unique_ptr<connector::PageSource>(
        std::make_unique<SelectFallbackPageSource>(
            std::move(reader), spec.columns, scan_schema, request.predicates,
            spec.result_columns, projected, stats));
  }
  objectstore::SelectResponse response = std::move(*select_or);
  // The synchronous in-process Select call's wall time is storage-side
  // work; scale it to the storage node's weaker CPU.
  stats.storage_compute_seconds =
      select_timer.ElapsedSeconds() * config_.storage_cpu_slowdown;
  stats.media_read_seconds =
      static_cast<double>(response.stats.object_bytes_read) /
      config_.media_read_bandwidth;
  stats.row_groups_total = response.stats.groups_total;
  stats.row_groups_skipped = response.stats.groups_skipped;
  stats.rows_scanned = response.stats.rows_scanned;
  stats.bytes_received = info.bytes_received;
  stats.bytes_sent = info.bytes_sent;
  stats.transfer_seconds = info.transfer_seconds;
  stats.dispatch_retries = info.retries;

  Stopwatch decode;
  POCS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                        objectstore::ParseSelectCsv(response.csv, projected));
  stats.decode_seconds = decode.ElapsedSeconds();
  stats.rows_received = batch->num_rows();

  {
    auto& reg = metrics::Registry::Default();
    static auto& selects = reg.GetCounter("connector.hive.select_requests");
    static auto& bytes = reg.GetCounter("connector.hive.bytes_received");
    static auto& rows = reg.GetCounter("connector.hive.rows_received");
    static auto& csv = reg.GetHistogram("connector.hive.csv_decode_seconds");
    selects.Increment();
    bytes.Add(stats.bytes_received);
    rows.Add(stats.rows_received);
    csv.Record(stats.decode_seconds);
  }
  return std::unique_ptr<connector::PageSource>(
      std::make_unique<SelectPageSource>(projected, std::move(batch), stats));
}

}  // namespace pocs::connectors
