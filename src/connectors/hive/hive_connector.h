// The Hive connector — the paper's baseline (§2.4): the de-facto standard
// interface between distributed SQL engines and S3-compatible object
// storage. Capabilities are deliberately limited to what the S3 Select
// API offers:
//   * column projection pushdown (ranged reads of needed columns),
//   * WHERE-clause filter pushdown (simple conjunctive comparisons only),
//   * row-oriented (CSV) result format — no columnar transfer.
// Aggregation and top-N are never pushed; they run compute-side.
//
// Two modes reproduce the paper's baselines:
//   select_pushdown = false → "no pushdown": whole objects are GET-ed and
//     decoded at the compute node (Fig. 5's leftmost bars);
//   select_pushdown = true  → "filter-only pushdown" via the Select API.
#pragma once

#include <memory>

#include "connector/spi.h"
#include "metastore/metastore.h"
#include "objectstore/service.h"

namespace pocs::connectors {

struct HiveConnectorConfig {
  bool select_pushdown = true;
  // Storage-side Select executes on the storage node's weaker CPU; the
  // measured in-storage time is scaled by this factor (see DESIGN.md §4).
  double storage_cpu_slowdown = 2.5;
  // Storage-media read bandwidth for bytes the Select (or raw GET) touches
  // on the storage node's SSD (matches StorageNodeConfig's default).
  double media_read_bandwidth = 80e6;
  // Model real S3 Select's lack of double-precision support (§2.2: "S3
  // Select lacks support for double-precision floating-point values,
  // making it unsuitable for scientific domains"). When set, filters
  // touching float64 columns are not pushed and float64 projections fall
  // back to raw GETs. Off by default — the repo's Select API supports
  // doubles, and the paper treats the limitation as a flaw to expose,
  // not behaviour to rely on.
  bool s3_strict_types = false;
  // Retry budget / deadline for Select and GET dispatches.
  rpc::CallOptions call;
  // Options for the degradation path's raw GET (kept separate: the raw
  // object is much larger than a Select result, so a Select-sized
  // deadline would starve it).
  rpc::CallOptions fallback_call;
  // When a Select exhausts its retries with a retryable error, re-plan
  // the split as a raw GET and apply the accepted filter compute-side.
  bool fallback_to_raw_get = true;
};

class HiveConnector final : public connector::Connector {
 public:
  HiveConnector(std::string id,
                std::shared_ptr<metastore::Metastore> metastore,
                objectstore::StorageClient client, HiveConnectorConfig config)
      : id_(std::move(id)),
        metastore_(std::move(metastore)),
        client_(std::move(client)),
        config_(config) {}

  std::string id() const override { return id_; }

  Result<connector::TableHandle> GetTableHandle(
      const std::string& schema_name, const std::string& table) override;

  Result<connector::SplitPlan> GetSplits(
      const connector::TableHandle& table,
      const connector::ScanSpec& spec) override;

  connector::PushdownCapabilities capabilities() const override {
    connector::PushdownCapabilities caps;
    caps.filter = config_.select_pushdown;
    return caps;
  }

  Result<bool> OfferPushdown(const connector::TableHandle& table,
                             const connector::PushedOperator& op,
                             connector::ScanSpec* spec,
                             connector::PushdownDecision* decision) override;

  Result<std::unique_ptr<connector::PageSource>> CreatePageSource(
      const connector::TableHandle& table, const connector::Split& split,
      const connector::ScanSpec& spec) override;

 private:
  std::string id_;
  std::shared_ptr<metastore::Metastore> metastore_;
  objectstore::StorageClient client_;
  HiveConnectorConfig config_;
};

// Decompose a predicate into conjunctive (column cmp literal) terms the
// Select API can express. Returns false if any part is inexpressible.
bool DecomposeSelectPredicate(
    const substrait::Expression& predicate, const columnar::Schema& schema,
    std::vector<objectstore::SelectPredicate>* terms);

}  // namespace pocs::connectors
