// Translation of an absorbed scan pipeline (ScanSpec) into a Substrait-IR
// plan for OCS — §4 "Page Source Provider": "reconstructs the pushdown
// target operators and their associated conditions ... translated into
// Substrait IR".
//
// Mapping:
//   columns                → ReadRel with column selection
//   kFilter                → FilterRel
//   kProject               → ProjectRel
//   kPartialAggregation    → AggregateRel (partial specs: the storage
//                            returns mergeable partial results)
//   kPartialTopN           → SortRel + FetchRel; when it follows an
//                            aggregation, sort keys that reference
//                            original aggregate outputs are rebuilt as
//                            expressions over the partial columns (AVG →
//                            sum/count), via an auxiliary ProjectRel that
//                            is dropped again after the fetch.
#pragma once

#include "connector/spi.h"
#include "substrait/rel.h"

namespace pocs::connectors {

// Build the storage-executable plan for one split.
Result<substrait::Plan> TranslateScanSpec(const connector::TableHandle& table,
                                          const connector::Split& split,
                                          const connector::ScanSpec& spec);

}  // namespace pocs::connectors
