#include "connectors/ocs/translator.h"

namespace pocs::connectors {

using columnar::SchemaPtr;
using columnar::TypeKind;
using connector::PushedOperator;
using connector::ScanSpec;
using connector::Split;
using connector::TableHandle;
using substrait::AggFunc;
using substrait::AggregateSpec;
using substrait::Expression;
using substrait::Plan;
using substrait::Rel;
using substrait::RelKind;
using substrait::ScalarFunc;

namespace {

// Expressions over the partial-aggregation output schema that reproduce
// each column of the *original* aggregation output (keys + finalized
// aggregates). Used to rebuild top-N sort keys.
std::vector<Expression> FinalizedColumnExprs(
    const PushedOperator& agg_op, const columnar::Schema& partial_schema) {
  std::vector<Expression> exprs;
  const size_t n_keys = agg_op.group_keys.size();
  for (size_t k = 0; k < n_keys; ++k) {
    exprs.push_back(Expression::FieldRef(
        static_cast<int>(k), partial_schema.field(k).type));
  }
  // Partial specs: AVG appears as <name>$sum, <name>$cnt pairs; others as
  // single columns. Walk and fuse.
  size_t col = n_keys;
  while (col < partial_schema.num_fields()) {
    const std::string& name = partial_schema.field(col).name;
    if (name.size() > 4 && name.ends_with("$sum") &&
        col + 1 < partial_schema.num_fields() &&
        partial_schema.field(col + 1).name.ends_with("$cnt")) {
      Expression sum = Expression::FieldRef(static_cast<int>(col),
                                            partial_schema.field(col).type);
      Expression cnt = Expression::FieldRef(
          static_cast<int>(col + 1), partial_schema.field(col + 1).type);
      exprs.push_back(Expression::Call(ScalarFunc::kDivide, {sum, cnt},
                                       TypeKind::kFloat64));
      col += 2;
    } else {
      exprs.push_back(Expression::FieldRef(static_cast<int>(col),
                                           partial_schema.field(col).type));
      ++col;
    }
  }
  return exprs;
}

}  // namespace

Result<Plan> TranslateScanSpec(const TableHandle& table, const Split& split,
                               const ScanSpec& spec) {
  auto read = std::make_unique<Rel>();
  read->kind = RelKind::kRead;
  read->bucket = split.bucket;
  read->object = split.object;
  read->base_schema = table.info.schema;
  read->read_columns = spec.columns;
  // Planner row-group hint from stats-based split pruning (empty = scan
  // all); storage honors it only while hint_version matches the object.
  read->row_group_hint = split.row_groups;
  read->hint_version = split.stats_version;

  Rel* read_rel = read.get();
  std::unique_ptr<Rel> chain = std::move(read);
  POCS_ASSIGN_OR_RETURN(SchemaPtr current, substrait::OutputSchema(*chain));

  const PushedOperator* last_agg = nullptr;
  for (const PushedOperator& op : spec.operators) {
    switch (op.kind) {
      case PushedOperator::Kind::kFilter: {
        auto filter = std::make_unique<Rel>();
        filter->kind = RelKind::kFilter;
        filter->predicate = op.predicate;
        filter->input = std::move(chain);
        chain = std::move(filter);
        break;
      }
      case PushedOperator::Kind::kProject: {
        auto project = std::make_unique<Rel>();
        project->kind = RelKind::kProject;
        project->expressions = op.expressions;
        project->output_names = op.output_names;
        project->input = std::move(chain);
        chain = std::move(project);
        break;
      }
      case PushedOperator::Kind::kPartialAggregation: {
        auto agg = std::make_unique<Rel>();
        agg->kind = RelKind::kAggregate;
        agg->group_keys = op.group_keys;
        agg->aggregates = op.aggregates;  // partial specs
        agg->agg_phase = substrait::AggPhase::kPartial;
        agg->input = std::move(chain);
        chain = std::move(agg);
        last_agg = &op;
        break;
      }
      case PushedOperator::Kind::kJoinKeyBloom: {
        // The bloom is not a relational operator: it annotates the Read
        // leaf, which prunes non-matching rows during the scan itself
        // (late-materialized, DESIGN.md §14). The version pin makes the
        // filter advisory — storage ignores it wholesale on mismatch.
        const size_t scan_width = read_rel->read_columns.empty()
                                      ? table.info.schema->num_fields()
                                      : read_rel->read_columns.size();
        if (op.bloom_column < 0 ||
            static_cast<size_t>(op.bloom_column) >= scan_width) {
          return Status::InvalidArgument("bloom column out of range");
        }
        read_rel->bloom_words = op.bloom_words;
        read_rel->bloom_hashes = op.bloom_hashes;
        read_rel->bloom_seed = op.bloom_seed;
        read_rel->bloom_column = op.bloom_column;
        read_rel->bloom_version = split.bloom_version;
        break;
      }
      case PushedOperator::Kind::kPartialLimit: {
        if (op.limit < 0) {
          return Status::InvalidArgument("limit pushdown without a limit");
        }
        auto fetch = std::make_unique<Rel>();
        fetch->kind = RelKind::kFetch;
        fetch->offset = 0;
        fetch->count = op.limit;
        fetch->input = std::move(chain);
        chain = std::move(fetch);
        break;
      }
      case PushedOperator::Kind::kPartialTopN: {
        if (op.limit < 0) {
          return Status::InvalidArgument("topn pushdown without a limit");
        }
        if (!last_agg) {
          // Plain row-stream top-N: sort keys reference the current schema.
          auto sort = std::make_unique<Rel>();
          sort->kind = RelKind::kSort;
          sort->sort_fields = op.sort_fields;
          sort->input = std::move(chain);
          auto fetch = std::make_unique<Rel>();
          fetch->kind = RelKind::kFetch;
          fetch->offset = 0;
          fetch->count = op.limit;
          fetch->input = std::move(sort);
          chain = std::move(fetch);
          break;
        }
        // Top-N above a partial aggregation: sort keys reference the
        // ORIGINAL aggregation output; rebuild them over the partial
        // schema, sort/fetch, then drop the auxiliary columns.
        POCS_ASSIGN_OR_RETURN(SchemaPtr partial,
                              substrait::OutputSchema(*chain));
        std::vector<Expression> finalized =
            FinalizedColumnExprs(*last_agg, *partial);

        auto aux = std::make_unique<Rel>();
        aux->kind = RelKind::kProject;
        // Pass all partial columns through, then append the sort keys.
        for (size_t c = 0; c < partial->num_fields(); ++c) {
          aux->expressions.push_back(Expression::FieldRef(
              static_cast<int>(c), partial->field(c).type));
          aux->output_names.push_back(partial->field(c).name);
        }
        std::vector<substrait::SortField> aux_sorts;
        for (const substrait::SortField& sf : op.sort_fields) {
          if (sf.field < 0 ||
              static_cast<size_t>(sf.field) >= finalized.size()) {
            return Status::InvalidArgument("topn sort key out of range");
          }
          int aux_col = static_cast<int>(aux->expressions.size());
          aux->expressions.push_back(finalized[sf.field]);
          aux->output_names.push_back("$sort" + std::to_string(aux_col));
          aux_sorts.push_back({aux_col, sf.ascending, sf.nulls_first});
        }
        aux->input = std::move(chain);

        auto sort = std::make_unique<Rel>();
        sort->kind = RelKind::kSort;
        sort->sort_fields = aux_sorts;
        sort->input = std::move(aux);

        auto fetch = std::make_unique<Rel>();
        fetch->kind = RelKind::kFetch;
        fetch->offset = 0;
        fetch->count = op.limit;
        fetch->input = std::move(sort);

        // Drop the auxiliary sort columns again.
        auto drop = std::make_unique<Rel>();
        drop->kind = RelKind::kProject;
        for (size_t c = 0; c < partial->num_fields(); ++c) {
          drop->expressions.push_back(Expression::FieldRef(
              static_cast<int>(c), partial->field(c).type));
          drop->output_names.push_back(partial->field(c).name);
        }
        drop->input = std::move(fetch);
        chain = std::move(drop);
        break;
      }
    }
    POCS_ASSIGN_OR_RETURN(current, substrait::OutputSchema(*chain));
  }

  // Result-column projection: return only what the compute side needs
  // (drops e.g. filter-only predicate columns).
  if (!spec.result_columns.empty()) {
    auto project = std::make_unique<Rel>();
    project->kind = RelKind::kProject;
    for (int c : spec.result_columns) {
      if (c < 0 || static_cast<size_t>(c) >= current->num_fields()) {
        return Status::InvalidArgument("result column out of range");
      }
      project->expressions.push_back(
          Expression::FieldRef(c, current->field(c).type));
      project->output_names.push_back(current->field(c).name);
    }
    project->input = std::move(chain);
    chain = std::move(project);
  }

  Plan plan;
  plan.root = std::move(chain);
  POCS_RETURN_NOT_OK(substrait::ValidatePlan(plan));
  return plan;
}

}  // namespace pocs::connectors
