// Load-aware split dispatch for the OCS connector (DESIGN.md §12).
//
// The paper's storage nodes have weak CPUs: under concurrent queries the
// win from pushdown evaporates if every worker piles its ExecutePlan
// dispatches onto one node while the others idle. The dispatcher shapes
// per-node traffic at the connector:
//
//   * GetSplits resolves each split's placement ("Locate" on the
//     frontend) into Split::node_hint and interleaves the split list
//     across nodes, so the engine's in-order fan-out spreads load
//     instead of draining one node's objects first.
//   * CreatePageSource takes a per-node lease before dispatching; at the
//     node's in-flight cap the acquire blocks (backpressure), bounding
//     the queue depth any single storage node sees.
//
// The live load signal is the metrics registry itself: the per-node
// `dispatch.node<i>.inflight_plans` / `.inflight_bytes` gauges are the
// authoritative in-flight state (written under the dispatcher's mutex,
// readable lock-free by dashboards), and the throttle decision reads
// them back. Cumulative `dispatch.node<i>.plans` counters are
// schedule-deterministic — placement is deterministic and every split
// dispatches exactly once — so the bench gate treats them as exact.
//
// One dispatcher instance is shared by every OCS connector of a testbed
// (they front the same cluster); it is internally synchronized.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace pocs::connectors {

struct SplitDispatcherConfig {
  // Per-node cap on concurrently dispatched plans (0 = track only,
  // never block).
  uint32_t max_inflight_per_node = 4;
  // Per-node cap on in-flight result bytes still being decoded/merged
  // (0 = no byte cap). Secondary signal: a node serving few but huge
  // results is as loaded as one serving many small ones.
  uint64_t max_inflight_bytes_per_node = 0;
};

class SplitDispatcher {
 public:
  SplitDispatcher(SplitDispatcherConfig config, size_t num_nodes);

  // RAII per-node in-flight slot. AddBytes charges result payload to the
  // node's in-flight-bytes gauge for the lease's remaining lifetime
  // (call once the response size is known, while decoding/merging).
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : dispatcher_(other.dispatcher_),
          node_(other.node_),
          bytes_(other.bytes_) {
      other.dispatcher_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Reset();
        dispatcher_ = other.dispatcher_;
        node_ = other.node_;
        bytes_ = other.bytes_;
        other.dispatcher_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Reset(); }

    void AddBytes(uint64_t bytes);

   private:
    friend class SplitDispatcher;
    Lease(SplitDispatcher* dispatcher, int node)
        : dispatcher_(dispatcher), node_(node) {}
    void Reset();
    SplitDispatcher* dispatcher_ = nullptr;
    int node_ = -1;
    uint64_t bytes_ = 0;
  };

  // Take a dispatch slot on `node`; blocks while the node is at its
  // in-flight caps. node < 0 (unknown placement) is never throttled.
  Lease Dispatch(int node);

  size_t num_nodes() const { return num_nodes_; }

  // Cumulative dispatched plans per node for THIS dispatcher instance
  // (the routing outcome; exact). Per-instance, unlike the registry's
  // process-wide dispatch.node<i>.plans counters, so replay tests can
  // compare two testbeds built in one process.
  std::vector<uint64_t> NodePlanCounts() const POCS_EXCLUDES(mu_);

 private:
  void Release(int node, uint64_t bytes);

  // The registry gauges ARE the in-flight state; updated only under mu_
  // so condition-variable waits stay coherent.
  metrics::Gauge& inflight_plans(size_t node) const {
    return *inflight_plans_[node];
  }
  metrics::Gauge& inflight_bytes(size_t node) const {
    return *inflight_bytes_[node];
  }

  const SplitDispatcherConfig config_;
  const size_t num_nodes_;
  std::vector<metrics::Gauge*> inflight_plans_;
  std::vector<metrics::Gauge*> inflight_bytes_;
  std::vector<metrics::Counter*> node_plans_;

  mutable Mutex mu_;
  std::condition_variable cv_;
  std::vector<uint64_t> local_plans_ POCS_GUARDED_BY(mu_);
};

}  // namespace pocs::connectors
