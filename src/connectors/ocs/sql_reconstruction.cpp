#include "connectors/ocs/sql_reconstruction.h"

#include <sstream>

namespace pocs::connectors {

using columnar::SchemaPtr;
using connector::PushedOperator;
using connector::ScanSpec;
using connector::TableHandle;
using substrait::AggFunc;
using substrait::AggregateSpec;

namespace {

// SQL aggregate call text, e.g. `sum(quantity) AS "q$sum"`.
std::string AggregateSql(const AggregateSpec& agg,
                         const columnar::Schema& input) {
  std::ostringstream os;
  switch (agg.func) {
    case AggFunc::kSum: os << "sum("; break;
    case AggFunc::kMin: os << "min("; break;
    case AggFunc::kMax: os << "max("; break;
    case AggFunc::kAvg: os << "avg("; break;
    case AggFunc::kCount: os << "count("; break;
    case AggFunc::kCountStar: os << "count(*"; break;
  }
  if (agg.func != AggFunc::kCountStar) {
    os << agg.argument.ToString(&input);
  }
  os << ") AS " << agg.output_name;
  return os.str();
}

}  // namespace

Result<std::string> ReconstructSql(const TableHandle& table,
                                   const ScanSpec& spec) {
  SchemaPtr current;
  {
    // Scan schema after column pruning.
    if (spec.columns.empty()) {
      current = table.info.schema;
    } else {
      std::vector<columnar::Field> fields;
      for (int c : spec.columns) {
        fields.push_back(table.info.schema->field(c));
      }
      current = columnar::MakeSchema(std::move(fields));
    }
  }

  std::string select_list;
  std::string where_clause;
  std::string group_by;
  std::string order_by;
  std::string limit_clause;
  // After a partial aggregation, top-N sort fields reference the ORIGINAL
  // aggregation output (an AVG's sum/count pair fuses to one column);
  // this holds those original column names.
  std::vector<std::string> original_names;

  for (const PushedOperator& op : spec.operators) {
    switch (op.kind) {
      case PushedOperator::Kind::kFilter: {
        std::string pred = op.predicate.ToString(current.get());
        if (where_clause.empty()) {
          where_clause = pred;
        } else {
          where_clause = "(" + where_clause + " AND " + pred + ")";
        }
        break;
      }
      case PushedOperator::Kind::kProject: {
        std::ostringstream os;
        std::vector<columnar::Field> fields;
        for (size_t i = 0; i < op.expressions.size(); ++i) {
          if (i) os << ", ";
          os << op.expressions[i].ToString(current.get()) << " AS "
             << op.output_names[i];
          fields.push_back({op.output_names[i], op.expressions[i].type});
        }
        select_list = os.str();
        current = columnar::MakeSchema(std::move(fields));
        break;
      }
      case PushedOperator::Kind::kPartialAggregation: {
        std::ostringstream os;
        std::vector<columnar::Field> fields;
        for (size_t k = 0; k < op.group_keys.size(); ++k) {
          if (k) os << ", ";
          const auto& field = current->field(op.group_keys[k]);
          os << field.name;
          fields.push_back(field);
          if (!group_by.empty()) group_by += ", ";
          group_by += field.name;
        }
        for (size_t a = 0; a < op.aggregates.size(); ++a) {
          if (a || !op.group_keys.empty()) os << ", ";
          os << AggregateSql(op.aggregates[a], *current);
          fields.push_back(
              {op.aggregates[a].output_name, op.aggregates[a].OutputType()});
        }
        select_list = os.str();
        current = columnar::MakeSchema(std::move(fields));
        // Fuse avg's $sum/$cnt pairs back into their base names.
        original_names.clear();
        for (size_t c = 0; c < op.group_keys.size(); ++c) {
          original_names.push_back(current->field(c).name);
        }
        for (size_t c = op.group_keys.size(); c < current->num_fields();
             ++c) {
          const std::string& name = current->field(c).name;
          if (name.ends_with("$sum") && c + 1 < current->num_fields() &&
              current->field(c + 1).name.ends_with("$cnt")) {
            original_names.push_back(name.substr(0, name.size() - 4));
            ++c;  // skip the $cnt column
          } else if (name.size() > 2 && name.ends_with("$p")) {
            original_names.push_back(name.substr(0, name.size() - 2));
          } else {
            original_names.push_back(name);
          }
        }
        break;
      }
      case PushedOperator::Kind::kPartialTopN: {
        std::ostringstream os;
        for (size_t s = 0; s < op.sort_fields.size(); ++s) {
          if (s) os << ", ";
          const auto& sf = op.sort_fields[s];
          const size_t field_count = original_names.empty()
                                         ? current->num_fields()
                                         : original_names.size();
          if (sf.field < 0 || static_cast<size_t>(sf.field) >= field_count) {
            return Status::InvalidArgument("sql: sort field out of range");
          }
          os << (original_names.empty() ? current->field(sf.field).name
                                        : original_names[sf.field])
             << (sf.ascending ? "" : " DESC");
        }
        order_by = os.str();
        limit_clause = std::to_string(op.limit);
        break;
      }
      case PushedOperator::Kind::kPartialLimit:
        limit_clause = std::to_string(op.limit);
        break;
      case PushedOperator::Kind::kJoinKeyBloom: {
        // Rendered as an opaque membership predicate — there is no SQL
        // surface for a bloom filter, but the audit log should show it.
        if (op.bloom_column < 0 ||
            static_cast<size_t>(op.bloom_column) >= current->num_fields()) {
          return Status::InvalidArgument("sql: bloom column out of range");
        }
        std::string pred = "BLOOM_MAY_CONTAIN(" +
                           current->field(op.bloom_column).name + ", " +
                           std::to_string(op.bloom_key_count) + " keys)";
        if (where_clause.empty()) {
          where_clause = pred;
        } else {
          where_clause = "(" + where_clause + " AND " + pred + ")";
        }
        break;
      }
    }
  }

  if (select_list.empty()) {
    // No projection/aggregation pushed: list the (result) columns.
    std::ostringstream os;
    const std::vector<int>* result = &spec.result_columns;
    if (result->empty()) {
      for (size_t c = 0; c < current->num_fields(); ++c) {
        if (c) os << ", ";
        os << current->field(c).name;
      }
    } else {
      for (size_t i = 0; i < result->size(); ++i) {
        if (i) os << ", ";
        os << current->field((*result)[i]).name;
      }
    }
    select_list = os.str();
  }

  std::ostringstream sql;
  sql << "SELECT " << select_list << " FROM " << table.info.table_name;
  if (!where_clause.empty()) sql << " WHERE " << where_clause;
  if (!group_by.empty()) sql << " GROUP BY " << group_by;
  if (!order_by.empty()) sql << " ORDER BY " << order_by;
  if (!limit_clause.empty()) sql << " LIMIT " << limit_clause;
  return sql.str();
}

}  // namespace pocs::connectors
