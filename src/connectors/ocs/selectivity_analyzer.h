// Selectivity Analyzer — §4 "Local Optimizer" of the paper.
//
// Estimates each candidate operator's data-reduction potential from Hive
// metastore statistics:
//   * range filters: assumes values are distributed between the column's
//     min/max (normal by default, matching the paper; uniform available)
//     and integrates the predicate's pass probability;
//   * aggregations: output cardinality ≈ row_count / NDV(keys) — i.e.
//     estimated groups = Π NDV(key), capped at the row count;
//   * top-N: LIMIT / input rows, exactly known.
// The paper notes the normal-distribution assumption breaks on skewed
// data; tests cover that failure mode, and the distribution is a config
// knob (ablated in bench/ablation_selectivity).
#pragma once

#include "connector/spi.h"
#include "metastore/metastore.h"
#include "substrait/expr.h"

namespace pocs::connectors {

enum class ValueDistribution : uint8_t { kNormal, kUniform };

struct SelectivityConfig {
  ValueDistribution distribution = ValueDistribution::kNormal;
};

class SelectivityAnalyzer {
 public:
  SelectivityAnalyzer(const metastore::TableInfo& table,
                      SelectivityConfig config)
      : table_(table), config_(config) {}

  // Estimated fraction of input rows a filter keeps (0..1]. Unknown
  // sub-expressions contribute a conservative 1.0.
  double EstimateFilterSelectivity(
      const substrait::Expression& predicate,
      const columnar::Schema& input_schema) const;

  // Estimated output/input row ratio of a grouped aggregation.
  // `input_rows` is the estimated row count flowing into the aggregation.
  double EstimateAggregationSelectivity(
      const std::vector<int>& group_keys,
      const columnar::Schema& input_schema, double input_rows) const;

  // Estimated output/input ratio of a top-N.
  double EstimateTopNSelectivity(int64_t limit, double input_rows) const;

  // P(column <op> literal) for a single comparison from min/max stats;
  // 1.0 when stats are missing.
  double ComparisonSelectivity(const format::ColumnStats& stats,
                               substrait::ScalarFunc op,
                               const columnar::Datum& literal) const;

 private:
  const metastore::TableInfo& table_;
  SelectivityConfig config_;
};

}  // namespace pocs::connectors
