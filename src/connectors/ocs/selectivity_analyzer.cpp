#include "connectors/ocs/selectivity_analyzer.h"

#include <algorithm>
#include <cmath>

namespace pocs::connectors {

using columnar::Datum;
using format::ColumnStats;
using substrait::Expression;
using substrait::ExprKind;
using substrait::ScalarFunc;

namespace {

// CDF of the assumed value distribution over [min, max] evaluated at x.
double Cdf(double x, double min, double max, ValueDistribution dist) {
  if (max <= min) return x >= max ? 1.0 : 0.0;
  if (x <= min) return 0.0;
  if (x >= max) return 1.0;
  if (dist == ValueDistribution::kUniform) {
    return (x - min) / (max - min);
  }
  // Normal with mean at the midpoint and the range covering ±3σ.
  double mu = (min + max) / 2.0;
  double sigma = (max - min) / 6.0;
  return 0.5 * (1.0 + std::erf((x - mu) / (sigma * std::sqrt(2.0))));
}

}  // namespace

double SelectivityAnalyzer::ComparisonSelectivity(
    const ColumnStats& stats, ScalarFunc op, const Datum& literal) const {
  if (stats.min.is_null() || stats.max.is_null() || literal.is_null()) {
    return 1.0;
  }
  // Equality/inequality via NDV.
  if (op == ScalarFunc::kEq) {
    return stats.ndv > 0 ? 1.0 / static_cast<double>(stats.ndv) : 1.0;
  }
  if (op == ScalarFunc::kNe) {
    return stats.ndv > 0 ? 1.0 - 1.0 / static_cast<double>(stats.ndv) : 1.0;
  }
  if (literal.type() == columnar::TypeKind::kString) return 1.0;
  double min = stats.min.AsDouble();
  double max = stats.max.AsDouble();
  double x = literal.AsDouble();
  double cdf = Cdf(x, min, max, config_.distribution);
  switch (op) {
    case ScalarFunc::kLt:
    case ScalarFunc::kLe:
      return cdf;
    case ScalarFunc::kGt:
    case ScalarFunc::kGe:
      return 1.0 - cdf;
    default:
      return 1.0;
  }
}

double SelectivityAnalyzer::EstimateFilterSelectivity(
    const Expression& predicate, const columnar::Schema& input_schema) const {
  if (predicate.kind != ExprKind::kCall) return 1.0;
  if (predicate.func == ScalarFunc::kAnd) {
    // Independence assumption: conjuncts multiply.
    return EstimateFilterSelectivity(predicate.args[0], input_schema) *
           EstimateFilterSelectivity(predicate.args[1], input_schema);
  }
  if (predicate.func == ScalarFunc::kOr) {
    double a = EstimateFilterSelectivity(predicate.args[0], input_schema);
    double b = EstimateFilterSelectivity(predicate.args[1], input_schema);
    return std::min(1.0, a + b - a * b);
  }
  if (predicate.func == ScalarFunc::kNot) {
    return 1.0 - EstimateFilterSelectivity(predicate.args[0], input_schema);
  }
  if (!substrait::IsComparison(predicate.func)) return 1.0;
  const Expression* field = nullptr;
  const Expression* literal = nullptr;
  ScalarFunc op = predicate.func;
  if (predicate.args[0].kind == ExprKind::kFieldRef &&
      predicate.args[1].kind == ExprKind::kLiteral) {
    field = &predicate.args[0];
    literal = &predicate.args[1];
  } else if (predicate.args[1].kind == ExprKind::kFieldRef &&
             predicate.args[0].kind == ExprKind::kLiteral) {
    field = &predicate.args[1];
    literal = &predicate.args[0];
    switch (op) {
      case ScalarFunc::kLt: op = ScalarFunc::kGt; break;
      case ScalarFunc::kLe: op = ScalarFunc::kGe; break;
      case ScalarFunc::kGt: op = ScalarFunc::kLt; break;
      case ScalarFunc::kGe: op = ScalarFunc::kLe; break;
      default: break;
    }
  } else {
    return 1.0;  // unknown shape: conservative
  }
  if (field->field_index < 0 ||
      static_cast<size_t>(field->field_index) >= input_schema.num_fields()) {
    return 1.0;
  }
  const ColumnStats* stats =
      table_.StatsFor(input_schema.field(field->field_index).name);
  if (!stats) return 1.0;
  return ComparisonSelectivity(*stats, op, literal->literal);
}

double SelectivityAnalyzer::EstimateAggregationSelectivity(
    const std::vector<int>& group_keys, const columnar::Schema& input_schema,
    double input_rows) const {
  if (input_rows <= 0) return 1.0;
  if (group_keys.empty()) return 1.0 / input_rows;  // global aggregate: 1 row
  double groups = 1.0;
  for (int key : group_keys) {
    if (key < 0 || static_cast<size_t>(key) >= input_schema.num_fields()) {
      return 1.0;
    }
    const ColumnStats* stats =
        table_.StatsFor(input_schema.field(key).name);
    if (!stats || stats->ndv == 0) {
      // Unknown key cardinality: assume no reduction (conservative).
      return 1.0;
    }
    groups *= static_cast<double>(stats->ndv);
    // A capped NDV means "high cardinality" — treat as at least the cap.
    if (stats->ndv_capped) groups = std::max(groups, input_rows);
  }
  groups = std::min(groups, input_rows);
  return groups / input_rows;
}

double SelectivityAnalyzer::EstimateTopNSelectivity(int64_t limit,
                                                    double input_rows) const {
  if (input_rows <= 0 || limit < 0) return 1.0;
  return std::min(1.0, static_cast<double>(limit) / input_rows);
}

}  // namespace pocs::connectors
