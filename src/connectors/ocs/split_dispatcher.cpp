#include "connectors/ocs/split_dispatcher.h"

namespace pocs::connectors {

namespace {

std::string NodeMetric(size_t node, const char* suffix) {
  return "dispatch.node" + std::to_string(node) + "." + suffix;
}

}  // namespace

SplitDispatcher::SplitDispatcher(SplitDispatcherConfig config,
                                 size_t num_nodes)
    : config_(config), num_nodes_(num_nodes == 0 ? 1 : num_nodes) {
  auto& reg = metrics::Registry::Default();
  inflight_plans_.reserve(num_nodes_);
  inflight_bytes_.reserve(num_nodes_);
  node_plans_.reserve(num_nodes_);
  for (size_t i = 0; i < num_nodes_; ++i) {
    inflight_plans_.push_back(&reg.GetGauge(NodeMetric(i, "inflight_plans")));
    inflight_bytes_.push_back(&reg.GetGauge(NodeMetric(i, "inflight_bytes")));
    node_plans_.push_back(&reg.GetCounter(NodeMetric(i, "plans")));
  }
  MutexLock lock(mu_);
  local_plans_.assign(num_nodes_, 0);
}

SplitDispatcher::Lease SplitDispatcher::Dispatch(int node) {
  auto& reg = metrics::Registry::Default();
  static auto& routed = reg.GetCounter("dispatch.plans_routed");
  static auto& unrouted = reg.GetCounter("dispatch.plans_unrouted");
  static auto& waits = reg.GetGauge("dispatch.throttle_waits");
  if (node < 0 || static_cast<size_t>(node) >= num_nodes_) {
    // Placement unknown (Locate failed / degraded) — dispatch untracked
    // rather than charge the wrong node.
    unrouted.Increment();
    return Lease(nullptr, -1);
  }
  const size_t n = static_cast<size_t>(node);
  {
    MutexLock lock(mu_);
    bool waited = false;
    // The load signal is read back from the registry gauges (written
    // only under mu_, so the wait is coherent).
    while ((config_.max_inflight_per_node > 0 &&
            inflight_plans(n).value() >=
                static_cast<int64_t>(config_.max_inflight_per_node)) ||
           (config_.max_inflight_bytes_per_node > 0 &&
            inflight_bytes(n).value() >=
                static_cast<int64_t>(config_.max_inflight_bytes_per_node))) {
      waited = true;
      cv_.wait(lock.native());
    }
    inflight_plans(n).Add(1);
    local_plans_[n] += 1;
    // Gauge, not counter: whether a dispatch had to wait depends on
    // worker interleaving, and the bench gate treats counters as exact.
    if (waited) waits.Add(1);
  }
  node_plans_[n]->Increment();
  routed.Increment();
  return Lease(this, node);
}

void SplitDispatcher::Lease::AddBytes(uint64_t bytes) {
  if (dispatcher_ == nullptr || node_ < 0) return;
  bytes_ += bytes;
  MutexLock lock(dispatcher_->mu_);
  dispatcher_->inflight_bytes(static_cast<size_t>(node_))
      .Add(static_cast<int64_t>(bytes));
}

void SplitDispatcher::Lease::Reset() {
  if (dispatcher_ != nullptr) {
    dispatcher_->Release(node_, bytes_);
    dispatcher_ = nullptr;
  }
}

void SplitDispatcher::Release(int node, uint64_t bytes) {
  if (node < 0 || static_cast<size_t>(node) >= num_nodes_) return;
  const size_t n = static_cast<size_t>(node);
  {
    MutexLock lock(mu_);
    inflight_plans(n).Add(-1);
    if (bytes > 0) inflight_bytes(n).Add(-static_cast<int64_t>(bytes));
  }
  cv_.notify_all();
}

std::vector<uint64_t> SplitDispatcher::NodePlanCounts() const {
  MutexLock lock(mu_);
  return local_plans_;
}

}  // namespace pocs::connectors
