// The Presto-OCS connector — the paper's core contribution (§3.4, §4).
//
// Extends the engine's connector SPI to exploit OCS's full in-storage
// operator set. During connector-local optimization the Selectivity
// Analyzer sizes each offered operator's data-reduction potential from
// metastore statistics and the Operator Extractor records accepted
// operators (with their conditions) in the scan spec. At execution time
// the PageSourceProvider translates the spec into a Substrait-IR plan,
// ships it to the OCS frontend over the (simulated) gRPC channel, and
// deserializes the Arrow columnar results into engine pages.
//
// Aggregations are pushed in their PARTIAL form and merged compute-side
// (§3.4 step 2's "partially computed results"). A top-N above a pushed
// aggregation is additionally bounded per split only when
// `assume_split_disjoint_groups` is set — the correctness contract that
// group keys do not span data objects, which holds for the paper's
// spatially partitioned HPC datasets; see DESIGN.md.
//
// Concurrency: the connector itself holds no mutex — its only shared
// mutable state is the split-result cache (a ShardedLruCache, internally
// locked with annotated pocs::Mutex shards, DESIGN.md §11) and the
// metrics it records (lock-free atomics). Everything else is immutable
// after construction, so per-split workers share it freely.
#pragma once

#include <memory>
#include <string>

#include "common/hash.h"
#include "common/lru_cache.h"
#include "connector/spi.h"
#include "connectors/ocs/metadata_cache.h"
#include "connectors/ocs/pushdown_history.h"
#include "connectors/ocs/selectivity_analyzer.h"
#include "connectors/ocs/split_dispatcher.h"
#include "metastore/metastore.h"
#include "ocs/client.h"

namespace pocs::connectors {

// How pushdown dispatches cope with storage-side failure: the rpc retry
// budget for ExecutePlan, a deadline on the *storage-reported* time
// (catches slow/degraded nodes the transport deadline cannot see), and
// whether an exhausted dispatch falls back to the engine-side scan (raw
// GET + local execution of the same plan) instead of failing the query.
struct OcsDispatchPolicy {
  rpc::CallOptions call{.max_attempts = 3};
  // Options for the fallback's raw GET. Kept separate from `call`: a
  // deadline tuned for small pushdown results would starve the (much
  // larger, but unavoidable) raw-object transfer.
  rpc::CallOptions fallback_call{.max_attempts = 3};
  // Reject dispatches whose storage-reported *modelled* time (media read
  // + injected exec delay) exceeds this (0 disables) — the "slow node"
  // detector. Deliberately excludes the measured wall-clock compute
  // component: under sanitizers (TSan ~10-20x) measured time inflates
  // while modelled time does not, and a detector on wall time turned
  // every debug-tsan run into a false slow-node trip.
  double storage_deadline_seconds = 0;
  bool fallback_to_engine = true;
  // Media bandwidth modelled for the fallback's whole-object read
  // (matches StorageNodeConfig/HiveConnectorConfig defaults).
  double media_read_bandwidth = 80e6;
  // Chunked fallback transfer: when > 0, the raw-object read is issued as
  // ranged GETs of this size instead of one whole-object GET, and every
  // received range is parked in the connector's range cache keyed by
  // (object, version, offset). A transfer that dies mid-split therefore
  // re-requests only the missing tail on the next attempt — and an
  // rpc-level retry re-sends one range, not the whole object. 0 keeps the
  // legacy single-GET behaviour.
  uint64_t fallback_chunk_bytes = 0;
};

struct OcsConnectorConfig {
  OcsDispatchPolicy dispatch;
  SelectivityConfig selectivity;
  // An operator is pushed when its estimated reduction (1 − output/input)
  // is at least this threshold. The default (-inf, i.e. no threshold)
  // reproduces the paper's behaviour: every eligible operator is
  // offloaded — including expression projections that *grow* rows, which
  // is exactly the Fig. 5(b)/(c) negative result. Raise the threshold to
  // make the analyzer veto non-reducing pushdowns (ablation).
  double min_reduction = -1e300;
  // Expression projections have no intrinsic data reduction; pushing them
  // trades compute-node cycles for storage cycles (the paper's Q2 finds
  // this can hurt). They are pushed iff this flag is set.
  bool pushdown_filter = true;
  bool pushdown_projection = true;
  bool pushdown_aggregation = true;
  bool pushdown_topn = true;
  // Join-key bloom filters (semi-join reduction, DESIGN.md §14): the
  // engine builds a bloom over a small dimension table's join keys and
  // attaches it to the fact-table scan so storage prunes non-matching
  // rows before any bytes cross the network. Purely advisory — false
  // positives are re-filtered engine-side, and a stale version pin
  // disables the filter wholesale.
  bool pushdown_join_bloom = true;
  // Correctness contract for partial top-N above a pushed aggregation.
  bool assume_split_disjoint_groups = true;
  // Byte budget of the split-result cache (0 disables): decoded result
  // tables keyed by (object, Substrait plan fingerprint), validated
  // against the object's current version with a metadata-only Stat and
  // then served without any data RPC.
  uint64_t split_result_cache_bytes = 0;
  // Byte budget of the fallback range cache (partial-result retention;
  // only used when dispatch.fallback_chunk_bytes > 0).
  uint64_t fallback_range_cache_bytes = 32ull << 20;
  // Byte budget of the split-planning metadata cache (0 disables): per-
  // object statistics descriptors fetched via the DescribeObject RPC and
  // revalidated against object versions. When enabled, GetSplits prunes
  // splits whose stats prove the pushed filter unsatisfiable before any
  // data RPC is issued, and hints surviving row groups (DESIGN.md §13).
  uint64_t metadata_cache_bytes = 0;
};

// One cached split result: the decoded table one (object, plan
// fingerprint) pair produced, plus the cold-run accounting a hit replays
// into its PageSourceStats.
struct CachedSplitResult {
  uint64_t version = 0;  // object version the table was computed from
  std::shared_ptr<columnar::Table> table;
  uint64_t bytes_received = 0;  // network payload bytes the cold run moved
  uint64_t rows_scanned = 0;
  uint64_t row_groups_total = 0;
  uint64_t row_groups_skipped = 0;
};

struct SplitResultKey {
  std::string object;  // "bucket/key"
  uint64_t fingerprint = 0;
  bool operator==(const SplitResultKey&) const = default;
};

struct SplitResultKeyHash {
  size_t operator()(const SplitResultKey& k) const {
    return static_cast<size_t>(HashCombine(HashString(k.object), k.fingerprint));
  }
};

struct FallbackRangeKey {
  std::string object;  // "bucket/key"
  uint64_t version = 0;
  uint64_t offset = 0;
  bool operator==(const FallbackRangeKey&) const = default;
};

struct FallbackRangeKeyHash {
  size_t operator()(const FallbackRangeKey& k) const {
    return static_cast<size_t>(
        HashCombine(HashCombine(HashString(k.object), k.version), k.offset));
  }
};

using SplitResultCache =
    ShardedLruCache<SplitResultKey, CachedSplitResult, SplitResultKeyHash>;
using FallbackRangeCache =
    ShardedLruCache<FallbackRangeKey, Bytes, FallbackRangeKeyHash>;

class OcsConnector final : public connector::Connector {
 public:
  // `history` is optional; when present, offload rejections (exhausted
  // pushdown dispatches) are recorded there for monitoring. `dispatcher`
  // is optional; when present, GetSplits resolves placement hints and
  // CreatePageSource dispatches under per-node load leases (DESIGN.md
  // §12) — typically one instance shared by every connector fronting the
  // same cluster.
  OcsConnector(std::string id,
               std::shared_ptr<metastore::Metastore> metastore,
               ocs::OcsClient client, OcsConnectorConfig config,
               std::shared_ptr<PushdownHistory> history = nullptr,
               std::shared_ptr<SplitDispatcher> dispatcher = nullptr)
      : id_(std::move(id)),
        metastore_(std::move(metastore)),
        client_(std::move(client)),
        config_(config),
        history_(std::move(history)),
        dispatcher_(std::move(dispatcher)) {
    if (config_.split_result_cache_bytes > 0) {
      split_result_cache_ = std::make_shared<SplitResultCache>(LruCacheConfig{
          .byte_budget = config_.split_result_cache_bytes,
          .shards = 8,
          .metric_prefix = "ocs.splitresult_cache"});
    }
    if (config_.dispatch.fallback_chunk_bytes > 0 &&
        config_.fallback_range_cache_bytes > 0) {
      fallback_range_cache_ =
          std::make_shared<FallbackRangeCache>(LruCacheConfig{
              .byte_budget = config_.fallback_range_cache_bytes,
              .shards = 8,
              .metric_prefix = "ocs.fallback_range_cache"});
    }
    if (config_.metadata_cache_bytes > 0) {
      metadata_cache_ =
          std::make_shared<MetadataCache>(config_.metadata_cache_bytes);
    }
  }

  std::string id() const override { return id_; }

  Result<connector::TableHandle> GetTableHandle(
      const std::string& schema_name, const std::string& table) override;

  Result<connector::SplitPlan> GetSplits(
      const connector::TableHandle& table,
      const connector::ScanSpec& spec) override;

  connector::PushdownCapabilities capabilities() const override {
    connector::PushdownCapabilities caps;
    caps.filter = config_.pushdown_filter;
    caps.projection = config_.pushdown_projection;
    caps.aggregation = config_.pushdown_aggregation;
    caps.topn = config_.pushdown_topn;
    caps.join_bloom = config_.pushdown_join_bloom;
    return caps;
  }

  Result<bool> OfferPushdown(const connector::TableHandle& table,
                             const connector::PushedOperator& op,
                             connector::ScanSpec* spec,
                             connector::PushdownDecision* decision) override;

  Result<std::unique_ptr<connector::PageSource>> CreatePageSource(
      const connector::TableHandle& table, const connector::Split& split,
      const connector::ScanSpec& spec) override;

  const OcsConnectorConfig& config() const { return config_; }

  // The load-aware dispatcher (nullptr when disabled).
  const std::shared_ptr<SplitDispatcher>& dispatcher() const {
    return dispatcher_;
  }

  // The split-result / fallback-range caches (nullptr when disabled).
  const std::shared_ptr<SplitResultCache>& split_result_cache() const {
    return split_result_cache_;
  }
  const std::shared_ptr<FallbackRangeCache>& fallback_range_cache() const {
    return fallback_range_cache_;
  }

  // The split-planning metadata cache (nullptr when disabled).
  const std::shared_ptr<MetadataCache>& metadata_cache() const {
    return metadata_cache_;
  }

 private:
  // Engine-side degradation path: fetch the raw object through the
  // frontend (chunked when fallback_chunk_bytes > 0, with received ranges
  // retained across attempts in the range cache) and run the identical
  // plan with the local executor. On success, `*object_version` is the
  // version of the object that was read (0 when unknown).
  Result<std::shared_ptr<columnar::Table>> ExecuteFallback(
      const substrait::Plan& plan, const connector::Split& split,
      connector::PageSourceStats* stats, uint64_t* object_version);

  std::string id_;
  std::shared_ptr<metastore::Metastore> metastore_;
  ocs::OcsClient client_;
  OcsConnectorConfig config_;
  std::shared_ptr<PushdownHistory> history_;
  // Internally synchronized; shared across connectors and worker threads.
  std::shared_ptr<SplitDispatcher> dispatcher_;
  // Internally synchronized; shared across concurrent CreatePageSource
  // calls on worker threads.
  std::shared_ptr<SplitResultCache> split_result_cache_;
  std::shared_ptr<FallbackRangeCache> fallback_range_cache_;
  std::shared_ptr<MetadataCache> metadata_cache_;
};

}  // namespace pocs::connectors
