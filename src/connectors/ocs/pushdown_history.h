// Pushdown monitoring — §4 "Pushdown Monitoring and Auxiliary
// Components": an EventListener that collects runtime statistics and a
// sliding-window history of recent executions (per-operator accept rates,
// bytes moved) that can inform future pushdown decisions.
#pragma once

#include <deque>
#include <map>

#include "common/thread_annotations.h"
#include "connector/spi.h"

namespace pocs::connectors {

struct PushdownKindStats {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  double accept_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(accepted) /
                              static_cast<double>(offered);
  }
};

// One pushdown dispatch that exhausted its retry budget and was re-planned
// through the engine-side scan (§4's offload-rejection path).
struct OffloadRejection {
  std::string connector_id;
  std::string object;     // "bucket/key" of the rejected split
  StatusCode code = StatusCode::kOk;
  std::string message;    // the storage-side Status that caused it
};

class PushdownHistory final : public connector::EventListener {
 public:
  explicit PushdownHistory(size_t window = 128) : window_(window) {}

  void QueryCompleted(const connector::QueryEvent& event) override;

  // Called by connectors when a dispatch exhausts its retries; the
  // rejection feeds the same sliding window as query completions so
  // future pushdown decisions can see recent storage health.
  void RecordOffloadRejection(const std::string& connector_id,
                              const std::string& object,
                              const Status& cause);

  // Aggregates over the current window.
  PushdownKindStats StatsFor(connector::PushedOperator::Kind kind) const;
  double AverageBytesFromStorage() const;
  size_t window_size() const;
  std::vector<connector::QueryEvent> Snapshot() const;
  // Recent rejections, oldest first (same window size as events).
  std::vector<OffloadRejection> offload_rejections() const;
  uint64_t total_offload_rejections() const;

 private:
  void Recompute() POCS_REQUIRES(mu_);

  const size_t window_;  // immutable after construction
  mutable Mutex mu_;
  std::deque<connector::QueryEvent> events_ POCS_GUARDED_BY(mu_);
  std::deque<OffloadRejection> rejections_ POCS_GUARDED_BY(mu_);
  uint64_t total_rejections_ POCS_GUARDED_BY(mu_) = 0;
  std::map<connector::PushedOperator::Kind, PushdownKindStats> per_kind_
      POCS_GUARDED_BY(mu_);
  double total_bytes_ POCS_GUARDED_BY(mu_) = 0;
};

}  // namespace pocs::connectors
