// Pushdown monitoring — §4 "Pushdown Monitoring and Auxiliary
// Components": an EventListener that collects runtime statistics and a
// sliding-window history of recent executions (per-operator accept rates,
// bytes moved) that can inform future pushdown decisions.
#pragma once

#include <deque>
#include <map>
#include <mutex>

#include "connector/spi.h"

namespace pocs::connectors {

struct PushdownKindStats {
  uint64_t offered = 0;
  uint64_t accepted = 0;
  double accept_rate() const {
    return offered == 0 ? 0.0
                        : static_cast<double>(accepted) /
                              static_cast<double>(offered);
  }
};

class PushdownHistory final : public connector::EventListener {
 public:
  explicit PushdownHistory(size_t window = 128) : window_(window) {}

  void QueryCompleted(const connector::QueryEvent& event) override;

  // Aggregates over the current window.
  PushdownKindStats StatsFor(connector::PushedOperator::Kind kind) const;
  double AverageBytesFromStorage() const;
  size_t window_size() const;
  std::vector<connector::QueryEvent> Snapshot() const;

 private:
  void Recompute();  // callers hold mu_

  size_t window_;
  mutable std::mutex mu_;
  std::deque<connector::QueryEvent> events_;
  std::map<connector::PushedOperator::Kind, PushdownKindStats> per_kind_;
  double total_bytes_ = 0;
};

}  // namespace pocs::connectors
