// Coordinator-side metadata cache: per-object statistics descriptors
// (file- and row-group-level min/max/NDV, from DescribeObject) behind a
// byte-budgeted LRU, revalidated against the object's current version
// with a metadata-only Stat before every use (DESIGN.md §13).
//
// Outcome semantics are validated-freshness, not raw LRU residency —
// which is why the underlying ShardedLruCache runs without a
// metric_prefix and this class owns the connector.metadata_cache.*
// registry counters:
//   hit    cached descriptor whose version still matches the object
//   miss   not cached; fetched via the stats RPC
//   stale  cached but the object moved on (overwrite); refetched
//   error  stats path (Stat or DescribeObject) failed; caller must
//          degrade to planning the split unpruned — never to an error
#pragma once

#include <memory>
#include <string>

#include "common/hash.h"
#include "common/lru_cache.h"
#include "objectstore/describe.h"
#include "objectstore/service.h"

namespace pocs::connectors {

struct MetadataCacheKeyHash {
  size_t operator()(const std::string& k) const {
    return static_cast<size_t>(HashString(k));
  }
};

// Per-planning-pass outcome counts (folded into connector::SplitPlan).
struct MetadataCacheOutcomes {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stale = 0;
  uint64_t errors = 0;
};

class MetadataCache {
 public:
  using DescriptorPtr = std::shared_ptr<const objectstore::ObjectDescriptor>;

  explicit MetadataCache(uint64_t byte_budget);

  // Returns a version-validated descriptor for bucket/key, consulting the
  // cache first and the DescribeObject RPC on miss/staleness. Returns
  // nullptr when the stats path fails (outcomes->errors is bumped) —
  // the caller plans the split unpruned. Thread-safe.
  DescriptorPtr GetDescriptor(const objectstore::StorageClient& client,
                              const std::string& bucket,
                              const std::string& key,
                              MetadataCacheOutcomes* outcomes) const;

 private:
  using Cache =
      ShardedLruCache<std::string, objectstore::ObjectDescriptor,
                      MetadataCacheKeyHash>;

  // Internally synchronized (sharded pocs::Mutex).
  std::unique_ptr<Cache> cache_;
};

}  // namespace pocs::connectors
