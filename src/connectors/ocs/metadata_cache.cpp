#include "connectors/ocs/metadata_cache.h"

#include "common/metrics.h"

namespace pocs::connectors {

namespace {

struct CacheCounters {
  metrics::Counter* hit;
  metrics::Counter* miss;
  metrics::Counter* stale;
  metrics::Counter* error;
};

CacheCounters& Counters() {
  static CacheCounters counters = [] {
    auto& reg = metrics::Registry::Default();
    return CacheCounters{&reg.GetCounter("connector.metadata_cache.hit"),
                         &reg.GetCounter("connector.metadata_cache.miss"),
                         &reg.GetCounter("connector.metadata_cache.stale"),
                         &reg.GetCounter("connector.metadata_cache.error")};
  }();
  return counters;
}

}  // namespace

MetadataCache::MetadataCache(uint64_t byte_budget)
    : cache_(std::make_unique<Cache>(
          LruCacheConfig{.byte_budget = byte_budget, .shards = 8})) {}

MetadataCache::DescriptorPtr MetadataCache::GetDescriptor(
    const objectstore::StorageClient& client, const std::string& bucket,
    const std::string& key, MetadataCacheOutcomes* outcomes) const {
  const std::string cache_key = bucket + "/" + key;
  bool was_cached = false;
  if (DescriptorPtr cached = cache_->Lookup(cache_key)) {
    was_cached = true;
    // Revalidate with a metadata-only Stat (same idiom as the
    // split-result cache, DESIGN.md §10): serve only on version match.
    auto stat = client.Stat(bucket, key);
    if (stat.ok() && stat->version == cached->version) {
      ++outcomes->hits;
      Counters().hit->Increment();
      return cached;
    }
    if (!stat.ok()) {
      // Freshness unknowable — treat like any other stats-path failure
      // so the caller degrades to an unpruned split.
      ++outcomes->errors;
      Counters().error->Increment();
      return nullptr;
    }
    // Version moved on: drop the stale entry and refetch below.
    cache_->Erase(cache_key);
    ++outcomes->stale;
    Counters().stale->Increment();
  }
  auto desc = client.DescribeObject(bucket, key);
  if (!desc.ok()) {
    ++outcomes->errors;
    Counters().error->Increment();
    return nullptr;
  }
  if (!was_cached) {
    ++outcomes->misses;
    Counters().miss->Increment();
  }
  auto value = std::make_shared<const objectstore::ObjectDescriptor>(
      std::move(*desc));
  cache_->Insert(cache_key, value, value->ByteSize());
  return value;
}

}  // namespace pocs::connectors
