#include "connectors/ocs/ocs_connector.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "connectors/ocs/sql_reconstruction.h"
#include "connectors/ocs/translator.h"
#include "exec/plan_executor.h"
#include "format/parquet_lite.h"
#include "objectstore/service.h"
#include "substrait/serialize.h"

namespace pocs::connectors {

using columnar::Field;
using columnar::MakeSchema;
using columnar::RecordBatchPtr;
using columnar::SchemaPtr;
using connector::PageSourceStats;
using connector::PushedOperator;
using connector::ScanSpec;
using connector::Split;
using connector::TableHandle;

Result<TableHandle> OcsConnector::GetTableHandle(
    const std::string& schema_name, const std::string& table) {
  POCS_ASSIGN_OR_RETURN(metastore::TableInfo info,
                        metastore_->GetTable(schema_name, table));
  TableHandle handle;
  handle.connector_id = id_;
  handle.info = std::move(info);
  return handle;
}

namespace {

// Projected table schema for a scan spec (statistics lookups by name).
SchemaPtr ProjectedSchema(const TableHandle& table, const ScanSpec& spec) {
  if (spec.columns.empty()) return table.info.schema;
  std::vector<Field> fields;
  for (int c : spec.columns) fields.push_back(table.info.schema->field(c));
  return MakeSchema(std::move(fields));
}

// Average value width in bytes (rough, for projection size ratios).
double SchemaRowWidth(const columnar::Schema& schema) {
  double width = 0;
  for (const Field& f : schema.fields()) {
    size_t w = columnar::TypeWidth(f.type);
    width += w == 0 ? 16.0 : static_cast<double>(w);
  }
  return width;
}

// pocs-lint: begin partial-agg-whitelist
// Aggregate kinds the connector will push to storage in partial form.
// Every kind listed here MUST have a matching engine-side merge in
// engine::FinalAggSpecs (src/engine/two_phase.cpp) — a partial whose
// merge is missing would silently return per-split rows as if they were
// global aggregates. Enforced by pocs_lint's partial-agg-merge-sync rule.
bool PartialAggSupported(substrait::AggFunc func) {
  switch (func) {
    case substrait::AggFunc::kSum:
    case substrait::AggFunc::kMin:
    case substrait::AggFunc::kMax:
    case substrait::AggFunc::kAvg:
    case substrait::AggFunc::kCount:
    case substrait::AggFunc::kCountStar:
      return true;
  }
  return false;
}
// pocs-lint: end partial-agg-whitelist

// Mirrors every OfferPushdown outcome into the registry (the runtime
// counters behind the EventListener's per-query pushdown stats).
bool RecordPushdownDecision(bool accepted) {
  auto& reg = metrics::Registry::Default();
  static auto& offered = reg.GetCounter("connector.ocs.pushdown_offered");
  static auto& ok = reg.GetCounter("connector.ocs.pushdown_accepted");
  static auto& rejected = reg.GetCounter("connector.ocs.pushdown_rejected");
  offered.Increment();
  (accepted ? ok : rejected).Increment();
  return accepted;
}

// Evaluate the pruning terms against a version-validated descriptor.
// Returns false when the statistics PROVE the object contributes no rows
// (the whole split is pruned); otherwise true, filling the split's
// row-group hint when only some groups can match. Uses the identical
// ChunkMayMatch primitive as storage-side pruning, so a hint can never
// drop a group the storage scan would have kept.
bool DescriptorMayMatch(const objectstore::ObjectDescriptor& desc,
                        const std::vector<objectstore::SelectPredicate>& terms,
                        Split* split) {
  auto col_index = [&desc](const std::string& name) -> int {
    for (size_t i = 0; i < desc.columns.size(); ++i) {
      if (desc.columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  // File-level stats: any term proven unsatisfiable kills the split.
  for (const auto& term : terms) {
    const int idx = col_index(term.column);
    if (idx < 0 || static_cast<size_t>(idx) >= desc.column_stats.size()) {
      continue;
    }
    if (!objectstore::ChunkMayMatch(desc.column_stats[idx], term)) {
      return false;
    }
  }
  // Row-group survival set for the hint.
  std::vector<uint32_t> survivors;
  for (size_t g = 0; g < desc.row_groups.size(); ++g) {
    bool may_match = true;
    for (const auto& term : terms) {
      const int idx = col_index(term.column);
      if (idx < 0 ||
          static_cast<size_t>(idx) >= desc.row_groups[g].column_stats.size()) {
        continue;
      }
      if (!objectstore::ChunkMayMatch(desc.row_groups[g].column_stats[idx],
                                      term)) {
        may_match = false;
        break;
      }
    }
    if (may_match) survivors.push_back(static_cast<uint32_t>(g));
  }
  if (survivors.empty() && !desc.row_groups.empty()) return false;
  if (survivors.size() < desc.row_groups.size()) {
    // Partial survival: hint the keepers, pinned to the stats version so
    // storage discards the hint if the object moves on before dispatch.
    split->row_groups = std::move(survivors);
    split->stats_version = desc.version;
  }
  return true;
}

}  // namespace

Result<connector::SplitPlan> OcsConnector::GetSplits(const TableHandle& table,
                                                     const ScanSpec& spec) {
  connector::SplitPlan plan;
  plan.splits_planned = table.info.objects.size();

  // Stats-based pruning terms: the leading pushed filter — the operator
  // that will sit directly above the scan in the translated plan —
  // decomposed into `field <cmp> literal` conjuncts against the projected
  // scan schema. Exactly the terms the storage node's own pruning
  // evaluates, so plan-time and storage-time decisions agree.
  std::vector<objectstore::SelectPredicate> terms;
  if (metadata_cache_ && !spec.operators.empty() &&
      spec.operators.front().kind == PushedOperator::Kind::kFilter) {
    SchemaPtr scan_schema = ProjectedSchema(table, spec);
    ocs::CollectPruningTerms(spec.operators.front().predicate, *scan_schema,
                             &terms);
  }

  // A pushed join-key bloom must be pinned to the object version it will
  // prune against (DESIGN.md §14): storage applies the filter only while
  // the pin matches, so a PUT between planning and dispatch silently
  // disables it rather than dropping rows of the new data.
  bool has_bloom = false;
  for (const PushedOperator& op : spec.operators) {
    if (op.kind == PushedOperator::Kind::kJoinKeyBloom) has_bloom = true;
  }

  // Planning is metadata-only by contract (enforced by pocs_lint's
  // planning-data-rpc rule): Stat/DescribeObject/Locate, never Get*.
  objectstore::StorageClient store(client_.channel());
  MetadataCacheOutcomes outcomes;
  std::vector<Split> splits;
  for (const std::string& object : table.info.objects) {
    Split split{table.info.bucket, object};
    if (!terms.empty()) {
      MetadataCache::DescriptorPtr desc = metadata_cache_->GetDescriptor(
          store, table.info.bucket, object, &outcomes);
      // A stats-path failure leaves `desc` null: plan the split unpruned.
      if (desc && !DescriptorMayMatch(*desc, terms, &split)) {
        ++plan.splits_pruned;
        continue;  // proven empty — no data RPC is ever issued for it
      }
      if (desc) split.bloom_version = desc->version;
    }
    if (has_bloom && split.bloom_version == 0) {
      // Pin via a metadata-only Stat. On failure the pin stays 0 and
      // storage ignores the bloom wholesale — the safe direction.
      auto ostat = store.Stat(table.info.bucket, object, nullptr,
                              config_.dispatch.call);
      if (ostat.ok()) split.bloom_version = ostat->version;
    }
    if (dispatcher_) {
      // Resolve placement up front (metadata-only Locate on the
      // frontend). Failure degrades to an unhinted split — dispatched
      // unthrottled rather than failing the query.
      auto placement = client_.LocateObject(table.info.bucket, object,
                                            nullptr, config_.dispatch.call);
      if (placement.ok()) split.node_hint = static_cast<int>(placement->node);
    }
    splits.push_back(std::move(split));
  }
  if (dispatcher_) {
    // Load-aware ordering: interleave the split list round-robin across
    // nodes (unhinted splits last), so the engine's in-order fan-out
    // touches every node early instead of draining one node's objects
    // first. Placement is deterministic, so this order is too.
    std::map<int, std::vector<Split>> lanes;
    for (Split& split : splits) {
      const int lane = split.node_hint < 0 ? std::numeric_limits<int>::max()
                                           : split.node_hint;
      lanes[lane].push_back(std::move(split));
    }
    std::vector<Split> interleaved;
    interleaved.reserve(splits.size());
    std::map<int, size_t> taken;
    for (bool progress = true; progress;) {
      progress = false;
      for (auto& [lane, queue] : lanes) {
        size_t& next = taken[lane];
        if (next < queue.size()) {
          interleaved.push_back(std::move(queue[next]));
          ++next;
          progress = true;
        }
      }
    }
    splits = std::move(interleaved);
  }

  plan.metadata_cache_hits = outcomes.hits;
  plan.metadata_cache_misses = outcomes.misses;
  plan.metadata_cache_stale = outcomes.stale;
  plan.metadata_cache_errors = outcomes.errors;
  {
    auto& reg = metrics::Registry::Default();
    static auto& planned = reg.GetCounter("connector.splits_planned");
    static auto& pruned = reg.GetCounter("connector.splits_pruned");
    planned.Add(plan.splits_planned);
    pruned.Add(plan.splits_pruned);
  }
  plan.splits = std::move(splits);
  return plan;
}

Result<bool> OcsConnector::OfferPushdown(
    const TableHandle& table, const PushedOperator& op, ScanSpec* spec,
    connector::PushdownDecision* decision) {
  decision->kind = op.kind;
  SelectivityAnalyzer analyzer(table.info, config_.selectivity);
  SchemaPtr scan_schema = ProjectedSchema(table, *spec);

  // Replay the already-absorbed pipeline to estimate the operator's input
  // row count (the Selectivity Analyzer's traversal state).
  double rows = static_cast<double>(table.info.row_count);
  bool have_agg = false;
  for (const PushedOperator& prior : spec->operators) {
    switch (prior.kind) {
      case PushedOperator::Kind::kFilter:
        rows *= analyzer.EstimateFilterSelectivity(prior.predicate,
                                                   *scan_schema);
        break;
      case PushedOperator::Kind::kPartialAggregation:
        rows *= analyzer.EstimateAggregationSelectivity(
            prior.group_keys, *spec->output_schema, rows);
        have_agg = true;
        break;
      case PushedOperator::Kind::kPartialTopN:
      case PushedOperator::Kind::kPartialLimit:
        rows = std::min(rows, static_cast<double>(prior.limit));
        break;
      case PushedOperator::Kind::kJoinKeyBloom:
        rows *= 0.5;  // heuristic: see the kJoinKeyBloom offer case
        break;
      case PushedOperator::Kind::kProject:
        break;
    }
  }

  double selectivity = 1.0;  // estimated output/input (rows or bytes)
  bool capable = true;
  std::string incapable_reason;

  switch (op.kind) {
    case PushedOperator::Kind::kFilter:
      if (!config_.pushdown_filter) {
        capable = false;
        incapable_reason = "filter pushdown disabled";
        break;
      }
      selectivity =
          analyzer.EstimateFilterSelectivity(op.predicate, *spec->output_schema);
      break;
    case PushedOperator::Kind::kProject: {
      if (!config_.pushdown_projection) {
        capable = false;
        incapable_reason = "expression projection pushdown disabled";
        break;
      }
      double in_width = SchemaRowWidth(*spec->output_schema);
      double out_width = 0;
      for (const auto& e : op.expressions) {
        size_t w = columnar::TypeWidth(e.type);
        out_width += w == 0 ? 16.0 : static_cast<double>(w);
      }
      selectivity = in_width > 0 ? out_width / in_width : 1.0;
      break;
    }
    case PushedOperator::Kind::kPartialAggregation:
      if (!config_.pushdown_aggregation) {
        capable = false;
        incapable_reason = "aggregation pushdown disabled";
        break;
      }
      for (const auto& agg : op.aggregates) {
        if (!PartialAggSupported(agg.func)) {
          capable = false;
          incapable_reason = "aggregate " + std::string(AggFuncName(agg.func)) +
                             " has no storage-side partial form";
          break;
        }
      }
      if (!capable) break;
      selectivity = analyzer.EstimateAggregationSelectivity(
          op.group_keys, *spec->output_schema, rows);
      break;
    case PushedOperator::Kind::kPartialTopN:
    case PushedOperator::Kind::kPartialLimit:
      if (!config_.pushdown_topn) {
        capable = false;
        incapable_reason = "top-N/limit pushdown disabled";
        break;
      }
      if (have_agg && !config_.assume_split_disjoint_groups) {
        capable = false;
        incapable_reason =
            "top-N/limit above aggregation requires split-disjoint group keys";
        break;
      }
      selectivity = analyzer.EstimateTopNSelectivity(op.limit, rows);
      break;
    case PushedOperator::Kind::kJoinKeyBloom:
      if (!config_.pushdown_join_bloom) {
        capable = false;
        incapable_reason = "join-key bloom pushdown disabled";
        break;
      }
      if (op.bloom_words.empty() || op.bloom_hashes == 0) {
        capable = false;
        incapable_reason = "empty join-key bloom filter";
        break;
      }
      // No per-key join statistics exist; assume the canonical
      // half-pruned fact table. The filter is advisory (false positives
      // are re-filtered engine-side, stale pins disable it wholesale),
      // so a wrong estimate costs performance, never correctness.
      selectivity = 0.5;
      break;
  }

  decision->estimated_selectivity = selectivity;
  if (!capable) {
    decision->accepted = false;
    decision->reason = incapable_reason;
    return RecordPushdownDecision(false);
  }
  const double reduction = 1.0 - selectivity;
  if (reduction < config_.min_reduction) {
    decision->accepted = false;
    decision->reason =
        "estimated reduction " + std::to_string(reduction) +
        " below threshold " + std::to_string(config_.min_reduction);
    return RecordPushdownDecision(false);
  }

  // Operator Extractor: record the operator (with its conditions) in the
  // connector's scan metadata and advance the spec's output schema.
  spec->operators.push_back(op);
  switch (op.kind) {
    case PushedOperator::Kind::kFilter:
    case PushedOperator::Kind::kPartialTopN:
    case PushedOperator::Kind::kPartialLimit:
    case PushedOperator::Kind::kJoinKeyBloom:
      break;  // schema unchanged
    case PushedOperator::Kind::kProject: {
      std::vector<Field> fields;
      for (size_t i = 0; i < op.expressions.size(); ++i) {
        fields.push_back({op.output_names[i], op.expressions[i].type});
      }
      spec->output_schema = MakeSchema(std::move(fields));
      break;
    }
    case PushedOperator::Kind::kPartialAggregation: {
      std::vector<Field> fields;
      for (int k : op.group_keys) {
        fields.push_back(spec->output_schema->field(k));
      }
      for (const auto& agg : op.aggregates) {
        fields.push_back({agg.output_name, agg.OutputType()});
      }
      spec->output_schema = MakeSchema(std::move(fields));
      break;
    }
  }
  decision->accepted = true;
  decision->reason = "estimated selectivity " + std::to_string(selectivity);
  return RecordPushdownDecision(true);
}


namespace {

class OcsPageSource final : public connector::PageSource {
 public:
  OcsPageSource(SchemaPtr schema, std::shared_ptr<columnar::Table> table,
                PageSourceStats stats)
      : schema_(std::move(schema)), table_(std::move(table)), stats_(stats) {}

  SchemaPtr schema() const override { return schema_; }
  Result<RecordBatchPtr> Next() override {
    if (next_ >= table_->batches().size()) return RecordBatchPtr{};
    return table_->batches()[next_++];
  }
  const PageSourceStats& stats() const override { return stats_; }

 private:
  SchemaPtr schema_;
  std::shared_ptr<columnar::Table> table_;
  PageSourceStats stats_;
  size_t next_ = 0;
};

// Common tail for the cold and cache-hit paths: per-split registry
// counters, result-schema check, page source construction.
Result<std::unique_ptr<connector::PageSource>> MakePageSource(
    const connector::ScanSpec& spec, std::shared_ptr<columnar::Table> decoded,
    PageSourceStats stats) {
  stats.rows_received = decoded->num_rows();
  {
    auto& reg = metrics::Registry::Default();
    static auto& splits = reg.GetCounter("connector.ocs.splits");
    static auto& bytes_rx = reg.GetCounter("connector.ocs.bytes_received");
    static auto& bytes_tx = reg.GetCounter("connector.ocs.bytes_sent");
    static auto& rows = reg.GetCounter("connector.ocs.rows_received");
    static auto& refetched =
        reg.GetCounter("connector.ocs.bytes_refetched_on_retry");
    static auto& ir = reg.GetHistogram("connector.ocs.ir_gen_seconds");
    static auto& decode = reg.GetHistogram("connector.ocs.decode_seconds");
    splits.Increment();
    bytes_rx.Add(stats.bytes_received);
    bytes_tx.Add(stats.bytes_sent);
    rows.Add(stats.rows_received);
    refetched.Add(stats.bytes_refetched_on_retry);
    ir.Record(stats.ir_generation_seconds);
    decode.Record(stats.decode_seconds);
  }

  SchemaPtr schema = spec.output_schema ? spec.output_schema
                                        : decoded->schema();
  if (!decoded->schema()->Equals(*schema)) {
    return Status::Internal("ocs: result schema mismatch: got " +
                            decoded->schema()->ToString() + ", want " +
                            schema->ToString());
  }
  return std::unique_ptr<connector::PageSource>(
      std::make_unique<OcsPageSource>(schema, std::move(decoded), stats));
}

}  // namespace

// BatchSource over a compute-side copy of the object (fallback path): no
// row-group pruning — the whole object already crossed the network.
namespace {

// True when the plan's Read leaf carries a join-key bloom filter — the
// fallback must then learn the object version to honour the pin.
bool PlanHasBloom(const substrait::Plan& plan) {
  for (const substrait::Rel* r = plan.root.get(); r; r = r->input.get()) {
    if (r->kind == substrait::RelKind::kRead && !r->bloom_words.empty()) {
      return true;
    }
  }
  return false;
}

class LocalObjectSource final : public exec::BatchSource {
 public:
  LocalObjectSource(std::shared_ptr<format::FileReader> reader,
                    std::vector<int> columns, SchemaPtr schema)
      : reader_(std::move(reader)),
        columns_(std::move(columns)),
        schema_(std::move(schema)) {}

  SchemaPtr schema() const override { return schema_; }
  Result<RecordBatchPtr> Next() override {
    if (group_ >= reader_->num_row_groups()) return RecordBatchPtr{};
    return reader_->ReadRowGroup(group_++, columns_);
  }

 private:
  std::shared_ptr<format::FileReader> reader_;
  std::vector<int> columns_;
  SchemaPtr schema_;
  size_t group_ = 0;
};

}  // namespace

Result<std::shared_ptr<columnar::Table>> OcsConnector::ExecuteFallback(
    const substrait::Plan& plan, const Split& split,
    PageSourceStats* stats, uint64_t* object_version) {
  // Fetch the raw object through the frontend — the plain object-store
  // methods survive an exec-engine crash — then run the *identical* plan
  // with the local executor, so the result schema and rows match what the
  // storage node would have returned.
  objectstore::StorageClient store(client_.channel());
  const std::string object_id = split.bucket + "/" + split.object;
  const uint64_t chunk = config_.dispatch.fallback_chunk_bytes;
  auto account = [stats](const objectstore::TransferInfo& info) {
    stats->bytes_received += info.bytes_received;
    stats->bytes_sent += info.bytes_sent;
    stats->dispatch_retries += info.retries;
    stats->transfer_seconds += info.transfer_seconds;
  };

  Bytes object;
  uint64_t fetched_bytes = 0;  // bytes that crossed the network this call
  if (chunk == 0) {
    // Legacy path: one whole-object GET. An rpc-level retry re-sends the
    // entire object, so all of it counts as refetched.
    objectstore::TransferInfo info;
    POCS_ASSIGN_OR_RETURN(object,
                          store.Get(split.bucket, split.object, &info,
                                    config_.dispatch.fallback_call));
    account(info);
    fetched_bytes = object.size();
    if (info.retries > 0) stats->bytes_refetched_on_retry += info.bytes_received;
    if (split_result_cache_ || PlanHasBloom(plan)) {
      // Learn the version so the result can enter the split cache and the
      // bloom's version pin can be checked against the bytes just read.
      objectstore::TransferInfo stat_info;
      auto ostat = store.Stat(split.bucket, split.object, &stat_info,
                              config_.dispatch.fallback_call);
      account(stat_info);
      if (ostat.ok()) *object_version = ostat->version;
    }
  } else {
    // Chunked path: Stat pins (size, version), then ranged GETs fill the
    // buffer. Every received range is parked in the range cache before the
    // next one is requested, so a transfer that dies mid-split leaves its
    // prefix behind and the next attempt re-requests only the missing
    // tail.
    objectstore::TransferInfo stat_info;
    POCS_ASSIGN_OR_RETURN(objectstore::ObjectStat ostat,
                          store.Stat(split.bucket, split.object, &stat_info,
                                     config_.dispatch.fallback_call));
    account(stat_info);
    *object_version = ostat.version;
    object.resize(ostat.size);
    for (uint64_t offset = 0; offset < ostat.size; offset += chunk) {
      const uint64_t len = std::min<uint64_t>(chunk, ostat.size - offset);
      const FallbackRangeKey range_key{object_id, ostat.version, offset};
      if (fallback_range_cache_) {
        if (auto cached = fallback_range_cache_->Lookup(range_key)) {
          std::copy(cached->begin(), cached->end(),
                    object.begin() + static_cast<ptrdiff_t>(offset));
          stats->cache_hits += 1;
          stats->cache_bytes_saved += cached->size();
          continue;
        }
      }
      objectstore::TransferInfo range_info;
      auto range = store.GetRange(split.bucket, split.object, offset, len,
                                  &range_info, config_.dispatch.fallback_call);
      account(range_info);
      if (!range.ok()) {
        // Ranges already received stay cached for the next attempt.
        return range.status();
      }
      fetched_bytes += range->size();
      if (range_info.retries > 0) {
        stats->bytes_refetched_on_retry += range_info.bytes_received;
      }
      if (fallback_range_cache_) {
        stats->cache_misses += 1;
        fallback_range_cache_->Insert(range_key,
                                      std::make_shared<const Bytes>(*range),
                                      range->size());
      }
      std::copy(range->begin(), range->end(),
                object.begin() + static_cast<ptrdiff_t>(offset));
    }
    // Transfer complete: retention has served its purpose — release the
    // budget (the decoded result lives in the split cache, if enabled).
    if (fallback_range_cache_) {
      for (uint64_t offset = 0; offset < ostat.size; offset += chunk) {
        fallback_range_cache_->Erase(
            FallbackRangeKey{object_id, ostat.version, offset});
      }
    }
  }
  stats->media_read_seconds +=
      static_cast<double>(fetched_bytes) / config_.dispatch.media_read_bandwidth;

  Stopwatch exec_timer;
  POCS_ASSIGN_OR_RETURN(auto reader_owned,
                        format::FileReader::Open(std::move(object)));
  std::shared_ptr<format::FileReader> reader = std::move(reader_owned);
  stats->row_groups_total += reader->num_row_groups();

  exec::ScanFactory factory =
      [&reader, stats, version = *object_version](const substrait::Rel& r)
      -> Result<std::unique_ptr<exec::BatchSource>> {
    if (!reader->schema()->Equals(*r.base_schema)) {
      return Status::InvalidArgument("ocs fallback: plan schema != object");
    }
    POCS_ASSIGN_OR_RETURN(SchemaPtr scan_schema, substrait::OutputSchema(r));
    std::unique_ptr<exec::BatchSource> source =
        std::make_unique<LocalObjectSource>(reader, r.read_columns,
                                            std::move(scan_schema));
    // Honour the pushed join-key bloom under the same version-pin rule as
    // the storage node: applied only when the pin matches the bytes this
    // fallback just fetched, skipped wholesale otherwise.
    if (!r.bloom_words.empty() && r.bloom_version != 0 &&
        r.bloom_version == version) {
      source = std::make_unique<exec::BloomFilterSource>(
          std::move(source), r.bloom_words, r.bloom_hashes, r.bloom_seed,
          r.bloom_column, &stats->bloom_rows_pruned);
    }
    return source;
  };
  exec::ExecStats exec_stats;
  POCS_ASSIGN_OR_RETURN(auto table,
                        exec::ExecuteRel(*plan.root, factory, &exec_stats));
  stats->rows_scanned += exec_stats.rows_scanned;
  // Fallback execution is compute-side work, like decode.
  stats->decode_seconds += exec_timer.ElapsedSeconds();
  return table;
}

Result<std::unique_ptr<connector::PageSource>> OcsConnector::CreatePageSource(
    const TableHandle& table, const Split& split, const ScanSpec& spec) {
  PageSourceStats stats;

  // §4: reconstruct the pushdown operators into a SQL statement (logged,
  // auditable) and translate into the storage-executable Substrait plan
  // (timed: Table 3's "Substrait IR Generation" row).
  Stopwatch ir_timer;
  if (GetLogLevel() <= LogLevel::kDebug) {
    auto sql = ReconstructSql(table, spec);
    if (sql.ok()) {
      POCS_LOG(Debug) << "pushdown SQL for " << split.object << ": " << *sql;
    }
  }
  POCS_ASSIGN_OR_RETURN(substrait::Plan plan,
                        TranslateScanSpec(table, split, spec));
  stats.ir_generation_seconds = ir_timer.ElapsedSeconds();

  // Split-result cache: a repeat of a (object, plan) pair the connector
  // has already answered is validated with a metadata-only Stat and then
  // served without any data RPC.
  const std::string object_id = split.bucket + "/" + split.object;
  const uint64_t fingerprint =
      split_result_cache_ ? substrait::PlanFingerprint(plan) : 0;
  if (split_result_cache_) {
    const SplitResultKey cache_key{object_id, fingerprint};
    if (auto cached = split_result_cache_->Lookup(cache_key)) {
      objectstore::TransferInfo stat_info;
      objectstore::StorageClient store(client_.channel());
      auto ostat = store.Stat(split.bucket, split.object, &stat_info,
                              config_.dispatch.call);
      stats.bytes_received += stat_info.bytes_received;
      stats.bytes_sent += stat_info.bytes_sent;
      stats.dispatch_retries += stat_info.retries;
      stats.transfer_seconds += stat_info.transfer_seconds;
      if (ostat.ok() && ostat->version == cached->version) {
        stats.cache_hits += 1;
        stats.cache_bytes_saved += cached->bytes_received;
        stats.rows_scanned = cached->rows_scanned;
        stats.row_groups_total = cached->row_groups_total;
        stats.row_groups_skipped = cached->row_groups_skipped;
        return MakePageSource(spec, cached->table, std::move(stats));
      }
      if (ostat.ok()) {
        // The object changed under us — a stale result is never served.
        split_result_cache_->Erase(cache_key);
        stats.cache_misses += 1;
      }
      // On a Stat failure we cannot validate: fall through to a normal
      // dispatch, leaving the entry for a later, healthier validation.
    } else {
      stats.cache_misses += 1;
    }
  }

  // Load-aware dispatch: take a per-node lease (blocking at the node's
  // in-flight cap) for the whole dispatch + decode, so no storage node
  // sees more than its configured queue depth. Held across the fallback
  // too — the raw-object GET lands on the same node.
  SplitDispatcher::Lease lease;
  if (dispatcher_) lease = dispatcher_->Dispatch(split.node_hint);

  objectstore::TransferInfo info;
  auto dispatch = client_.ExecutePlan(plan, &info, config_.dispatch.call);
  stats.bytes_received += info.bytes_received;
  stats.bytes_sent += info.bytes_sent;
  stats.dispatch_retries += info.retries;
  stats.transfer_seconds += info.transfer_seconds;
  lease.AddBytes(info.bytes_received);

  Status dispatch_status;
  std::shared_ptr<columnar::Table> decoded;
  uint64_t object_version = 0;
  uint64_t data_bytes_received = 0;  // payload bytes behind `decoded`
  if (dispatch.ok()) {
    const ocs::OcsResult& result = *dispatch;
    // Slow-node detector: the transport deadline cannot see storage-side
    // time (it rides inside the response), so police it here. Modelled
    // time only (media read + injected delay, both simulation-defined):
    // the measured compute component in storage_compute_seconds scales
    // with sanitizer overhead and made this trip spuriously under TSan.
    const double storage_seconds = result.stats.media_read_seconds +
                                   result.stats.exec_delay_seconds;
    if (config_.dispatch.storage_deadline_seconds > 0 &&
        storage_seconds > config_.dispatch.storage_deadline_seconds) {
      dispatch_status = Status::DeadlineExceeded(
          "ocs: storage-side execution of " + split.object + " took " +
          std::to_string(storage_seconds) + "s, deadline " +
          std::to_string(config_.dispatch.storage_deadline_seconds) + "s");
    } else {
      stats.storage_compute_seconds = result.stats.storage_compute_seconds;
      stats.media_read_seconds = result.stats.media_read_seconds;
      stats.row_groups_total = result.stats.row_groups_total;
      stats.row_groups_skipped = result.stats.row_groups_skipped;
      stats.row_groups_lazy_skipped = result.stats.row_groups_lazy_skipped;
      stats.row_groups_hint_skipped = result.stats.row_groups_hint_skipped;
      stats.bloom_rows_pruned = result.stats.bloom_rows_pruned;
      stats.rows_dict_filtered = result.stats.rows_dict_filtered;
      stats.rows_late_materialized = result.stats.rows_late_materialized;
      stats.rows_scanned = result.stats.rows_scanned;
      // Level-1 (storage-side row-group cache) accounting rides back on
      // the result; fold it into this split's stats.
      stats.cache_hits += result.stats.cache_hits;
      stats.cache_misses += result.stats.cache_misses;
      stats.cache_bytes_saved += result.stats.cache_bytes_saved;
      object_version = result.stats.object_version;
      data_bytes_received = info.bytes_received;
      if (info.retries > 0) {
        stats.bytes_refetched_on_retry += info.bytes_received;
      }
      Stopwatch decode_timer;
      POCS_ASSIGN_OR_RETURN(decoded, ocs::OcsClient::DecodeTable(result));
      stats.decode_seconds = decode_timer.ElapsedSeconds();
    }
  } else {
    dispatch_status = dispatch.status();
  }

  if (!dispatch_status.ok()) {
    auto& reg = metrics::Registry::Default();
    static auto& failed = reg.GetCounter("connector.ocs.failed_dispatches");
    static auto& fallbacks = reg.GetCounter("connector.ocs.fallbacks");
    failed.Increment();
    stats.failed_dispatches = 1;
    if (history_) {
      history_->RecordOffloadRejection(
          id_, split.bucket + "/" + split.object, dispatch_status);
    }
    if (!config_.dispatch.fallback_to_engine ||
        !rpc::IsRetryable(dispatch_status)) {
      return dispatch_status;
    }
    const uint64_t bytes_before_fallback = stats.bytes_received;
    POCS_ASSIGN_OR_RETURN(decoded,
                          ExecuteFallback(plan, split, &stats, &object_version));
    data_bytes_received = stats.bytes_received - bytes_before_fallback;
    stats.fallbacks = 1;
    fallbacks.Increment();
  }

  // A successful split with a known object version enters the
  // split-result cache; a later identical (object, plan) scan is then
  // served without moving the data again.
  if (split_result_cache_ && object_version != 0) {
    auto value = std::make_shared<CachedSplitResult>();
    value->version = object_version;
    value->table = decoded;
    value->bytes_received = data_bytes_received;
    value->rows_scanned = stats.rows_scanned;
    value->row_groups_total = stats.row_groups_total;
    value->row_groups_skipped = stats.row_groups_skipped;
    split_result_cache_->Insert(SplitResultKey{object_id, fingerprint},
                                std::move(value), decoded->ByteSize());
  }
  return MakePageSource(spec, std::move(decoded), std::move(stats));
}

}  // namespace pocs::connectors
