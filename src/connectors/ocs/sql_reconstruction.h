// SQL reconstruction — §4 "Page Source Provider": "The translation
// process extracts pushdown operators and reconstructs them into SQL
// statements, combining filters with predicates, aggregations with
// grouping keys and functions, and sorts with ordering criteria."
//
// The reconstructed statement is the human-auditable form of what the
// connector ships to storage: it is logged, surfaced in monitoring, and
// round-trips through the repo's own SQL parser (tested), mirroring the
// paper's SQL→Substrait pipeline.
#pragma once

#include <string>

#include "connector/spi.h"

namespace pocs::connectors {

// Reconstruct the pushdown pipeline of `spec` against `table` as a SQL
// SELECT statement.
Result<std::string> ReconstructSql(const connector::TableHandle& table,
                                   const connector::ScanSpec& spec);

}  // namespace pocs::connectors
