#include "connectors/ocs/pushdown_history.h"

namespace pocs::connectors {

void PushdownHistory::QueryCompleted(const connector::QueryEvent& event) {
  MutexLock lock(mu_);
  events_.push_back(event);
  while (events_.size() > window_) events_.pop_front();
  Recompute();
}

void PushdownHistory::Recompute() {
  per_kind_.clear();
  total_bytes_ = 0;
  for (const auto& event : events_) {
    for (const auto& decision : event.decisions) {
      PushdownKindStats& stats = per_kind_[decision.kind];
      ++stats.offered;
      if (decision.accepted) ++stats.accepted;
    }
    total_bytes_ += static_cast<double>(event.bytes_from_storage);
  }
}

void PushdownHistory::RecordOffloadRejection(const std::string& connector_id,
                                             const std::string& object,
                                             const Status& cause) {
  MutexLock lock(mu_);
  rejections_.push_back(
      {connector_id, object, cause.code(), cause.message()});
  while (rejections_.size() > window_) rejections_.pop_front();
  ++total_rejections_;
}

std::vector<OffloadRejection> PushdownHistory::offload_rejections() const {
  MutexLock lock(mu_);
  return {rejections_.begin(), rejections_.end()};
}

uint64_t PushdownHistory::total_offload_rejections() const {
  MutexLock lock(mu_);
  return total_rejections_;
}

PushdownKindStats PushdownHistory::StatsFor(
    connector::PushedOperator::Kind kind) const {
  MutexLock lock(mu_);
  auto it = per_kind_.find(kind);
  return it == per_kind_.end() ? PushdownKindStats{} : it->second;
}

double PushdownHistory::AverageBytesFromStorage() const {
  MutexLock lock(mu_);
  return events_.empty() ? 0.0 : total_bytes_ / events_.size();
}

size_t PushdownHistory::window_size() const {
  MutexLock lock(mu_);
  return events_.size();
}

std::vector<connector::QueryEvent> PushdownHistory::Snapshot() const {
  MutexLock lock(mu_);
  return {events_.begin(), events_.end()};
}

}  // namespace pocs::connectors
