#include "format/stats.h"

#include <algorithm>

#include "common/hash.h"

namespace pocs::format {

using columnar::Datum;

void ColumnStats::Merge(const ColumnStats& other) {
  if (min.is_null() || (!other.min.is_null() && other.min.Compare(min) < 0)) {
    min = other.min;
  }
  if (max.is_null() || (!other.max.is_null() && other.max.Compare(max) > 0)) {
    max = other.max;
  }
  row_count += other.row_count;
  null_count += other.null_count;
  // NDV union upper bound; per-chunk NDVs can overlap, so this
  // overestimates — acceptable for the pushdown estimator which only
  // needs order of magnitude.
  ndv = std::min<uint64_t>(ndv + other.ndv, row_count);
  ndv_capped = ndv_capped || other.ndv_capped;
}

void ColumnStats::Serialize(BufferWriter* out) const {
  columnar::ipc::WriteDatum(min, out);
  columnar::ipc::WriteDatum(max, out);
  out->WriteVarint(row_count);
  out->WriteVarint(null_count);
  out->WriteVarint(ndv);
  out->WriteU8(ndv_capped ? 1 : 0);
}

Result<ColumnStats> ColumnStats::Deserialize(BufferReader* in) {
  ColumnStats s;
  POCS_ASSIGN_OR_RETURN(s.min, columnar::ipc::ReadDatum(in));
  POCS_ASSIGN_OR_RETURN(s.max, columnar::ipc::ReadDatum(in));
  POCS_ASSIGN_OR_RETURN(s.row_count, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(s.null_count, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(s.ndv, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(uint8_t capped, in->ReadU8());
  s.ndv_capped = capped != 0;
  return s;
}

void StatsCollector::Update(const columnar::Column& col) {
  using columnar::TypeKind;
  stats_.row_count += col.length();
  for (size_t i = 0; i < col.length(); ++i) {
    if (col.IsNull(i)) {
      ++stats_.null_count;
      continue;
    }
    Datum v = col.GetDatum(i);
    if (stats_.min.is_null() || v.Compare(stats_.min) < 0) stats_.min = v;
    if (stats_.max.is_null() || v.Compare(stats_.max) > 0) stats_.max = v;
    if (!stats_.ndv_capped) {
      uint64_t h;
      switch (type_) {
        case TypeKind::kString: h = HashString(col.GetString(i)); break;
        case TypeKind::kFloat64: h = HashValue(col.GetFloat64(i)); break;
        default: h = HashValue(v.AsInt64()); break;
      }
      distinct_.insert(h);
      if (distinct_.size() >= kNdvCap) stats_.ndv_capped = true;
    }
  }
  stats_.ndv = distinct_.size();
}

}  // namespace pocs::format
