// Parquet-lite: the columnar storage file format objects are stored in.
//
// Mirrors the structural features of Apache Parquet that the paper's
// pipeline depends on: row groups, per-column chunks with min/max/NDV
// statistics (chunk skipping), pluggable compression per file, and a
// self-describing footer. Files are byte buffers — the object store is
// the only persistence layer, as in the paper's S3/OCS setup.
//
// Layout:
//   file   := magic(u32 'PQL1') chunk_data... footer footer_len(u32)
//             magic(u32 'PQL1')
//   chunk  := codec-compressed single-column IPC batch
//   footer := schema  codec:u8  n_groups:varint
//             group*  { n_rows:varint  chunk* { offset:varint len:varint
//                                               stats } }
//             file-level stats per column
#pragma once

#include <memory>
#include <vector>

#include "columnar/batch.h"
#include "compress/codec.h"
#include "format/stats.h"

namespace pocs::format {

constexpr uint32_t kParquetLiteMagic = 0x314C5150;  // 'PQL1'

struct WriterOptions {
  compress::CodecType codec = compress::CodecType::kNone;
  size_t rows_per_group = 64 * 1024;
};

struct ChunkMeta {
  uint64_t offset = 0;  // absolute file offset of the compressed chunk
  uint64_t length = 0;  // compressed byte length
  ColumnStats stats;
};

struct RowGroupMeta {
  uint64_t num_rows = 0;
  std::vector<ChunkMeta> chunks;  // one per schema field
};

struct FileMeta {
  columnar::SchemaPtr schema;
  compress::CodecType codec = compress::CodecType::kNone;
  uint64_t num_rows = 0;
  std::vector<RowGroupMeta> row_groups;
  std::vector<ColumnStats> column_stats;  // file-level, one per field
};

// Streaming writer: append batches, then Finish() to obtain file bytes.
class FileWriter {
 public:
  FileWriter(columnar::SchemaPtr schema, WriterOptions options);

  Status WriteBatch(const columnar::RecordBatch& batch);
  // Flushes pending rows and writes the footer. Writer is then spent.
  Result<Bytes> Finish();

 private:
  Status FlushGroup();

  columnar::SchemaPtr schema_;
  WriterOptions options_;
  BufferWriter out_;
  FileMeta meta_;
  std::vector<std::shared_ptr<columnar::Column>> pending_;
  std::vector<StatsCollector> file_stats_;
  size_t pending_rows_ = 0;
  bool finished_ = false;
};

// Reader over a complete in-memory file. Column projection and row-group
// selection are first-class so storage-side execution reads only what a
// query needs (the paper's §2.2 selective-retrieval property).
class FileReader {
 public:
  static Result<std::shared_ptr<FileReader>> Open(Bytes file);

  const FileMeta& meta() const { return meta_; }
  const columnar::SchemaPtr& schema() const { return meta_.schema; }
  size_t num_row_groups() const { return meta_.row_groups.size(); }

  // Read one row group, materializing only `column_indices` (all if empty).
  // The returned batch's schema is the projected schema.
  Result<columnar::RecordBatchPtr> ReadRowGroup(
      size_t group, const std::vector<int>& column_indices = {}) const;

  // Read the whole file (projected), as a table of per-group batches.
  Result<std::shared_ptr<columnar::Table>> ReadAll(
      const std::vector<int>& column_indices = {}) const;

  // Bytes that a range-read of just these columns in this group would
  // fetch — used for transfer accounting in filter-only pushdown paths.
  uint64_t ChunkBytes(size_t group, const std::vector<int>& columns) const;

  // Decompressed encoded page bytes (leading encoding byte) of one
  // column chunk, without materializing the column. The dictionary-aware
  // scan path uses this to evaluate predicates in the code domain and
  // decode only surviving rows (DESIGN.md §15).
  Result<Bytes> ReadChunkPage(size_t group, int column) const;

 private:
  FileReader(Bytes file, FileMeta meta)
      : file_(std::move(file)), meta_(std::move(meta)) {}

  Bytes file_;
  FileMeta meta_;
};

// Parse only the footer of a file (cheap metadata access for planners).
Result<FileMeta> ReadFooter(ByteSpan file);

}  // namespace pocs::format
