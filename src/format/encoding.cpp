#include "format/encoding.h"

#include <map>

#include "columnar/ipc.h"

namespace pocs::format {

using columnar::Column;
using columnar::ColumnPtr;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::TypeKind;

std::optional<Bytes> DictionaryEncodeString(const Column& col) {
  if (col.type() != TypeKind::kString) return std::nullopt;
  // Build the dictionary (insertion order = code order).
  std::map<std::string_view, uint8_t> dict;
  std::vector<std::string_view> values;
  for (size_t i = 0; i < col.length(); ++i) {
    if (col.IsNull(i)) continue;
    std::string_view v = col.GetString(i);
    if (dict.contains(v)) continue;
    if (values.size() >= 255) return std::nullopt;  // too many distincts
    dict.emplace(v, static_cast<uint8_t>(values.size()));
    values.push_back(v);
  }
  BufferWriter out(col.length() + 64);
  out.WriteU8(static_cast<uint8_t>(PageEncoding::kDictionary));
  out.WriteVarint(values.size());
  for (std::string_view v : values) out.WriteString(v);
  out.WriteVarint(col.length());
  out.WriteVarint(col.null_count());
  if (col.null_count() > 0) {
    out.WriteBytes(col.validity().data(), col.validity().size());
  }
  for (size_t i = 0; i < col.length(); ++i) {
    out.WriteU8(col.IsNull(i) ? 0 : dict.at(col.GetString(i)));
  }
  return std::move(out).Take();
}

Bytes EncodePage(const Column& col, const columnar::Field& field) {
  // Plain form: IPC batch of the single column.
  auto field_schema = columnar::MakeSchema({field});
  auto shared = std::make_shared<Column>(col);
  Bytes ipc = columnar::ipc::SerializeBatch(
      *MakeBatch(field_schema, {std::move(shared)}));
  BufferWriter plain(ipc.size() + 1);
  plain.WriteU8(static_cast<uint8_t>(PageEncoding::kPlain));
  plain.WriteBytes(ipc.data(), ipc.size());
  Bytes plain_bytes = std::move(plain).Take();

  if (auto dictionary = DictionaryEncodeString(col);
      dictionary && dictionary->size() < plain_bytes.size()) {
    return std::move(*dictionary);
  }
  return plain_bytes;
}

Result<std::optional<DictionaryPage>> DecodeDictionaryPage(
    ByteSpan payload, const columnar::Field& field, size_t expected_rows) {
  BufferReader in(payload);
  POCS_ASSIGN_OR_RETURN(uint8_t enc, in.ReadU8());
  if (enc == static_cast<uint8_t>(PageEncoding::kPlain)) {
    return std::optional<DictionaryPage>{};
  }
  if (enc != static_cast<uint8_t>(PageEncoding::kDictionary)) {
    return Status::Corruption("page: unknown encoding");
  }
  if (field.type != TypeKind::kString) {
    return Status::Corruption("page: dictionary on non-string column");
  }
  DictionaryPage page;
  POCS_ASSIGN_OR_RETURN(uint64_t n_dict, in.ReadVarint());
  if (n_dict > 255) return Status::Corruption("page: dictionary too large");
  page.values.reserve(n_dict);
  for (uint64_t i = 0; i < n_dict; ++i) {
    POCS_ASSIGN_OR_RETURN(std::string v, in.ReadString());
    page.values.push_back(std::move(v));
  }
  POCS_ASSIGN_OR_RETURN(uint64_t n_rows, in.ReadVarint());
  if (n_rows != expected_rows) {
    return Status::Corruption("page: dictionary row count mismatch");
  }
  POCS_ASSIGN_OR_RETURN(uint64_t null_count, in.ReadVarint());
  page.null_count = null_count;
  if (null_count > 0) {
    if (null_count > n_rows) return Status::Corruption("page: bad nulls");
    page.validity.resize(n_rows);
    POCS_RETURN_NOT_OK(in.ReadBytes(page.validity.data(), n_rows));
  }
  page.codes.resize(n_rows);
  POCS_RETURN_NOT_OK(in.ReadBytes(page.codes.data(), n_rows));
  if (!in.exhausted()) return Status::Corruption("page: trailing bytes");
  for (uint64_t i = 0; i < n_rows; ++i) {
    if (!page.validity.empty() && page.validity[i] == 0) continue;
    if (page.codes[i] >= page.values.size()) {
      return Status::Corruption("page: dictionary code out of range");
    }
  }
  return std::optional<DictionaryPage>(std::move(page));
}

std::vector<uint8_t> TranslateDictPredicate(const DictionaryPage& page,
                                            columnar::CompareOp op,
                                            const columnar::Datum& literal) {
  std::vector<uint8_t> match(256, 0);
  if (literal.is_null()) return match;  // NULL matches nothing
  const std::string& lit = literal.string_value();
  for (size_t c = 0; c < page.values.size(); ++c) {
    const std::string& v = page.values[c];
    bool hit = false;
    switch (op) {
      case columnar::CompareOp::kEq: hit = v == lit; break;
      case columnar::CompareOp::kNe: hit = v != lit; break;
      case columnar::CompareOp::kLt: hit = v < lit; break;
      case columnar::CompareOp::kLe: hit = v <= lit; break;
      case columnar::CompareOp::kGt: hit = v > lit; break;
      case columnar::CompareOp::kGe: hit = v >= lit; break;
    }
    match[c] = hit ? 1 : 0;
  }
  return match;
}

columnar::SelectionVector FilterDictCodes(
    const DictionaryPage& page, const std::vector<uint8_t>& match,
    const columnar::SelectionVector* input) {
  POCS_CHECK_EQ(match.size(), size_t{256});
  const uint8_t* codes = page.codes.data();
  const uint8_t* valid = page.validity.empty() ? nullptr
                                               : page.validity.data();
  const uint8_t* m = match.data();
  columnar::SelectionVector out;
  out.resize(input ? input->size() : page.codes.size());
  size_t k = 0;
  if (input != nullptr) {
    if (valid == nullptr) {
      for (uint32_t i : *input) {
        out[k] = i;
        k += static_cast<size_t>(m[codes[i]]);
      }
    } else {
      for (uint32_t i : *input) {
        out[k] = i;
        k += static_cast<size_t>(m[codes[i]] & valid[i]);
      }
    }
  } else {
    const uint32_t n = static_cast<uint32_t>(page.codes.size());
    if (valid == nullptr) {
      for (uint32_t i = 0; i < n; ++i) {
        out[k] = i;
        k += static_cast<size_t>(m[codes[i]]);
      }
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        out[k] = i;
        k += static_cast<size_t>(m[codes[i]] & valid[i]);
      }
    }
  }
  out.resize(k);
  return out;
}

columnar::ColumnPtr MaterializeDictionary(const DictionaryPage& page) {
  const size_t n = page.num_rows();
  auto col = MakeColumn(TypeKind::kString);
  std::vector<int32_t>& off = col->mutable_offsets();
  off.resize(n + 1);
  off[0] = 0;
  std::string& chars = col->mutable_chars();
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    if (page.validity.empty() || page.validity[i] != 0) {
      total += page.values[page.codes[i]].size();
    }
  }
  chars.reserve(total);
  int32_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    if (page.validity.empty() || page.validity[i] != 0) {
      const std::string& v = page.values[page.codes[i]];
      chars.append(v);
      pos += static_cast<int32_t>(v.size());
    }
    off[i + 1] = pos;
  }
  if (page.null_count > 0) col->mutable_validity() = page.validity;
  col->FinishDeserialized(n, page.null_count);
  return col;
}

columnar::ColumnPtr MaterializeDictionarySelected(
    const DictionaryPage& page, const columnar::SelectionVector& sel) {
  const size_t n = page.num_rows();
  auto col = MakeColumn(TypeKind::kString);
  std::vector<int32_t>& off = col->mutable_offsets();
  off.resize(n + 1);
  off[0] = 0;
  std::string& chars = col->mutable_chars();
  size_t s = 0;
  int32_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    if (s < sel.size() && sel[s] == i) {
      ++s;
      if (page.validity.empty() || page.validity[i] != 0) {
        const std::string& v = page.values[page.codes[i]];
        chars.append(v);
        pos += static_cast<int32_t>(v.size());
      }
    }
    off[i + 1] = pos;
  }
  if (page.null_count > 0) col->mutable_validity() = page.validity;
  col->FinishDeserialized(n, page.null_count);
  return col;
}

Result<ColumnPtr> DecodePage(ByteSpan payload, const columnar::Field& field,
                             size_t expected_rows) {
  BufferReader in(payload);
  POCS_ASSIGN_OR_RETURN(uint8_t enc, in.ReadU8());
  if (enc == static_cast<uint8_t>(PageEncoding::kPlain)) {
    POCS_ASSIGN_OR_RETURN(ByteSpan ipc, in.ReadSpan(in.remaining()));
    POCS_ASSIGN_OR_RETURN(columnar::RecordBatchPtr batch,
                          columnar::ipc::DeserializeBatch(ipc));
    if (batch->num_columns() != 1 || batch->num_rows() != expected_rows) {
      return Status::Corruption("page: plain shape mismatch");
    }
    if (batch->column(0)->type() != field.type) {
      return Status::Corruption("page: plain type mismatch");
    }
    return batch->column(0);
  }
  POCS_ASSIGN_OR_RETURN(std::optional<DictionaryPage> page,
                        DecodeDictionaryPage(payload, field, expected_rows));
  if (!page) return Status::Corruption("page: unknown encoding");
  return MaterializeDictionary(*page);
}

}  // namespace pocs::format
