#include "format/encoding.h"

#include <map>

#include "columnar/ipc.h"

namespace pocs::format {

using columnar::Column;
using columnar::ColumnPtr;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::TypeKind;

std::optional<Bytes> DictionaryEncodeString(const Column& col) {
  if (col.type() != TypeKind::kString) return std::nullopt;
  // Build the dictionary (insertion order = code order).
  std::map<std::string_view, uint8_t> dict;
  std::vector<std::string_view> values;
  for (size_t i = 0; i < col.length(); ++i) {
    if (col.IsNull(i)) continue;
    std::string_view v = col.GetString(i);
    if (dict.contains(v)) continue;
    if (values.size() >= 255) return std::nullopt;  // too many distincts
    dict.emplace(v, static_cast<uint8_t>(values.size()));
    values.push_back(v);
  }
  BufferWriter out(col.length() + 64);
  out.WriteU8(static_cast<uint8_t>(PageEncoding::kDictionary));
  out.WriteVarint(values.size());
  for (std::string_view v : values) out.WriteString(v);
  out.WriteVarint(col.length());
  out.WriteVarint(col.null_count());
  if (col.null_count() > 0) {
    out.WriteBytes(col.validity().data(), col.validity().size());
  }
  for (size_t i = 0; i < col.length(); ++i) {
    out.WriteU8(col.IsNull(i) ? 0 : dict.at(col.GetString(i)));
  }
  return std::move(out).Take();
}

Bytes EncodePage(const Column& col, const columnar::Field& field) {
  // Plain form: IPC batch of the single column.
  auto field_schema = columnar::MakeSchema({field});
  auto shared = std::make_shared<Column>(col);
  Bytes ipc = columnar::ipc::SerializeBatch(
      *MakeBatch(field_schema, {std::move(shared)}));
  BufferWriter plain(ipc.size() + 1);
  plain.WriteU8(static_cast<uint8_t>(PageEncoding::kPlain));
  plain.WriteBytes(ipc.data(), ipc.size());
  Bytes plain_bytes = std::move(plain).Take();

  if (auto dictionary = DictionaryEncodeString(col);
      dictionary && dictionary->size() < plain_bytes.size()) {
    return std::move(*dictionary);
  }
  return plain_bytes;
}

Result<ColumnPtr> DecodePage(ByteSpan payload, const columnar::Field& field,
                             size_t expected_rows) {
  BufferReader in(payload);
  POCS_ASSIGN_OR_RETURN(uint8_t enc, in.ReadU8());
  if (enc == static_cast<uint8_t>(PageEncoding::kPlain)) {
    POCS_ASSIGN_OR_RETURN(ByteSpan ipc, in.ReadSpan(in.remaining()));
    POCS_ASSIGN_OR_RETURN(columnar::RecordBatchPtr batch,
                          columnar::ipc::DeserializeBatch(ipc));
    if (batch->num_columns() != 1 || batch->num_rows() != expected_rows) {
      return Status::Corruption("page: plain shape mismatch");
    }
    if (batch->column(0)->type() != field.type) {
      return Status::Corruption("page: plain type mismatch");
    }
    return batch->column(0);
  }
  if (enc != static_cast<uint8_t>(PageEncoding::kDictionary)) {
    return Status::Corruption("page: unknown encoding");
  }
  if (field.type != TypeKind::kString) {
    return Status::Corruption("page: dictionary on non-string column");
  }
  POCS_ASSIGN_OR_RETURN(uint64_t n_dict, in.ReadVarint());
  if (n_dict > 255) return Status::Corruption("page: dictionary too large");
  std::vector<std::string> dict;
  dict.reserve(n_dict);
  for (uint64_t i = 0; i < n_dict; ++i) {
    POCS_ASSIGN_OR_RETURN(std::string v, in.ReadString());
    dict.push_back(std::move(v));
  }
  POCS_ASSIGN_OR_RETURN(uint64_t n_rows, in.ReadVarint());
  if (n_rows != expected_rows) {
    return Status::Corruption("page: dictionary row count mismatch");
  }
  POCS_ASSIGN_OR_RETURN(uint64_t null_count, in.ReadVarint());
  std::vector<uint8_t> validity;
  if (null_count > 0) {
    if (null_count > n_rows) return Status::Corruption("page: bad nulls");
    validity.resize(n_rows);
    POCS_RETURN_NOT_OK(in.ReadBytes(validity.data(), n_rows));
  }
  auto col = MakeColumn(TypeKind::kString);
  col->Reserve(n_rows);
  for (uint64_t i = 0; i < n_rows; ++i) {
    POCS_ASSIGN_OR_RETURN(uint8_t code, in.ReadU8());
    if (!validity.empty() && validity[i] == 0) {
      col->AppendNull();
      continue;
    }
    if (code >= dict.size()) {
      return Status::Corruption("page: dictionary code out of range");
    }
    col->AppendString(dict[code]);
  }
  if (!in.exhausted()) return Status::Corruption("page: trailing bytes");
  return ColumnPtr(col);
}

}  // namespace pocs::format
