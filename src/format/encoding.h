// Data-page encodings for Parquet-lite chunks. Mirrors Parquet's two
// workhorse encodings:
//   kPlain      — the column's IPC serialization as-is;
//   kDictionary — low-cardinality string columns stored as a distinct-
//                 value dictionary plus one code byte per row (chosen
//                 automatically when it is smaller).
// The encoding byte leads the (pre-compression) chunk payload, so codecs
// compress the encoded form — dictionary + codec compose, as in Parquet.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "columnar/column.h"
#include "columnar/kernels.h"
#include "common/buffer.h"

namespace pocs::format {

enum class PageEncoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
};

// A dictionary page decoded to its encoded (pre-materialization) form:
// the distinct values plus one code byte per row. Predicates over the
// column can be translated into the code domain — evaluated once per
// distinct value instead of once per row — and rows filtered on the raw
// code array, so only surviving rows ever materialize string bytes
// (late materialization, DESIGN.md §15).
struct DictionaryPage {
  std::vector<std::string> values;  // distinct values, code order
  std::vector<uint8_t> codes;       // one per row (0 on null rows)
  std::vector<uint8_t> validity;    // empty = all valid
  size_t null_count = 0;
  size_t num_rows() const { return codes.size(); }
};

// Decode a page produced by EncodePage into its dictionary form, or
// nullopt when the page is plain-encoded (caller falls back to
// DecodePage). Codes of non-null rows are validated against the
// dictionary size.
Result<std::optional<DictionaryPage>> DecodeDictionaryPage(
    ByteSpan payload, const columnar::Field& field, size_t expected_rows);

// Translate `value <op> literal` into the code domain: one compare per
// distinct value. The returned table has 256 entries so a code byte can
// index it unchecked; entries past the dictionary are zero. A NULL
// literal matches nothing (all zeros).
std::vector<uint8_t> TranslateDictPredicate(const DictionaryPage& page,
                                            columnar::CompareOp op,
                                            const columnar::Datum& literal);

// Rows (restricted to `input` if non-null) whose code passes the match
// table. Null rows never match.
columnar::SelectionVector FilterDictCodes(
    const DictionaryPage& page, const std::vector<uint8_t>& match,
    const columnar::SelectionVector* input = nullptr);

// Materialize the full string column; bit-identical to DecodePage over
// the same page bytes.
columnar::ColumnPtr MaterializeDictionary(const DictionaryPage& page);

// Late materialization: only rows in `sel` (ascending) get their real
// string bytes; all other rows decode to empty placeholders. Validity is
// preserved verbatim, so null semantics are unchanged. Callers must
// attach `sel` to any batch built from the result — placeholder rows
// carry no data and may only be observed under an intersecting selection.
columnar::ColumnPtr MaterializeDictionarySelected(
    const DictionaryPage& page, const columnar::SelectionVector& sel);

// Encode a single-column page: picks the smaller of plain and (for
// eligible string columns) dictionary encoding. The returned buffer is
// self-describing (leading encoding byte).
Bytes EncodePage(const columnar::Column& col,
                 const columnar::Field& field);

// Decode a page produced by EncodePage.
Result<columnar::ColumnPtr> DecodePage(ByteSpan payload,
                                       const columnar::Field& field,
                                       size_t expected_rows);

// Exposed for tests: dictionary-encode a string column, or nullopt when
// ineligible (non-string, >255 distinct values).
std::optional<Bytes> DictionaryEncodeString(const columnar::Column& col);

}  // namespace pocs::format
