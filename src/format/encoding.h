// Data-page encodings for Parquet-lite chunks. Mirrors Parquet's two
// workhorse encodings:
//   kPlain      — the column's IPC serialization as-is;
//   kDictionary — low-cardinality string columns stored as a distinct-
//                 value dictionary plus one code byte per row (chosen
//                 automatically when it is smaller).
// The encoding byte leads the (pre-compression) chunk payload, so codecs
// compress the encoded form — dictionary + codec compose, as in Parquet.
#pragma once

#include <optional>

#include "columnar/column.h"
#include "common/buffer.h"

namespace pocs::format {

enum class PageEncoding : uint8_t {
  kPlain = 0,
  kDictionary = 1,
};

// Encode a single-column page: picks the smaller of plain and (for
// eligible string columns) dictionary encoding. The returned buffer is
// self-describing (leading encoding byte).
Bytes EncodePage(const columnar::Column& col,
                 const columnar::Field& field);

// Decode a page produced by EncodePage.
Result<columnar::ColumnPtr> DecodePage(ByteSpan payload,
                                       const columnar::Field& field,
                                       size_t expected_rows);

// Exposed for tests: dictionary-encode a string column, or nullopt when
// ineligible (non-string, >255 distinct values).
std::optional<Bytes> DictionaryEncodeString(const columnar::Column& col);

}  // namespace pocs::format
