// Column statistics collected at write time and stored in chunk metadata
// and the metastore. The Presto-OCS connector's Selectivity Analyzer (§4
// of the paper) consumes exactly these: min/max for range-filter
// selectivity, NDV for aggregation cardinality, row count for reduction
// ratios.
#pragma once

#include <unordered_set>

#include "columnar/column.h"
#include "columnar/ipc.h"
#include "columnar/types.h"
#include "common/buffer.h"

namespace pocs::format {

struct ColumnStats {
  columnar::Datum min;   // null datum when no non-null values seen
  columnar::Datum max;
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  uint64_t ndv = 0;          // estimated; exact below kNdvCap distincts
  bool ndv_capped = false;   // true if the distinct tracker overflowed

  void Merge(const ColumnStats& other);

  void Serialize(BufferWriter* out) const;
  static Result<ColumnStats> Deserialize(BufferReader* in);
};

// Accumulates stats over appended columns. Tracks exact distinct values up
// to a cap (kNdvCap); past the cap NDV saturates and is flagged — the
// selectivity estimator treats a capped NDV as "high cardinality", which
// is the conservative direction for pushdown decisions.
class StatsCollector {
 public:
  static constexpr size_t kNdvCap = 1 << 16;

  explicit StatsCollector(columnar::TypeKind type) : type_(type) {
    stats_.min = columnar::Datum::Null(type);
    stats_.max = columnar::Datum::Null(type);
  }

  void Update(const columnar::Column& col);
  const ColumnStats& stats() const { return stats_; }

 private:
  columnar::TypeKind type_;
  ColumnStats stats_;
  std::unordered_set<uint64_t> distinct_;  // value hashes
};

}  // namespace pocs::format
