#include "format/parquet_lite.h"

#include "columnar/ipc.h"
#include "common/check.h"
#include "format/encoding.h"

namespace pocs::format {

using columnar::Column;
using columnar::ColumnPtr;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::RecordBatch;
using columnar::RecordBatchPtr;
using columnar::SchemaPtr;

FileWriter::FileWriter(SchemaPtr schema, WriterOptions options)
    : schema_(std::move(schema)), options_(options) {
  out_.WriteLE<uint32_t>(kParquetLiteMagic);
  meta_.schema = schema_;
  meta_.codec = options_.codec;
  for (size_t c = 0; c < schema_->num_fields(); ++c) {
    pending_.push_back(MakeColumn(schema_->field(c).type));
    file_stats_.emplace_back(schema_->field(c).type);
  }
}

Status FileWriter::WriteBatch(const RecordBatch& batch) {
  if (finished_) return Status::Internal("writer already finished");
  if (!batch.schema()->Equals(*schema_)) {
    return Status::InvalidArgument("batch schema does not match file schema");
  }
  POCS_RETURN_NOT_OK(batch.Validate());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    const Column& src = *batch.column(c);
    for (size_t i = 0; i < src.length(); ++i) pending_[c]->AppendFrom(src, i);
  }
  pending_rows_ += batch.num_rows();
  while (pending_rows_ >= options_.rows_per_group) {
    POCS_RETURN_NOT_OK(FlushGroup());
  }
  return Status::OK();
}

Status FileWriter::FlushGroup() {
  const size_t take = std::min(pending_rows_, options_.rows_per_group);
  if (take == 0) return Status::OK();

  RowGroupMeta group;
  group.num_rows = take;
  const auto& codec = compress::GetCodec(options_.codec);

  std::vector<std::shared_ptr<Column>> rest;
  for (size_t c = 0; c < pending_.size(); ++c) {
    // Split pending column into [0, take) and the remainder.
    auto& col = pending_[c];
    std::shared_ptr<Column> head, tail;
    if (col->length() == take) {
      head = col;
      tail = MakeColumn(schema_->field(c).type);
    } else {
      head = MakeColumn(schema_->field(c).type);
      tail = MakeColumn(schema_->field(c).type);
      for (size_t i = 0; i < take; ++i) head->AppendFrom(*col, i);
      for (size_t i = take; i < col->length(); ++i) tail->AppendFrom(*col, i);
    }
    rest.push_back(tail);

    StatsCollector chunk_stats(schema_->field(c).type);
    chunk_stats.Update(*head);
    file_stats_[c].Update(*head);

    Bytes payload = EncodePage(*head, schema_->field(c));
    Bytes compressed =
        codec.Compress(ByteSpan(payload.data(), payload.size()));

    ChunkMeta chunk;
    chunk.offset = out_.size();
    chunk.length = compressed.size();
    chunk.stats = chunk_stats.stats();
    out_.WriteBytes(compressed.data(), compressed.size());
    group.chunks.push_back(std::move(chunk));
  }
  pending_ = std::move(rest);
  pending_rows_ -= take;
  meta_.num_rows += take;
  meta_.row_groups.push_back(std::move(group));
  return Status::OK();
}

Result<Bytes> FileWriter::Finish() {
  if (finished_) return Status::Internal("writer already finished");
  while (pending_rows_ > 0) POCS_RETURN_NOT_OK(FlushGroup());
  finished_ = true;

  for (auto& collector : file_stats_) {
    meta_.column_stats.push_back(collector.stats());
  }

  const size_t footer_start = out_.size();
  columnar::ipc::WriteSchema(*schema_, &out_);
  out_.WriteU8(static_cast<uint8_t>(options_.codec));
  out_.WriteVarint(meta_.num_rows);
  out_.WriteVarint(meta_.row_groups.size());
  for (const RowGroupMeta& g : meta_.row_groups) {
    out_.WriteVarint(g.num_rows);
    for (const ChunkMeta& chunk : g.chunks) {
      out_.WriteVarint(chunk.offset);
      out_.WriteVarint(chunk.length);
      chunk.stats.Serialize(&out_);
    }
  }
  for (const ColumnStats& s : meta_.column_stats) s.Serialize(&out_);
  out_.WriteLE<uint32_t>(static_cast<uint32_t>(out_.size() - footer_start));
  out_.WriteLE<uint32_t>(kParquetLiteMagic);
  return std::move(out_).Take();
}

Result<FileMeta> ReadFooter(ByteSpan file) {
  if (file.size() < 16) return Status::Corruption("parquet-lite: too short");
  uint32_t head_magic, tail_magic, footer_len;
  std::memcpy(&head_magic, file.data(), 4);
  std::memcpy(&tail_magic, file.data() + file.size() - 4, 4);
  std::memcpy(&footer_len, file.data() + file.size() - 8, 4);
  if (head_magic != kParquetLiteMagic || tail_magic != kParquetLiteMagic) {
    return Status::Corruption("parquet-lite: bad magic");
  }
  // footer_len is attacker-controlled; the widened compare avoids the
  // uint32 overflow a crafted footer_len near UINT32_MAX would cause.
  if (uint64_t{footer_len} + 8 > file.size()) {
    return Status::Corruption("parquet-lite: bad footer length");
  }
  BufferReader in(file.subspan(file.size() - 8 - footer_len, footer_len));

  FileMeta meta;
  POCS_ASSIGN_OR_RETURN(meta.schema, columnar::ipc::ReadSchema(&in));
  POCS_ASSIGN_OR_RETURN(uint8_t codec, in.ReadU8());
  if (codec > static_cast<uint8_t>(compress::CodecType::kZsLite)) {
    return Status::Corruption("parquet-lite: unknown codec");
  }
  meta.codec = static_cast<compress::CodecType>(codec);
  POCS_ASSIGN_OR_RETURN(meta.num_rows, in.ReadVarint());
  POCS_ASSIGN_OR_RETURN(uint64_t n_groups, in.ReadVarint());
  for (uint64_t g = 0; g < n_groups; ++g) {
    RowGroupMeta group;
    POCS_ASSIGN_OR_RETURN(group.num_rows, in.ReadVarint());
    for (size_t c = 0; c < meta.schema->num_fields(); ++c) {
      ChunkMeta chunk;
      POCS_ASSIGN_OR_RETURN(chunk.offset, in.ReadVarint());
      POCS_ASSIGN_OR_RETURN(chunk.length, in.ReadVarint());
      // Overflow-safe bounds check on untrusted offsets.
      if (chunk.offset > file.size() ||
          chunk.length > file.size() - chunk.offset) {
        return Status::Corruption("parquet-lite: chunk out of bounds");
      }
      POCS_ASSIGN_OR_RETURN(chunk.stats, ColumnStats::Deserialize(&in));
      group.chunks.push_back(std::move(chunk));
    }
    meta.row_groups.push_back(std::move(group));
  }
  for (size_t c = 0; c < meta.schema->num_fields(); ++c) {
    POCS_ASSIGN_OR_RETURN(ColumnStats s, ColumnStats::Deserialize(&in));
    meta.column_stats.push_back(std::move(s));
  }
  return meta;
}

Result<std::shared_ptr<FileReader>> FileReader::Open(Bytes file) {
  POCS_ASSIGN_OR_RETURN(FileMeta meta,
                        ReadFooter(ByteSpan(file.data(), file.size())));
  // Private constructor (callers must go through Open), so make_shared
  // is unavailable.
  // NOLINTNEXTLINE(cppcoreguidelines-owning-memory) pocs-lint: allow(naked-new)
  auto* reader = new FileReader(std::move(file), std::move(meta));
  return std::shared_ptr<FileReader>(reader);
}

Result<RecordBatchPtr> FileReader::ReadRowGroup(
    size_t group, const std::vector<int>& column_indices) const {
  if (group >= meta_.row_groups.size()) {
    return Status::OutOfRange("row group " + std::to_string(group));
  }
  std::vector<int> cols = column_indices;
  if (cols.empty()) {
    for (size_t c = 0; c < meta_.schema->num_fields(); ++c) {
      cols.push_back(static_cast<int>(c));
    }
  }
  const RowGroupMeta& g = meta_.row_groups[group];
  const auto& codec = compress::GetCodec(meta_.codec);

  std::vector<columnar::Field> fields;
  std::vector<ColumnPtr> columns;
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= meta_.schema->num_fields()) {
      return Status::InvalidArgument("bad column index");
    }
    // ReadFooter guarantees one chunk per schema field per row group and
    // validated each chunk's byte range against the file.
    POCS_DCHECK_LT(static_cast<size_t>(c), g.chunks.size());
    const ChunkMeta& chunk = g.chunks[c];
    POCS_DCHECK_LE(chunk.offset + chunk.length, file_.size());
    ByteSpan raw(file_.data() + chunk.offset, chunk.length);
    POCS_ASSIGN_OR_RETURN(Bytes payload, codec.Decompress(raw));
    POCS_ASSIGN_OR_RETURN(
        ColumnPtr column,
        DecodePage(ByteSpan(payload.data(), payload.size()),
                   meta_.schema->field(c), g.num_rows));
    fields.push_back(meta_.schema->field(c));
    columns.push_back(std::move(column));
  }
  return MakeBatch(columnar::MakeSchema(std::move(fields)),
                   std::move(columns));
}

Result<std::shared_ptr<columnar::Table>> FileReader::ReadAll(
    const std::vector<int>& column_indices) const {
  std::shared_ptr<columnar::Table> table;
  for (size_t g = 0; g < meta_.row_groups.size(); ++g) {
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr batch,
                          ReadRowGroup(g, column_indices));
    if (!table) table = std::make_shared<columnar::Table>(batch->schema());
    table->AppendBatch(std::move(batch));
  }
  if (!table) {
    // Zero row groups: project the schema for an empty table.
    std::vector<columnar::Field> fields;
    if (column_indices.empty()) {
      fields = meta_.schema->fields();
    } else {
      for (int c : column_indices) fields.push_back(meta_.schema->field(c));
    }
    table = std::make_shared<columnar::Table>(
        columnar::MakeSchema(std::move(fields)));
  }
  return table;
}

Result<Bytes> FileReader::ReadChunkPage(size_t group, int column) const {
  if (group >= meta_.row_groups.size()) {
    return Status::OutOfRange("row group " + std::to_string(group));
  }
  if (column < 0 ||
      static_cast<size_t>(column) >= meta_.schema->num_fields()) {
    return Status::InvalidArgument("bad column index");
  }
  const RowGroupMeta& g = meta_.row_groups[group];
  POCS_DCHECK_LT(static_cast<size_t>(column), g.chunks.size());
  const ChunkMeta& chunk = g.chunks[column];
  POCS_DCHECK_LE(chunk.offset + chunk.length, file_.size());
  ByteSpan raw(file_.data() + chunk.offset, chunk.length);
  return compress::GetCodec(meta_.codec).Decompress(raw);
}

uint64_t FileReader::ChunkBytes(size_t group,
                                const std::vector<int>& columns) const {
  if (group >= meta_.row_groups.size()) return 0;
  const RowGroupMeta& g = meta_.row_groups[group];
  uint64_t total = 0;
  if (columns.empty()) {
    for (const ChunkMeta& chunk : g.chunks) total += chunk.length;
  } else {
    for (int c : columns) {
      if (c >= 0 && static_cast<size_t>(c) < g.chunks.size()) {
        total += g.chunks[c].length;
      }
    }
  }
  return total;
}

}  // namespace pocs::format
