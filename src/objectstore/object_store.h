// In-memory bucket/object store — the S3/MinIO stand-in. Flat
// bucket/key namespace, whole-object and range GETs, immutable objects
// (PUT replaces). Data lives on the storage node that owns the store;
// remote access goes through the RPC service in service.h.
//
// Every successful Put stamps the object with a store-wide monotonic
// version number — the etag equivalent that the decoded row-group and
// split-result caches key on. An overwrite gets a fresh version, so
// cache entries keyed on the old one can never be served again
// (DESIGN.md §10).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pocs::objectstore {

using ObjectData = std::shared_ptr<const Bytes>;

// An object's bytes together with the version its Put assigned.
struct VersionedObject {
  ObjectData data;
  uint64_t version = 0;
};

// Metadata-only view (the HEAD-request equivalent): lets cache validation
// check freshness without moving object bytes.
struct ObjectStat {
  uint64_t size = 0;
  uint64_t version = 0;
};

class ObjectStore {
 public:
  Status CreateBucket(const std::string& bucket);
  Status DeleteBucket(const std::string& bucket);  // must be empty
  bool HasBucket(const std::string& bucket) const;

  Status Put(const std::string& bucket, const std::string& key, Bytes data);
  Status Delete(const std::string& bucket, const std::string& key);

  Result<ObjectData> Get(const std::string& bucket,
                         const std::string& key) const;
  Result<VersionedObject> GetVersioned(const std::string& bucket,
                                       const std::string& key) const;
  Result<Bytes> GetRange(const std::string& bucket, const std::string& key,
                         uint64_t offset, uint64_t length) const;
  Result<uint64_t> Size(const std::string& bucket,
                        const std::string& key) const;
  Result<ObjectStat> Stat(const std::string& bucket,
                          const std::string& key) const;

  // Keys in `bucket` starting with `prefix`, sorted.
  Result<std::vector<std::string>> List(const std::string& bucket,
                                        const std::string& prefix = "") const;

  uint64_t TotalBytes() const;
  size_t ObjectCount() const;

 private:
  struct Stored {
    ObjectData data;
    uint64_t version = 0;
  };

  Result<Stored> Find(const std::string& bucket, const std::string& key) const;

  mutable Mutex mu_;
  std::map<std::string, std::map<std::string, Stored>> buckets_
      POCS_GUARDED_BY(mu_);
  // Bumped by every successful Put.
  uint64_t next_version_ POCS_GUARDED_BY(mu_) = 0;
};

}  // namespace pocs::objectstore
