// The S3-Select / MinIO-Select stand-in: storage-side evaluation of
// WHERE-clause filters and column projection over a single Parquet-lite
// object, with results returned in a ROW-ORIENTED CSV text format.
//
// The operator restriction (filter + projection only, nothing else) and
// the row-format results are the two properties of S3 Select the paper's
// baseline comparison hinges on (§2.2): aggregation/top-N cannot run
// here, and results lose columnar-format efficiency. We intentionally
// reproduce both. Unlike real S3 Select we do support float64 — the
// paper notes S3 Select's lack of doubles as a flaw, not a feature.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "columnar/kernels.h"
#include "columnar/types.h"
#include "format/parquet_lite.h"
#include "objectstore/object_store.h"

namespace pocs::objectstore {

struct SelectPredicate {
  std::string column;
  columnar::CompareOp op;
  columnar::Datum literal;
};

struct SelectRequest {
  std::string bucket;
  std::string key;
  // Projected column names; empty selects all columns.
  std::vector<std::string> columns;
  // Conjunctive (AND) predicates.
  std::vector<SelectPredicate> predicates;
};

struct SelectStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  uint64_t groups_total = 0;
  uint64_t groups_skipped = 0;  // pruned by chunk min/max statistics
  uint64_t object_bytes_read = 0;
};

struct SelectResponse {
  std::string csv;  // header line + one line per row
  SelectStats stats;
};

// Execute a select against the local store. Row groups whose chunk
// statistics prove no predicate match are skipped without decoding.
Result<SelectResponse> ExecuteSelect(const ObjectStore& store,
                                     const SelectRequest& request);

// Parse a CSV result (as produced above) back into a record batch, given
// the expected schema of the projected columns. Used by the compute-side
// Hive connector to turn row-format results back into pages.
Result<columnar::RecordBatchPtr> ParseSelectCsv(
    const std::string& csv, const columnar::SchemaPtr& schema);

// True if chunk statistics cannot rule out rows matching `pred`.
bool ChunkMayMatch(const format::ColumnStats& stats,
                   const SelectPredicate& pred);

}  // namespace pocs::objectstore
