#include "objectstore/service.h"

#include "columnar/ipc.h"

namespace pocs::objectstore {

void EncodeSelectRequest(const SelectRequest& request, BufferWriter* out) {
  out->WriteString(request.bucket);
  out->WriteString(request.key);
  out->WriteVarint(request.columns.size());
  for (const std::string& c : request.columns) out->WriteString(c);
  out->WriteVarint(request.predicates.size());
  for (const SelectPredicate& p : request.predicates) {
    out->WriteString(p.column);
    out->WriteU8(static_cast<uint8_t>(p.op));
    columnar::ipc::WriteDatum(p.literal, out);
  }
}

Result<SelectRequest> DecodeSelectRequest(BufferReader* in) {
  SelectRequest request;
  POCS_ASSIGN_OR_RETURN(request.bucket, in->ReadString());
  POCS_ASSIGN_OR_RETURN(request.key, in->ReadString());
  POCS_ASSIGN_OR_RETURN(uint64_t n_cols, in->ReadVarint());
  for (uint64_t i = 0; i < n_cols; ++i) {
    POCS_ASSIGN_OR_RETURN(std::string c, in->ReadString());
    request.columns.push_back(std::move(c));
  }
  POCS_ASSIGN_OR_RETURN(uint64_t n_preds, in->ReadVarint());
  for (uint64_t i = 0; i < n_preds; ++i) {
    SelectPredicate p;
    POCS_ASSIGN_OR_RETURN(p.column, in->ReadString());
    POCS_ASSIGN_OR_RETURN(uint8_t op, in->ReadU8());
    if (op > static_cast<uint8_t>(columnar::CompareOp::kGe)) {
      return Status::Corruption("select: bad compare op");
    }
    p.op = static_cast<columnar::CompareOp>(op);
    POCS_ASSIGN_OR_RETURN(p.literal, columnar::ipc::ReadDatum(in));
    request.predicates.push_back(std::move(p));
  }
  return request;
}

namespace {

void EncodeSelectStats(const SelectStats& stats, BufferWriter* out) {
  out->WriteVarint(stats.rows_scanned);
  out->WriteVarint(stats.rows_returned);
  out->WriteVarint(stats.groups_total);
  out->WriteVarint(stats.groups_skipped);
  out->WriteVarint(stats.object_bytes_read);
}

Result<SelectStats> DecodeSelectStats(BufferReader* in) {
  SelectStats stats;
  POCS_ASSIGN_OR_RETURN(stats.rows_scanned, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(stats.rows_returned, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(stats.groups_total, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(stats.groups_skipped, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(stats.object_bytes_read, in->ReadVarint());
  return stats;
}

}  // namespace

void RegisterStorageService(const std::shared_ptr<ObjectStore>& store,
                            rpc::Server* server) {
  server->RegisterMethod("Get", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    POCS_ASSIGN_OR_RETURN(ObjectData data, store->Get(bucket, key));
    return *data;  // copy: the response crosses the "network"
  });

  server->RegisterMethod("GetRange", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    POCS_ASSIGN_OR_RETURN(uint64_t offset, in.ReadVarint());
    POCS_ASSIGN_OR_RETURN(uint64_t length, in.ReadVarint());
    return store->GetRange(bucket, key, offset, length);
  });

  server->RegisterMethod("Size", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    POCS_ASSIGN_OR_RETURN(uint64_t size, store->Size(bucket, key));
    BufferWriter out;
    out.WriteVarint(size);
    return std::move(out).Take();
  });

  server->RegisterMethod("Stat", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    POCS_ASSIGN_OR_RETURN(ObjectStat stat, store->Stat(bucket, key));
    BufferWriter out;
    out.WriteVarint(stat.size);
    out.WriteVarint(stat.version);
    return std::move(out).Take();
  });

  server->RegisterMethod("DescribeObject",
                         [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    POCS_ASSIGN_OR_RETURN(ObjectDescriptor desc,
                          BuildObjectDescriptor(*store, bucket, key));
    BufferWriter out;
    EncodeObjectDescriptor(desc, &out);
    return std::move(out).Take();
  });

  server->RegisterMethod("List", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string prefix, in.ReadString());
    POCS_ASSIGN_OR_RETURN(auto keys, store->List(bucket, prefix));
    BufferWriter out;
    out.WriteVarint(keys.size());
    for (const std::string& k : keys) out.WriteString(k);
    return std::move(out).Take();
  });

  server->RegisterMethod("Put", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(std::string bucket, in.ReadString());
    POCS_ASSIGN_OR_RETURN(std::string key, in.ReadString());
    POCS_ASSIGN_OR_RETURN(uint64_t n, in.ReadVarint());
    POCS_ASSIGN_OR_RETURN(ByteSpan data, in.ReadSpan(n));
    if (!store->HasBucket(bucket)) {
      // Auto-create: mirrors permissive dev-mode object stores.
      POCS_RETURN_NOT_OK(store->CreateBucket(bucket));
    }
    POCS_RETURN_NOT_OK(store->Put(bucket, key, Bytes(data.begin(), data.end())));
    return Bytes{};
  });

  server->RegisterMethod("Select", [store](ByteSpan req) -> Result<Bytes> {
    BufferReader in(req);
    POCS_ASSIGN_OR_RETURN(SelectRequest request, DecodeSelectRequest(&in));
    POCS_ASSIGN_OR_RETURN(SelectResponse response,
                          ExecuteSelect(*store, request));
    BufferWriter out;
    EncodeSelectStats(response.stats, &out);
    out.WriteString(response.csv);
    return std::move(out).Take();
  });
}

namespace {

void FillInfo(const rpc::CallResult& call, TransferInfo* info) {
  if (!info) return;
  info->bytes_sent += call.request_bytes;
  info->bytes_received += call.response_bytes;
  info->retries += call.retries;
  info->transfer_seconds += call.transfer_seconds;
}

}  // namespace

Result<Bytes> StorageClient::Get(const std::string& bucket,
                                 const std::string& key, TransferInfo* info,
                                 const rpc::CallOptions& options) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(key);
  rpc::CallResult call;
  Status status = channel_.CallInto("Get", req.span(), options, &call);
  FillInfo(call, info);  // lost attempts still cost modelled time
  POCS_RETURN_NOT_OK(status);
  return std::move(call.response);
}

Result<Bytes> StorageClient::GetRange(const std::string& bucket,
                                      const std::string& key, uint64_t offset,
                                      uint64_t length, TransferInfo* info,
                                      const rpc::CallOptions& options) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(key);
  req.WriteVarint(offset);
  req.WriteVarint(length);
  rpc::CallResult call;
  Status status = channel_.CallInto("GetRange", req.span(), options, &call);
  FillInfo(call, info);
  POCS_RETURN_NOT_OK(status);
  return std::move(call.response);
}

Result<ObjectStat> StorageClient::Stat(const std::string& bucket,
                                       const std::string& key,
                                       TransferInfo* info,
                                       const rpc::CallOptions& options) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(key);
  rpc::CallResult call;
  Status status = channel_.CallInto("Stat", req.span(), options, &call);
  FillInfo(call, info);
  POCS_RETURN_NOT_OK(status);
  BufferReader in(call.response.data(), call.response.size());
  ObjectStat stat;
  POCS_ASSIGN_OR_RETURN(stat.size, in.ReadVarint());
  POCS_ASSIGN_OR_RETURN(stat.version, in.ReadVarint());
  return stat;
}

Result<ObjectDescriptor> StorageClient::DescribeObject(
    const std::string& bucket, const std::string& key, TransferInfo* info,
    const rpc::CallOptions& options) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(key);
  rpc::CallResult call;
  Status status = channel_.CallInto("DescribeObject", req.span(), options,
                                    &call);
  FillInfo(call, info);
  POCS_RETURN_NOT_OK(status);
  BufferReader in(call.response.data(), call.response.size());
  return DecodeObjectDescriptor(&in);
}

Result<uint64_t> StorageClient::Size(const std::string& bucket,
                                     const std::string& key) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(key);
  POCS_ASSIGN_OR_RETURN(rpc::CallResult call, channel_.Call("Size", req.span()));
  BufferReader in(call.response.data(), call.response.size());
  return in.ReadVarint();
}

Result<std::vector<std::string>> StorageClient::List(
    const std::string& bucket, const std::string& prefix) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(prefix);
  POCS_ASSIGN_OR_RETURN(rpc::CallResult call, channel_.Call("List", req.span()));
  BufferReader in(call.response.data(), call.response.size());
  POCS_ASSIGN_OR_RETURN(uint64_t n, in.ReadVarint());
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < n; ++i) {
    POCS_ASSIGN_OR_RETURN(std::string k, in.ReadString());
    keys.push_back(std::move(k));
  }
  return keys;
}

Status StorageClient::Put(const std::string& bucket, const std::string& key,
                          ByteSpan data) const {
  BufferWriter req;
  req.WriteString(bucket);
  req.WriteString(key);
  req.WriteVarint(data.size());
  req.WriteBytes(data);
  POCS_ASSIGN_OR_RETURN(rpc::CallResult call, channel_.Call("Put", req.span()));
  (void)call;
  return Status::OK();
}

Result<SelectResponse> StorageClient::Select(
    const SelectRequest& request, TransferInfo* info,
    const rpc::CallOptions& options) const {
  BufferWriter req;
  EncodeSelectRequest(request, &req);
  rpc::CallResult call;
  Status status = channel_.CallInto("Select", req.span(), options, &call);
  FillInfo(call, info);
  POCS_RETURN_NOT_OK(status);
  BufferReader in(call.response.data(), call.response.size());
  SelectResponse response;
  POCS_ASSIGN_OR_RETURN(response.stats, DecodeSelectStats(&in));
  POCS_ASSIGN_OR_RETURN(response.csv, in.ReadString());
  return response;
}

}  // namespace pocs::objectstore
