#include "objectstore/object_store.h"

namespace pocs::objectstore {

Status ObjectStore::CreateBucket(const std::string& bucket) {
  MutexLock lock(mu_);
  if (buckets_.contains(bucket)) {
    return Status::AlreadyExists("bucket " + bucket);
  }
  buckets_[bucket];
  return Status::OK();
}

Status ObjectStore::DeleteBucket(const std::string& bucket) {
  MutexLock lock(mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return Status::NotFound("bucket " + bucket);
  if (!it->second.empty()) {
    return Status::InvalidArgument("bucket " + bucket + " not empty");
  }
  buckets_.erase(it);
  return Status::OK();
}

bool ObjectStore::HasBucket(const std::string& bucket) const {
  MutexLock lock(mu_);
  return buckets_.contains(bucket);
}

Status ObjectStore::Put(const std::string& bucket, const std::string& key,
                        Bytes data) {
  MutexLock lock(mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return Status::NotFound("bucket " + bucket);
  // Overwrites get a fresh version: stale cache entries keyed on the old
  // one become unreachable (served never, evicted eventually).
  it->second[key] =
      Stored{std::make_shared<const Bytes>(std::move(data)), ++next_version_};
  return Status::OK();
}

Status ObjectStore::Delete(const std::string& bucket, const std::string& key) {
  MutexLock lock(mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end()) return Status::NotFound("bucket " + bucket);
  if (it->second.erase(key) == 0) {
    return Status::NotFound("object " + bucket + "/" + key);
  }
  return Status::OK();
}

Result<ObjectStore::Stored> ObjectStore::Find(const std::string& bucket,
                                              const std::string& key) const {
  MutexLock lock(mu_);
  auto bit = buckets_.find(bucket);
  if (bit == buckets_.end()) return Status::NotFound("bucket " + bucket);
  auto oit = bit->second.find(key);
  if (oit == bit->second.end()) {
    return Status::NotFound("object " + bucket + "/" + key);
  }
  return oit->second;
}

Result<ObjectData> ObjectStore::Get(const std::string& bucket,
                                    const std::string& key) const {
  POCS_ASSIGN_OR_RETURN(Stored stored, Find(bucket, key));
  return std::move(stored.data);
}

Result<VersionedObject> ObjectStore::GetVersioned(const std::string& bucket,
                                                  const std::string& key) const {
  POCS_ASSIGN_OR_RETURN(Stored stored, Find(bucket, key));
  return VersionedObject{std::move(stored.data), stored.version};
}

Result<Bytes> ObjectStore::GetRange(const std::string& bucket,
                                    const std::string& key, uint64_t offset,
                                    uint64_t length) const {
  POCS_ASSIGN_OR_RETURN(ObjectData data, Get(bucket, key));
  if (offset > data->size() || offset + length > data->size()) {
    return Status::OutOfRange("range [" + std::to_string(offset) + ", +" +
                              std::to_string(length) + ") beyond object of " +
                              std::to_string(data->size()) + " bytes");
  }
  return Bytes(data->begin() + offset, data->begin() + offset + length);
}

Result<uint64_t> ObjectStore::Size(const std::string& bucket,
                                   const std::string& key) const {
  POCS_ASSIGN_OR_RETURN(ObjectData data, Get(bucket, key));
  return data->size();
}

Result<ObjectStat> ObjectStore::Stat(const std::string& bucket,
                                     const std::string& key) const {
  POCS_ASSIGN_OR_RETURN(Stored stored, Find(bucket, key));
  return ObjectStat{stored.data->size(), stored.version};
}

Result<std::vector<std::string>> ObjectStore::List(
    const std::string& bucket, const std::string& prefix) const {
  MutexLock lock(mu_);
  auto bit = buckets_.find(bucket);
  if (bit == buckets_.end()) return Status::NotFound("bucket " + bucket);
  std::vector<std::string> keys;
  for (const auto& [key, stored] : bit->second) {
    if (key.starts_with(prefix)) keys.push_back(key);
  }
  return keys;
}

uint64_t ObjectStore::TotalBytes() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [bucket, objects] : buckets_) {
    for (const auto& [key, stored] : objects) total += stored.data->size();
  }
  return total;
}

size_t ObjectStore::ObjectCount() const {
  MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [bucket, objects] : buckets_) n += objects.size();
  return n;
}

}  // namespace pocs::objectstore
