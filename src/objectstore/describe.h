// Object statistics descriptor — the DescribeObject RPC payload.
//
// A descriptor is the planner-facing view of one Parquet-lite object:
// its version (for cache invalidation), row counts, and the per-column
// min/max/NDV statistics the writer already persists in the footer, at
// both file and row-group granularity. The coordinator's metadata cache
// stores these so split planning can prune objects and row groups with
// zero data RPCs (DESIGN.md §13); the descriptor deliberately carries
// no chunk offsets or object bytes — it is metadata only, and its wire
// size is a small constant per column per group.
#pragma once

#include <string>
#include <vector>

#include "format/stats.h"
#include "objectstore/object_store.h"

namespace pocs::objectstore {

struct RowGroupStats {
  uint64_t num_rows = 0;
  std::vector<format::ColumnStats> column_stats;  // one per schema field
};

struct ObjectDescriptor {
  uint64_t version = 0;  // ObjectStore version at Describe time
  uint64_t size = 0;     // object bytes (as Stat would report)
  uint64_t num_rows = 0;
  std::vector<std::string> columns;               // schema field names
  std::vector<format::ColumnStats> column_stats;  // file-level, per field
  std::vector<RowGroupStats> row_groups;

  // Approximate in-memory footprint, for LRU byte budgeting.
  size_t ByteSize() const;
};

// Builds a descriptor by reading the object's footer from the local
// store. Fails with the store's error if the object is missing, or
// Corruption if it is not a Parquet-lite file.
Result<ObjectDescriptor> BuildObjectDescriptor(const ObjectStore& store,
                                               const std::string& bucket,
                                               const std::string& key);

// Wire helpers shared with tests.
void EncodeObjectDescriptor(const ObjectDescriptor& desc, BufferWriter* out);
Result<ObjectDescriptor> DecodeObjectDescriptor(BufferReader* in);

}  // namespace pocs::objectstore
