// RPC binding for the object store: server-side method registration and a
// typed client. This is how compute-side connectors talk to remote
// storage — every byte of every response is charged to the simulated
// network by the underlying rpc::Channel.
#pragma once

#include <memory>

#include "objectstore/describe.h"
#include "objectstore/object_store.h"
#include "objectstore/select.h"
#include "rpc/rpc.h"

namespace pocs::objectstore {

// Registers Get/GetRange/Size/Stat/List/Put/Select methods on `server`,
// backed by `store` (which must outlive the server).
void RegisterStorageService(const std::shared_ptr<ObjectStore>& store,
                            rpc::Server* server);

// Typed client over an rpc::Channel. Each call reports the bytes moved
// and modelled transfer time via the returned TransferInfo.
struct TransferInfo {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t retries = 0;  // rpc attempts beyond the first
  double transfer_seconds = 0;
};

class StorageClient {
 public:
  explicit StorageClient(rpc::Channel channel) : channel_(std::move(channel)) {}

  // Data-path methods take per-call rpc options (retry budget, deadline);
  // the defaults preserve single-attempt behaviour. On failure, `info`
  // still accumulates the modelled cost of the lost attempts.
  Result<Bytes> Get(const std::string& bucket, const std::string& key,
                    TransferInfo* info = nullptr,
                    const rpc::CallOptions& options = {}) const;
  Result<Bytes> GetRange(const std::string& bucket, const std::string& key,
                         uint64_t offset, uint64_t length,
                         TransferInfo* info = nullptr,
                         const rpc::CallOptions& options = {}) const;
  Result<uint64_t> Size(const std::string& bucket,
                        const std::string& key) const;
  // Metadata-only freshness probe (HEAD): size + version, no data bytes.
  // Cache validation rides on this, so it takes the data-path call
  // options and charges its (tiny) transfer like any other call.
  Result<ObjectStat> Stat(const std::string& bucket, const std::string& key,
                          TransferInfo* info = nullptr,
                          const rpc::CallOptions& options = {}) const;
  // Per-object statistics descriptor (footer min/max/NDV at file and
  // row-group granularity, plus the version). Metadata-only like Stat:
  // split planners feed their metadata cache from this and never touch
  // data-path Get* during planning (DESIGN.md §13).
  Result<ObjectDescriptor> DescribeObject(
      const std::string& bucket, const std::string& key,
      TransferInfo* info = nullptr,
      const rpc::CallOptions& options = {}) const;
  Result<std::vector<std::string>> List(const std::string& bucket,
                                        const std::string& prefix = "") const;
  Status Put(const std::string& bucket, const std::string& key,
             ByteSpan data) const;
  Result<SelectResponse> Select(const SelectRequest& request,
                                TransferInfo* info = nullptr,
                                const rpc::CallOptions& options = {}) const;

 private:
  rpc::Channel channel_;
};

// Wire helpers shared with tests.
void EncodeSelectRequest(const SelectRequest& request, BufferWriter* out);
Result<SelectRequest> DecodeSelectRequest(BufferReader* in);

}  // namespace pocs::objectstore
