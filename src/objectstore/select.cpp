#include "objectstore/select.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/metrics.h"

namespace pocs::objectstore {

using columnar::Column;
using columnar::CompareOp;
using columnar::Datum;
using columnar::RecordBatchPtr;
using columnar::SelectionVector;
using columnar::TypeKind;

bool ChunkMayMatch(const format::ColumnStats& stats,
                   const SelectPredicate& pred) {
  // No stats or all-null chunk: only a match if op could match... a null
  // never matches a comparison, so an all-null chunk can be skipped.
  if (stats.min.is_null() || stats.max.is_null()) return false;
  const Datum& lit = pred.literal;
  if (lit.is_null()) return false;
  switch (pred.op) {
    case CompareOp::kEq:
      return stats.min.Compare(lit) <= 0 && stats.max.Compare(lit) >= 0;
    case CompareOp::kNe:
      // Only prunable when min == max == literal.
      return !(stats.min.Compare(lit) == 0 && stats.max.Compare(lit) == 0);
    case CompareOp::kLt: return stats.min.Compare(lit) < 0;
    case CompareOp::kLe: return stats.min.Compare(lit) <= 0;
    case CompareOp::kGt: return stats.max.Compare(lit) > 0;
    case CompareOp::kGe: return stats.max.Compare(lit) >= 0;
  }
  return true;
}

namespace {

void AppendCell(const Column& col, size_t row, std::string* out) {
  if (col.IsNull(row)) return;  // empty cell encodes NULL
  char buf[40];
  switch (col.type()) {
    case TypeKind::kBool:
      out->append(col.GetBool(row) ? "true" : "false");
      break;
    case TypeKind::kInt32:
    case TypeKind::kDate32:
      std::snprintf(buf, sizeof(buf), "%d", col.GetInt32(row));
      out->append(buf);
      break;
    case TypeKind::kInt64:
      std::snprintf(buf, sizeof(buf), "%" PRId64, col.GetInt64(row));
      out->append(buf);
      break;
    case TypeKind::kFloat64:
      // %.17g preserves the value exactly through the text roundtrip.
      std::snprintf(buf, sizeof(buf), "%.17g", col.GetFloat64(row));
      out->append(buf);
      break;
    case TypeKind::kString:
      out->append(col.GetString(row));  // values in this repo are CSV-safe
      break;
  }
}

Status AppendParsedCell(std::string_view cell, Column* col) {
  if (cell.empty()) {
    col->AppendNull();
    return Status::OK();
  }
  switch (col->type()) {
    case TypeKind::kBool:
      col->AppendBool(cell == "true");
      return Status::OK();
    case TypeKind::kInt32:
    case TypeKind::kDate32: {
      int32_t v;
      auto [p, ec] = std::from_chars(cell.begin(), cell.end(), v);
      if (ec != std::errc() || p != cell.end()) {
        return Status::Corruption("csv: bad int32 '" + std::string(cell) + "'");
      }
      col->AppendInt32(v);
      return Status::OK();
    }
    case TypeKind::kInt64: {
      int64_t v;
      auto [p, ec] = std::from_chars(cell.begin(), cell.end(), v);
      if (ec != std::errc() || p != cell.end()) {
        return Status::Corruption("csv: bad int64 '" + std::string(cell) + "'");
      }
      col->AppendInt64(v);
      return Status::OK();
    }
    case TypeKind::kFloat64: {
      // std::from_chars<double> is available with GCC >= 11.
      double v;
      auto [p, ec] = std::from_chars(cell.begin(), cell.end(), v);
      if (ec != std::errc() || p != cell.end()) {
        return Status::Corruption("csv: bad float '" + std::string(cell) + "'");
      }
      col->AppendFloat64(v);
      return Status::OK();
    }
    case TypeKind::kString:
      col->AppendString(cell);
      return Status::OK();
  }
  return Status::Internal("csv: unreachable");
}

}  // namespace

Result<SelectResponse> ExecuteSelect(const ObjectStore& store,
                                     const SelectRequest& request) {
  POCS_ASSIGN_OR_RETURN(ObjectData object,
                        store.Get(request.bucket, request.key));
  POCS_ASSIGN_OR_RETURN(auto reader, format::FileReader::Open(*object));
  const auto& schema = reader->schema();

  // Resolve projected columns (empty = all).
  std::vector<int> proj;
  if (request.columns.empty()) {
    for (size_t c = 0; c < schema->num_fields(); ++c) {
      proj.push_back(static_cast<int>(c));
    }
  } else {
    for (const std::string& name : request.columns) {
      int idx = schema->FieldIndex(name);
      if (idx < 0) return Status::InvalidArgument("no column " + name);
      proj.push_back(idx);
    }
  }
  // Resolve predicate columns.
  std::vector<int> pred_cols;
  for (const SelectPredicate& pred : request.predicates) {
    int idx = schema->FieldIndex(pred.column);
    if (idx < 0) return Status::InvalidArgument("no column " + pred.column);
    pred_cols.push_back(idx);
  }
  // Columns that must be decoded: projection ∪ predicates.
  std::vector<int> read_cols = proj;
  for (int c : pred_cols) {
    if (std::find(read_cols.begin(), read_cols.end(), c) == read_cols.end()) {
      read_cols.push_back(c);
    }
  }

  SelectResponse response;
  response.stats.groups_total = reader->num_row_groups();

  // Header line.
  for (size_t i = 0; i < proj.size(); ++i) {
    if (i) response.csv += ',';
    response.csv += schema->field(proj[i]).name;
  }
  response.csv += '\n';

  for (size_t g = 0; g < reader->num_row_groups(); ++g) {
    // Statistics-based pruning before any decoding.
    bool may_match = true;
    for (size_t p = 0; p < request.predicates.size(); ++p) {
      const auto& stats = reader->meta().row_groups[g].chunks[pred_cols[p]].stats;
      if (!ChunkMayMatch(stats, request.predicates[p])) {
        may_match = false;
        break;
      }
    }
    if (!may_match) {
      ++response.stats.groups_skipped;
      continue;
    }
    response.stats.object_bytes_read += reader->ChunkBytes(g, read_cols);
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr batch, reader->ReadRowGroup(g, read_cols));
    response.stats.rows_scanned += batch->num_rows();

    // Conjunctive predicate evaluation via chained selection vectors.
    SelectionVector sel;
    bool have_sel = false;
    for (const SelectPredicate& pred : request.predicates) {
      auto col = batch->ColumnByName(pred.column);
      sel = CompareScalar(*col, pred.op, pred.literal,
                          have_sel ? &sel : nullptr);
      have_sel = true;
      if (sel.empty()) break;
    }
    if (!have_sel) {
      sel.resize(batch->num_rows());
      for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    }
    response.stats.rows_returned += sel.size();

    // Emit projected cells in row order.
    std::vector<const Column*> out_cols;
    for (int c : proj) {
      out_cols.push_back(batch->ColumnByName(schema->field(c).name).get());
    }
    for (uint32_t row : sel) {
      for (size_t i = 0; i < out_cols.size(); ++i) {
        if (i) response.csv += ',';
        AppendCell(*out_cols[i], row, &response.csv);
      }
      response.csv += '\n';
    }
  }

  {
    auto& reg = metrics::Registry::Default();
    static auto& requests = reg.GetCounter("select.requests");
    static auto& rows_scanned = reg.GetCounter("select.rows_scanned");
    static auto& rows_returned = reg.GetCounter("select.rows_returned");
    static auto& skipped = reg.GetCounter("select.row_groups_skipped");
    static auto& media = reg.GetCounter("select.object_bytes_read");
    requests.Increment();
    rows_scanned.Add(response.stats.rows_scanned);
    rows_returned.Add(response.stats.rows_returned);
    skipped.Add(response.stats.groups_skipped);
    media.Add(response.stats.object_bytes_read);
  }
  return response;
}

Result<RecordBatchPtr> ParseSelectCsv(const std::string& csv,
                                      const columnar::SchemaPtr& schema) {
  std::vector<std::shared_ptr<Column>> cols;
  for (size_t c = 0; c < schema->num_fields(); ++c) {
    cols.push_back(columnar::MakeColumn(schema->field(c).type));
  }
  size_t pos = csv.find('\n');
  if (pos == std::string::npos) return Status::Corruption("csv: no header");
  // Header sanity: column count must match.
  {
    std::string_view header(csv.data(), pos);
    size_t commas = std::count(header.begin(), header.end(), ',');
    if (!header.empty() && commas + 1 != schema->num_fields()) {
      return Status::Corruption("csv: header column count mismatch");
    }
  }
  ++pos;
  while (pos < csv.size()) {
    size_t eol = csv.find('\n', pos);
    if (eol == std::string::npos) eol = csv.size();
    std::string_view line(csv.data() + pos, eol - pos);
    size_t field_start = 0;
    for (size_t c = 0; c < schema->num_fields(); ++c) {
      size_t comma = (c + 1 < schema->num_fields())
                         ? line.find(',', field_start)
                         : line.size();
      if (comma == std::string_view::npos) {
        return Status::Corruption("csv: short row");
      }
      POCS_RETURN_NOT_OK(AppendParsedCell(
          line.substr(field_start, comma - field_start), cols[c].get()));
      field_start = comma + 1;
    }
    pos = eol + 1;
  }
  std::vector<columnar::ColumnPtr> const_cols(cols.begin(), cols.end());
  return columnar::MakeBatch(schema, std::move(const_cols));
}

}  // namespace pocs::objectstore
