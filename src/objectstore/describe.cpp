#include "objectstore/describe.h"

#include "format/parquet_lite.h"

namespace pocs::objectstore {

namespace {

// Flat per-stats charge covering the Datum pair, counters, and vector
// bookkeeping. Stats are fixed-size for the numeric types the workloads
// use; an exact accounting is not worth chasing for an LRU budget.
constexpr size_t kStatsCharge = 96;

}  // namespace

size_t ObjectDescriptor::ByteSize() const {
  size_t bytes = sizeof(ObjectDescriptor);
  for (const std::string& c : columns) bytes += c.size() + sizeof(std::string);
  bytes += column_stats.size() * kStatsCharge;
  for (const RowGroupStats& g : row_groups) {
    bytes += sizeof(RowGroupStats) + g.column_stats.size() * kStatsCharge;
  }
  return bytes;
}

Result<ObjectDescriptor> BuildObjectDescriptor(const ObjectStore& store,
                                               const std::string& bucket,
                                               const std::string& key) {
  POCS_ASSIGN_OR_RETURN(VersionedObject object,
                        store.GetVersioned(bucket, key));
  POCS_ASSIGN_OR_RETURN(
      format::FileMeta meta,
      format::ReadFooter(ByteSpan(object.data->data(), object.data->size())));
  ObjectDescriptor desc;
  desc.version = object.version;
  desc.size = object.data->size();
  desc.num_rows = meta.num_rows;
  for (size_t i = 0; i < meta.schema->num_fields(); ++i) {
    desc.columns.push_back(meta.schema->field(i).name);
  }
  desc.column_stats = meta.column_stats;
  for (const format::RowGroupMeta& group : meta.row_groups) {
    RowGroupStats stats;
    stats.num_rows = group.num_rows;
    for (const format::ChunkMeta& chunk : group.chunks) {
      stats.column_stats.push_back(chunk.stats);
    }
    desc.row_groups.push_back(std::move(stats));
  }
  return desc;
}

void EncodeObjectDescriptor(const ObjectDescriptor& desc, BufferWriter* out) {
  out->WriteVarint(desc.version);
  out->WriteVarint(desc.size);
  out->WriteVarint(desc.num_rows);
  out->WriteVarint(desc.columns.size());
  for (const std::string& c : desc.columns) out->WriteString(c);
  out->WriteVarint(desc.column_stats.size());
  for (const format::ColumnStats& s : desc.column_stats) s.Serialize(out);
  out->WriteVarint(desc.row_groups.size());
  for (const RowGroupStats& g : desc.row_groups) {
    out->WriteVarint(g.num_rows);
    out->WriteVarint(g.column_stats.size());
    for (const format::ColumnStats& s : g.column_stats) s.Serialize(out);
  }
}

Result<ObjectDescriptor> DecodeObjectDescriptor(BufferReader* in) {
  ObjectDescriptor desc;
  POCS_ASSIGN_OR_RETURN(desc.version, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(desc.size, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(desc.num_rows, in->ReadVarint());
  POCS_ASSIGN_OR_RETURN(uint64_t n_cols, in->ReadVarint());
  for (uint64_t i = 0; i < n_cols; ++i) {
    POCS_ASSIGN_OR_RETURN(std::string c, in->ReadString());
    desc.columns.push_back(std::move(c));
  }
  POCS_ASSIGN_OR_RETURN(uint64_t n_stats, in->ReadVarint());
  for (uint64_t i = 0; i < n_stats; ++i) {
    POCS_ASSIGN_OR_RETURN(format::ColumnStats s,
                          format::ColumnStats::Deserialize(in));
    desc.column_stats.push_back(std::move(s));
  }
  POCS_ASSIGN_OR_RETURN(uint64_t n_groups, in->ReadVarint());
  for (uint64_t i = 0; i < n_groups; ++i) {
    RowGroupStats group;
    POCS_ASSIGN_OR_RETURN(group.num_rows, in->ReadVarint());
    POCS_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
    for (uint64_t j = 0; j < n; ++j) {
      POCS_ASSIGN_OR_RETURN(format::ColumnStats s,
                            format::ColumnStats::Deserialize(in));
      group.column_stats.push_back(std::move(s));
    }
    desc.row_groups.push_back(std::move(group));
  }
  return desc;
}

}  // namespace pocs::objectstore
