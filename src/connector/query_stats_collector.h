// EventListener that aggregates QueryStats across queries — the
// engine-side sink behind the paper's "Pushdown Monitoring" telemetry.
// Totals are kept overall and per connector id, and every completion is
// mirrored into the process metrics registry, so bench reports and
// dashboards see engine-level counters without touching the engine.
//
// Thread-safe: QueryCompleted may fire from any thread.
#pragma once

#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "connector/spi.h"

namespace pocs::connector {

class QueryStatsCollector final : public EventListener {
 public:
  struct Totals {
    uint64_t queries = 0;
    uint64_t result_rows = 0;
    uint64_t rows_scanned = 0;
    uint64_t rows_returned = 0;
    uint64_t bytes_from_storage = 0;
    uint64_t bytes_to_storage = 0;
    uint64_t splits = 0;
    uint64_t splits_planned = 0;
    uint64_t splits_pruned = 0;
    uint64_t metadata_cache_hits = 0;
    uint64_t metadata_cache_misses = 0;
    uint64_t metadata_cache_stale = 0;
    uint64_t metadata_cache_errors = 0;
    uint64_t row_groups_total = 0;
    uint64_t row_groups_skipped = 0;
    uint64_t pushdown_offered = 0;
    uint64_t pushdown_accepted = 0;
    uint64_t pushdown_rejected = 0;
    uint64_t retries = 0;
    uint64_t fallbacks = 0;
    uint64_t failed_splits = 0;
    uint64_t row_groups_lazy_skipped = 0;
    uint64_t row_groups_hint_skipped = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_bytes_saved = 0;
    uint64_t bytes_refetched_on_retry = 0;
    uint64_t partial_agg_accepted = 0;
    uint64_t partial_agg_rejected = 0;
    uint64_t bloom_pushed = 0;
    uint64_t bloom_rows_pruned = 0;
    uint64_t partial_agg_merges = 0;
    uint64_t rows_dict_filtered = 0;
    uint64_t rows_late_materialized = 0;
    double wall_seconds = 0;
    double simulated_seconds = 0;
    double queue_wait_seconds = 0;  // admission-queue wait, summed

    uint64_t bytes_moved() const {
      return bytes_from_storage + bytes_to_storage;
    }
    double pushdown_accept_rate() const {
      return pushdown_offered == 0
                 ? 0.0
                 : static_cast<double>(pushdown_accepted) /
                       static_cast<double>(pushdown_offered);
    }
  };

  void QueryCompleted(const QueryEvent& event) override;

  Totals totals() const;
  // Totals restricted to one connector/catalog id (zero if never seen).
  Totals TotalsFor(const std::string& connector_id) const;
  // Stats of the most recent completion (default-constructed if none).
  QueryStats last() const;

 private:
  static void Accumulate(const QueryEvent& event, Totals* t);

  mutable Mutex mu_;
  Totals totals_ POCS_GUARDED_BY(mu_);
  std::map<std::string, Totals> by_connector_ POCS_GUARDED_BY(mu_);
  QueryStats last_ POCS_GUARDED_BY(mu_);
};

}  // namespace pocs::connector
