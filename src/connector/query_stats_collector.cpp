#include "connector/query_stats_collector.h"

#include "common/metrics.h"

namespace pocs::connector {

void QueryStatsCollector::Accumulate(const QueryEvent& event, Totals* t) {
  const QueryStats& s = event.stats;
  t->queries += 1;
  t->result_rows += s.result_rows;
  t->rows_scanned += s.rows_scanned;
  t->rows_returned += s.rows_returned;
  t->bytes_from_storage += s.bytes_from_storage;
  t->bytes_to_storage += s.bytes_to_storage;
  t->splits += s.splits;
  t->splits_planned += s.splits_planned;
  t->splits_pruned += s.splits_pruned;
  t->metadata_cache_hits += s.metadata_cache_hits;
  t->metadata_cache_misses += s.metadata_cache_misses;
  t->metadata_cache_stale += s.metadata_cache_stale;
  t->metadata_cache_errors += s.metadata_cache_errors;
  t->row_groups_total += s.row_groups_total;
  t->row_groups_skipped += s.row_groups_skipped;
  t->pushdown_offered += s.pushdown_offered;
  t->pushdown_accepted += s.pushdown_accepted;
  t->pushdown_rejected += s.pushdown_rejected;
  t->retries += s.retries;
  t->fallbacks += s.fallbacks;
  t->failed_splits += s.failed_splits;
  t->row_groups_lazy_skipped += s.row_groups_lazy_skipped;
  t->row_groups_hint_skipped += s.row_groups_hint_skipped;
  t->cache_hits += s.cache_hits;
  t->cache_misses += s.cache_misses;
  t->cache_bytes_saved += s.cache_bytes_saved;
  t->bytes_refetched_on_retry += s.bytes_refetched_on_retry;
  t->partial_agg_accepted += s.partial_agg_accepted;
  t->partial_agg_rejected += s.partial_agg_rejected;
  t->bloom_pushed += s.bloom_pushed;
  t->bloom_rows_pruned += s.bloom_rows_pruned;
  t->partial_agg_merges += s.partial_agg_merges;
  t->rows_dict_filtered += s.rows_dict_filtered;
  t->rows_late_materialized += s.rows_late_materialized;
  t->wall_seconds += s.wall_seconds;
  t->simulated_seconds += s.simulated_seconds;
  t->queue_wait_seconds += s.queue_wait_seconds;
}

void QueryStatsCollector::QueryCompleted(const QueryEvent& event) {
  {
    MutexLock lock(mu_);
    Accumulate(event, &totals_);
    Accumulate(event, &by_connector_[event.connector_id]);
    last_ = event.stats;
  }

  auto& registry = metrics::Registry::Default();
  static auto& queries = registry.GetCounter("engine.queries");
  static auto& rows_scanned = registry.GetCounter("engine.rows_scanned");
  static auto& rows_returned = registry.GetCounter("engine.rows_returned");
  static auto& bytes_from = registry.GetCounter("engine.bytes_from_storage");
  static auto& bytes_to = registry.GetCounter("engine.bytes_to_storage");
  static auto& accepted = registry.GetCounter("engine.pushdown_accepted");
  static auto& rejected = registry.GetCounter("engine.pushdown_rejected");
  static auto& splits_planned = registry.GetCounter("engine.splits_planned");
  static auto& splits_pruned = registry.GetCounter("engine.splits_pruned");
  static auto& retries = registry.GetCounter("engine.retries");
  static auto& fallbacks = registry.GetCounter("engine.fallbacks");
  static auto& failed_splits = registry.GetCounter("engine.failed_splits");
  static auto& cache_hits = registry.GetCounter("engine.cache_hits");
  static auto& cache_saved = registry.GetCounter("engine.cache_bytes_saved");
  static auto& refetched =
      registry.GetCounter("engine.bytes_refetched_on_retry");
  static auto& pagg_accepted = registry.GetCounter("engine.partial_agg_accepted");
  static auto& pagg_rejected = registry.GetCounter("engine.partial_agg_rejected");
  static auto& bloom_pushed = registry.GetCounter("engine.bloom_pushed");
  static auto& bloom_pruned = registry.GetCounter("engine.bloom_rows_pruned");
  static auto& pagg_merges = registry.GetCounter("engine.partial_agg_merges");
  static auto& dict_filtered =
      registry.GetCounter("engine.rows_dict_filtered");
  static auto& late_mat =
      registry.GetCounter("engine.rows_late_materialized");
  static auto& wall = registry.GetHistogram("engine.query_wall_seconds");
  queries.Increment();
  rows_scanned.Add(event.stats.rows_scanned);
  rows_returned.Add(event.stats.rows_returned);
  bytes_from.Add(event.stats.bytes_from_storage);
  bytes_to.Add(event.stats.bytes_to_storage);
  accepted.Add(event.stats.pushdown_accepted);
  rejected.Add(event.stats.pushdown_rejected);
  splits_planned.Add(event.stats.splits_planned);
  splits_pruned.Add(event.stats.splits_pruned);
  retries.Add(event.stats.retries);
  fallbacks.Add(event.stats.fallbacks);
  failed_splits.Add(event.stats.failed_splits);
  cache_hits.Add(event.stats.cache_hits);
  cache_saved.Add(event.stats.cache_bytes_saved);
  refetched.Add(event.stats.bytes_refetched_on_retry);
  pagg_accepted.Add(event.stats.partial_agg_accepted);
  pagg_rejected.Add(event.stats.partial_agg_rejected);
  bloom_pushed.Add(event.stats.bloom_pushed);
  bloom_pruned.Add(event.stats.bloom_rows_pruned);
  pagg_merges.Add(event.stats.partial_agg_merges);
  dict_filtered.Add(event.stats.rows_dict_filtered);
  late_mat.Add(event.stats.rows_late_materialized);
  wall.Record(event.stats.wall_seconds);
}

QueryStatsCollector::Totals QueryStatsCollector::totals() const {
  MutexLock lock(mu_);
  return totals_;
}

QueryStatsCollector::Totals QueryStatsCollector::TotalsFor(
    const std::string& connector_id) const {
  MutexLock lock(mu_);
  auto it = by_connector_.find(connector_id);
  return it == by_connector_.end() ? Totals{} : it->second;
}

QueryStats QueryStatsCollector::last() const {
  MutexLock lock(mu_);
  return last_;
}

}  // namespace pocs::connector
