#include "connector/spi.h"

namespace pocs::connector {

std::string_view PushedOperatorKindName(PushedOperator::Kind kind) {
  switch (kind) {
    case PushedOperator::Kind::kFilter: return "filter";
    case PushedOperator::Kind::kProject: return "project";
    case PushedOperator::Kind::kPartialAggregation: return "aggregation";
    case PushedOperator::Kind::kPartialTopN: return "topn";
    case PushedOperator::Kind::kPartialLimit: return "limit";
    case PushedOperator::Kind::kJoinKeyBloom: return "join_key_bloom";
  }
  return "?";
}

}  // namespace pocs::connector
