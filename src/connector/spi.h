// Connector Service Provider Interface — the engine-side contract every
// storage connector implements, mirroring the Presto SPI surfaces the
// paper builds on (§3.4): ConnectorMetadata (table handles), the split
// manager, the ConnectorPlanOptimizer hook (local optimizer), the
// PageSourceProvider, and the EventListener for pushdown monitoring.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "columnar/batch.h"
#include "metastore/metastore.h"
#include "substrait/expr.h"
#include "substrait/rel.h"

namespace pocs::connector {

// Resolved reference to a table inside a connector's catalog.
struct TableHandle {
  std::string connector_id;
  metastore::TableInfo info;
};

// Unit of parallel scan work: one data object of the table.
struct Split {
  std::string bucket;
  std::string object;
  // Storage node expected to serve this split (-1 = unknown). Filled by
  // connectors that resolve placement up front so the load-aware
  // dispatcher can shape per-node traffic; purely advisory.
  int node_hint = -1;
  // Row groups the planner's stats-based pruning kept (empty = no hint,
  // scan all). Advisory: storage honors the hint only when
  // `stats_version` still matches the object, so stale statistics can
  // cost performance but never rows (DESIGN.md §13).
  std::vector<uint32_t> row_groups;
  uint64_t stats_version = 0;  // object version the hint was computed from
  // Object version a pushed join-key bloom filter was pinned to at plan
  // time (0 = unknown). Storage applies the bloom only while the object
  // still has this version; see Rel::bloom_version (DESIGN.md §14).
  uint64_t bloom_version = 0;
};

// Split-planning outcome: the surviving splits plus the pruning and
// metadata-cache accounting the engine folds into QueryStats. Planned =
// pruned + surviving.
struct SplitPlan {
  std::vector<Split> splits;
  uint64_t splits_planned = 0;  // candidate splits before pruning
  uint64_t splits_pruned = 0;   // dropped with zero data RPCs issued
  // Metadata-cache outcomes during planning (one per candidate object
  // when pruning ran; all zero for connectors without a stats cache).
  uint64_t metadata_cache_hits = 0;    // cached + version-validated fresh
  uint64_t metadata_cache_misses = 0;  // not cached, fetched via stats RPC
  uint64_t metadata_cache_stale = 0;   // cached but version moved; refetched
  uint64_t metadata_cache_errors = 0;  // stats path failed; split unpruned
};

// One operator absorbed into the table scan by the local optimizer, in
// execution order. This is the "modified TableScan operator which
// encapsulates the pushdown operators" of §4.
struct PushedOperator {
  enum class Kind : uint8_t {
    kFilter,
    kProject,
    kPartialAggregation,  // grouped partial aggregation (merge at compute)
    kPartialTopN,         // per-split top-N candidates (merge at compute)
    kPartialLimit,        // per-split row cap (merge limit at compute)
    kJoinKeyBloom,        // semi-join bloom reduction on one scan column
  };
  Kind kind = Kind::kFilter;

  substrait::Expression predicate;  // kFilter

  std::vector<substrait::Expression> expressions;  // kProject
  std::vector<std::string> output_names;

  std::vector<int> group_keys;  // kPartialAggregation (input indices)
  std::vector<substrait::AggregateSpec> aggregates;  // already partial specs

  std::vector<substrait::SortField> sort_fields;  // kPartialTopN
  int64_t limit = -1;

  // kJoinKeyBloom: seeded bloom filter over the build side's join keys,
  // applied to scan-output column `bloom_column` (common::BloomFilter
  // wire state). `bloom_key_count` is the number of distinct build keys
  // (selectivity estimation only).
  std::vector<uint64_t> bloom_words;
  uint32_t bloom_hashes = 0;
  uint64_t bloom_seed = 0;
  int bloom_column = -1;
  uint64_t bloom_key_count = 0;
};

std::string_view PushedOperatorKindName(PushedOperator::Kind kind);

// Everything the page source must execute at (or near) storage for one
// scan: column pruning plus the absorbed operator pipeline.
struct ScanSpec {
  std::vector<int> columns;  // indices into the table schema; empty = all
  std::vector<PushedOperator> operators;
  // Column projection applied AFTER the pushed operators: indices into
  // the pushed pipeline's output that the residual plan actually needs.
  // Empty = all. This is how a filter-only pushdown avoids shipping the
  // predicate columns back (S3 Select's SELECT-list behaviour).
  std::vector<int> result_columns;
  // Schema of the pages the source returns (after pushed operators and
  // the result-column projection).
  columnar::SchemaPtr output_schema;

  bool HasOperator(PushedOperator::Kind kind) const {
    for (const auto& op : operators) {
      if (op.kind == kind) return true;
    }
    return false;
  }
};

// Per-source transfer/compute accounting the engine folds into the
// query's simulated timing (DESIGN.md §4).
struct PageSourceStats {
  uint64_t bytes_received = 0;        // data movement storage → compute
  uint64_t bytes_sent = 0;            // request/plan bytes compute → storage
  uint64_t rows_received = 0;
  uint64_t rows_scanned = 0;          // rows touched at/near storage
  uint64_t row_groups_total = 0;      // chunks considered by the scan
  uint64_t row_groups_skipped = 0;    // pruned via min/max statistics
  double transfer_seconds = 0;        // modelled network time
  double storage_compute_seconds = 0; // reported by storage, cpu-scaled
  double media_read_seconds = 0;      // modelled storage-media read time
  double ir_generation_seconds = 0;   // plan/SQL→IR translation (connector)
  double decode_seconds = 0;          // result → page conversion at compute

  // -- degradation accounting (fault-injection PR) --------------------------
  uint64_t dispatch_retries = 0;   // rpc attempts beyond the first
  uint64_t failed_dispatches = 0;  // pushdown dispatches that exhausted retries
  uint64_t fallbacks = 0;          // splits recovered via the engine-side scan

  // -- caching accounting (multi-level cache PR) -----------------------------
  // Row groups skipped by the lazy-column fast path (predicate columns
  // decoded first, conjuncts matched zero rows).
  uint64_t row_groups_lazy_skipped = 0;
  // Row groups storage skipped on the split's planner hint (stats-based
  // pruning at plan time; only applied when the hint version matched).
  uint64_t row_groups_hint_skipped = 0;
  // Hits/misses across both cache levels this split touched: the storage
  // node's decoded row-group cache and the connector's split-result cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Bytes a cache hit avoided moving: media bytes for row-group-cache
  // hits, network payload bytes for split-result-cache hits.
  uint64_t cache_bytes_saved = 0;
  // Payload bytes of data calls that only succeeded after at least one
  // retry — the re-sent traffic partial-result retention tries to shrink.
  uint64_t bytes_refetched_on_retry = 0;

  // -- pushdown accounting (join/partial-agg PR) ----------------------------
  // Rows the pushed join-key bloom filter dropped before they could cross
  // the network (storage-side scan or the engine-side fallback scan).
  uint64_t bloom_rows_pruned = 0;

  // -- vectorized-scan accounting (SIMD/late-materialization PR) ------------
  // Rows the storage scan rejected in the dictionary code domain — the
  // predicate ran against distinct values, never the row's string bytes.
  uint64_t rows_dict_filtered = 0;
  // Rows whose string values were decoded from a dictionary page under a
  // selection (only predicate/bloom survivors materialize).
  uint64_t rows_late_materialized = 0;
};

// Streams pages (record batches) for one split, with pushed operators
// already applied by whatever the connector talks to.
class PageSource {
 public:
  virtual ~PageSource() = default;
  virtual columnar::SchemaPtr schema() const = 0;
  // nullptr at end of stream.
  virtual Result<columnar::RecordBatchPtr> Next() = 0;
  virtual const PageSourceStats& stats() const = 0;
};

// What a connector is allowed to absorb into the scan. The engine's local
// optimizer pass asks before offering each node.
struct PushdownCapabilities {
  bool filter = false;
  bool projection = false;       // expression projection
  bool aggregation = false;
  bool topn = false;
  bool join_bloom = false;       // join-key bloom semi-join reduction
};

// Decision record for one offered operator (feeds the EventListener and
// the pushdown history; see §4 "Pushdown Monitoring").
struct PushdownDecision {
  PushedOperator::Kind kind;
  bool accepted = false;
  double estimated_selectivity = 1.0;  // estimated output/input ratio
  std::string reason;                  // human-readable justification
};

class Connector {
 public:
  virtual ~Connector() = default;
  virtual std::string id() const = 0;

  // -- ConnectorMetadata ----------------------------------------------------
  virtual Result<TableHandle> GetTableHandle(const std::string& schema_name,
                                             const std::string& table) = 0;

  // -- ConnectorSplitManager --------------------------------------------------
  // Runs after pushdown negotiation: `spec` carries the accepted
  // operators so connectors with object statistics can prune splits the
  // predicates prove empty before any data RPC is issued.
  virtual Result<SplitPlan> GetSplits(const TableHandle& table,
                                      const ScanSpec& spec) = 0;

  // -- ConnectorPlanOptimizer -------------------------------------------------
  // Operator pushdown is negotiated node by node: the engine walks the
  // plan bottom-up and offers each candidate; the connector accepts by
  // appending to the ScanSpec. `decisions` records accept/reject with the
  // estimated selectivity (monitoring).
  virtual PushdownCapabilities capabilities() const = 0;
  virtual Result<bool> OfferPushdown(const TableHandle& table,
                                     const PushedOperator& op,
                                     ScanSpec* spec,
                                     PushdownDecision* decision) = 0;

  // -- PageSourceProvider -----------------------------------------------------
  virtual Result<std::unique_ptr<PageSource>> CreatePageSource(
      const TableHandle& table, const Split& split, const ScanSpec& spec) = 0;
};

// One named stage or operator of a query with its timing and row flow
// (QueryStats::operator_timings). Stage names are stable identifiers:
// "parse", "plan_analysis", "ir_generation", "scan_transfer",
// "post_scan", plus "merge.<op>" for each merge-stage operator.
struct OperatorTiming {
  std::string name;
  double seconds = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

// Populated runtime statistics attached to every query-completion event —
// the counterpart of Presto's QueryStatistics, and the numbers behind the
// paper's Table 3 (stage breakdown) and Fig. 5 (bytes moved).
struct QueryStats {
  // Resource group the query ran under ("default" when admission is off)
  // and the admission-queue wait it paid before execution began.
  std::string tenant = "default";
  double queue_wait_seconds = 0;
  double wall_seconds = 0;       // measured coordinator wall time
  double simulated_seconds = 0;  // modelled end-to-end (DESIGN.md §4)
  uint64_t result_rows = 0;
  uint64_t rows_scanned = 0;     // touched at/near storage, all splits
  uint64_t rows_returned = 0;    // crossed storage → compute
  uint64_t bytes_from_storage = 0;
  uint64_t bytes_to_storage = 0;
  uint64_t splits = 0;
  // Split planning: candidates considered vs dropped by stats-based
  // pruning (splits = splits_planned - splits_pruned), and how the
  // planner's metadata cache fared (see SplitPlan).
  uint64_t splits_planned = 0;
  uint64_t splits_pruned = 0;
  uint64_t metadata_cache_hits = 0;
  uint64_t metadata_cache_misses = 0;
  uint64_t metadata_cache_stale = 0;
  uint64_t metadata_cache_errors = 0;
  uint64_t row_groups_total = 0;
  uint64_t row_groups_skipped = 0;
  uint64_t pushdown_offered = 0;
  uint64_t pushdown_accepted = 0;
  uint64_t pushdown_rejected = 0;
  // Degradation: how hard the query had to fight for its rows.
  uint64_t retries = 0;        // rpc attempts beyond the first, all splits
  uint64_t fallbacks = 0;      // splits recovered via the engine-side scan
  uint64_t failed_splits = 0;  // splits whose pushdown dispatch was rejected
  // Caching: multi-level cache effectiveness, summed across splits (see
  // PageSourceStats for the per-field definitions).
  uint64_t row_groups_lazy_skipped = 0;
  uint64_t row_groups_hint_skipped = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_bytes_saved = 0;
  uint64_t bytes_refetched_on_retry = 0;
  // Join/partial-aggregation pushdown (DESIGN.md §14): phase-split
  // aggregations offered to storage and how they fared, bloom semi-join
  // filters attached to pushed scans, rows those blooms dropped before
  // crossing the network, and engine-side merges of storage partials.
  uint64_t partial_agg_accepted = 0;
  uint64_t partial_agg_rejected = 0;
  uint64_t bloom_pushed = 0;
  uint64_t bloom_rows_pruned = 0;
  uint64_t partial_agg_merges = 0;
  // Vectorized-scan accounting (DESIGN.md §15), summed across splits:
  // rows rejected in the dictionary code domain, and rows whose string
  // values were late-materialized under a selection.
  uint64_t rows_dict_filtered = 0;
  uint64_t rows_late_materialized = 0;
  std::vector<OperatorTiming> operator_timings;

  uint64_t bytes_moved() const { return bytes_from_storage + bytes_to_storage; }
};

// Runtime query events (Presto's EventListener).
struct QueryEvent {
  std::string query_id;
  std::string connector_id;
  std::vector<PushdownDecision> decisions;
  QueryStats stats;
  // Legacy aliases of stats fields, kept for existing listeners.
  uint64_t bytes_from_storage = 0;
  uint64_t rows_from_storage = 0;
  double execution_seconds = 0;
};

class EventListener {
 public:
  virtual ~EventListener() = default;
  virtual void QueryCompleted(const QueryEvent& event) = 0;
};

}  // namespace pocs::connector
