#include "exec/hash_aggregator.h"

#include "columnar/kernels.h"
#include "substrait/eval.h"
#include "substrait/rel.h"

namespace pocs::exec {

using columnar::Column;
using columnar::ColumnPtr;
using columnar::Datum;
using columnar::Field;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::RecordBatch;
using columnar::RecordBatchPtr;
using columnar::TypeKind;
using substrait::AggFunc;
using substrait::AggregateSpec;

HashAggregator::HashAggregator(columnar::SchemaPtr input_schema,
                               std::vector<int> group_keys,
                               std::vector<AggregateSpec> aggregates)
    : input_schema_(std::move(input_schema)),
      group_keys_(std::move(group_keys)),
      aggregates_(std::move(aggregates)) {
  std::vector<Field> fields;
  for (int key : group_keys_) {
    fields.push_back(input_schema_->field(key));
    key_store_.push_back(MakeColumn(input_schema_->field(key).type));
  }
  for (const AggregateSpec& agg : aggregates_) {
    fields.push_back({agg.output_name, agg.OutputType()});
  }
  output_schema_ = MakeSchema(std::move(fields));
}

Result<uint32_t> HashAggregator::GroupFor(
    const std::vector<ColumnPtr>& keys, size_t row, uint64_t hash) {
  std::vector<uint32_t>& bucket = groups_[hash];
  for (uint32_t group : bucket) {
    bool equal = true;
    for (size_t k = 0; k < keys.size(); ++k) {
      const Column& stored = *key_store_[k];
      const Column& incoming = *keys[k];
      const bool sn = stored.IsNull(group);
      const bool in = incoming.IsNull(row);
      if (sn != in) {
        equal = false;
        break;
      }
      if (sn) continue;
      bool cell_equal = false;
      // Hash-collision key-equality probes compare one stored row against
      // one incoming row; there is no batch to vectorize over here.
      switch (stored.type()) {
        case TypeKind::kBool:
          // pocs-lint: allow(row-loop-in-hot-path)
          cell_equal = stored.GetBool(group) == incoming.GetBool(row);
          break;
        case TypeKind::kInt32:
        case TypeKind::kDate32:
          // pocs-lint: allow(row-loop-in-hot-path)
          cell_equal = stored.GetInt32(group) == incoming.GetInt32(row);
          break;
        case TypeKind::kInt64:
          // pocs-lint: allow(row-loop-in-hot-path)
          cell_equal = stored.GetInt64(group) == incoming.GetInt64(row);
          break;
        case TypeKind::kFloat64:
          // pocs-lint: allow(row-loop-in-hot-path)
          cell_equal = stored.GetFloat64(group) == incoming.GetFloat64(row);
          break;
        case TypeKind::kString:
          // pocs-lint: allow(row-loop-in-hot-path)
          cell_equal = stored.GetString(group) == incoming.GetString(row);
          break;
      }
      if (!cell_equal) {
        equal = false;
        break;
      }
    }
    if (equal) return group;
  }
  // New group.
  const uint32_t group = static_cast<uint32_t>(group_count_++);
  bucket.push_back(group);
  for (size_t k = 0; k < keys.size(); ++k) {
    key_store_[k]->AppendFrom(*keys[k], row);
  }
  states_.resize(group_count_ * aggregates_.size());
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    states_[group * aggregates_.size() + a].extreme =
        Datum::Null(aggregates_[a].func == AggFunc::kCountStar
                        ? TypeKind::kInt64
                        : aggregates_[a].argument.type);
  }
  return group;
}

Status HashAggregator::Consume(const RecordBatch& batch) {
  return Consume(batch, nullptr);
}

Status HashAggregator::Consume(const RecordBatch& batch,
                               const columnar::SelectionVector* sel) {
  if (finished_) return Status::Internal("aggregator already finished");
  const size_t n = batch.num_rows();
  if (n == 0 || (sel != nullptr && sel->empty())) return Status::OK();

  // Evaluate aggregate arguments once per batch (vectorized).
  std::vector<ColumnPtr> arg_cols(aggregates_.size());
  for (size_t a = 0; a < aggregates_.size(); ++a) {
    if (aggregates_[a].func == AggFunc::kCountStar) continue;
    POCS_ASSIGN_OR_RETURN(arg_cols[a],
                          substrait::Evaluate(aggregates_[a].argument, batch));
  }

  std::vector<ColumnPtr> keys;
  for (int k : group_keys_) keys.push_back(batch.column(k));
  std::vector<uint64_t> hashes;
  if (!keys.empty()) {
    columnar::HashRows(keys, &hashes);
  } else {
    hashes.assign(n, 0);  // global aggregate: single group
  }

  const size_t n_aggs = aggregates_.size();
  const size_t live = sel != nullptr ? sel->size() : n;
  for (size_t j = 0; j < live; ++j) {
    const size_t row = sel != nullptr ? (*sel)[j] : j;
    POCS_ASSIGN_OR_RETURN(uint32_t group, GroupFor(keys, row, hashes[row]));
    for (size_t a = 0; a < n_aggs; ++a) {
      AggState& state = states_[group * n_aggs + a];
      const AggregateSpec& agg = aggregates_[a];
      if (agg.func == AggFunc::kCountStar) {
        ++state.count;
        continue;
      }
      const Column& arg = *arg_cols[a];
      if (arg.IsNull(row)) continue;
      switch (agg.func) {
        case AggFunc::kCount:
          ++state.count;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          ++state.count;
          state.sum += arg.AsDouble(row);
          if (arg.type() != TypeKind::kFloat64) {
            state.isum += arg.GetDatum(row).AsInt64();
          }
          break;
        case AggFunc::kMin: {
          Datum v = arg.GetDatum(row);
          if (state.extreme.is_null() || v.Compare(state.extreme) < 0) {
            state.extreme = std::move(v);
          }
          break;
        }
        case AggFunc::kMax: {
          Datum v = arg.GetDatum(row);
          if (state.extreme.is_null() || v.Compare(state.extreme) > 0) {
            state.extreme = std::move(v);
          }
          break;
        }
        case AggFunc::kCountStar:
          break;  // handled above
      }
    }
  }
  return Status::OK();
}

Result<RecordBatchPtr> HashAggregator::Finish() {
  if (finished_) return Status::Internal("aggregator already finished");
  finished_ = true;

  // SQL semantics: a global aggregate (no GROUP BY) over zero rows still
  // produces one row.
  if (group_keys_.empty() && group_count_ == 0) {
    states_.resize(aggregates_.size());
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      states_[a].extreme = Datum::Null(
          aggregates_[a].func == AggFunc::kCountStar
              ? TypeKind::kInt64
              : aggregates_[a].argument.type);
    }
    group_count_ = 1;
  }

  std::vector<ColumnPtr> out;
  for (auto& key_col : key_store_) out.push_back(key_col);

  const size_t n_aggs = aggregates_.size();
  for (size_t a = 0; a < n_aggs; ++a) {
    const AggregateSpec& agg = aggregates_[a];
    auto col = MakeColumn(agg.OutputType());
    for (size_t g = 0; g < group_count_; ++g) {
      const AggState& state = states_[g * n_aggs + a];
      switch (agg.func) {
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          col->AppendInt64(state.count);
          break;
        case AggFunc::kSum:
          if (state.count == 0) {
            col->AppendNull();
          } else if (agg.OutputType() == TypeKind::kInt64) {
            col->AppendInt64(state.isum);
          } else {
            col->AppendFloat64(state.sum);
          }
          break;
        case AggFunc::kAvg:
          if (state.count == 0) {
            col->AppendNull();
          } else {
            col->AppendFloat64(state.sum / static_cast<double>(state.count));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          col->AppendDatum(state.extreme);
          break;
      }
    }
    out.push_back(std::move(col));
  }
  return columnar::MakeBatch(output_schema_, std::move(out));
}

}  // namespace pocs::exec
