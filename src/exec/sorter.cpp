#include "exec/sorter.h"

namespace pocs::exec {

using columnar::RecordBatch;
using columnar::RecordBatchPtr;
using columnar::SortKey;
using columnar::Table;

std::vector<SortKey> ToSortKeys(
    const std::vector<substrait::SortField>& fields) {
  std::vector<SortKey> keys;
  keys.reserve(fields.size());
  for (const auto& f : fields) {
    keys.push_back({f.field, f.ascending, f.nulls_first});
  }
  return keys;
}

Result<RecordBatchPtr> SortTable(
    const Table& table, const std::vector<substrait::SortField>& fields) {
  RecordBatchPtr combined = table.Combine();
  auto indices = columnar::SortIndices(*combined, ToSortKeys(fields));
  return columnar::TakeBatch(*combined, indices);
}

TopNAccumulator::TopNAccumulator(columnar::SchemaPtr schema,
                                 std::vector<substrait::SortField> fields,
                                 size_t n)
    : schema_(schema),
      fields_(std::move(fields)),
      limit_(n),
      buffer_(schema) {}

Status TopNAccumulator::Consume(const RecordBatch& batch) {
  if (!batch.schema()->Equals(*schema_)) {
    return Status::InvalidArgument("topn: schema mismatch");
  }
  buffer_.AppendBatch(
      std::make_shared<const RecordBatch>(batch.schema(), batch.columns()));
  buffered_rows_ += batch.num_rows();
  if (buffered_rows_ > 2 * limit_ + 1024) Truncate();
  return Status::OK();
}

void TopNAccumulator::Truncate() {
  RecordBatchPtr combined = buffer_.Combine();
  auto indices = columnar::SortIndices(*combined, ToSortKeys(fields_));
  if (indices.size() > limit_) indices.resize(limit_);
  RecordBatchPtr best = columnar::TakeBatch(*combined, indices);
  buffer_ = Table(schema_);
  buffer_.AppendBatch(best);
  buffered_rows_ = best->num_rows();
}

Result<RecordBatchPtr> TopNAccumulator::Finish() {
  Truncate();
  return buffer_.Combine();
}

Result<std::shared_ptr<Table>> FetchTable(const Table& table, int64_t offset,
                                          int64_t count) {
  auto out = std::make_shared<Table>(table.schema());
  if (count == 0) return out;
  int64_t skip = offset;
  int64_t remaining = count;  // -1 = unlimited
  for (const RecordBatchPtr& batch : table.batches()) {
    int64_t n = static_cast<int64_t>(batch->num_rows());
    if (skip >= n) {
      skip -= n;
      continue;
    }
    int64_t start = skip;
    skip = 0;
    int64_t take = n - start;
    if (remaining >= 0) take = std::min(take, remaining);
    if (take <= 0) break;
    if (start == 0 && take == n) {
      out->AppendBatch(batch);
    } else {
      columnar::SelectionVector sel;
      for (int64_t i = start; i < start + take; ++i) {
        sel.push_back(static_cast<uint32_t>(i));
      }
      out->AppendBatch(columnar::TakeBatch(*batch, sel));
    }
    if (remaining >= 0) {
      remaining -= take;
      if (remaining == 0) break;
    }
  }
  return out;
}

}  // namespace pocs::exec
