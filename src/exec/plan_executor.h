// Executes a linear IR relation chain (Read → … → root) against an
// abstract batch source. This is the execution core of the OCS embedded
// engine, and doubles as the reference executor in equivalence tests.
//
// Streaming where possible: Filter and Project are applied per batch;
// Aggregate, Sort, and Fetch materialize. A Fetch directly above a Sort
// fuses into bounded top-N (the paper's ORDER BY + LIMIT operator).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>

#include "columnar/batch.h"
#include "columnar/kernels.h"
#include "common/bloom.h"
#include "substrait/rel.h"

namespace pocs::exec {

// A scan batch plus an optional selection restricting it. When
// `selection` is set, only those rows (ascending indices) are logically
// present; rows outside it may carry unmaterialized placeholder data
// (late materialization, DESIGN.md §15) and must never be observed
// except under an intersecting selection. Ownership: the selection
// always travels with — and indexes into — exactly this batch.
struct SelectedBatch {
  columnar::RecordBatchPtr batch;  // nullptr at end of stream
  std::optional<columnar::SelectionVector> selection;
};

// Pull-based source of scan batches for one Read relation.
class BatchSource {
 public:
  virtual ~BatchSource() = default;
  virtual columnar::SchemaPtr schema() const = 0;
  // nullptr at end of stream. Always fully materialized.
  virtual Result<columnar::RecordBatchPtr> Next() = 0;
  // Selection-carrying variant, the executor's preferred entry point:
  // sources that pre-filter rows (pushed blooms, code-domain predicate
  // evaluation) hand back the full batch plus the surviving selection
  // instead of materializing a compacted copy. The default wraps Next().
  virtual Result<SelectedBatch> NextSelected() {
    POCS_ASSIGN_OR_RETURN(columnar::RecordBatchPtr batch, Next());
    return SelectedBatch{std::move(batch), std::nullopt};
  }
};

using ScanFactory = std::function<Result<std::unique_ptr<BatchSource>>(
    const substrait::Rel& read)>;

// Rows in/out and measured wall time attributed to one operator kind
// across the whole execution (streaming applies accumulate per batch).
struct OperatorCounters {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t invocations = 0;  // batch-level applications (or 1 if blocking)
  double seconds = 0;
};

struct ExecStats {
  static constexpr size_t kNumRelKinds = 6;  // mirrors substrait::RelKind

  uint64_t rows_scanned = 0;
  uint64_t rows_output = 0;
  uint64_t batches_scanned = 0;
  // Per-operator accounting, indexed by substrait::RelKind.
  std::array<OperatorCounters, kNumRelKinds> operators{};

  OperatorCounters& ForKind(substrait::RelKind kind) {
    return operators[static_cast<size_t>(kind)];
  }
  const OperatorCounters& ForKind(substrait::RelKind kind) const {
    return operators[static_cast<size_t>(kind)];
  }
};

// Execute the chain rooted at `root`; every Read leaf is resolved through
// `scan_factory`.
Result<std::shared_ptr<columnar::Table>> ExecuteRel(
    const substrait::Rel& root, const ScanFactory& scan_factory,
    ExecStats* stats = nullptr);

// Rows of an integer key column that pass a bloom filter (nulls never
// pass — an inner-join key of NULL matches nothing). Non-integer columns
// keep every row: the safe direction, since bloom reduction is advisory.
// Shared by the storage node's scan and the fallback decorator below so
// both sides prune by the exact same rule.
columnar::SelectionVector BloomSelectRows(const columnar::Column& col,
                                          const BloomFilter& bloom);

// Decorator applying a pushed join-key bloom filter (Rel::bloom_* of the
// wrapped scan's Read leaf) to every batch of an inner source. Used by
// the engine-side fallback path so a faulted storage dispatch still
// honours the semi-join reduction (DESIGN.md §14); the caller decides
// whether the filter's version pin matches before wrapping. Rows dropped
// are accumulated into *rows_pruned (caller-owned).
class BloomFilterSource : public BatchSource {
 public:
  BloomFilterSource(std::unique_ptr<BatchSource> inner,
                    std::vector<uint64_t> bloom_words, uint32_t bloom_hashes,
                    uint64_t bloom_seed, int bloom_column,
                    uint64_t* rows_pruned)
      : inner_(std::move(inner)),
        bloom_(std::move(bloom_words), bloom_hashes, bloom_seed),
        bloom_column_(bloom_column),
        rows_pruned_(rows_pruned) {}

  columnar::SchemaPtr schema() const override { return inner_->schema(); }
  // Materializing variant (kept for direct callers).
  Result<columnar::RecordBatchPtr> Next() override;
  // Hands back the inner batch with the bloom survivors attached as a
  // selection — no compaction; the executor consumes the selection.
  Result<SelectedBatch> NextSelected() override;

 private:
  std::unique_ptr<BatchSource> inner_;
  BloomFilter bloom_;
  int bloom_column_;
  uint64_t* rows_pruned_;
};

// An in-memory BatchSource over an existing table (tests, reference runs).
class TableSource : public BatchSource {
 public:
  explicit TableSource(std::shared_ptr<const columnar::Table> table)
      : table_(std::move(table)) {}
  columnar::SchemaPtr schema() const override { return table_->schema(); }
  Result<columnar::RecordBatchPtr> Next() override {
    if (next_ >= table_->batches().size()) return columnar::RecordBatchPtr{};
    return table_->batches()[next_++];
  }

 private:
  std::shared_ptr<const columnar::Table> table_;
  size_t next_ = 0;
};

}  // namespace pocs::exec
