// Vectorized hash aggregation shared by the OCS embedded engine and the
// compute engine's AggregationOperator. Consumes batches, maintains one
// accumulator row per distinct group-key tuple, and produces a final
// batch of keys + aggregate results.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "columnar/batch.h"
#include "columnar/kernels.h"
#include "substrait/expr.h"

namespace pocs::exec {

class HashAggregator {
 public:
  // group_keys: column indices into the input schema.
  HashAggregator(columnar::SchemaPtr input_schema, std::vector<int> group_keys,
                 std::vector<substrait::AggregateSpec> aggregates);

  Status Consume(const columnar::RecordBatch& batch);
  // Selection-aware variant: accumulate only the rows in `sel` (every
  // row when null). Key hashing and aggregate arguments are still
  // evaluated vectorized over the whole batch; only selected rows are
  // read, so placeholder rows under late materialization (DESIGN.md §15)
  // never reach an accumulator.
  Status Consume(const columnar::RecordBatch& batch,
                 const columnar::SelectionVector* sel);

  // Output schema: group key fields followed by aggregate outputs.
  columnar::SchemaPtr output_schema() const { return output_schema_; }
  size_t num_groups() const { return group_count_; }

  // Produces the result batch; the aggregator is spent afterwards.
  // With no group keys and zero input rows, emits SQL's global-aggregate
  // single row (COUNT = 0, other aggregates NULL).
  Result<columnar::RecordBatchPtr> Finish();

 private:
  struct AggState {
    double sum = 0;
    int64_t isum = 0;
    int64_t count = 0;  // non-null inputs (rows for CountStar)
    columnar::Datum extreme;  // running min/max
  };

  // Index of the group for key-row `row` of `keys`, creating it if new.
  Result<uint32_t> GroupFor(const std::vector<columnar::ColumnPtr>& keys,
                            size_t row, uint64_t hash);

  columnar::SchemaPtr input_schema_;
  std::vector<int> group_keys_;
  std::vector<substrait::AggregateSpec> aggregates_;
  columnar::SchemaPtr output_schema_;

  // Accumulated distinct key tuples, one builder column per key.
  std::vector<std::shared_ptr<columnar::Column>> key_store_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> groups_;  // hash→ids
  // states_[group * n_aggs + agg]
  std::vector<AggState> states_;
  size_t group_count_ = 0;
  bool finished_ = false;
};

}  // namespace pocs::exec
