// Blocking sort, bounded top-N, and fetch (offset/limit) primitives,
// shared by the OCS embedded engine and the compute engine operators.
#pragma once

#include <memory>
#include <vector>

#include "columnar/batch.h"
#include "columnar/kernels.h"
#include "substrait/rel.h"

namespace pocs::exec {

// Convert IR sort fields to kernel sort keys.
std::vector<columnar::SortKey> ToSortKeys(
    const std::vector<substrait::SortField>& fields);

// Full materializing sort of a table.
Result<columnar::RecordBatchPtr> SortTable(
    const columnar::Table& table,
    const std::vector<substrait::SortField>& fields);

// Streaming top-N: consumes batches, keeps only the N best rows under the
// sort order (re-truncating whenever the buffer doubles), and produces a
// sorted batch of at most N rows. This is the data-reducing operator the
// paper pushes down as ORDER BY + LIMIT.
class TopNAccumulator {
 public:
  TopNAccumulator(columnar::SchemaPtr schema,
                  std::vector<substrait::SortField> fields, size_t n);

  Status Consume(const columnar::RecordBatch& batch);
  Result<columnar::RecordBatchPtr> Finish();

 private:
  void Truncate();

  columnar::SchemaPtr schema_;
  std::vector<substrait::SortField> fields_;
  size_t limit_;
  columnar::Table buffer_;
  size_t buffered_rows_ = 0;
};

// OFFSET/LIMIT over a table (count < 0 = unlimited).
Result<std::shared_ptr<columnar::Table>> FetchTable(
    const columnar::Table& table, int64_t offset, int64_t count);

}  // namespace pocs::exec
