#include "exec/plan_executor.h"

#include <vector>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "exec/hash_aggregator.h"
#include "exec/sorter.h"
#include "substrait/eval.h"

namespace pocs::exec {

using columnar::RecordBatch;
using columnar::RecordBatchPtr;
using columnar::Table;
using substrait::Rel;
using substrait::RelKind;

namespace {

// Flatten the chain: chain[0] is the Read, chain.back() is the root.
Status FlattenChain(const Rel& root, std::vector<const Rel*>* chain) {
  for (const Rel* r = &root; r != nullptr; r = r->input.get()) {
    chain->push_back(r);
    if (r->kind == RelKind::kRead && r->input) {
      return Status::InvalidArgument("read rel has an input");
    }
  }
  std::reverse(chain->begin(), chain->end());
  if ((*chain)[0]->kind != RelKind::kRead) {
    return Status::InvalidArgument("rel chain must bottom out at a Read");
  }
  return Status::OK();
}

Result<RecordBatchPtr> ApplyProject(const Rel& rel, const RecordBatch& batch,
                                    const columnar::SchemaPtr& out_schema) {
  std::vector<columnar::ColumnPtr> cols;
  cols.reserve(rel.expressions.size());
  for (const substrait::Expression& e : rel.expressions) {
    POCS_ASSIGN_OR_RETURN(columnar::ColumnPtr col,
                          substrait::Evaluate(e, batch));
    cols.push_back(std::move(col));
  }
  return columnar::MakeBatch(out_schema, std::move(cols));
}

// Cached per-RelKind registry metrics (rows in/out counters + a latency
// histogram of per-operator wall time for each executed plan).
struct KindRegistryMetrics {
  metrics::Counter* rows_in;
  metrics::Counter* rows_out;
  metrics::Histogram* seconds;
};

const KindRegistryMetrics& RegistryMetricsFor(RelKind kind) {
  static const auto all = [] {
    std::array<KindRegistryMetrics, ExecStats::kNumRelKinds> a{};
    auto& reg = metrics::Registry::Default();
    for (size_t i = 0; i < a.size(); ++i) {
      std::string prefix =
          "exec." +
          std::string(substrait::RelKindName(static_cast<RelKind>(i)));
      a[i] = {&reg.GetCounter(prefix + ".rows_in"),
              &reg.GetCounter(prefix + ".rows_out"),
              &reg.GetHistogram(prefix + ".seconds")};
    }
    return a;
  }();
  return all[static_cast<size_t>(kind)];
}

void MirrorToRegistry(const ExecStats& stats, double plan_seconds) {
  auto& reg = metrics::Registry::Default();
  static auto& plans = reg.GetCounter("exec.plans");
  static auto& rows_scanned = reg.GetCounter("exec.rows_scanned");
  static auto& rows_output = reg.GetCounter("exec.rows_output");
  static auto& batches = reg.GetCounter("exec.batches_scanned");
  static auto& seconds = reg.GetHistogram("exec.plan_seconds");
  plans.Increment();
  rows_scanned.Add(stats.rows_scanned);
  rows_output.Add(stats.rows_output);
  batches.Add(stats.batches_scanned);
  seconds.Record(plan_seconds);
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    const OperatorCounters& oc = stats.operators[i];
    if (oc.invocations == 0) continue;
    const KindRegistryMetrics& m =
        RegistryMetricsFor(static_cast<RelKind>(i));
    m.rows_in->Add(oc.rows_in);
    m.rows_out->Add(oc.rows_out);
    m.seconds->Record(oc.seconds);
  }
}

}  // namespace

namespace {

// Typed bloom-probe loop: the type dispatch is hoisted out of the row
// loop and keys come from the raw value span (no per-row accessors).
template <typename V>
void BloomProbeLoop(const V* vals, const uint8_t* valid, size_t n,
                    const BloomFilter& bloom,
                    columnar::SelectionVector* sel) {
  for (size_t i = 0; i < n; ++i) {
    if (valid != nullptr && valid[i] == 0) continue;
    const uint64_t key = static_cast<uint64_t>(static_cast<int64_t>(vals[i]));
    if (bloom.MayContain(key)) sel->push_back(static_cast<uint32_t>(i));
  }
}

}  // namespace

columnar::SelectionVector BloomSelectRows(const columnar::Column& col,
                                          const BloomFilter& bloom) {
  columnar::SelectionVector sel;
  sel.reserve(col.length());
  const size_t n = col.length();
  const uint8_t* valid = col.has_nulls() ? col.validity().data() : nullptr;
  switch (col.type()) {
    case columnar::TypeKind::kInt64:
      BloomProbeLoop(col.i64_data().data(), valid, n, bloom, &sel);
      break;
    case columnar::TypeKind::kInt32:
    case columnar::TypeKind::kDate32:
      BloomProbeLoop(col.i32_data().data(), valid, n, bloom, &sel);
      break;
    default:
      // Non-integer key: keep every non-null row (bloom reduction is
      // advisory; dropping nothing is the safe direction).
      for (size_t i = 0; i < n; ++i) {
        if (valid != nullptr && valid[i] == 0) continue;
        sel.push_back(static_cast<uint32_t>(i));
      }
      break;
  }
  return sel;
}

Result<SelectedBatch> BloomFilterSource::NextSelected() {
  while (true) {
    POCS_ASSIGN_OR_RETURN(columnar::RecordBatchPtr batch, inner_->Next());
    if (!batch) return SelectedBatch{nullptr, std::nullopt};
    if (bloom_column_ < 0 ||
        static_cast<size_t>(bloom_column_) >= batch->num_columns()) {
      return SelectedBatch{std::move(batch), std::nullopt};
    }
    columnar::SelectionVector sel =
        BloomSelectRows(*batch->column(bloom_column_), bloom_);
    if (sel.size() == batch->num_rows()) {
      return SelectedBatch{std::move(batch), std::nullopt};
    }
    if (rows_pruned_) *rows_pruned_ += batch->num_rows() - sel.size();
    if (sel.empty()) continue;  // whole batch pruned; pull the next one
    return SelectedBatch{std::move(batch), std::move(sel)};
  }
}

Result<columnar::RecordBatchPtr> BloomFilterSource::Next() {
  POCS_ASSIGN_OR_RETURN(SelectedBatch sb, NextSelected());
  if (!sb.batch || !sb.selection) return std::move(sb.batch);
  return columnar::TakeBatch(*sb.batch, *sb.selection);
}

Result<std::shared_ptr<Table>> ExecuteRel(const Rel& root,
                                          const ScanFactory& scan_factory,
                                          ExecStats* stats) {
  Stopwatch plan_timer;
  ExecStats local;

  std::vector<const Rel*> chain;
  POCS_RETURN_NOT_OK(FlattenChain(root, &chain));

  POCS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> source,
                        scan_factory(*chain[0]));

  // Identify the streamable prefix above the read: filters and projects.
  // The first blocking operator (aggregate/sort/fetch) splits the chain.
  size_t blocking = 1;
  while (blocking < chain.size() &&
         (chain[blocking]->kind == RelKind::kFilter ||
          chain[blocking]->kind == RelKind::kProject)) {
    ++blocking;
  }

  // Precompute output schemas for projects in the streaming prefix.
  std::vector<columnar::SchemaPtr> prefix_schemas(chain.size());
  for (size_t i = 1; i < blocking; ++i) {
    POCS_ASSIGN_OR_RETURN(prefix_schemas[i],
                          substrait::OutputSchema(*chain[i]));
  }

  // If the first blocking op is an aggregate or a sort+fetch pair we can
  // stream into an accumulator. Otherwise we materialize.
  std::unique_ptr<HashAggregator> aggregator;
  std::unique_ptr<TopNAccumulator> topn;
  size_t consumed_blocking = 0;  // how many blocking rels the streaming
                                 // accumulators absorb

  if (blocking < chain.size() && chain[blocking]->kind == RelKind::kAggregate) {
    POCS_ASSIGN_OR_RETURN(columnar::SchemaPtr agg_input,
                          substrait::OutputSchema(
                              blocking > 1 ? *chain[blocking - 1] : *chain[0]));
    aggregator = std::make_unique<HashAggregator>(
        agg_input, chain[blocking]->group_keys, chain[blocking]->aggregates);
    consumed_blocking = 1;
  } else if (blocking + 1 < chain.size() &&
             chain[blocking]->kind == RelKind::kSort &&
             chain[blocking + 1]->kind == RelKind::kFetch &&
             chain[blocking + 1]->offset == 0 &&
             chain[blocking + 1]->count >= 0) {
    POCS_ASSIGN_OR_RETURN(columnar::SchemaPtr sort_input,
                          substrait::OutputSchema(
                              blocking > 1 ? *chain[blocking - 1] : *chain[0]));
    topn = std::make_unique<TopNAccumulator>(
        sort_input, chain[blocking]->sort_fields,
        static_cast<size_t>(chain[blocking + 1]->count));
    consumed_blocking = 2;
  }
  // The streaming accumulator's rows are attributed to the rel it absorbs
  // (Aggregate, or Sort for the fused top-N).
  const RelKind accumulator_kind =
      aggregator ? RelKind::kAggregate : RelKind::kSort;

  auto intermediate = std::make_shared<Table>(
      prefix_schemas.empty() || blocking == 1 ? source->schema()
                                              : prefix_schemas[blocking - 1]);

  // ---- streaming phase ---------------------------------------------------
  // Batches flow with an optional selection (SelectedBatch): chained
  // filters intersect selections instead of compacting rows, and the
  // one materialization (TakeBatch) happens only at the first operator
  // that needs real values at every row — a Project, the top-N
  // accumulator, or the intermediate table. Hash aggregation consumes
  // the selection directly.
  while (true) {
    POCS_ASSIGN_OR_RETURN(SelectedBatch sb, source->NextSelected());
    RecordBatchPtr batch = std::move(sb.batch);
    if (!batch) break;
    local.rows_scanned += batch->num_rows();
    ++local.batches_scanned;
    std::optional<columnar::SelectionVector> sel = std::move(sb.selection);
    auto live_rows = [&] {
      return sel ? sel->size() : (batch ? batch->num_rows() : 0);
    };
    auto materialize = [&] {
      if (sel) {
        batch = columnar::TakeBatch(*batch, *sel);
        sel.reset();
      }
    };
    bool exhausted = live_rows() == 0;
    for (size_t i = 1; i < blocking && !exhausted; ++i) {
      const Rel& rel = *chain[i];
      OperatorCounters& oc = local.ForKind(rel.kind);
      Stopwatch op_timer;
      oc.rows_in += live_rows();
      if (rel.kind == RelKind::kFilter) {
        POCS_ASSIGN_OR_RETURN(
            columnar::SelectionVector out_sel,
            substrait::FilterSelection(rel.predicate, *batch,
                                       sel ? &*sel : nullptr));
        sel = std::move(out_sel);
      } else {
        materialize();
        POCS_ASSIGN_OR_RETURN(batch,
                              ApplyProject(rel, *batch, prefix_schemas[i]));
      }
      oc.rows_out += live_rows();
      oc.seconds += op_timer.ElapsedSeconds();
      ++oc.invocations;
      exhausted = live_rows() == 0;
    }
    if (exhausted) continue;
    if (aggregator || topn) {
      OperatorCounters& oc = local.ForKind(accumulator_kind);
      Stopwatch op_timer;
      oc.rows_in += live_rows();
      if (aggregator) {
        POCS_RETURN_NOT_OK(aggregator->Consume(*batch, sel ? &*sel : nullptr));
      } else {
        materialize();
        POCS_RETURN_NOT_OK(topn->Consume(*batch));
      }
      oc.seconds += op_timer.ElapsedSeconds();
      ++oc.invocations;
    } else {
      materialize();
      intermediate->AppendBatch(std::move(batch));
    }
  }

  std::shared_ptr<Table> current;
  if (aggregator || topn) {
    OperatorCounters& oc = local.ForKind(accumulator_kind);
    Stopwatch op_timer;
    RecordBatchPtr result;
    if (aggregator) {
      POCS_ASSIGN_OR_RETURN(result, aggregator->Finish());
    } else {
      POCS_ASSIGN_OR_RETURN(result, topn->Finish());
    }
    oc.rows_out += result->num_rows();
    oc.seconds += op_timer.ElapsedSeconds();
    current = std::make_shared<Table>(result->schema());
    current->AppendBatch(std::move(result));
  } else {
    current = intermediate;
  }

  // ---- materialized phase: remaining blocking operators ------------------
  for (size_t i = blocking + consumed_blocking; i < chain.size(); ++i) {
    const Rel& rel = *chain[i];
    OperatorCounters& oc = local.ForKind(rel.kind);
    Stopwatch op_timer;
    oc.rows_in += current->num_rows();
    switch (rel.kind) {
      case RelKind::kFilter: {
        auto next = std::make_shared<Table>(current->schema());
        for (const RecordBatchPtr& b : current->batches()) {
          POCS_ASSIGN_OR_RETURN(RecordBatchPtr filtered,
                                substrait::FilterBatch(rel.predicate, *b));
          if (filtered->num_rows() > 0) next->AppendBatch(std::move(filtered));
        }
        current = next;
        break;
      }
      case RelKind::kProject: {
        POCS_ASSIGN_OR_RETURN(columnar::SchemaPtr out_schema,
                              substrait::OutputSchema(rel));
        auto next = std::make_shared<Table>(out_schema);
        for (const RecordBatchPtr& b : current->batches()) {
          POCS_ASSIGN_OR_RETURN(RecordBatchPtr projected,
                                ApplyProject(rel, *b, out_schema));
          next->AppendBatch(std::move(projected));
        }
        current = next;
        break;
      }
      case RelKind::kAggregate: {
        HashAggregator agg(current->schema(), rel.group_keys, rel.aggregates);
        for (const RecordBatchPtr& b : current->batches()) {
          POCS_RETURN_NOT_OK(agg.Consume(*b));
        }
        POCS_ASSIGN_OR_RETURN(RecordBatchPtr result, agg.Finish());
        current = std::make_shared<Table>(result->schema());
        current->AppendBatch(std::move(result));
        break;
      }
      case RelKind::kSort: {
        POCS_ASSIGN_OR_RETURN(RecordBatchPtr sorted,
                              SortTable(*current, rel.sort_fields));
        current = std::make_shared<Table>(sorted->schema());
        current->AppendBatch(std::move(sorted));
        break;
      }
      case RelKind::kFetch: {
        POCS_ASSIGN_OR_RETURN(current,
                              FetchTable(*current, rel.offset, rel.count));
        break;
      }
      case RelKind::kRead:
        return Status::Internal("read rel above the leaf");
    }
    oc.rows_out += current->num_rows();
    oc.seconds += op_timer.ElapsedSeconds();
    ++oc.invocations;
  }
  local.rows_output = current->num_rows();

  MirrorToRegistry(local, plan_timer.ElapsedSeconds());
  if (stats) *stats = local;
  return current;
}

}  // namespace pocs::exec
