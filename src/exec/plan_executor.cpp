#include "exec/plan_executor.h"

#include <vector>

#include "exec/hash_aggregator.h"
#include "exec/sorter.h"
#include "substrait/eval.h"

namespace pocs::exec {

using columnar::RecordBatch;
using columnar::RecordBatchPtr;
using columnar::Table;
using substrait::Rel;
using substrait::RelKind;

namespace {

// Flatten the chain: chain[0] is the Read, chain.back() is the root.
Status FlattenChain(const Rel& root, std::vector<const Rel*>* chain) {
  for (const Rel* r = &root; r != nullptr; r = r->input.get()) {
    chain->push_back(r);
    if (r->kind == RelKind::kRead && r->input) {
      return Status::InvalidArgument("read rel has an input");
    }
  }
  std::reverse(chain->begin(), chain->end());
  if ((*chain)[0]->kind != RelKind::kRead) {
    return Status::InvalidArgument("rel chain must bottom out at a Read");
  }
  return Status::OK();
}

Result<RecordBatchPtr> ApplyProject(const Rel& rel, const RecordBatch& batch,
                                    const columnar::SchemaPtr& out_schema) {
  std::vector<columnar::ColumnPtr> cols;
  cols.reserve(rel.expressions.size());
  for (const substrait::Expression& e : rel.expressions) {
    POCS_ASSIGN_OR_RETURN(columnar::ColumnPtr col,
                          substrait::Evaluate(e, batch));
    cols.push_back(std::move(col));
  }
  return columnar::MakeBatch(out_schema, std::move(cols));
}

}  // namespace

Result<std::shared_ptr<Table>> ExecuteRel(const Rel& root,
                                          const ScanFactory& scan_factory,
                                          ExecStats* stats) {
  std::vector<const Rel*> chain;
  POCS_RETURN_NOT_OK(FlattenChain(root, &chain));

  POCS_ASSIGN_OR_RETURN(std::unique_ptr<BatchSource> source,
                        scan_factory(*chain[0]));

  // Identify the streamable prefix above the read: filters and projects.
  // The first blocking operator (aggregate/sort/fetch) splits the chain.
  size_t blocking = 1;
  while (blocking < chain.size() &&
         (chain[blocking]->kind == RelKind::kFilter ||
          chain[blocking]->kind == RelKind::kProject)) {
    ++blocking;
  }

  // Precompute output schemas for projects in the streaming prefix.
  std::vector<columnar::SchemaPtr> prefix_schemas(chain.size());
  for (size_t i = 1; i < blocking; ++i) {
    POCS_ASSIGN_OR_RETURN(prefix_schemas[i],
                          substrait::OutputSchema(*chain[i]));
  }

  // If the first blocking op is an aggregate or a sort+fetch pair we can
  // stream into an accumulator. Otherwise we materialize.
  std::unique_ptr<HashAggregator> aggregator;
  std::unique_ptr<TopNAccumulator> topn;
  size_t consumed_blocking = 0;  // how many blocking rels the streaming
                                 // accumulators absorb

  if (blocking < chain.size() && chain[blocking]->kind == RelKind::kAggregate) {
    POCS_ASSIGN_OR_RETURN(columnar::SchemaPtr agg_input,
                          substrait::OutputSchema(
                              blocking > 1 ? *chain[blocking - 1] : *chain[0]));
    aggregator = std::make_unique<HashAggregator>(
        agg_input, chain[blocking]->group_keys, chain[blocking]->aggregates);
    consumed_blocking = 1;
  } else if (blocking + 1 < chain.size() &&
             chain[blocking]->kind == RelKind::kSort &&
             chain[blocking + 1]->kind == RelKind::kFetch &&
             chain[blocking + 1]->offset == 0 &&
             chain[blocking + 1]->count >= 0) {
    POCS_ASSIGN_OR_RETURN(columnar::SchemaPtr sort_input,
                          substrait::OutputSchema(
                              blocking > 1 ? *chain[blocking - 1] : *chain[0]));
    topn = std::make_unique<TopNAccumulator>(
        sort_input, chain[blocking]->sort_fields,
        static_cast<size_t>(chain[blocking + 1]->count));
    consumed_blocking = 2;
  }

  auto intermediate = std::make_shared<Table>(
      prefix_schemas.empty() || blocking == 1 ? source->schema()
                                              : prefix_schemas[blocking - 1]);

  // ---- streaming phase ---------------------------------------------------
  while (true) {
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr batch, source->Next());
    if (!batch) break;
    if (stats) {
      stats->rows_scanned += batch->num_rows();
      ++stats->batches_scanned;
    }
    for (size_t i = 1; i < blocking && batch; ++i) {
      const Rel& rel = *chain[i];
      if (rel.kind == RelKind::kFilter) {
        POCS_ASSIGN_OR_RETURN(batch,
                              substrait::FilterBatch(rel.predicate, *batch));
      } else {
        POCS_ASSIGN_OR_RETURN(batch,
                              ApplyProject(rel, *batch, prefix_schemas[i]));
      }
      if (batch->num_rows() == 0) batch = nullptr;
    }
    if (!batch) continue;
    if (aggregator) {
      POCS_RETURN_NOT_OK(aggregator->Consume(*batch));
    } else if (topn) {
      POCS_RETURN_NOT_OK(topn->Consume(*batch));
    } else {
      intermediate->AppendBatch(std::move(batch));
    }
  }

  std::shared_ptr<Table> current;
  if (aggregator) {
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr result, aggregator->Finish());
    current = std::make_shared<Table>(result->schema());
    current->AppendBatch(std::move(result));
  } else if (topn) {
    POCS_ASSIGN_OR_RETURN(RecordBatchPtr result, topn->Finish());
    current = std::make_shared<Table>(result->schema());
    current->AppendBatch(std::move(result));
  } else {
    current = intermediate;
  }

  // ---- materialized phase: remaining blocking operators ------------------
  for (size_t i = blocking + consumed_blocking; i < chain.size(); ++i) {
    const Rel& rel = *chain[i];
    switch (rel.kind) {
      case RelKind::kFilter: {
        auto next = std::make_shared<Table>(current->schema());
        for (const RecordBatchPtr& b : current->batches()) {
          POCS_ASSIGN_OR_RETURN(RecordBatchPtr filtered,
                                substrait::FilterBatch(rel.predicate, *b));
          if (filtered->num_rows() > 0) next->AppendBatch(std::move(filtered));
        }
        current = next;
        break;
      }
      case RelKind::kProject: {
        POCS_ASSIGN_OR_RETURN(columnar::SchemaPtr out_schema,
                              substrait::OutputSchema(rel));
        auto next = std::make_shared<Table>(out_schema);
        for (const RecordBatchPtr& b : current->batches()) {
          POCS_ASSIGN_OR_RETURN(RecordBatchPtr projected,
                                ApplyProject(rel, *b, out_schema));
          next->AppendBatch(std::move(projected));
        }
        current = next;
        break;
      }
      case RelKind::kAggregate: {
        HashAggregator agg(current->schema(), rel.group_keys, rel.aggregates);
        for (const RecordBatchPtr& b : current->batches()) {
          POCS_RETURN_NOT_OK(agg.Consume(*b));
        }
        POCS_ASSIGN_OR_RETURN(RecordBatchPtr result, agg.Finish());
        current = std::make_shared<Table>(result->schema());
        current->AppendBatch(std::move(result));
        break;
      }
      case RelKind::kSort: {
        POCS_ASSIGN_OR_RETURN(RecordBatchPtr sorted,
                              SortTable(*current, rel.sort_fields));
        current = std::make_shared<Table>(sorted->schema());
        current->AppendBatch(std::move(sorted));
        break;
      }
      case RelKind::kFetch: {
        POCS_ASSIGN_OR_RETURN(current,
                              FetchTable(*current, rel.offset, rel.count));
        break;
      }
      case RelKind::kRead:
        return Status::Internal("read rel above the leaf");
    }
  }
  if (stats) stats->rows_output = current->num_rows();
  return current;
}

}  // namespace pocs::exec
