// Framed request/response RPC over the simulated network — the role gRPC
// plays in the paper (Presto worker → OCS frontend → storage node).
//
// Services register named methods; clients hold a Channel bound to a
// (client node, server node) pair. Every call charges the request and
// response payloads to the netsim link and reports the modelled transfer
// time alongside the response, so callers can fold it into their stage
// timings.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/buffer.h"
#include "common/metrics.h"
#include "common/status.h"
#include "netsim/network.h"

namespace pocs::rpc {

using Handler = std::function<Result<Bytes>(ByteSpan request)>;

// A named bundle of methods living on one simulated node.
class Server {
 public:
  Server(netsim::NodeId node, std::string name)
      : node_(node), name_(std::move(name)) {}

  netsim::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }

  void RegisterMethod(std::string method, Handler handler) {
    std::lock_guard lock(mu_);
    methods_[std::move(method)] = std::move(handler);
  }

  Result<Bytes> Dispatch(const std::string& method, ByteSpan request) const {
    Handler handler;
    {
      std::lock_guard lock(mu_);
      auto it = methods_.find(method);
      if (it == methods_.end()) {
        return Status::NotFound("rpc: no method '" + method + "' on " + name_);
      }
      handler = it->second;
    }
    return handler(request);
  }

 private:
  netsim::NodeId node_;
  std::string name_;
  mutable std::mutex mu_;
  std::map<std::string, Handler> methods_;
};

struct CallResult {
  Bytes response;
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
  double transfer_seconds = 0;  // modelled network time for this call
};

// Client-side endpoint bound to a server across the simulated network.
class Channel {
 public:
  Channel(std::shared_ptr<netsim::Network> net, netsim::NodeId client,
          std::shared_ptr<const Server> server)
      : net_(std::move(net)), client_(client), server_(std::move(server)) {}

  Result<CallResult> Call(const std::string& method, ByteSpan request) const {
    auto& reg = metrics::Registry::Default();
    static auto& calls = reg.GetCounter("rpc.calls");
    static auto& round_trips = reg.GetCounter("rpc.round_trips");
    static auto& req_bytes = reg.GetCounter("rpc.request_bytes");
    static auto& resp_bytes = reg.GetCounter("rpc.response_bytes");

    CallResult out;
    out.request_bytes = request.size();
    out.transfer_seconds +=
        net_->Transfer(client_, server_->node(), request.size());
    POCS_ASSIGN_OR_RETURN(out.response, server_->Dispatch(method, request));
    out.response_bytes = out.response.size();
    out.transfer_seconds +=
        net_->Transfer(server_->node(), client_, out.response.size());

    calls.Increment();
    round_trips.Add(2);  // request + response leg per call
    req_bytes.Add(out.request_bytes);
    resp_bytes.Add(out.response_bytes);
    return out;
  }

  netsim::NodeId server_node() const { return server_->node(); }

 private:
  std::shared_ptr<netsim::Network> net_;
  netsim::NodeId client_;
  std::shared_ptr<const Server> server_;
};

}  // namespace pocs::rpc
