// Framed request/response RPC over the simulated network — the role gRPC
// plays in the paper (Presto worker → OCS frontend → storage node).
//
// Services register named methods; clients hold a Channel bound to a
// (client node, server node) pair. Every call charges the request and
// response payloads to the netsim link and reports the modelled transfer
// time alongside the response, so callers can fold it into their stage
// timings.
//
// Calls take per-call CallOptions: a retry budget with exponential
// backoff (seeded jitter, so replays are deterministic) and a modelled
// per-attempt deadline. Only transport-class failures — kUnavailable and
// kDeadlineExceeded — are retried; application errors surface immediately.
// Backoff time is folded into the reported transfer seconds: waiting is
// wall time the query would really spend.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/buffer.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "netsim/network.h"

namespace pocs::rpc {

using Handler = std::function<Result<Bytes>(ByteSpan request)>;

// A named bundle of methods living on one simulated node.
class Server {
 public:
  Server(netsim::NodeId node, std::string name)
      : node_(node), name_(std::move(name)) {}

  netsim::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }

  void RegisterMethod(std::string method, Handler handler) {
    MutexLock lock(mu_);
    methods_[std::move(method)] = std::move(handler);
  }

  Result<Bytes> Dispatch(const std::string& method, ByteSpan request) const {
    // Copy the handler out so user code never runs under mu_ — a handler
    // that (transitively) registered a method would self-deadlock.
    Handler handler;
    {
      MutexLock lock(mu_);
      auto it = methods_.find(method);
      if (it == methods_.end()) {
        return Status::NotFound("rpc: no method '" + method + "' on " + name_);
      }
      handler = it->second;
    }
    return handler(request);
  }

 private:
  netsim::NodeId node_;
  std::string name_;
  mutable Mutex mu_;
  std::map<std::string, Handler> methods_ POCS_GUARDED_BY(mu_);
};

// Per-call policy: how many attempts, how long each may take (modelled),
// and how retries back off. Defaults preserve the pre-fault behaviour:
// one attempt, no deadline.
struct CallOptions {
  uint32_t max_attempts = 1;
  // Cap on one attempt's modelled transfer seconds; 0 disables. The
  // deadline sees only network time — storage compute rides inside the
  // opaque response and is policed by the caller (connector-level
  // deadline, see OcsDispatchPolicy).
  double deadline_seconds = 0;
  double backoff_base_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_seconds = 2.0;
  // Seeds the deterministic jitter; same seed + same call ⇒ same backoff.
  uint64_t jitter_seed = 0;
};

// Transport-class failures are worth retrying; application errors are not.
inline bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

struct CallResult {
  Bytes response;
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
  uint64_t retries = 0;         // attempts beyond the first
  double transfer_seconds = 0;  // modelled network time incl. backoff waits
};

// Client-side endpoint bound to a server across the simulated network.
class Channel {
 public:
  Channel(std::shared_ptr<netsim::Network> net, netsim::NodeId client,
          std::shared_ptr<const Server> server)
      : net_(std::move(net)), client_(client), server_(std::move(server)) {}

  // Like Call, but fills `out` (attempt counts, modelled seconds) even on
  // failure, so callers can account for the cost of a lost dispatch.
  Status CallInto(const std::string& method, ByteSpan request,
                  const CallOptions& options, CallResult* out) const {
    auto& reg = metrics::Registry::Default();
    static auto& calls = reg.GetCounter("rpc.calls");
    static auto& round_trips = reg.GetCounter("rpc.round_trips");
    static auto& req_bytes = reg.GetCounter("rpc.request_bytes");
    static auto& resp_bytes = reg.GetCounter("rpc.response_bytes");
    static auto& retries_total = reg.GetCounter("rpc.retries");
    static auto& deadline_exceeded = reg.GetCounter("rpc.deadline_exceeded");
    static auto& failed_calls = reg.GetCounter("rpc.failed_calls");

    // The flow id keys fault decisions to this call's content, so chaos
    // runs are deterministic regardless of thread interleaving.
    const uint64_t flow_id =
        HashBytes(request.data(), request.size(), HashString(method));
    out->request_bytes = request.size();
    const uint32_t max_attempts = std::max<uint32_t>(options.max_attempts, 1);

    Status last;
    for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      if (attempt > 0) {
        retries_total.Increment();
        ++out->retries;
        out->transfer_seconds += BackoffSeconds(options, flow_id, attempt);
      }
      // Request-side metrics are recorded before dispatch: a failed call
      // still put its request on the wire and must be counted.
      calls.Increment();
      req_bytes.Add(request.size());

      double attempt_seconds = 0;
      Status status = RunAttempt(method, request, options, flow_id, attempt,
                                 &attempt_seconds, out, &round_trips);
      if (status.ok() && options.deadline_seconds > 0 &&
          attempt_seconds > options.deadline_seconds) {
        deadline_exceeded.Increment();
        status = Status::DeadlineExceeded(
            "rpc: " + method + " attempt exceeded modelled deadline");
      }
      out->transfer_seconds += attempt_seconds;
      if (status.ok()) {
        resp_bytes.Add(out->response_bytes);
        return status;
      }
      failed_calls.Increment();
      last = std::move(status);
      if (!IsRetryable(last)) break;
    }
    return last;
  }

  Result<CallResult> Call(const std::string& method, ByteSpan request,
                          const CallOptions& options = {}) const {
    CallResult out;
    POCS_RETURN_NOT_OK(CallInto(method, request, options, &out));
    return out;
  }

  netsim::NodeId server_node() const { return server_->node(); }

 private:
  Status RunAttempt(const std::string& method, ByteSpan request,
                    const CallOptions& options, uint64_t flow_id,
                    uint32_t attempt, double* attempt_seconds, CallResult* out,
                    metrics::Counter* round_trips) const {
    (void)options;
    netsim::TransferOptions transfer{flow_id, attempt};
    auto req_leg =
        net_->Transfer(client_, server_->node(), request.size(), 1, transfer);
    POCS_RETURN_NOT_OK(req_leg.status());
    *attempt_seconds += *req_leg;
    round_trips->Increment();

    POCS_ASSIGN_OR_RETURN(Bytes response, server_->Dispatch(method, request));

    auto resp_leg =
        net_->Transfer(server_->node(), client_, response.size(), 1, transfer);
    POCS_RETURN_NOT_OK(resp_leg.status());
    *attempt_seconds += *resp_leg;
    round_trips->Increment();

    out->response = std::move(response);
    out->response_bytes = out->response.size();
    return Status::OK();
  }

  // Exponential backoff before retry `attempt` (>= 1), with deterministic
  // jitter in [0.5, 1.0) of the nominal delay.
  static double BackoffSeconds(const CallOptions& options, uint64_t flow_id,
                               uint32_t attempt) {
    double nominal = options.backoff_base_seconds;
    for (uint32_t i = 1; i < attempt; ++i) {
      nominal *= options.backoff_multiplier;
    }
    nominal = std::min(nominal, options.backoff_max_seconds);
    const uint64_t h =
        HashCombine(HashCombine(options.jitter_seed, flow_id), attempt);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
    return nominal * (0.5 + 0.5 * unit);
  }

  std::shared_ptr<netsim::Network> net_;
  netsim::NodeId client_;
  std::shared_ptr<const Server> server_;
};

}  // namespace pocs::rpc
