#include "substrait/serialize.h"

#include "columnar/ipc.h"
#include "common/hash.h"

namespace pocs::substrait {

namespace {
constexpr uint32_t kMagic = 0x54534253;  // 'SBST'
constexpr int kMaxDepth = 64;            // expression nesting bound
constexpr int kMaxPipeline = 256;        // relation chain bound
}  // namespace

void WriteExpression(const Expression& expr, BufferWriter* out) {
  out->WriteU8(static_cast<uint8_t>(expr.kind));
  out->WriteU8(static_cast<uint8_t>(expr.type));
  switch (expr.kind) {
    case ExprKind::kFieldRef:
      out->WriteSVarint(expr.field_index);
      break;
    case ExprKind::kLiteral:
      columnar::ipc::WriteDatum(expr.literal, out);
      break;
    case ExprKind::kCall:
      out->WriteU8(static_cast<uint8_t>(expr.func));
      out->WriteVarint(expr.args.size());
      for (const Expression& arg : expr.args) WriteExpression(arg, out);
      break;
  }
}

Result<Expression> ReadExpression(BufferReader* in, int depth) {
  if (depth > kMaxDepth) return Status::Corruption("expr: nesting too deep");
  Expression expr;
  POCS_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  if (kind > static_cast<uint8_t>(ExprKind::kCall)) {
    return Status::Corruption("expr: bad kind");
  }
  expr.kind = static_cast<ExprKind>(kind);
  POCS_ASSIGN_OR_RETURN(uint8_t type, in->ReadU8());
  if (type > static_cast<uint8_t>(columnar::TypeKind::kDate32)) {
    return Status::Corruption("expr: bad type");
  }
  expr.type = static_cast<columnar::TypeKind>(type);
  switch (expr.kind) {
    case ExprKind::kFieldRef: {
      POCS_ASSIGN_OR_RETURN(int64_t idx, in->ReadSVarint());
      expr.field_index = static_cast<int>(idx);
      break;
    }
    case ExprKind::kLiteral: {
      POCS_ASSIGN_OR_RETURN(expr.literal, columnar::ipc::ReadDatum(in));
      break;
    }
    case ExprKind::kCall: {
      POCS_ASSIGN_OR_RETURN(uint8_t func, in->ReadU8());
      if (func > static_cast<uint8_t>(ScalarFunc::kIsNull)) {
        return Status::Corruption("expr: bad func");
      }
      expr.func = static_cast<ScalarFunc>(func);
      POCS_ASSIGN_OR_RETURN(uint64_t n_args, in->ReadVarint());
      if (n_args > 16) return Status::Corruption("expr: too many args");
      for (uint64_t i = 0; i < n_args; ++i) {
        POCS_ASSIGN_OR_RETURN(Expression arg, ReadExpression(in, depth + 1));
        expr.args.push_back(std::move(arg));
      }
      break;
    }
  }
  return expr;
}

namespace {

void WriteRel(const Rel& rel, BufferWriter* out) {
  out->WriteU8(static_cast<uint8_t>(rel.kind));
  out->WriteU8(rel.input ? 1 : 0);
  if (rel.input) WriteRel(*rel.input, out);
  switch (rel.kind) {
    case RelKind::kRead:
      out->WriteString(rel.bucket);
      out->WriteString(rel.object);
      columnar::ipc::WriteSchema(*rel.base_schema, out);
      out->WriteVarint(rel.read_columns.size());
      for (int c : rel.read_columns) out->WriteSVarint(c);
      out->WriteVarint(rel.hint_version);
      out->WriteVarint(rel.row_group_hint.size());
      for (uint32_t g : rel.row_group_hint) out->WriteVarint(g);
      out->WriteVarint(rel.bloom_words.size());
      if (!rel.bloom_words.empty()) {
        for (uint64_t w : rel.bloom_words) out->WriteLE<uint64_t>(w);
        out->WriteVarint(rel.bloom_hashes);
        out->WriteVarint(rel.bloom_seed);
        out->WriteSVarint(rel.bloom_column);
        out->WriteVarint(rel.bloom_version);
      }
      break;
    case RelKind::kFilter:
      WriteExpression(rel.predicate, out);
      break;
    case RelKind::kProject:
      out->WriteVarint(rel.expressions.size());
      for (size_t i = 0; i < rel.expressions.size(); ++i) {
        WriteExpression(rel.expressions[i], out);
        out->WriteString(rel.output_names[i]);
      }
      break;
    case RelKind::kAggregate:
      out->WriteVarint(rel.group_keys.size());
      for (int k : rel.group_keys) out->WriteSVarint(k);
      out->WriteVarint(rel.aggregates.size());
      for (const AggregateSpec& agg : rel.aggregates) {
        out->WriteU8(static_cast<uint8_t>(agg.func));
        WriteExpression(agg.argument, out);
        out->WriteString(agg.output_name);
      }
      out->WriteU8(static_cast<uint8_t>(rel.agg_phase));
      break;
    case RelKind::kSort:
      out->WriteVarint(rel.sort_fields.size());
      for (const SortField& sf : rel.sort_fields) {
        out->WriteSVarint(sf.field);
        out->WriteU8(sf.ascending ? 1 : 0);
        out->WriteU8(sf.nulls_first ? 1 : 0);
      }
      break;
    case RelKind::kFetch:
      out->WriteSVarint(rel.offset);
      out->WriteSVarint(rel.count);
      break;
  }
}

Result<std::unique_ptr<Rel>> ReadRel(BufferReader* in, int depth) {
  if (depth > kMaxPipeline) return Status::Corruption("rel: chain too long");
  auto rel = std::make_unique<Rel>();
  POCS_ASSIGN_OR_RETURN(uint8_t kind, in->ReadU8());
  if (kind > static_cast<uint8_t>(RelKind::kFetch)) {
    return Status::Corruption("rel: bad kind");
  }
  rel->kind = static_cast<RelKind>(kind);
  POCS_ASSIGN_OR_RETURN(uint8_t has_input, in->ReadU8());
  if (has_input) {
    POCS_ASSIGN_OR_RETURN(rel->input, ReadRel(in, depth + 1));
  }
  switch (rel->kind) {
    case RelKind::kRead: {
      POCS_ASSIGN_OR_RETURN(rel->bucket, in->ReadString());
      POCS_ASSIGN_OR_RETURN(rel->object, in->ReadString());
      POCS_ASSIGN_OR_RETURN(rel->base_schema, columnar::ipc::ReadSchema(in));
      POCS_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > 10000) return Status::Corruption("rel: too many read columns");
      for (uint64_t i = 0; i < n; ++i) {
        POCS_ASSIGN_OR_RETURN(int64_t c, in->ReadSVarint());
        rel->read_columns.push_back(static_cast<int>(c));
      }
      POCS_ASSIGN_OR_RETURN(rel->hint_version, in->ReadVarint());
      POCS_ASSIGN_OR_RETURN(uint64_t n_hint, in->ReadVarint());
      if (n_hint > 1000000) {
        return Status::Corruption("rel: too many hinted row groups");
      }
      for (uint64_t i = 0; i < n_hint; ++i) {
        POCS_ASSIGN_OR_RETURN(uint64_t g, in->ReadVarint());
        rel->row_group_hint.push_back(static_cast<uint32_t>(g));
      }
      POCS_ASSIGN_OR_RETURN(uint64_t n_bloom, in->ReadVarint());
      if (n_bloom > (1u << 20)) {
        return Status::Corruption("rel: bloom filter too large");
      }
      if (n_bloom > 0) {
        rel->bloom_words.reserve(n_bloom);
        for (uint64_t i = 0; i < n_bloom; ++i) {
          POCS_ASSIGN_OR_RETURN(uint64_t w, in->ReadLE<uint64_t>());
          rel->bloom_words.push_back(w);
        }
        POCS_ASSIGN_OR_RETURN(uint64_t hashes, in->ReadVarint());
        if (hashes == 0 || hashes > 64) {
          return Status::Corruption("rel: bad bloom hash count");
        }
        rel->bloom_hashes = static_cast<uint32_t>(hashes);
        POCS_ASSIGN_OR_RETURN(rel->bloom_seed, in->ReadVarint());
        POCS_ASSIGN_OR_RETURN(int64_t bc, in->ReadSVarint());
        rel->bloom_column = static_cast<int>(bc);
        POCS_ASSIGN_OR_RETURN(rel->bloom_version, in->ReadVarint());
      }
      break;
    }
    case RelKind::kFilter: {
      POCS_ASSIGN_OR_RETURN(rel->predicate, ReadExpression(in));
      break;
    }
    case RelKind::kProject: {
      POCS_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > 10000) return Status::Corruption("rel: too many projections");
      for (uint64_t i = 0; i < n; ++i) {
        POCS_ASSIGN_OR_RETURN(Expression e, ReadExpression(in));
        rel->expressions.push_back(std::move(e));
        POCS_ASSIGN_OR_RETURN(std::string name, in->ReadString());
        rel->output_names.push_back(std::move(name));
      }
      break;
    }
    case RelKind::kAggregate: {
      POCS_ASSIGN_OR_RETURN(uint64_t n_keys, in->ReadVarint());
      if (n_keys > 1000) return Status::Corruption("rel: too many group keys");
      for (uint64_t i = 0; i < n_keys; ++i) {
        POCS_ASSIGN_OR_RETURN(int64_t k, in->ReadSVarint());
        rel->group_keys.push_back(static_cast<int>(k));
      }
      POCS_ASSIGN_OR_RETURN(uint64_t n_aggs, in->ReadVarint());
      if (n_aggs > 1000) return Status::Corruption("rel: too many aggregates");
      for (uint64_t i = 0; i < n_aggs; ++i) {
        AggregateSpec agg;
        POCS_ASSIGN_OR_RETURN(uint8_t func, in->ReadU8());
        if (func > static_cast<uint8_t>(AggFunc::kCountStar)) {
          return Status::Corruption("rel: bad agg func");
        }
        agg.func = static_cast<AggFunc>(func);
        POCS_ASSIGN_OR_RETURN(agg.argument, ReadExpression(in));
        POCS_ASSIGN_OR_RETURN(agg.output_name, in->ReadString());
        rel->aggregates.push_back(std::move(agg));
      }
      POCS_ASSIGN_OR_RETURN(uint8_t phase, in->ReadU8());
      if (phase > static_cast<uint8_t>(AggPhase::kFinal)) {
        return Status::Corruption("rel: bad aggregate phase");
      }
      rel->agg_phase = static_cast<AggPhase>(phase);
      break;
    }
    case RelKind::kSort: {
      POCS_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
      if (n > 1000) return Status::Corruption("rel: too many sort fields");
      for (uint64_t i = 0; i < n; ++i) {
        SortField sf;
        POCS_ASSIGN_OR_RETURN(int64_t f, in->ReadSVarint());
        sf.field = static_cast<int>(f);
        POCS_ASSIGN_OR_RETURN(uint8_t asc, in->ReadU8());
        sf.ascending = asc != 0;
        POCS_ASSIGN_OR_RETURN(uint8_t nf, in->ReadU8());
        sf.nulls_first = nf != 0;
        rel->sort_fields.push_back(sf);
      }
      break;
    }
    case RelKind::kFetch: {
      POCS_ASSIGN_OR_RETURN(rel->offset, in->ReadSVarint());
      POCS_ASSIGN_OR_RETURN(rel->count, in->ReadSVarint());
      break;
    }
  }
  return rel;
}

}  // namespace

Bytes SerializePlan(const Plan& plan) {
  BufferWriter out;
  out.WriteLE<uint32_t>(kMagic);
  out.WriteVarint(plan.version);
  WriteRel(*plan.root, &out);
  return std::move(out).Take();
}

uint64_t PlanFingerprint(const Plan& plan) {
  Bytes wire = SerializePlan(plan);
  return HashBytes(wire.data(), wire.size());
}

Result<Plan> DeserializePlan(ByteSpan data) {
  BufferReader in(data);
  POCS_ASSIGN_OR_RETURN(uint32_t magic, in.ReadLE<uint32_t>());
  if (magic != kMagic) return Status::Corruption("plan: bad magic");
  Plan plan;
  POCS_ASSIGN_OR_RETURN(uint64_t version, in.ReadVarint());
  plan.version = static_cast<uint32_t>(version);
  POCS_ASSIGN_OR_RETURN(plan.root, ReadRel(&in, 0));
  if (!in.exhausted()) return Status::Corruption("plan: trailing bytes");
  POCS_RETURN_NOT_OK(ValidatePlan(plan));
  return plan;
}

}  // namespace pocs::substrait
