#include "substrait/eval.h"

#include <cmath>

#include "columnar/kernels.h"
#include "common/check.h"

namespace pocs::substrait {

using columnar::Column;
using columnar::ColumnPtr;
using columnar::Datum;
using columnar::MakeColumn;
using columnar::RecordBatch;
using columnar::RecordBatchPtr;
using columnar::SelectionVector;
using columnar::TypeKind;

namespace {

// A constant column: the literal repeated n times. Only materialized when
// a literal survives to the top of a call tree; binary ops special-case
// literal operands instead.
ColumnPtr ConstantColumn(const Datum& value, size_t n) {
  auto col = MakeColumn(value.type());
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) col->AppendDatum(value);
  return col;
}

bool IsIntegerType(TypeKind t) {
  return t == TypeKind::kInt32 || t == TypeKind::kInt64 ||
         t == TypeKind::kDate32 || t == TypeKind::kBool;
}

Result<ColumnPtr> EvalArithmetic(const Expression& expr, ColumnPtr lhs,
                                 ColumnPtr rhs) {
  POCS_DCHECK_EQ(lhs->length(), rhs->length());
  const size_t n = lhs->length();
  auto out = MakeColumn(expr.type);
  out->Reserve(n);
  const bool int_math = expr.type != TypeKind::kFloat64 &&
                        IsIntegerType(lhs->type()) &&
                        IsIntegerType(rhs->type());
  for (size_t i = 0; i < n; ++i) {
    if (lhs->IsNull(i) || rhs->IsNull(i)) {
      out->AppendNull();
      continue;
    }
    if (int_math) {
      int64_t a = lhs->GetDatum(i).AsInt64();
      int64_t b = rhs->GetDatum(i).AsInt64();
      int64_t v = 0;
      switch (expr.func) {
        case ScalarFunc::kAdd: v = a + b; break;
        case ScalarFunc::kSubtract: v = a - b; break;
        case ScalarFunc::kMultiply: v = a * b; break;
        case ScalarFunc::kDivide:
        case ScalarFunc::kModulo:
          if (b == 0) {
            out->AppendNull();  // SQL engines raise; we degrade to NULL
            continue;
          }
          v = expr.func == ScalarFunc::kDivide ? a / b : a % b;
          break;
        default:
          return Status::Internal("not arithmetic");
      }
      if (expr.type == TypeKind::kInt64) {
        out->AppendInt64(v);
      } else {
        out->AppendInt32(static_cast<int32_t>(v));
      }
    } else {
      double a = lhs->AsDouble(i);
      double b = rhs->AsDouble(i);
      double v = 0;
      switch (expr.func) {
        case ScalarFunc::kAdd: v = a + b; break;
        case ScalarFunc::kSubtract: v = a - b; break;
        case ScalarFunc::kMultiply: v = a * b; break;
        case ScalarFunc::kDivide:
          if (b == 0) {
            out->AppendNull();
            continue;
          }
          v = a / b;
          break;
        case ScalarFunc::kModulo:
          if (b == 0) {
            out->AppendNull();
            continue;
          }
          v = std::fmod(a, b);
          break;
        default:
          return Status::Internal("not arithmetic");
      }
      out->AppendFloat64(v);
    }
  }
  return ColumnPtr(out);
}

Result<ColumnPtr> EvalComparison(const Expression& expr, ColumnPtr lhs,
                                 ColumnPtr rhs) {
  POCS_DCHECK_EQ(lhs->length(), rhs->length());
  const size_t n = lhs->length();
  auto out = MakeColumn(TypeKind::kBool);
  out->Reserve(n);
  const bool strings = lhs->type() == TypeKind::kString;
  for (size_t i = 0; i < n; ++i) {
    if (lhs->IsNull(i) || rhs->IsNull(i)) {
      out->AppendNull();
      continue;
    }
    int cmp;
    if (strings) {
      auto a = lhs->GetString(i);
      auto b = rhs->GetString(i);
      cmp = a < b ? -1 : (a == b ? 0 : 1);
    } else {
      double a = lhs->AsDouble(i);
      double b = rhs->AsDouble(i);
      cmp = a < b ? -1 : (a == b ? 0 : 1);
    }
    bool v = false;
    switch (expr.func) {
      case ScalarFunc::kEq: v = cmp == 0; break;
      case ScalarFunc::kNe: v = cmp != 0; break;
      case ScalarFunc::kLt: v = cmp < 0; break;
      case ScalarFunc::kLe: v = cmp <= 0; break;
      case ScalarFunc::kGt: v = cmp > 0; break;
      case ScalarFunc::kGe: v = cmp >= 0; break;
      default:
        return Status::Internal("not comparison");
    }
    out->AppendBool(v);
  }
  return ColumnPtr(out);
}

// Kleene AND/OR over nullable booleans.
Result<ColumnPtr> EvalLogicalBinary(const Expression& expr, ColumnPtr lhs,
                                    ColumnPtr rhs) {
  POCS_DCHECK_EQ(lhs->length(), rhs->length());
  const size_t n = lhs->length();
  auto out = MakeColumn(TypeKind::kBool);
  out->Reserve(n);
  const bool is_and = expr.func == ScalarFunc::kAnd;
  for (size_t i = 0; i < n; ++i) {
    const bool ln = lhs->IsNull(i);
    const bool rn = rhs->IsNull(i);
    const bool lv = !ln && lhs->GetBool(i);
    const bool rv = !rn && rhs->GetBool(i);
    if (is_and) {
      if ((!ln && !lv) || (!rn && !rv)) {
        out->AppendBool(false);
      } else if (ln || rn) {
        out->AppendNull();
      } else {
        out->AppendBool(true);
      }
    } else {
      if ((!ln && lv) || (!rn && rv)) {
        out->AppendBool(true);
      } else if (ln || rn) {
        out->AppendNull();
      } else {
        out->AppendBool(false);
      }
    }
  }
  return ColumnPtr(out);
}

}  // namespace

Result<ColumnPtr> Evaluate(const Expression& expr, const RecordBatch& input) {
  switch (expr.kind) {
    case ExprKind::kFieldRef: {
      if (expr.field_index < 0 ||
          static_cast<size_t>(expr.field_index) >= input.num_columns()) {
        return Status::InvalidArgument("eval: field ref out of range");
      }
      const ColumnPtr& col = input.column(expr.field_index);
      POCS_DCHECK_NOTNULL(col.get());
      // The analyzer resolves refs against the batch schema; a length
      // mismatch here means a column was swapped without its siblings.
      POCS_DCHECK_EQ(col->length(), input.num_rows());
      return col;
    }

    case ExprKind::kLiteral:
      return ConstantColumn(expr.literal, input.num_rows());

    case ExprKind::kCall: {
      if (expr.func == ScalarFunc::kNot || expr.func == ScalarFunc::kNegate ||
          expr.func == ScalarFunc::kIsNull) {
        if (expr.args.size() != 1) {
          return Status::InvalidArgument("eval: unary arity");
        }
        POCS_ASSIGN_OR_RETURN(ColumnPtr arg, Evaluate(expr.args[0], input));
        auto out = MakeColumn(expr.type);
        out->Reserve(arg->length());
        if (expr.func == ScalarFunc::kIsNull) {
          // Never null-propagating: IS NULL maps null→true, value→false.
          for (size_t i = 0; i < arg->length(); ++i) {
            out->AppendBool(arg->IsNull(i));
          }
          return ColumnPtr(out);
        }
        for (size_t i = 0; i < arg->length(); ++i) {
          if (arg->IsNull(i)) {
            out->AppendNull();
            continue;
          }
          if (expr.func == ScalarFunc::kNot) {
            out->AppendBool(!arg->GetBool(i));
          } else if (expr.type == TypeKind::kFloat64) {
            out->AppendFloat64(-arg->AsDouble(i));
          } else if (expr.type == TypeKind::kInt64) {
            out->AppendInt64(-arg->GetDatum(i).AsInt64());
          } else {
            out->AppendInt32(static_cast<int32_t>(-arg->GetDatum(i).AsInt64()));
          }
        }
        return ColumnPtr(out);
      }
      if (expr.args.size() != 2) {
        return Status::InvalidArgument("eval: binary arity");
      }
      POCS_ASSIGN_OR_RETURN(ColumnPtr lhs, Evaluate(expr.args[0], input));
      POCS_ASSIGN_OR_RETURN(ColumnPtr rhs, Evaluate(expr.args[1], input));
      if (lhs->length() != rhs->length()) {
        return Status::Internal("eval: operand length mismatch");
      }
      if (IsArithmetic(expr.func)) return EvalArithmetic(expr, lhs, rhs);
      if (IsComparison(expr.func)) return EvalComparison(expr, lhs, rhs);
      if (IsLogical(expr.func)) return EvalLogicalBinary(expr, lhs, rhs);
      return Status::Unimplemented("eval: func");
    }
  }
  return Status::Internal("eval: unknown expr kind");
}

Result<SelectionVector> FilterSelection(const Expression& predicate,
                                        const RecordBatch& input) {
  return FilterSelection(predicate, input, nullptr);
}

Result<SelectionVector> FilterSelection(const Expression& predicate,
                                        const RecordBatch& input,
                                        const SelectionVector* input_sel) {
  if (predicate.type != TypeKind::kBool) {
    return Status::InvalidArgument("filter predicate must be boolean");
  }
  POCS_ASSIGN_OR_RETURN(ColumnPtr mask, Evaluate(predicate, input));
  const uint8_t* bits = mask->bool_data().data();
  const uint8_t* valid =
      mask->has_nulls() ? mask->validity().data() : nullptr;
  SelectionVector sel;
  sel.resize(input_sel ? input_sel->size() : mask->length());
  size_t k = 0;
  if (input_sel != nullptr) {
    for (uint32_t i : *input_sel) {
      sel[k] = i;
      k += static_cast<size_t>((bits[i] != 0) &
                               (valid == nullptr || valid[i] != 0));
    }
  } else {
    const uint32_t n = static_cast<uint32_t>(mask->length());
    for (uint32_t i = 0; i < n; ++i) {
      sel[k] = i;
      k += static_cast<size_t>((bits[i] != 0) &
                               (valid == nullptr || valid[i] != 0));
    }
  }
  sel.resize(k);
  return sel;
}

Result<RecordBatchPtr> FilterBatch(const Expression& predicate,
                                   const RecordBatch& input) {
  POCS_ASSIGN_OR_RETURN(SelectionVector sel, FilterSelection(predicate, input));
  return columnar::TakeBatch(input, sel);
}

}  // namespace pocs::substrait
