// Expression tree of the plan IR — the role Substrait's expression
// messages play in the paper: a standardized, engine-neutral encoding of
// filter predicates, projection arithmetic, and aggregate arguments that
// the connector emits and the OCS embedded engine consumes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "columnar/types.h"

namespace pocs::substrait {

enum class ExprKind : uint8_t {
  kFieldRef = 0,  // input column by index
  kLiteral = 1,
  kCall = 2,  // scalar function application
};

enum class ScalarFunc : uint8_t {
  kAdd = 0,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kNegate,
  kIsNull,  // unary; NOT null-propagating: returns true/false, never null
};

std::string_view ScalarFuncName(ScalarFunc func);
bool IsComparison(ScalarFunc func);
bool IsArithmetic(ScalarFunc func);
bool IsLogical(ScalarFunc func);

struct Expression {
  ExprKind kind = ExprKind::kLiteral;
  columnar::TypeKind type = columnar::TypeKind::kBool;  // result type

  int field_index = -1;                              // kFieldRef
  columnar::Datum literal;                           // kLiteral
  ScalarFunc func = ScalarFunc::kAdd;                // kCall
  std::vector<Expression> args;                      // kCall

  static Expression FieldRef(int index, columnar::TypeKind type) {
    Expression e;
    e.kind = ExprKind::kFieldRef;
    e.field_index = index;
    e.type = type;
    return e;
  }
  static Expression Literal(columnar::Datum value) {
    Expression e;
    e.kind = ExprKind::kLiteral;
    e.type = value.type();
    e.literal = std::move(value);
    return e;
  }
  static Expression Call(ScalarFunc func, std::vector<Expression> args,
                         columnar::TypeKind type) {
    Expression e;
    e.kind = ExprKind::kCall;
    e.func = func;
    e.args = std::move(args);
    e.type = type;
    return e;
  }

  // Result type of an arithmetic call over the given operand types
  // (float64 wins; otherwise int64).
  static columnar::TypeKind PromoteNumeric(columnar::TypeKind a,
                                           columnar::TypeKind b);

  // Human-readable form, e.g. "(x >= 0.8)".
  std::string ToString(const columnar::Schema* input = nullptr) const;

  // All field indices referenced anywhere in the tree.
  void CollectFieldRefs(std::vector<int>* out) const;
};

enum class AggFunc : uint8_t {
  kSum = 0,
  kMin,
  kMax,
  kAvg,
  kCount,      // COUNT(expr): non-null rows
  kCountStar,  // COUNT(*)
};

std::string_view AggFuncName(AggFunc func);

struct AggregateSpec {
  AggFunc func = AggFunc::kCountStar;
  Expression argument;  // ignored for kCountStar
  std::string output_name;

  columnar::TypeKind OutputType() const {
    switch (func) {
      case AggFunc::kCount:
      case AggFunc::kCountStar:
        return columnar::TypeKind::kInt64;
      case AggFunc::kAvg:
        return columnar::TypeKind::kFloat64;
      case AggFunc::kSum:
        return columnar::IsNumeric(argument.type) &&
                       argument.type != columnar::TypeKind::kFloat64
                   ? columnar::TypeKind::kInt64
                   : columnar::TypeKind::kFloat64;
      case AggFunc::kMin:
      case AggFunc::kMax:
        return argument.type;
    }
    return columnar::TypeKind::kFloat64;
  }
};

}  // namespace pocs::substrait
