#include "substrait/expr.h"

#include <sstream>

namespace pocs::substrait {

std::string_view ScalarFuncName(ScalarFunc func) {
  switch (func) {
    case ScalarFunc::kAdd: return "+";
    case ScalarFunc::kSubtract: return "-";
    case ScalarFunc::kMultiply: return "*";
    case ScalarFunc::kDivide: return "/";
    case ScalarFunc::kModulo: return "%";
    case ScalarFunc::kEq: return "=";
    case ScalarFunc::kNe: return "<>";
    case ScalarFunc::kLt: return "<";
    case ScalarFunc::kLe: return "<=";
    case ScalarFunc::kGt: return ">";
    case ScalarFunc::kGe: return ">=";
    case ScalarFunc::kAnd: return "AND";
    case ScalarFunc::kOr: return "OR";
    case ScalarFunc::kNot: return "NOT";
    case ScalarFunc::kNegate: return "-";
    case ScalarFunc::kIsNull: return "IS NULL";
  }
  return "?";
}

bool IsComparison(ScalarFunc func) {
  switch (func) {
    case ScalarFunc::kEq:
    case ScalarFunc::kNe:
    case ScalarFunc::kLt:
    case ScalarFunc::kLe:
    case ScalarFunc::kGt:
    case ScalarFunc::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(ScalarFunc func) {
  switch (func) {
    case ScalarFunc::kAdd:
    case ScalarFunc::kSubtract:
    case ScalarFunc::kMultiply:
    case ScalarFunc::kDivide:
    case ScalarFunc::kModulo:
    case ScalarFunc::kNegate:
      return true;
    default:
      return false;
  }
}

bool IsLogical(ScalarFunc func) {
  return func == ScalarFunc::kAnd || func == ScalarFunc::kOr ||
         func == ScalarFunc::kNot;
}

columnar::TypeKind Expression::PromoteNumeric(columnar::TypeKind a,
                                              columnar::TypeKind b) {
  using columnar::TypeKind;
  if (a == TypeKind::kFloat64 || b == TypeKind::kFloat64) {
    return TypeKind::kFloat64;
  }
  return TypeKind::kInt64;
}

std::string Expression::ToString(const columnar::Schema* input) const {
  switch (kind) {
    case ExprKind::kFieldRef:
      if (input && field_index >= 0 &&
          static_cast<size_t>(field_index) < input->num_fields()) {
        return input->field(field_index).name;
      }
      return "$" + std::to_string(field_index);
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kCall: {
      std::ostringstream os;
      if (args.size() == 1) {
        os << ScalarFuncName(func) << "(" << args[0].ToString(input) << ")";
      } else if (args.size() == 2) {
        os << "(" << args[0].ToString(input) << " " << ScalarFuncName(func)
           << " " << args[1].ToString(input) << ")";
      } else {
        os << ScalarFuncName(func) << "(";
        for (size_t i = 0; i < args.size(); ++i) {
          if (i) os << ", ";
          os << args[i].ToString(input);
        }
        os << ")";
      }
      return os.str();
    }
  }
  return "?";
}

void Expression::CollectFieldRefs(std::vector<int>* out) const {
  if (kind == ExprKind::kFieldRef) {
    out->push_back(field_index);
    return;
  }
  for (const Expression& arg : args) arg.CollectFieldRefs(out);
}

std::string_view AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kCountStar: return "COUNT(*)";
  }
  return "?";
}

}  // namespace pocs::substrait
