// Binary wire format for plans — the role protobuf-serialized Substrait
// plays in the paper (§4: "The completed Substrait plan is serialized
// using Protocol Buffers and transmitted to OCS via gRPC"). Varint-based,
// self-delimiting, with strict bounds checks on parse.
#pragma once

#include "common/buffer.h"
#include "substrait/rel.h"

namespace pocs::substrait {

Bytes SerializePlan(const Plan& plan);
Result<Plan> DeserializePlan(ByteSpan data);

// Canonical 64-bit fingerprint of a plan: a hash over SerializePlan's
// output, which is already deterministic (no map iteration, no
// pointers), so two structurally identical plans — whether built fresh
// or round-tripped through the wire — always collide. Keys the
// connector-side split-result cache together with the object version.
uint64_t PlanFingerprint(const Plan& plan);

// Expression-level helpers (used by plan serialization and tests).
void WriteExpression(const Expression& expr, BufferWriter* out);
Result<Expression> ReadExpression(BufferReader* in, int depth = 0);

}  // namespace pocs::substrait
