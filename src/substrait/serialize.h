// Binary wire format for plans — the role protobuf-serialized Substrait
// plays in the paper (§4: "The completed Substrait plan is serialized
// using Protocol Buffers and transmitted to OCS via gRPC"). Varint-based,
// self-delimiting, with strict bounds checks on parse.
#pragma once

#include "common/buffer.h"
#include "substrait/rel.h"

namespace pocs::substrait {

Bytes SerializePlan(const Plan& plan);
Result<Plan> DeserializePlan(ByteSpan data);

// Expression-level helpers (used by plan serialization and tests).
void WriteExpression(const Expression& expr, BufferWriter* out);
Result<Expression> ReadExpression(BufferReader* in, int depth = 0);

}  // namespace pocs::substrait
