// Vectorized evaluation of IR expressions over record batches. Shared by
// the OCS embedded engine (storage-side execution) and the compute
// engine's filter/project operators, guaranteeing both sides agree on
// expression semantics (null propagation, numeric promotion, Kleene
// logic) — the property the paper relies on when splitting a plan
// between storage and compute.
#pragma once

#include "columnar/batch.h"
#include "columnar/kernels.h"
#include "substrait/expr.h"

namespace pocs::substrait {

// Evaluate `expr` against every row of `input`; the result column has
// expr.type and input.num_rows() entries.
//
// Semantics: arithmetic and comparisons propagate nulls (any null operand
// -> null result); integer division/modulo by zero -> null; AND/OR use
// three-valued Kleene logic; NOT(null) = null.
Result<columnar::ColumnPtr> Evaluate(const Expression& expr,
                                     const columnar::RecordBatch& input);

// Evaluate a boolean predicate and keep the rows where it is TRUE
// (null and false rows are dropped, SQL WHERE semantics).
Result<columnar::RecordBatchPtr> FilterBatch(
    const Expression& predicate, const columnar::RecordBatch& input);

// Rows of `input` where `predicate` is TRUE, as a selection vector.
Result<columnar::SelectionVector> FilterSelection(
    const Expression& predicate, const columnar::RecordBatch& input);

// Selection-aware variant: the result is the subset of `input_sel`
// (every row of the batch when null) where `predicate` is TRUE. The
// predicate is evaluated vectorized over the whole batch; rows outside
// `input_sel` never appear in the output, so batches carrying
// unmaterialized placeholder rows (DESIGN.md §15) stay correct.
Result<columnar::SelectionVector> FilterSelection(
    const Expression& predicate, const columnar::RecordBatch& input,
    const columnar::SelectionVector* input_sel);

}  // namespace pocs::substrait
