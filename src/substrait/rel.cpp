#include "substrait/rel.h"

#include <sstream>

namespace pocs::substrait {

using columnar::Field;
using columnar::MakeSchema;
using columnar::Schema;
using columnar::SchemaPtr;
using columnar::TypeKind;

std::string_view RelKindName(RelKind kind) {
  switch (kind) {
    case RelKind::kRead: return "Read";
    case RelKind::kFilter: return "Filter";
    case RelKind::kProject: return "Project";
    case RelKind::kAggregate: return "Aggregate";
    case RelKind::kSort: return "Sort";
    case RelKind::kFetch: return "Fetch";
  }
  return "?";
}

std::string_view AggPhaseName(AggPhase phase) {
  switch (phase) {
    case AggPhase::kSingle: return "single";
    case AggPhase::kPartial: return "partial";
    case AggPhase::kFinal: return "final";
  }
  return "?";
}

namespace {

// Checks that every field reference in expr is valid against the schema
// and that the recorded result types are consistent.
Status CheckExpression(const Expression& expr, const Schema& input) {
  switch (expr.kind) {
    case ExprKind::kFieldRef:
      if (expr.field_index < 0 ||
          static_cast<size_t>(expr.field_index) >= input.num_fields()) {
        return Status::InvalidArgument(
            "field ref $" + std::to_string(expr.field_index) +
            " out of range for " + input.ToString());
      }
      if (input.field(expr.field_index).type != expr.type) {
        return Status::InvalidArgument(
            "field ref $" + std::to_string(expr.field_index) +
            " type mismatch");
      }
      return Status::OK();
    case ExprKind::kLiteral:
      if (expr.literal.type() != expr.type) {
        return Status::InvalidArgument("literal type mismatch");
      }
      return Status::OK();
    case ExprKind::kCall: {
      for (const Expression& arg : expr.args) {
        POCS_RETURN_NOT_OK(CheckExpression(arg, input));
      }
      const size_t arity =
          (expr.func == ScalarFunc::kNot || expr.func == ScalarFunc::kNegate ||
           expr.func == ScalarFunc::kIsNull)
              ? 1
              : 2;
      if (expr.args.size() != arity) {
        return Status::InvalidArgument(
            std::string(ScalarFuncName(expr.func)) + " expects " +
            std::to_string(arity) + " args");
      }
      if ((IsComparison(expr.func) || IsLogical(expr.func)) &&
          expr.type != TypeKind::kBool) {
        return Status::InvalidArgument("comparison/logical must be bool");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown expr kind");
}

}  // namespace

Result<SchemaPtr> OutputSchema(const Rel& rel) {
  if (rel.kind == RelKind::kRead) {
    if (rel.input) return Status::InvalidArgument("read rel has an input");
    if (!rel.base_schema) return Status::InvalidArgument("read rel: no schema");
    const size_t scan_width = rel.read_columns.empty()
                                  ? rel.base_schema->num_fields()
                                  : rel.read_columns.size();
    if (!rel.bloom_words.empty()) {
      if (rel.bloom_column < 0 ||
          static_cast<size_t>(rel.bloom_column) >= scan_width) {
        return Status::InvalidArgument("read rel: bloom column out of range");
      }
      if (rel.bloom_hashes == 0) {
        return Status::InvalidArgument("read rel: bloom with zero hashes");
      }
    }
    if (rel.read_columns.empty()) return SchemaPtr(rel.base_schema);
    std::vector<Field> fields;
    for (int c : rel.read_columns) {
      if (c < 0 || static_cast<size_t>(c) >= rel.base_schema->num_fields()) {
        return Status::InvalidArgument("read rel: bad column index");
      }
      fields.push_back(rel.base_schema->field(c));
    }
    return MakeSchema(std::move(fields));
  }

  if (!rel.input) {
    return Status::InvalidArgument(std::string(RelKindName(rel.kind)) +
                                   " rel: missing input");
  }
  POCS_ASSIGN_OR_RETURN(SchemaPtr input, OutputSchema(*rel.input));

  switch (rel.kind) {
    case RelKind::kFilter:
      POCS_RETURN_NOT_OK(CheckExpression(rel.predicate, *input));
      if (rel.predicate.type != TypeKind::kBool) {
        return Status::InvalidArgument("filter predicate must be bool");
      }
      return input;

    case RelKind::kProject: {
      if (rel.expressions.empty()) {
        return Status::InvalidArgument("project rel: no expressions");
      }
      if (rel.output_names.size() != rel.expressions.size()) {
        return Status::InvalidArgument("project rel: name/expr count mismatch");
      }
      std::vector<Field> fields;
      for (size_t i = 0; i < rel.expressions.size(); ++i) {
        POCS_RETURN_NOT_OK(CheckExpression(rel.expressions[i], *input));
        fields.push_back({rel.output_names[i], rel.expressions[i].type});
      }
      return MakeSchema(std::move(fields));
    }

    case RelKind::kAggregate: {
      std::vector<Field> fields;
      for (int key : rel.group_keys) {
        if (key < 0 || static_cast<size_t>(key) >= input->num_fields()) {
          return Status::InvalidArgument("aggregate rel: bad group key");
        }
        fields.push_back(input->field(key));
      }
      if (rel.aggregates.empty()) {
        return Status::InvalidArgument("aggregate rel: no aggregate funcs");
      }
      for (const AggregateSpec& agg : rel.aggregates) {
        if (agg.func != AggFunc::kCountStar) {
          POCS_RETURN_NOT_OK(CheckExpression(agg.argument, *input));
          if (agg.func != AggFunc::kMin && agg.func != AggFunc::kMax &&
              !columnar::IsNumeric(agg.argument.type)) {
            return Status::InvalidArgument(
                std::string(AggFuncName(agg.func)) + " needs numeric arg");
          }
        }
        fields.push_back({agg.output_name, agg.OutputType()});
      }
      return MakeSchema(std::move(fields));
    }

    case RelKind::kSort:
      if (rel.sort_fields.empty()) {
        return Status::InvalidArgument("sort rel: no sort fields");
      }
      for (const SortField& sf : rel.sort_fields) {
        if (sf.field < 0 ||
            static_cast<size_t>(sf.field) >= input->num_fields()) {
          return Status::InvalidArgument("sort rel: bad field index");
        }
      }
      return input;

    case RelKind::kFetch:
      if (rel.offset < 0) {
        return Status::InvalidArgument("fetch rel: negative offset");
      }
      return input;

    case RelKind::kRead:
      break;  // handled above
  }
  return Status::Internal("unknown rel kind");
}

Status ValidatePlan(const Plan& plan) {
  if (!plan.root) return Status::InvalidArgument("plan has no root");
  return OutputSchema(*plan.root).status();
}

std::string PlanToString(const Plan& plan) {
  std::vector<const Rel*> chain;
  for (const Rel* r = plan.root.get(); r != nullptr; r = r->input.get()) {
    chain.push_back(r);
  }
  std::ostringstream os;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it != chain.rbegin()) os << " -> ";
    os << RelKindName((*it)->kind);
    if ((*it)->kind == RelKind::kRead) {
      os << "(" << (*it)->bucket << "/" << (*it)->object;
      if (!(*it)->bloom_words.empty()) os << ", bloom";
      os << ")";
    } else if ((*it)->kind == RelKind::kAggregate &&
               (*it)->agg_phase != AggPhase::kSingle) {
      os << "(" << AggPhaseName((*it)->agg_phase) << ")";
    }
  }
  return os.str();
}

std::unique_ptr<Rel> CloneRel(const Rel& rel) {
  auto out = std::make_unique<Rel>();
  out->kind = rel.kind;
  if (rel.input) out->input = CloneRel(*rel.input);
  out->bucket = rel.bucket;
  out->object = rel.object;
  out->base_schema = rel.base_schema;
  out->read_columns = rel.read_columns;
  out->row_group_hint = rel.row_group_hint;
  out->hint_version = rel.hint_version;
  out->bloom_words = rel.bloom_words;
  out->bloom_hashes = rel.bloom_hashes;
  out->bloom_seed = rel.bloom_seed;
  out->bloom_column = rel.bloom_column;
  out->bloom_version = rel.bloom_version;
  out->predicate = rel.predicate;
  out->expressions = rel.expressions;
  out->output_names = rel.output_names;
  out->group_keys = rel.group_keys;
  out->aggregates = rel.aggregates;
  out->agg_phase = rel.agg_phase;
  out->sort_fields = rel.sort_fields;
  out->offset = rel.offset;
  out->count = rel.count;
  return out;
}

}  // namespace pocs::substrait
