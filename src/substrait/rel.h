// Relational operators of the plan IR, mirroring Substrait's relation set
// that OCS supports (§2.3 of the paper): ReadRel (named-table scan with
// column selection), FilterRel, ProjectRel, AggregateRel, SortRel, and
// FetchRel (limit). A Plan is a single linear pipeline rooted at a read —
// exactly the shape the Presto-OCS connector pushes down (joins and other
// multi-input operators are residual, executed compute-side).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "substrait/expr.h"

namespace pocs::substrait {

enum class RelKind : uint8_t {
  kRead = 0,
  kFilter = 1,
  kProject = 2,
  kAggregate = 3,
  kSort = 4,
  kFetch = 5,
};

std::string_view RelKindName(RelKind kind);

// Phase marker for AggregateRel: whether the relation computes the whole
// aggregation (kSingle), the storage-side partial half of a two-phase
// decomposition (kPartial — the aggregate specs are already rewritten via
// engine::PartialAggSpecs, AVG as sum+count), or the engine-side merge
// (kFinal). Storage only ever receives kSingle or kPartial; the marker
// makes pushed plans self-describing for logging and audits.
enum class AggPhase : uint8_t {
  kSingle = 0,
  kPartial = 1,
  kFinal = 2,
};

std::string_view AggPhaseName(AggPhase phase);

struct SortField {
  int field = 0;  // index into input schema
  bool ascending = true;
  bool nulls_first = true;
};

struct Rel {
  RelKind kind = RelKind::kRead;
  std::unique_ptr<Rel> input;  // null iff kind == kRead

  // -- kRead: named table = (bucket, object key) in the object store.
  std::string bucket;
  std::string object;
  std::shared_ptr<const columnar::Schema> base_schema;
  std::vector<int> read_columns;  // projection at scan; empty = all
  // Planner row-group hint: groups the coordinator's stats-based pruning
  // kept (empty = no hint, scan all). Advisory — storage honors it only
  // when hint_version matches the object's current version, so a hint
  // computed from stale stats silently degrades to a full scan.
  std::vector<uint32_t> row_group_hint;
  uint64_t hint_version = 0;
  // Semi-join bloom filter over one scan-output column (DESIGN.md §14):
  // rows whose key misses the filter are dropped at the scan, before any
  // bytes leave the storage node. Empty `bloom_words` = no filter.
  // Advisory like the row-group hint — storage honors it only when
  // bloom_version matches the object's current version; a stale pin
  // degrades to an unfiltered scan (the engine's exact probe re-checks
  // every row, so false positives and skipped filters are both safe).
  std::vector<uint64_t> bloom_words;
  uint32_t bloom_hashes = 0;
  uint64_t bloom_seed = 0;
  int bloom_column = -1;  // index into the scan output (read_columns order)
  uint64_t bloom_version = 0;

  // -- kFilter
  Expression predicate;

  // -- kProject: output columns are exactly `expressions` (no passthrough).
  std::vector<Expression> expressions;
  std::vector<std::string> output_names;

  // -- kAggregate
  std::vector<int> group_keys;  // indices into input schema
  std::vector<AggregateSpec> aggregates;
  AggPhase agg_phase = AggPhase::kSingle;

  // -- kSort
  std::vector<SortField> sort_fields;

  // -- kFetch
  int64_t offset = 0;
  int64_t count = -1;  // -1 = unlimited
};

struct Plan {
  uint32_t version = 1;
  std::unique_ptr<Rel> root;
};

// The schema a relation produces. Errors on malformed trees (bad field
// indices, missing input, type mismatches) — doubles as the validator.
Result<columnar::SchemaPtr> OutputSchema(const Rel& rel);

// Convenience: validate the whole plan.
Status ValidatePlan(const Plan& plan);

// Pipeline description like "Read(laghos/f0) -> Filter -> Aggregate".
std::string PlanToString(const Plan& plan);

// Deep copy (Rel owns its input uniquely).
std::unique_ptr<Rel> CloneRel(const Rel& rel);

}  // namespace pocs::substrait
