#include "workloads/laghos.h"

#include <random>

namespace pocs::workloads {

using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;

columnar::SchemaPtr LaghosSchema() {
  return MakeSchema({{"vertex_id", TypeKind::kInt64},
                     {"x", TypeKind::kFloat64},
                     {"y", TypeKind::kFloat64},
                     {"z", TypeKind::kFloat64},
                     {"e", TypeKind::kFloat64},
                     {"rho", TypeKind::kFloat64},
                     {"p", TypeKind::kFloat64},
                     {"vx", TypeKind::kFloat64},
                     {"vy", TypeKind::kFloat64},
                     {"vz", TypeKind::kFloat64}});
}

Result<GeneratedDataset> GenerateLaghos(const LaghosConfig& config) {
  auto schema = LaghosSchema();
  DatasetBuilder builder("default", "laghos", "hpc", schema);
  format::WriterOptions options;
  options.codec = config.codec;
  options.rows_per_group = config.rows_per_group;

  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coord(0.0, 4.0);
  std::uniform_real_distribution<double> energy(0.0, 1000.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  for (size_t f = 0; f < config.num_files; ++f) {
    auto vertex_id = MakeColumn(TypeKind::kInt64);
    auto x = MakeColumn(TypeKind::kFloat64);
    auto y = MakeColumn(TypeKind::kFloat64);
    auto z = MakeColumn(TypeKind::kFloat64);
    auto e = MakeColumn(TypeKind::kFloat64);
    auto rho = MakeColumn(TypeKind::kFloat64);
    auto p = MakeColumn(TypeKind::kFloat64);
    auto vx = MakeColumn(TypeKind::kFloat64);
    auto vy = MakeColumn(TypeKind::kFloat64);
    auto vz = MakeColumn(TypeKind::kFloat64);
    const int64_t vertex_base = static_cast<int64_t>(
        f * config.rows_per_file / std::max<size_t>(config.rows_per_vertex, 1));
    for (size_t r = 0; r < config.rows_per_file; ++r) {
      vertex_id->AppendInt64(
          vertex_base +
          static_cast<int64_t>(r / std::max<size_t>(config.rows_per_vertex, 1)));
      x->AppendFloat64(coord(rng));
      y->AppendFloat64(coord(rng));
      z->AppendFloat64(coord(rng));
      e->AppendFloat64(energy(rng));
      rho->AppendFloat64(unit(rng) * 10.0);
      p->AppendFloat64(unit(rng) * 101325.0);
      vx->AppendFloat64(unit(rng) * 2.0 - 1.0);
      vy->AppendFloat64(unit(rng) * 2.0 - 1.0);
      vz->AppendFloat64(unit(rng) * 2.0 - 1.0);
    }
    auto batch = MakeBatch(
        schema, {vertex_id, x, y, z, e, rho, p, vx, vy, vz});
    POCS_RETURN_NOT_OK(builder.AddFile(
        "laghos/part-" + std::to_string(f), {batch}, options));
  }
  return builder.Finish();
}

std::string LaghosQuery(const std::string& table, int64_t limit) {
  return "SELECT min(vertex_id) AS vid, min(x), min(y), min(z), avg(e) AS e "
         "FROM " + table +
         " WHERE x BETWEEN 0.8 AND 3.2 AND y BETWEEN 0.8 AND 3.2 "
         "AND z BETWEEN 0.8 AND 3.2 "
         "GROUP BY vertex_id ORDER BY e LIMIT " + std::to_string(limit);
}

std::string LaghosSelectiveQuery(const std::string& table, int64_t max_vertex,
                                 int64_t limit) {
  return "SELECT min(vertex_id) AS vid, min(x), min(y), min(z), avg(e) AS e "
         "FROM " + table +
         " WHERE x BETWEEN 0.8 AND 3.2 AND y BETWEEN 0.8 AND 3.2 "
         "AND z BETWEEN 0.8 AND 3.2 "
         "AND vertex_id < " + std::to_string(max_vertex) +
         " GROUP BY vertex_id ORDER BY e LIMIT " + std::to_string(limit);
}

}  // namespace pocs::workloads
