#include "workloads/chaos.h"

#include "workloads/deepwater.h"
#include "workloads/laghos.h"
#include "workloads/tpch.h"

namespace pocs::workloads {

std::vector<std::string> ChaosProfiles() {
  return {"crash-storage", "slow-link", "partition", "flaky-rpc",
          "flaky-rpc-cached", "stats-drop", "join-drop"};
}

Result<ChaosExpectation> ChaosExpectationFor(const std::string& profile) {
  // Profiles that take in-storage execution away entirely must recover
  // through the engine-side fallback; transient ones heal via retries
  // and never need it.
  if (profile == "none") return ChaosExpectation{};
  if (profile == "crash-storage") return ChaosExpectation{.expect_fallbacks = true};
  if (profile == "slow-link") return ChaosExpectation{.expect_fallbacks = true};
  if (profile == "partition") return ChaosExpectation{.expect_retries = true};
  if (profile == "flaky-rpc") return ChaosExpectation{};
  if (profile == "flaky-rpc-cached") {
    return ChaosExpectation{.expect_fallbacks = true,
                            .expect_cache_effects = true};
  }
  if (profile == "stats-drop") {
    return ChaosExpectation{.expect_stats_unavailable = true};
  }
  if (profile == "join-drop") {
    // In-storage execution is gone, so pushed join-key blooms and partial
    // aggregations cannot run at storage; every split must recover
    // through the engine-side fallback with identical rows.
    return ChaosExpectation{.expect_fallbacks = true};
  }
  return Status::InvalidArgument("unknown chaos profile: " + profile);
}

Result<TestbedConfig> MakeChaosTestbedConfig(const ChaosConfig& config) {
  TestbedConfig bed;
  bed.cluster.num_storage_nodes = 2;
  connectors::OcsDispatchPolicy& d = bed.ocs_connector.dispatch;
  d.call.jitter_seed = config.seed;
  d.fallback_call.jitter_seed = config.seed + 1;
  if (config.profile == "none" || config.profile == "crash-storage" ||
      config.profile == "join-drop") {
    // Defaults: 3 attempts, no deadline. A crashed exec engine fails all
    // three, then the split re-plans through the fallback.
  } else if (config.profile == "slow-link") {
    // The degraded link blows any reasonable dispatch deadline on the
    // first attempt; retrying a persistently slow link is wasted time,
    // so go straight to the fallback (whose GET has no deadline — the
    // raw object is slow but unavoidable).
    d.call.max_attempts = 1;
    d.call.deadline_seconds = 0.25;
  } else if (config.profile == "partition") {
    // The partition heals at attempt 2; three attempts reach it.
    d.call.max_attempts = 3;
  } else if (config.profile == "flaky-rpc") {
    // Independent 20% drops per leg: six attempts push the residual
    // dispatch-failure probability to ~1e-3, and the fallback catches
    // the stragglers.
    d.call.max_attempts = 6;
    d.fallback_call.max_attempts = 6;
  } else if (config.profile == "flaky-rpc-cached") {
    // In-storage execution is dead (ApplyChaos crashes every exec engine)
    // and the compute↔frontend link drops 20% of messages: every split
    // degrades to the *chunked* fallback, where an rpc-level retry
    // re-requests one lost 32 KiB range instead of the whole object —
    // bytes_refetched_on_retry stays well below the bytes moved. The
    // split-result cache serves repeat scans after a metadata-only
    // revalidation.
    d.call.max_attempts = 1;  // exec is gone; extra attempts are waste
    d.fallback_call.max_attempts = 6;
    d.fallback_chunk_bytes = 32 << 10;
    bed.ocs_connector.split_result_cache_bytes = 64ull << 20;
  } else if (config.profile == "stats-drop") {
    // Split pruning is armed (metadata cache on) but ApplyChaos takes the
    // stats RPC away: every DescribeObject fails, planning must degrade
    // to the unpruned path and the dispatch layer never sees a fault.
    bed.ocs_connector.metadata_cache_bytes = 8ull << 20;
  } else {
    return Status::InvalidArgument("unknown chaos profile: " + config.profile);
  }
  return bed;
}

Status ApplyChaos(Testbed* bed, const ChaosConfig& config) {
  if (config.profile == "none") {
    bed->SetFaultPlan(nullptr);
    return Status::OK();
  }
  if (config.profile == "crash-storage" || config.profile == "join-drop") {
    for (size_t i = 0; i < bed->cluster().num_storage_nodes(); ++i) {
      bed->cluster().mutable_storage_node(i).faults().exec_crashed.store(true);
    }
    return Status::OK();
  }
  if (config.profile == "stats-drop") {
    // Only the stats service goes down; data-path RPCs stay healthy.
    bed->cluster().SetDescribeCrashed(true);
    return Status::OK();
  }
  if (config.profile == "flaky-rpc-cached") {
    // Storage-side execution down AND a lossy link: the query must heal
    // through the chunked, cache-retained fallback alone.
    for (size_t i = 0; i < bed->cluster().num_storage_nodes(); ++i) {
      bed->cluster().mutable_storage_node(i).faults().exec_crashed.store(true);
    }
    auto plan = std::make_shared<netsim::FaultPlan>(config.seed);
    netsim::FaultRule rule = netsim::FaultPlan::Flaky(0.2);
    rule.all_links = false;
    rule.a = bed->compute_node();
    rule.b = bed->cluster().frontend_node();
    plan->AddRule(rule);
    bed->SetFaultPlan(std::move(plan));
    return Status::OK();
  }
  auto plan = std::make_shared<netsim::FaultPlan>(config.seed);
  if (config.profile == "slow-link") {
    plan->AddRule(netsim::FaultPlan::SlowLinks(/*bandwidth_factor=*/0.1,
                                               /*extra_latency_seconds=*/1.0));
  } else if (config.profile == "partition") {
    plan->AddRule(netsim::FaultPlan::Partition(
        bed->compute_node(), bed->cluster().frontend_node(),
        /*heal_at_attempt=*/2));
  } else if (config.profile == "flaky-rpc") {
    // Scope the drops to the compute↔frontend link: the frontend's
    // internal hops always dispatch at attempt 0, so an all-links flaky
    // rule would re-fail them identically on every outer retry (the
    // decision is a pure function of link/flow/attempt) and no retry
    // budget could ever heal it.
    netsim::FaultRule rule = netsim::FaultPlan::Flaky(0.2);
    rule.all_links = false;
    rule.a = bed->compute_node();
    rule.b = bed->cluster().frontend_node();
    plan->AddRule(rule);
  } else {
    return Status::InvalidArgument("unknown chaos profile: " + config.profile);
  }
  bed->SetFaultPlan(std::move(plan));
  return Status::OK();
}

Status IngestChaosDatasets(Testbed* bed) {
  TpchConfig tpch;
  tpch.num_files = 3;
  tpch.rows_per_file = 1 << 12;
  tpch.rows_per_group = 1 << 10;
  POCS_ASSIGN_OR_RETURN(GeneratedDataset lineitem, GenerateLineitem(tpch));
  POCS_RETURN_NOT_OK(bed->Ingest(std::move(lineitem)));

  LaghosConfig laghos;
  laghos.num_files = 4;
  laghos.rows_per_file = 1 << 12;
  laghos.rows_per_group = 1 << 10;
  POCS_ASSIGN_OR_RETURN(GeneratedDataset mesh, GenerateLaghos(laghos));
  POCS_RETURN_NOT_OK(bed->Ingest(std::move(mesh)));

  DeepWaterConfig deepwater;
  deepwater.num_files = 4;
  deepwater.rows_per_file = 1 << 12;
  deepwater.rows_per_group = 1 << 10;
  POCS_ASSIGN_OR_RETURN(GeneratedDataset impact, GenerateDeepWater(deepwater));
  POCS_RETURN_NOT_OK(bed->Ingest(std::move(impact)));

  SupplierConfig supplier;
  supplier.num_suppliers = 500;
  POCS_ASSIGN_OR_RETURN(GeneratedDataset dim, GenerateSupplier(supplier));
  return bed->Ingest(std::move(dim));
}

std::vector<std::pair<std::string, std::string>> ChaosQueries() {
  // Existing indices are load-bearing for seeded replay tests: only
  // append at the end.
  return {
      {"tpch_q1", TpchQ1("lineitem")},
      {"tpch_q6", TpchQ6("lineitem")},
      {"laghos", LaghosQuery("laghos")},
      {"deepwater", DeepWaterQuery("deepwater")},
      {"tpch_join", TpchJoinQuery("lineitem", "supplier")},
  };
}

}  // namespace pocs::workloads
