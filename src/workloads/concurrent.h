// Seeded concurrent-workload driver (DESIGN.md §12): N interleaved
// queries across M tenants against one testbed, exercising admission
// control, bounded in-flight splits, and load-aware split dispatch all
// at once. The basis of the `ctest -L concurrency` tier and the
// concurrent section of the bench report.
//
// Determinism contract. The driver derives a deterministic arrival
// schedule from the seed (which tenant submits which query template, in
// which order), then:
//   1. pauses the admission controller,
//   2. enqueues the whole schedule sequentially on the driving thread —
//      so every accept/reject outcome is decided by the schedule alone,
//   3. spawns one runner thread per accepted query (each waits on its
//      pre-enqueued ticket), unpauses, and joins.
// Execution interleaving is then free to vary, but (a) each query's
// rows are independent of interleaving (splits merge associatively and
// the engine orders results), (b) the cumulative admission.* counters
// are pure functions of the schedule, and (c) per-node dispatch.plans
// counters depend only on placement, which is deterministic. The replay
// test asserts all three bit-for-bit across two fresh testbeds.
//
// Timing (per-tenant p50/p95/p99 simulated seconds, queue waits) is
// measured, not modelled — reported, never gated exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/testbed.h"

namespace pocs::workloads {

// One tenant of the concurrent workload and its resource-group shape.
struct TenantSpec {
  std::string name;
  uint32_t weight = 1;
  uint32_t max_concurrent = 2;
  uint32_t max_queued = 8;
};

struct ConcurrentWorkloadConfig {
  uint64_t seed = 1;
  // Total queries in the schedule, spread across tenants by seeded
  // draws over ChaosQueries() templates.
  size_t num_queries = 24;
  std::vector<TenantSpec> tenants;  // empty → DefaultTenants()
  std::string catalog = "ocs";
  // Global running-query cap (the coordinator's concurrency budget).
  uint32_t global_max_concurrent = 4;
};

// The standard three-tenant mix: a heavy interactive tenant, a batch
// tenant with one slot, and a bursty ad-hoc tenant with a short queue
// (whose overflow exercises the rejection path).
std::vector<TenantSpec> DefaultTenants();

// Testbed tuned for the concurrent tier: 3 storage nodes, least-loaded
// placement, admission + load-aware dispatch on, bounded in-flight
// splits, and the row-group cache off (its hit pattern depends on
// interleaving, which would poison the exact-counter contract).
TestbedConfig MakeConcurrentTestbedConfig(const ConcurrentWorkloadConfig& cfg);

// Outcome of one scheduled query, in schedule order.
struct QueryOutcome {
  std::string tenant;
  std::string query;       // template name, e.g. "tpch_q6"
  bool rejected = false;   // refused at Enqueue (queue full)
  uint64_t rows = 0;
  uint64_t row_fingerprint = 0;  // order-independent hash of result rows
  double sim_seconds = 0;        // simulated end-to-end
  double queue_wait_seconds = 0;
};

struct TenantReport {
  std::string tenant;
  uint64_t queries = 0;   // accepted + rejected arrivals
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  double p50_seconds = 0;  // over admitted queries' sim_seconds
  double p95_seconds = 0;
  double p99_seconds = 0;
  double queue_wait_p95_seconds = 0;
};

struct ConcurrentWorkloadReport {
  std::vector<QueryOutcome> outcomes;  // schedule order
  std::vector<TenantReport> tenants;   // tenant-name order
  // Exact (schedule-deterministic) aggregates.
  uint64_t admission_queued = 0;
  uint64_t admission_admitted = 0;
  uint64_t admission_rejected = 0;
  uint64_t rows_total = 0;
  // Order-independent fold of every outcome's (tenant, query, rejected,
  // rows, row_fingerprint) — the replay-equality witness.
  uint64_t result_fingerprint = 0;
  // Routing outcome: cumulative dispatched plans per storage node.
  std::vector<uint64_t> node_plans;
  uint64_t max_node_plans = 0;
  uint64_t min_node_plans = 0;
};

// Runs the schedule on `bed` (already ingested via IngestChaosDatasets;
// bed must be built from MakeConcurrentTestbedConfig or equivalent —
// admission enabled, dispatcher shared). Errors other than admission
// rejection fail the run.
Result<ConcurrentWorkloadReport> RunConcurrentWorkload(
    Testbed* bed, const ConcurrentWorkloadConfig& config);

// The driver's order-independent result-row hash (canonical row strings
// hashed and summed) — exposed so tests can fingerprint a serial
// reference run and compare it to QueryOutcome::row_fingerprint.
uint64_t ResultRowFingerprint(const columnar::RecordBatch& batch);

}  // namespace pocs::workloads
