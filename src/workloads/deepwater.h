// Deep Water Asteroid Impact-like dataset generator (paper §5.1).
//
// The real dataset: 64 Parquet files (one per simulation timestep) from
// the LANL deep-water asteroid-impact run, 4 columns × 27 M rows per
// file, ~30 GB. We generate the same shape at configurable scale:
//   * rowid   — global row index (the query derives a grid coordinate
//               from it: (rowid % (500*500)) / 500);
//   * v02     — water-fraction-like variable, distributed so the paper's
//               filter `v02 > 0.1` keeps ≈18 % of rows (30 → 5.37 GB);
//   * timestep — constant per file (one snapshot per object), so GROUP BY
//               timestep yields one group per file and group keys never
//               span splits;
//   * v03     — a second state variable (padding to 4 columns).
#pragma once

#include "compress/codec.h"
#include "workloads/dataset.h"

namespace pocs::workloads {

struct DeepWaterConfig {
  size_t num_files = 8;
  size_t rows_per_file = 1 << 16;
  size_t rows_per_group = 1 << 14;
  compress::CodecType codec = compress::CodecType::kNone;
  uint64_t seed = 20160913;
};

columnar::SchemaPtr DeepWaterSchema();

Result<GeneratedDataset> GenerateDeepWater(const DeepWaterConfig& config);

// The paper's Deep Water query (Table 2).
std::string DeepWaterQuery(const std::string& table = "deepwater");

}  // namespace pocs::workloads
