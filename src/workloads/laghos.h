// Laghos-like dataset generator (paper §5.1).
//
// The real dataset: 256 Parquet files from the LAGrangian High-Order
// Solver fluid-dynamics mini-app, 10 columns × 4,194,304 rows per file,
// ~24 GB. We generate the same schema and the value distributions that
// reproduce the paper's query behaviour at a configurable scale:
//   * vertex_id — `rows_per_vertex` consecutive rows share a vertex, and
//     vertex ranges are DISJOINT across files (spatial partitioning, as
//     in the LANL mesh decomposition). This is the property that makes
//     per-split aggregation + top-N pushdown exact (DESIGN.md).
//   * x, y, z ~ Uniform(0, 4): the paper's filter `BETWEEN 0.8 AND 3.2`
//     keeps 0.6 per axis, 0.6³ ≈ 21% overall — matching the paper's
//     24 GB → 5.1 GB filter reduction.
//   * e and five more state columns (rho, p, vx, vy, vz) — float64.
#pragma once

#include "compress/codec.h"
#include "workloads/dataset.h"

namespace pocs::workloads {

struct LaghosConfig {
  size_t num_files = 8;
  size_t rows_per_file = 1 << 16;
  // Rows sharing one vertex_id. 32 reproduces the paper's aggregation
  // reduction (5.1 GB → 0.75 GB ≈ 6.8x: with the filter keeping ~21% of
  // rows, ~6.7 survivors collapse into each group).
  size_t rows_per_vertex = 32;
  size_t rows_per_group = 1 << 14;
  compress::CodecType codec = compress::CodecType::kNone;
  uint64_t seed = 20251116;
};

columnar::SchemaPtr LaghosSchema();

Result<GeneratedDataset> GenerateLaghos(const LaghosConfig& config);

// The paper's Laghos query (Table 2), with the avg aliased so the
// ORDER BY target is well-defined.
std::string LaghosQuery(const std::string& table = "laghos",
                        int64_t limit = 100);

// LaghosQuery restricted to a vertex_id prefix. Vertex ranges are
// disjoint and monotone across files (spatial partitioning), so
// `vertex_id < max_vertex` makes trailing files statically prunable
// from their footer min/max statistics alone — the selective workload
// behind coordinator-side split pruning (DESIGN.md §13). With the
// default LaghosConfig each file covers 2048 vertices, so
// `max_vertex = 2048` keeps exactly one of the eight files.
std::string LaghosSelectiveQuery(const std::string& table = "laghos",
                                 int64_t max_vertex = 2048,
                                 int64_t limit = 100);

}  // namespace pocs::workloads
