// dbgen-lite: a TPC-H `lineitem` generator faithful to the column domains
// Q1 depends on (paper §5.1):
//   * quantity        — uniform integer 1..50 (stored float64);
//   * extendedprice   — derived price, ~900..104950;
//   * discount        — 0.00..0.10;  tax — 0.00..0.08;
//   * shipdate        — orderdate + 1..121 days over 1992-01-02..1998-08-02,
//     so the Q1 cutoff (1998-12-01 − 90 days = 1998-09-02) keeps ~98–99 %
//     of rows — reproducing the paper's tiny 1.03 % movement reduction
//     under filter-only pushdown;
//   * returnflag/linestatus — per the TPC-H rules: linestatus = 'O' iff
//     shipdate > 1995-06-17 else 'F'; returnflag ∈ {R, A} for rows with
//     receiptdate ≤ 1995-06-17, 'N' otherwise — yielding Q1's 4 groups.
#pragma once

#include "compress/codec.h"
#include "workloads/dataset.h"

namespace pocs::workloads {

struct TpchConfig {
  size_t num_files = 4;
  size_t rows_per_file = 1 << 16;
  size_t rows_per_group = 1 << 14;
  compress::CodecType codec = compress::CodecType::kNone;
  uint64_t seed = 19920101;
};

columnar::SchemaPtr LineitemSchema();

Result<GeneratedDataset> GenerateLineitem(const TpchConfig& config);

// TPC-H Query 1 (paper Table 2).
std::string TpchQ1(const std::string& table = "lineitem");

// TPC-H Query 6 — a second OLAP shape the connector handles well: a
// highly selective multi-predicate filter feeding a single global
// aggregate (forecast revenue change). Complements Q1's "filter keeps
// everything" regime with a "filter crushes everything" one.
std::string TpchQ6(const std::string& table = "lineitem");

// TPC-H Q6 restricted to an orderkey prefix. orderkey is assigned
// monotonically across files, so `orderkey <= max_orderkey` makes
// trailing files — and, within the boundary file, trailing row groups —
// prunable from footer statistics (coordinator split pruning +
// row-group hints, DESIGN.md §13).
std::string TpchSelectiveQuery(const std::string& table = "lineitem",
                               int64_t max_orderkey = 1000);

// A returnflag/quantity filter projecting columns the predicate never
// touches. returnflag is a 3-value string column, so every row group
// stores it dictionary-encoded: the storage node evaluates the string
// conjunct in the code domain and late-materializes only the surviving
// rows' string bytes (DESIGN.md §15). Drives the `dict.*` bench section
// and its rows_dict_filtered / rows_late_materialized gates.
std::string TpchDictFilterQuery(const std::string& table = "lineitem");

// supplier dimension table for the multi-table workload (DESIGN.md §14).
// Column names are prefixed `s_` because the SQL dialect has no qualified
// references: names must be globally unique across a join's two tables.
// s_suppkey covers 1..num_suppliers — the same domain lineitem's suppkey
// draws from — and s_nationkey = s_suppkey % 25, so a nation filter keeps
// ~1/25 of suppliers and the pushed join-key bloom prunes most fact rows.
struct SupplierConfig {
  size_t num_suppliers = 1000;
  size_t rows_per_group = 1 << 9;
  compress::CodecType codec = compress::CodecType::kNone;
};

columnar::SchemaPtr SupplierSchema();

Result<GeneratedDataset> GenerateSupplier(const SupplierConfig& config);

// Multi-table join shape: dimension filter + fact scan + group-by.
// Aggregate arguments are plain fact columns and the aggregation sits
// directly above the join, so the connector may take both the join-key
// bloom and the storage-side partial phase (`nations` bounds the
// s_nationkey dimension filter).
std::string TpchJoinQuery(const std::string& fact = "lineitem",
                          const std::string& dim = "supplier",
                          int64_t nations = 5);

}  // namespace pocs::workloads
