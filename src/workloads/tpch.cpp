#include "workloads/tpch.h"

#include <random>

namespace pocs::workloads {

using columnar::DaysFromCivil;
using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;

columnar::SchemaPtr LineitemSchema() {
  return MakeSchema({{"orderkey", TypeKind::kInt64},
                     {"partkey", TypeKind::kInt64},
                     {"suppkey", TypeKind::kInt64},
                     {"linenumber", TypeKind::kInt32},
                     {"quantity", TypeKind::kFloat64},
                     {"extendedprice", TypeKind::kFloat64},
                     {"discount", TypeKind::kFloat64},
                     {"tax", TypeKind::kFloat64},
                     {"returnflag", TypeKind::kString},
                     {"linestatus", TypeKind::kString},
                     {"shipdate", TypeKind::kDate32},
                     {"commitdate", TypeKind::kDate32},
                     {"receiptdate", TypeKind::kDate32}});
}

Result<GeneratedDataset> GenerateLineitem(const TpchConfig& config) {
  auto schema = LineitemSchema();
  DatasetBuilder builder("default", "lineitem", "tpch", schema);
  format::WriterOptions options;
  options.codec = config.codec;
  options.rows_per_group = config.rows_per_group;

  std::mt19937_64 rng(config.seed);
  // dbgen: orderdate ∈ [STARTDATE, ENDDATE − 151 days]; shipdate =
  // orderdate + 1..121, so the latest shipdate is ~1998-12-01 and Q1's
  // 1998-09-02 cutoff keeps ~98–99% of rows.
  const int32_t start_date = DaysFromCivil(1992, 1, 1);
  const int32_t end_order_date = DaysFromCivil(1998, 12, 31) - 151;
  const int32_t currentdate = DaysFromCivil(1995, 6, 17);  // TPC-H constant

  std::uniform_int_distribution<int32_t> orderdate_dist(start_date,
                                                        end_order_date);
  std::uniform_int_distribution<int> ship_delta(1, 121);
  std::uniform_int_distribution<int> commit_delta(30, 90);
  std::uniform_int_distribution<int> receipt_delta(1, 30);
  std::uniform_int_distribution<int> quantity_dist(1, 50);
  std::uniform_int_distribution<int64_t> partkey_dist(1, 200000);
  std::uniform_int_distribution<int> discount_dist(0, 10);
  std::uniform_int_distribution<int> tax_dist(0, 8);
  std::uniform_int_distribution<int> coin(0, 1);

  int64_t orderkey = 1;
  for (size_t f = 0; f < config.num_files; ++f) {
    auto orderkey_col = MakeColumn(TypeKind::kInt64);
    auto partkey_col = MakeColumn(TypeKind::kInt64);
    auto suppkey_col = MakeColumn(TypeKind::kInt64);
    auto linenumber = MakeColumn(TypeKind::kInt32);
    auto quantity = MakeColumn(TypeKind::kFloat64);
    auto extendedprice = MakeColumn(TypeKind::kFloat64);
    auto discount = MakeColumn(TypeKind::kFloat64);
    auto tax = MakeColumn(TypeKind::kFloat64);
    auto returnflag = MakeColumn(TypeKind::kString);
    auto linestatus = MakeColumn(TypeKind::kString);
    auto shipdate = MakeColumn(TypeKind::kDate32);
    auto commitdate = MakeColumn(TypeKind::kDate32);
    auto receiptdate = MakeColumn(TypeKind::kDate32);

    size_t rows = 0;
    while (rows < config.rows_per_file) {
      // One "order": 1..7 lineitems sharing an orderdate.
      int32_t orderdate = orderdate_dist(rng);
      int lines = 1 + static_cast<int>(rng() % 7);
      for (int l = 1; l <= lines && rows < config.rows_per_file; ++l, ++rows) {
        int64_t partkey = partkey_dist(rng);
        int qty = quantity_dist(rng);
        // dbgen: extendedprice = quantity * part retail price.
        double retail =
            90000.0 + (partkey % 20000) / 2.0 + 100.0 * (partkey % 1000);
        double price = qty * retail / 1000.0;
        int32_t ship = orderdate + ship_delta(rng);
        int32_t commit = orderdate + commit_delta(rng);
        int32_t receipt = ship + receipt_delta(rng);

        orderkey_col->AppendInt64(orderkey);
        partkey_col->AppendInt64(partkey);
        suppkey_col->AppendInt64(partkey % 1000 + 1);
        linenumber->AppendInt32(l);
        quantity->AppendFloat64(qty);
        extendedprice->AppendFloat64(price);
        discount->AppendFloat64(discount_dist(rng) / 100.0);
        tax->AppendFloat64(tax_dist(rng) / 100.0);
        returnflag->AppendString(
            receipt <= currentdate ? (coin(rng) ? "R" : "A") : "N");
        linestatus->AppendString(ship > currentdate ? "O" : "F");
        shipdate->AppendInt32(ship);
        commitdate->AppendInt32(commit);
        receiptdate->AppendInt32(receipt);
      }
      ++orderkey;
    }
    auto batch = MakeBatch(
        schema, {orderkey_col, partkey_col, suppkey_col, linenumber, quantity,
                 extendedprice, discount, tax, returnflag, linestatus,
                 shipdate, commitdate, receiptdate});
    POCS_RETURN_NOT_OK(builder.AddFile(
        "lineitem/part-" + std::to_string(f), {batch}, options));
  }
  return builder.Finish();
}

std::string TpchQ1(const std::string& table) {
  return "SELECT returnflag, linestatus, "
         "SUM(quantity) AS sum_qty, "
         "SUM(extendedprice) AS sum_base_price, "
         "SUM(extendedprice * (1 - discount)) AS sum_disc_price, "
         "SUM(extendedprice * (1 - discount) * (1 + tax)) AS sum_charge, "
         "AVG(quantity) AS avg_qty, "
         "AVG(extendedprice) AS avg_price, "
         "AVG(discount) AS avg_disc, "
         "COUNT(*) AS count_order "
         "FROM " + table +
         " WHERE shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY "
         "GROUP BY returnflag, linestatus "
         "ORDER BY returnflag, linestatus";
}

std::string TpchQ6(const std::string& table) {
  return "SELECT SUM(extendedprice * discount) AS revenue "
         "FROM " + table +
         " WHERE shipdate >= DATE '1994-01-01' "
         "AND shipdate < DATE '1995-01-01' "
         "AND discount BETWEEN 0.05 AND 0.07 "
         "AND quantity < 24";
}

std::string TpchSelectiveQuery(const std::string& table,
                               int64_t max_orderkey) {
  return "SELECT SUM(extendedprice * discount) AS revenue "
         "FROM " + table +
         " WHERE discount BETWEEN 0.01 AND 0.09 "
         "AND orderkey <= " + std::to_string(max_orderkey);
}

std::string TpchDictFilterQuery(const std::string& table) {
  return "SELECT orderkey, quantity, extendedprice, returnflag, linestatus "
         "FROM " + table +
         " WHERE returnflag = 'R' AND quantity < 25";
}

columnar::SchemaPtr SupplierSchema() {
  return MakeSchema({{"s_suppkey", TypeKind::kInt64},
                     {"s_nationkey", TypeKind::kInt32},
                     {"s_acctbal", TypeKind::kFloat64}});
}

Result<GeneratedDataset> GenerateSupplier(const SupplierConfig& config) {
  auto schema = SupplierSchema();
  DatasetBuilder builder("default", "supplier", "tpch", schema);
  format::WriterOptions options;
  options.codec = config.codec;
  options.rows_per_group = config.rows_per_group;

  auto suppkey = MakeColumn(TypeKind::kInt64);
  auto nationkey = MakeColumn(TypeKind::kInt32);
  auto acctbal = MakeColumn(TypeKind::kFloat64);
  for (size_t s = 1; s <= config.num_suppliers; ++s) {
    suppkey->AppendInt64(static_cast<int64_t>(s));
    nationkey->AppendInt32(static_cast<int32_t>(s % 25));
    // dbgen: acctbal ∈ [-999.99, 9999.99]; derived, not random, so the
    // dataset is a pure function of the config.
    acctbal->AppendFloat64(-999.99 +
                           static_cast<double>((s * 7919) % 1099998) / 100.0);
  }
  auto batch = MakeBatch(schema, {suppkey, nationkey, acctbal});
  POCS_RETURN_NOT_OK(builder.AddFile("supplier/part-0", {batch}, options));
  return builder.Finish();
}

std::string TpchJoinQuery(const std::string& fact, const std::string& dim,
                          int64_t nations) {
  return "SELECT s_nationkey, "
         "SUM(extendedprice) AS revenue, "
         "AVG(quantity) AS avg_qty, "
         "COUNT(*) AS lines "
         "FROM " + fact + " JOIN " + dim +
         " ON suppkey = s_suppkey "
         "WHERE s_nationkey < " + std::to_string(nations) +
         " GROUP BY s_nationkey "
         "ORDER BY s_nationkey";
}

}  // namespace pocs::workloads
