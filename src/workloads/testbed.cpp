#include "workloads/testbed.h"

namespace pocs::workloads {

Testbed::Testbed(TestbedConfig config) : config_(config) {
  // Keep the engine's time model in sync with the cluster the user built.
  config_.engine.time_model.network_bandwidth_bytes_per_sec =
      config_.cluster.link.bandwidth_bytes_per_sec;
  config_.engine.time_model.network_latency_sec =
      config_.cluster.link.latency_sec;
  config_.engine.time_model.storage_nodes =
      std::max<size_t>(config_.cluster.num_storage_nodes, 1);
  net_ = std::make_shared<netsim::Network>(config_.cluster.link);
  compute_node_ = net_->AddNode("compute");
  cluster_ = std::make_unique<ocs::OcsCluster>(net_, config_.cluster);
  net_->SetLink(compute_node_, cluster_->frontend_node(),
                config_.cluster.link);
  metastore_ = std::make_shared<metastore::Metastore>();
  (void)metastore_->CreateSchema("default");

  engine_ = std::make_unique<engine::QueryEngine>(config_.engine);
  history_ = std::make_shared<connectors::PushdownHistory>();
  engine_->AddEventListener(history_);
  stats_ = std::make_shared<connector::QueryStatsCollector>();
  engine_->AddEventListener(stats_);

  auto frontend_channel = [this] {
    return rpc::Channel(net_, compute_node_, cluster_->frontend_server());
  };

  // Baseline: Hive connector without Select pushdown (raw GETs).
  connectors::HiveConnectorConfig raw = config_.hive;
  raw.select_pushdown = false;
  engine_->RegisterConnector(std::make_shared<connectors::HiveConnector>(
      "hive_raw", metastore_, objectstore::StorageClient(frontend_channel()),
      raw));

  // Baseline: Hive connector with S3-Select-style pushdown.
  connectors::HiveConnectorConfig select = config_.hive;
  select.select_pushdown = true;
  engine_->RegisterConnector(std::make_shared<connectors::HiveConnector>(
      "hive", metastore_, objectstore::StorageClient(frontend_channel()),
      select));

  if (config_.load_aware_dispatch) {
    dispatcher_ = std::make_shared<connectors::SplitDispatcher>(
        config_.dispatcher,
        std::max<size_t>(config_.cluster.num_storage_nodes, 1));
  }

  // The Presto-OCS connector.
  engine_->RegisterConnector(std::make_shared<connectors::OcsConnector>(
      "ocs", metastore_, ocs::OcsClient(frontend_channel()),
      config_.ocs_connector, history_, dispatcher_));
}

void Testbed::RegisterOcsCatalog(const std::string& name,
                                 const connectors::OcsConnectorConfig& config) {
  engine_->RegisterConnector(std::make_shared<connectors::OcsConnector>(
      name, metastore_,
      ocs::OcsClient(
          rpc::Channel(net_, compute_node_, cluster_->frontend_server())),
      config, history_, dispatcher_));
}

void Testbed::SetFaultPlan(std::shared_ptr<const netsim::FaultPlan> plan) {
  net_->SetFaultPlan(std::move(plan));
}

Status Testbed::Ingest(GeneratedDataset dataset) {
  for (auto& [key, bytes] : dataset.files) {
    POCS_RETURN_NOT_OK(
        cluster_->PutObject(dataset.info.bucket, key, std::move(bytes)));
  }
  dataset.files.clear();
  return metastore_->RegisterTable(std::move(dataset.info));
}

}  // namespace pocs::workloads
