// Testbed: wires the whole paper setup in-process (Table 1 / Fig. 4).
//
//   compute node ──10GbE──> OCS frontend ──10GbE──> OCS storage node(s)
//
// One dataset, three access paths registered as engine catalogs:
//   "hive_raw" — Hive connector, no pushdown (whole-object GETs);
//   "hive"     — Hive connector, S3-Select filter+projection pushdown;
//   "ocs"      — Presto-OCS connector, full operator pushdown.
// All three read the same objects from the same storage nodes through the
// same frontend, so comparisons differ only in where operators run.
#pragma once

#include <memory>

#include "connector/query_stats_collector.h"
#include "connectors/hive/hive_connector.h"
#include "connectors/ocs/ocs_connector.h"
#include "connectors/ocs/pushdown_history.h"
#include "engine/engine.h"
#include "metastore/metastore.h"
#include "netsim/network.h"
#include "ocs/cluster.h"
#include "workloads/dataset.h"

namespace pocs::workloads {

struct TestbedConfig {
  ocs::ClusterConfig cluster;
  engine::EngineConfig engine;
  connectors::HiveConnectorConfig hive;
  connectors::OcsConnectorConfig ocs_connector;
  // When set, one SplitDispatcher sized to the cluster is shared by every
  // OCS catalog of the bed: GetSplits resolves placement hints and
  // CreatePageSource dispatches under per-node load leases (DESIGN.md
  // §12).
  bool load_aware_dispatch = false;
  connectors::SplitDispatcherConfig dispatcher;

  TestbedConfig() {
    // Default to the effective application-level S3 regime (see
    // netsim::EffectiveS3 and DESIGN.md §4) so scaled-down datasets
    // reproduce the paper's transfer-vs-compute balance.
    cluster.link = netsim::EffectiveS3();
    engine.time_model.network_bandwidth_bytes_per_sec =
        cluster.link.bandwidth_bytes_per_sec;
    engine.time_model.network_latency_sec = cluster.link.latency_sec;
  }
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config = {});

  // Upload a generated dataset's objects to the OCS cluster and register
  // its table in the metastore. Consumes the dataset's file bytes.
  Status Ingest(GeneratedDataset dataset);

  engine::QueryEngine& engine() { return *engine_; }
  netsim::Network& network() { return *net_; }
  ocs::OcsCluster& cluster() { return *cluster_; }
  metastore::Metastore& metastore() { return *metastore_; }
  connectors::PushdownHistory& history() { return *history_; }
  connector::QueryStatsCollector& stats() { return *stats_; }
  const TestbedConfig& config() const { return config_; }
  netsim::NodeId compute_node() const { return compute_node_; }
  // The shared load-aware dispatcher (nullptr unless
  // config.load_aware_dispatch).
  const std::shared_ptr<connectors::SplitDispatcher>& dispatcher() const {
    return dispatcher_;
  }

  // Install (or clear, with nullptr) a fault plan on the simulated
  // network shared by every channel in the testbed.
  void SetFaultPlan(std::shared_ptr<const netsim::FaultPlan> plan);

  // Register an additional Presto-OCS catalog with a custom connector
  // configuration (used by the progressive-pushdown and ablation benches).
  void RegisterOcsCatalog(const std::string& name,
                          const connectors::OcsConnectorConfig& config);

  // Convenience: run SQL on a catalog and return result + metrics.
  Result<engine::QueryResult> Run(const std::string& sql,
                                  const std::string& catalog) {
    net_->ResetCounters();
    return engine_->Execute(sql, catalog);
  }

 private:
  TestbedConfig config_;
  std::shared_ptr<netsim::Network> net_;
  std::unique_ptr<ocs::OcsCluster> cluster_;
  std::shared_ptr<metastore::Metastore> metastore_;
  std::unique_ptr<engine::QueryEngine> engine_;
  std::shared_ptr<connectors::PushdownHistory> history_;
  std::shared_ptr<connector::QueryStatsCollector> stats_;
  std::shared_ptr<connectors::SplitDispatcher> dispatcher_;
  netsim::NodeId compute_node_;
};

}  // namespace pocs::workloads
