#include "workloads/dataset.h"

namespace pocs::workloads {

DatasetBuilder::DatasetBuilder(std::string schema_name, std::string table_name,
                               std::string bucket,
                               columnar::SchemaPtr schema) {
  dataset_.info.schema_name = std::move(schema_name);
  dataset_.info.table_name = std::move(table_name);
  dataset_.info.bucket = std::move(bucket);
  dataset_.info.schema = std::move(schema);
}

Status DatasetBuilder::AddFile(
    const std::string& key,
    const std::vector<columnar::RecordBatchPtr>& batches,
    const format::WriterOptions& options) {
  format::FileWriter writer(dataset_.info.schema, options);
  for (const auto& batch : batches) {
    POCS_RETURN_NOT_OK(writer.WriteBatch(*batch));
  }
  POCS_ASSIGN_OR_RETURN(Bytes file, writer.Finish());
  POCS_ASSIGN_OR_RETURN(format::FileMeta meta,
                        format::ReadFooter(ByteSpan(file.data(), file.size())));

  dataset_.info.objects.push_back(key);
  dataset_.info.row_count += meta.num_rows;
  dataset_.info.total_bytes += file.size();
  if (first_file_) {
    dataset_.info.column_stats = meta.column_stats;
    first_file_ = false;
  } else {
    for (size_t c = 0; c < meta.column_stats.size(); ++c) {
      dataset_.info.column_stats[c].Merge(meta.column_stats[c]);
    }
  }
  dataset_.files.emplace_back(key, std::move(file));
  return Status::OK();
}

GeneratedDataset DatasetBuilder::Finish() { return std::move(dataset_); }

}  // namespace pocs::workloads
