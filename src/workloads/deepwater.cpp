#include "workloads/deepwater.h"

#include <random>

namespace pocs::workloads {

using columnar::MakeBatch;
using columnar::MakeColumn;
using columnar::MakeSchema;
using columnar::TypeKind;

columnar::SchemaPtr DeepWaterSchema() {
  return MakeSchema({{"rowid", TypeKind::kInt64},
                     {"v02", TypeKind::kFloat64},
                     {"timestep", TypeKind::kInt32},
                     {"v03", TypeKind::kFloat64}});
}

Result<GeneratedDataset> GenerateDeepWater(const DeepWaterConfig& config) {
  auto schema = DeepWaterSchema();
  DatasetBuilder builder("default", "deepwater", "hpc", schema);
  format::WriterOptions options;
  options.codec = config.codec;
  options.rows_per_group = config.rows_per_group;

  std::mt19937_64 rng(config.seed);
  // v02 in [0, 0.122]: P(v02 > 0.1) = 0.022/0.122 ≈ 0.18 — the paper's
  // 30 GB → 5.37 GB filter reduction.
  std::uniform_real_distribution<double> v02_dist(0.0, 0.122);
  std::uniform_real_distribution<double> v03_dist(-1.0, 1.0);

  int64_t rowid = 0;
  for (size_t f = 0; f < config.num_files; ++f) {
    auto rowid_col = MakeColumn(TypeKind::kInt64);
    auto v02 = MakeColumn(TypeKind::kFloat64);
    auto timestep = MakeColumn(TypeKind::kInt32);
    auto v03 = MakeColumn(TypeKind::kFloat64);
    for (size_t r = 0; r < config.rows_per_file; ++r) {
      rowid_col->AppendInt64(rowid++);
      v02->AppendFloat64(v02_dist(rng));
      timestep->AppendInt32(static_cast<int32_t>(f));
      v03->AppendFloat64(v03_dist(rng));
    }
    auto batch = MakeBatch(schema, {rowid_col, v02, timestep, v03});
    POCS_RETURN_NOT_OK(builder.AddFile(
        "deepwater/ts-" + std::to_string(f), {batch}, options));
  }
  return builder.Finish();
}

std::string DeepWaterQuery(const std::string& table) {
  return "SELECT MAX((rowid % (500*500))/500) AS max_coord, timestep FROM " +
         table + " WHERE v02 > 0.1 GROUP BY timestep";
}

}  // namespace pocs::workloads
