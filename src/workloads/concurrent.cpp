#include "workloads/concurrent.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/metrics.h"
#include "workloads/chaos.h"

namespace pocs::workloads {

// Order-independent hash of a result table: canonical row strings
// (matching the chaos suite's rendering) hashed individually and summed,
// so two runs whose splits merged in different orders still agree.
uint64_t ResultRowFingerprint(const columnar::RecordBatch& batch) {
  uint64_t fp = 0;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      if (c) row += "|";
      const auto& col = *batch.column(c);
      if (col.IsNull(r)) {
        row += "NULL";
      } else if (col.type() == columnar::TypeKind::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", col.GetFloat64(r));
        row += buf;
      } else {
        row += col.GetDatum(r).ToString();
      }
    }
    fp += HashString(row);  // wrap-around sum: order-independent
  }
  return fp;
}

namespace {

struct ScheduledQuery {
  size_t index = 0;
  std::string tenant;
  std::string name;
  std::string sql;
};

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

}  // namespace

std::vector<TenantSpec> DefaultTenants() {
  return {
      {.name = "interactive", .weight = 4, .max_concurrent = 2, .max_queued = 8},
      {.name = "batch", .weight = 1, .max_concurrent = 1, .max_queued = 8},
      // Short queue: with the controller paused over a whole schedule,
      // ad-hoc arrivals past 3 waiting are rejected — exercising the
      // rejection path deterministically.
      {.name = "adhoc", .weight = 2, .max_concurrent = 1, .max_queued = 3},
  };
}

TestbedConfig MakeConcurrentTestbedConfig(const ConcurrentWorkloadConfig& cfg) {
  TestbedConfig bed;
  bed.cluster.num_storage_nodes = 3;
  bed.cluster.placement = ocs::PlacementPolicy::kLeastLoaded;
  // Interleaving-dependent cache hits would make the storage-side
  // counters run-dependent; the concurrent tier trades the cache for
  // exact replay.
  bed.cluster.storage.rowgroup_cache_bytes = 0;

  bed.engine.worker_threads = 8;
  bed.engine.max_inflight_splits = 2;
  bed.engine.admission.enabled = true;
  bed.engine.admission.max_concurrent = cfg.global_max_concurrent;
  const std::vector<TenantSpec> tenants =
      cfg.tenants.empty() ? DefaultTenants() : cfg.tenants;
  for (const TenantSpec& t : tenants) {
    bed.engine.admission.groups.push_back({.name = t.name,
                                           .weight = t.weight,
                                           .max_concurrent = t.max_concurrent,
                                           .max_queued = t.max_queued});
  }

  bed.load_aware_dispatch = true;
  bed.dispatcher.max_inflight_per_node = 2;
  return bed;
}

Result<ConcurrentWorkloadReport> RunConcurrentWorkload(
    Testbed* bed, const ConcurrentWorkloadConfig& config) {
  engine::AdmissionController* controller =
      bed->engine().admission_controller();
  if (controller == nullptr) {
    return Status::InvalidArgument(
        "concurrent workload needs admission enabled on the testbed");
  }
  const std::vector<TenantSpec> tenants =
      config.tenants.empty() ? DefaultTenants() : config.tenants;
  if (tenants.empty()) {
    return Status::InvalidArgument("concurrent workload needs tenants");
  }
  const auto templates = ChaosQueries();

  // 1. Seeded arrival schedule: tenant and template drawn per query.
  //    (Explicit modulo, not std::uniform_int_distribution — the draw
  //    sequence must not depend on the standard library.)
  std::mt19937_64 rng(config.seed);
  std::vector<ScheduledQuery> schedule;
  schedule.reserve(config.num_queries);
  for (size_t i = 0; i < config.num_queries; ++i) {
    const TenantSpec& tenant = tenants[rng() % tenants.size()];
    const auto& [name, sql] = templates[rng() % templates.size()];
    schedule.push_back({.index = i, .tenant = tenant.name, .name = name,
                        .sql = sql});
  }

  // 2. Pause, then enqueue the whole schedule on this thread: every
  //    accept/reject decision is made here, sequentially.
  controller->SetPaused(true);
  std::vector<QueryOutcome> outcomes(schedule.size());
  std::vector<std::shared_ptr<engine::AdmissionTicket>> tickets(
      schedule.size());
  for (const ScheduledQuery& q : schedule) {
    outcomes[q.index].tenant = q.tenant;
    outcomes[q.index].query = q.name;
    auto ticket = controller->Enqueue(q.tenant);
    if (!ticket.ok()) {
      if (ticket.status().code() != StatusCode::kUnavailable) {
        controller->SetPaused(false);
        return ticket.status();
      }
      outcomes[q.index].rejected = true;
      continue;
    }
    tickets[q.index] = *std::move(ticket);
  }

  // 3. One runner per accepted query; each blocks on its pre-enqueued
  //    ticket inside Execute until the WFQ policy grants it.
  std::vector<Status> statuses(schedule.size(), Status::OK());
  std::vector<std::thread> runners;
  runners.reserve(schedule.size());
  for (const ScheduledQuery& q : schedule) {
    if (!tickets[q.index]) continue;
    runners.emplace_back([bed, &config, &q, &outcomes, &statuses, &tickets] {
      engine::QueryOptions options;
      options.tenant = q.tenant;
      options.ticket = tickets[q.index];
      auto result = bed->engine().Execute(q.sql, config.catalog, options);
      if (!result.ok()) {
        statuses[q.index] = result.status();
        return;
      }
      QueryOutcome& out = outcomes[q.index];
      out.rows = result->table ? result->table->num_rows() : 0;
      out.row_fingerprint =
          result->table ? ResultRowFingerprint(*result->table) : 0;
      out.sim_seconds = result->metrics.total;
      out.queue_wait_seconds = result->metrics.admission_queue_seconds;
    });
  }
  controller->SetPaused(false);
  for (std::thread& t : runners) t.join();
  for (const Status& s : statuses) POCS_RETURN_NOT_OK(s);

  // 4. Aggregate. Exact quantities come from the controller/dispatcher
  //    (pure functions of the schedule); timing quantiles come from the
  //    registry histograms the driver feeds here.
  ConcurrentWorkloadReport report;
  report.outcomes = std::move(outcomes);

  auto& reg = metrics::Registry::Default();
  std::map<std::string, std::vector<double>> tenant_seconds;
  std::map<std::string, std::vector<double>> tenant_waits;
  for (const QueryOutcome& out : report.outcomes) {
    report.result_fingerprint = HashCombine(
        report.result_fingerprint,
        HashString(out.tenant + "|" + out.query +
                   (out.rejected ? "|rejected" : "|ok")));
    report.result_fingerprint = HashCombine(
        report.result_fingerprint,
        HashCombine(out.rows, out.row_fingerprint));
    if (out.rejected) continue;
    report.rows_total += out.rows;
    reg.GetHistogram("workload.concurrent." + out.tenant + ".sim_seconds")
        .Record(out.sim_seconds);
    reg.GetHistogram("workload.concurrent." + out.tenant + ".queue_wait")
        .Record(out.queue_wait_seconds);
    tenant_seconds[out.tenant].push_back(out.sim_seconds);
    tenant_waits[out.tenant].push_back(out.queue_wait_seconds);
  }

  const auto snapshot = controller->snapshot();
  report.admission_queued = snapshot.queued;
  report.admission_admitted = snapshot.admitted;
  report.admission_rejected = snapshot.rejected;
  for (const auto& group : snapshot.groups) {
    TenantReport t;
    t.tenant = group.tenant;
    t.queries = group.queued + group.rejected;
    t.admitted = group.admitted;
    t.rejected = group.rejected;
    // Quantiles over this run's samples (the registry histograms carry
    // the same data for the bench exporter, but accumulate across runs
    // within a process; the report is per-run).
    t.p50_seconds = Quantile(tenant_seconds[t.tenant], 0.50);
    t.p95_seconds = Quantile(tenant_seconds[t.tenant], 0.95);
    t.p99_seconds = Quantile(tenant_seconds[t.tenant], 0.99);
    t.queue_wait_p95_seconds = Quantile(tenant_waits[t.tenant], 0.95);
    report.tenants.push_back(std::move(t));
  }

  if (const auto& dispatcher = bed->dispatcher()) {
    report.node_plans = dispatcher->NodePlanCounts();
    if (!report.node_plans.empty()) {
      report.max_node_plans = *std::max_element(report.node_plans.begin(),
                                                report.node_plans.end());
      report.min_node_plans = *std::min_element(report.node_plans.begin(),
                                                report.node_plans.end());
    }
  }
  return report;
}

}  // namespace pocs::workloads
