// Dataset generation scaffolding: a generated dataset is a set of
// Parquet-lite file objects plus the merged metastore TableInfo
// (object list, row counts, per-column min/max/NDV statistics).
#pragma once

#include <string>
#include <vector>

#include "format/parquet_lite.h"
#include "metastore/metastore.h"

namespace pocs::workloads {

struct GeneratedDataset {
  metastore::TableInfo info;
  // key → file bytes, parallel to info.objects.
  std::vector<std::pair<std::string, Bytes>> files;
};

// Accumulates per-file writes into a GeneratedDataset, merging statistics.
class DatasetBuilder {
 public:
  DatasetBuilder(std::string schema_name, std::string table_name,
                 std::string bucket, columnar::SchemaPtr schema);

  // Serialize one file from batches and add it under `key`.
  Status AddFile(const std::string& key,
                 const std::vector<columnar::RecordBatchPtr>& batches,
                 const format::WriterOptions& options);

  GeneratedDataset Finish();

 private:
  GeneratedDataset dataset_;
  bool first_file_ = true;
};

}  // namespace pocs::workloads
