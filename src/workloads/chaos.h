// Chaos harness: named fault profiles over the standard testbed, shared
// by the `ctest -L chaos` suite and the CI chaos matrix. Each profile is
// a (testbed tuning, fault set, expected degradation signature) triple:
// the suite runs the paper's workload queries under the profile and
// asserts (a) every query still returns rows identical to a no-fault
// run and (b) the profile's signature showed up in QueryStats (fallbacks
// on profiles that kill in-storage execution, retries on transient ones).
//
// Concurrency: profile construction and the assertions run on one
// thread; all cross-thread state lives behind the annotated mutexes of
// the components under test (network, cluster, caches — DESIGN.md §11),
// so this harness deliberately holds no locks of its own.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "workloads/testbed.h"

namespace pocs::workloads {

struct ChaosConfig {
  // One of ChaosProfiles() or "none" (the fault-free reference).
  std::string profile = "none";
  uint64_t seed = 1;
};

// The CI chaos matrix profiles (excludes "none").
std::vector<std::string> ChaosProfiles();

// The degradation signature a profile must exhibit on every query.
struct ChaosExpectation {
  bool expect_fallbacks = false;  // QueryStats.fallbacks > 0
  bool expect_retries = false;    // QueryStats.retries > 0
  // Connector caches are enabled under this profile: partial-result
  // retention must keep bytes_refetched_on_retry strictly below the
  // bytes moved, and a repeat scan must be served from the split cache.
  bool expect_cache_effects = false;
  // The planner metadata cache is enabled but the stats RPC is down:
  // split planning must degrade to the unpruned path (splits_pruned == 0,
  // metadata_cache_errors > 0) and never touch result rows.
  bool expect_stats_unavailable = false;
};
Result<ChaosExpectation> ChaosExpectationFor(const std::string& profile);

// Testbed config tuned for the profile: the OCS dispatch policy's retry
// budget / deadlines are set so the fault either heals through retries or
// degrades to the engine-side fallback instead of failing the query.
Result<TestbedConfig> MakeChaosTestbedConfig(const ChaosConfig& config);

// Install the profile's faults on an already-ingested testbed (crash
// switches on storage nodes, a FaultPlan on the network, or both). Call
// AFTER Ingest: ingest traffic is part of the fixture, not the workload
// under test.
Status ApplyChaos(Testbed* bed, const ChaosConfig& config);

// Small fixed-seed cuts of the paper's three datasets (TPC-H lineitem,
// Laghos, Deep Water), identical across testbeds built from the same
// binary — the basis for fault/no-fault equivalence checks.
Status IngestChaosDatasets(Testbed* bed);

// (query name, SQL) pairs over the chaos datasets — the paper's Table 2
// queries plus TPC-H Q6.
std::vector<std::pair<std::string, std::string>> ChaosQueries();

}  // namespace pocs::workloads
