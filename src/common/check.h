// Invariant-check macros (CHECK / DCHECK family).
//
// Policy (see DESIGN.md "Correctness tooling"):
//   POCS_CHECK*   — always on, all build types. For invariants whose
//                   violation would corrupt data or continue into UB:
//                   API misuse that cannot be reported via Status (e.g.
//                   Submit on a stopped ThreadPool) and internal
//                   consistency the data plane relies on.
//   POCS_DCHECK*  — debug builds only (compiled out under NDEBUG). For
//                   hot-path bounds and type checks in columnar/, format/,
//                   compress/, and substrait/ where the release-mode cost
//                   is unacceptable but a debug+sanitizer CI run should
//                   fail loudly at the first bad index.
//
// Untrusted input (wire bytes, files) must be rejected with Status, never
// with CHECK: a CHECK failure is a bug in this repo, not bad input.
//
// Failure prints the expression, file:line, and optional streamed context
// to stderr and calls std::abort(), so sanitizers and CI capture a stack.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pocs::internal {

// Accumulates streamed context for a failed check, then aborts in the
// destructor. Usage: CheckFailure(...) << "extra context";
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line;
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << " " << v;
    return *this;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

 private:
  std::ostringstream stream_;
};

// Swallows streamed context when a check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace pocs::internal

// Always-on checks ----------------------------------------------------------

// The switch wrapper makes the macro a single statement immune to
// dangling-else when used unbraced inside an if/else.
#define POCS_CHECK(cond)                                        \
  switch (0)                                                    \
  case 0:                                                       \
  default:                                                      \
    if (cond) {                                                 \
    } else /* NOLINT */                                         \
      ::pocs::internal::CheckFailure(#cond, __FILE__, __LINE__)

#define POCS_CHECK_OP(op, a, b) POCS_CHECK((a)op(b)) << "(" #a " " #op " " #b ")"

#define POCS_CHECK_EQ(a, b) POCS_CHECK_OP(==, a, b)
#define POCS_CHECK_NE(a, b) POCS_CHECK_OP(!=, a, b)
#define POCS_CHECK_LT(a, b) POCS_CHECK_OP(<, a, b)
#define POCS_CHECK_LE(a, b) POCS_CHECK_OP(<=, a, b)
#define POCS_CHECK_GT(a, b) POCS_CHECK_OP(>, a, b)
#define POCS_CHECK_GE(a, b) POCS_CHECK_OP(>=, a, b)

// Debug-only checks ---------------------------------------------------------

#ifndef NDEBUG
#define POCS_DCHECK(cond) POCS_CHECK(cond)
#define POCS_DCHECK_EQ(a, b) POCS_CHECK_EQ(a, b)
#define POCS_DCHECK_NE(a, b) POCS_CHECK_NE(a, b)
#define POCS_DCHECK_LT(a, b) POCS_CHECK_LT(a, b)
#define POCS_DCHECK_LE(a, b) POCS_CHECK_LE(a, b)
#define POCS_DCHECK_GT(a, b) POCS_CHECK_GT(a, b)
#define POCS_DCHECK_GE(a, b) POCS_CHECK_GE(a, b)
#else
// `true || (cond)` keeps cond's variables referenced (no -Wunused in
// release) without evaluating it; the whole statement folds away.
#define POCS_DCHECK(cond)  \
  switch (0)               \
  case 0:                  \
  default:                 \
    if (true || (cond)) {  \
    } else /* NOLINT */    \
      ::pocs::internal::NullStream()
#define POCS_DCHECK_EQ(a, b) POCS_DCHECK((a) == (b))
#define POCS_DCHECK_NE(a, b) POCS_DCHECK((a) != (b))
#define POCS_DCHECK_LT(a, b) POCS_DCHECK((a) < (b))
#define POCS_DCHECK_LE(a, b) POCS_DCHECK((a) <= (b))
#define POCS_DCHECK_GT(a, b) POCS_DCHECK((a) > (b))
#define POCS_DCHECK_GE(a, b) POCS_DCHECK((a) >= (b))
#endif

// Pointer checks: evaluate to the pointer so they compose in initializers,
// e.g.  member_(POCS_CHECK_NOTNULL(ptr)).
namespace pocs::internal {

template <typename T>
T CheckNotNull(T&& ptr, const char* expr, const char* file, int line) {
  if (ptr == nullptr) {
    CheckFailure(expr, file, line) << "(must not be null)";
  }
  return std::forward<T>(ptr);
}

}  // namespace pocs::internal

#define POCS_CHECK_NOTNULL(ptr) \
  ::pocs::internal::CheckNotNull((ptr), #ptr " != nullptr", __FILE__, __LINE__)

#ifndef NDEBUG
#define POCS_DCHECK_NOTNULL(ptr) POCS_CHECK_NOTNULL(ptr)
#else
#define POCS_DCHECK_NOTNULL(ptr) (ptr)
#endif
