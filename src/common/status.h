// Status / Result error-handling primitives used across the code base.
//
// We deliberately avoid exceptions on hot paths (operator pipelines, codec
// inner loops) and instead thread Status/Result values, following the
// style of large columnar systems. Construction of an error Status
// allocates; the OK status does not.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pocs {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kCorruption,
  kIOError,
  kUnavailable,
  kCancelled,
  kDeadlineExceeded,
};

std::string_view to_string(StatusCode code);

// A cheap, movable status word. OK is represented by a null state pointer so
// that the common success path costs one pointer test.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Result<T> — either a value or an error Status. Accessing the value of an
// error result aborts (programming error), mirroring the contract of
// absl::StatusOr in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      data_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? value() : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace pocs

// Propagation macros. POCS_RETURN_NOT_OK for Status-returning callees;
// POCS_ASSIGN_OR_RETURN for Result-returning callees.
#define POCS_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::pocs::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define POCS_CONCAT_IMPL(a, b) a##b
#define POCS_CONCAT(a, b) POCS_CONCAT_IMPL(a, b)

#define POCS_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto POCS_CONCAT(_res_, __LINE__) = (expr);                   \
  if (!POCS_CONCAT(_res_, __LINE__).ok())                       \
    return POCS_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(POCS_CONCAT(_res_, __LINE__)).value()
