// Query-level observability: a process-wide, thread-safe registry of
// named counters, gauges, and latency histograms.
//
// The paper's evaluation is built on runtime telemetry — pushdown hit
// rates via the EventListener, per-query stage breakdowns (Table 3), and
// bytes-moved reductions (Fig. 5). This registry is the substrate those
// numbers flow through: every layer (exec, connectors, object store,
// OCS storage nodes, netsim/rpc) records into it, and the bench harness
// snapshots it into BENCH_*.json reports.
//
// Concurrency contract: all metric updates are lock-free atomic ops, so
// hot paths (per-batch, per-transfer) pay one relaxed RMW. Registry
// lookups take a mutex — call sites cache the returned reference
// (metrics never die; see Registry). TSan-clean by construction: the
// only non-atomic state is the name map, which is mutex-protected.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace pocs::metrics {

// Monotonically increasing event/byte/row count.
class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written instantaneous value (queue depths, active workers).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Latency histogram over log2 buckets of nanoseconds: bucket i holds
// samples with bit_width(nanos) == i, covering <1ns .. >9 seconds in 64
// buckets. Quantiles are estimated at each bucket's geometric midpoint —
// coarse (±~41%) but stable, allocation-free, and lock-free to record.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(double seconds);
  void RecordNanos(uint64_t nanos);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double total_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  double mean_seconds() const;
  double min_seconds() const;
  double max_seconds() const;
  // q in [0,1]; returns an estimate of the q-quantile in seconds.
  double QuantileSeconds(double q) const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> min_nanos_{UINT64_MAX};
  std::atomic<uint64_t> max_nanos_{0};
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

// Point-in-time view of one metric, for reports.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counter/gauge value (histograms: sample count).
  int64_t value = 0;
  // Histogram-only summary, in seconds.
  double sum = 0, mean = 0, min = 0, max = 0, p50 = 0, p95 = 0, p99 = 0;
};

// Named metric registry. Get-or-create returns stable references: metrics
// are never removed, so call sites may cache them in function-local
// statics (`static auto& c = Registry::Default().GetCounter("x");`).
class Registry {
 public:
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // All metrics, sorted by name.
  std::vector<MetricSample> Snapshot() const;
  // Snapshot rendered as a JSON object keyed by metric name.
  std::string ToJson() const;
  // Zero every registered metric (names and references stay valid).
  // Bench/test hook — not for concurrent use with active recorders.
  void ResetAll();

  // The process-wide registry every built-in instrument records into.
  static Registry& Default();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ POCS_GUARDED_BY(mu_);
};

}  // namespace pocs::metrics
