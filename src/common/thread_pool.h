// A fixed-size work-stealing-free thread pool with a shared queue. Used by
// the engine's worker task execution and by the OCS storage nodes. Shared
// queue keeps it simple; tasks here are coarse (per-split), so contention
// on the queue mutex is negligible relative to task cost.
//
// Lifecycle: Submit/ParallelFor may be called from any thread until
// Shutdown() (or the destructor) begins. Submitting after shutdown is a
// caller bug and fails a POCS_CHECK — the alternative (silently dropping
// the task) deadlocks whoever waits on the returned future. The
// destructor drains deterministically: every task enqueued before the
// destructor ran is executed before the worker threads are joined.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace pocs {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task; returns a future for its result. CHECK-fails if the
  // pool is already shut down.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      POCS_CHECK(!stop_) << "ThreadPool::Submit after Shutdown";
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  // If any invocation throws, all n invocations still run to completion
  // (so no task outlives the call holding references into its frame) and
  // the first exception, in index order, is rethrown to the caller.
  // Small n gets one task per index (coarse per-split work); large n is
  // chunked into contiguous blocks to amortize per-task queue overhead.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  // Drain the queue, run every enqueued task, and join the workers.
  // Idempotent; implicitly called by the destructor.
  void Shutdown();

  bool stopped() const {
    MutexLock lock(mu_);
    return stop_;
  }

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  mutable Mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ POCS_GUARDED_BY(mu_);
  // Written only by the constructor, joined lock-free by Shutdown (taking
  // mu_ around join() would deadlock against the workers); immutable in
  // between, so it is deliberately not guarded.
  std::vector<std::thread> threads_;  // pocs-lint: allow(unannotated-mutex)
  bool stop_ POCS_GUARDED_BY(mu_) = false;
};

}  // namespace pocs
