// A fixed-size work-stealing-free thread pool with a shared queue. Used by
// the engine's worker task execution and by the OCS storage nodes. Shared
// queue keeps it simple; tasks here are coarse (per-split), so contention
// on the queue mutex is negligible relative to task cost.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pocs {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task; returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  // Run fn(i) for i in [0, n) across the pool and wait for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace pocs
