// A reusable, byte-budgeted, sharded LRU cache — the primitive behind
// the storage-side decoded row-group cache and the connector-side
// split-result cache (DESIGN.md §10).
//
// Design:
//   - N shards, each an independent (mutex, LRU list, hash index) triple;
//     a lookup/insert touches exactly one shard mutex, so concurrent
//     readers on different keys rarely contend. TSan-clean: all shared
//     state is either shard-mutex-protected or a relaxed atomic counter.
//   - Byte budget, not entry count: every Insert declares a charge (the
//     decoded payload size) and each shard evicts from its LRU tail until
//     its slice of the budget (budget / shards) fits. An entry larger
//     than a whole shard slice is not cached at all — admitting it would
//     just evict everything else and then itself on the next insert.
//   - Values are shared_ptr<const V>: a Lookup pins the entry, so
//     eviction never invalidates data a reader already holds.
//   - Metrics: when constructed with a metric prefix, hits / misses /
//     evictions / inserts are mirrored into the process registry as
//     `<prefix>.hit` etc. and resident bytes as the gauge
//     `<prefix>.bytes` (Add/Sub deltas, so several cache instances with
//     the same prefix sum naturally). Per-instance totals are also kept
//     in relaxed atomics for deterministic tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"

namespace pocs {

struct LruCacheConfig {
  uint64_t byte_budget = 0;   // 0 disables the cache entirely
  size_t shards = 8;
  std::string metric_prefix;  // empty = no registry mirroring
};

template <typename Key, typename Value, typename KeyHash = std::hash<Key>>
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };

  explicit ShardedLruCache(LruCacheConfig config) : config_(config) {
    if (config_.shards == 0) config_.shards = 1;
    shards_ = std::vector<Shard>(config_.shards);
    shard_budget_ = config_.byte_budget / config_.shards;
    if (!config_.metric_prefix.empty()) {
      auto& reg = metrics::Registry::Default();
      hit_metric_ = &reg.GetCounter(config_.metric_prefix + ".hit");
      miss_metric_ = &reg.GetCounter(config_.metric_prefix + ".miss");
      eviction_metric_ = &reg.GetCounter(config_.metric_prefix + ".eviction");
      insert_metric_ = &reg.GetCounter(config_.metric_prefix + ".insert");
      bytes_metric_ = &reg.GetGauge(config_.metric_prefix + ".bytes");
    }
  }

  ~ShardedLruCache() { Clear(); }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  bool enabled() const { return config_.byte_budget > 0; }
  uint64_t byte_budget() const { return config_.byte_budget; }

  // Returns the cached value (moving the entry to the shard's MRU
  // position) or nullptr on miss.
  ValuePtr Lookup(const Key& key) {
    if (!enabled()) return nullptr;
    Shard& shard = ShardFor(key);
    ValuePtr value;
    {
      MutexLock lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        value = it->second->value;
      }
    }
    // Stats/registry updates happen outside the shard lock (the same
    // deferral Insert always did): nothing external runs under a shard
    // mutex, so the shards stay leaf-level locks.
    if (!value) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (miss_metric_) miss_metric_->Increment();
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hit_metric_) hit_metric_->Increment();
    return value;
  }

  // Inserts (or replaces) `key`, charging `charge` bytes against the
  // shard's budget slice and evicting LRU entries to make room. Oversized
  // entries (charge > budget/shards) are not admitted.
  void Insert(const Key& key, ValuePtr value, uint64_t charge) {
    if (!enabled() || charge > shard_budget_) return;
    Shard& shard = ShardFor(key);
    uint64_t evicted = 0;
    int64_t byte_delta = 0;
    {
      MutexLock lock(shard.mu);
      auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        byte_delta -= static_cast<int64_t>(it->second->charge);
        shard.bytes -= it->second->charge;
        shard.lru.erase(it->second);
        shard.index.erase(it);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      }
      while (shard.bytes + charge > shard_budget_ && !shard.lru.empty()) {
        const Entry& tail = shard.lru.back();
        byte_delta -= static_cast<int64_t>(tail.charge);
        shard.bytes -= tail.charge;
        shard.index.erase(tail.key);
        shard.lru.pop_back();
        ++evicted;
      }
      shard.lru.push_front(Entry{key, std::move(value), charge});
      shard.index[key] = shard.lru.begin();
      shard.bytes += charge;
      byte_delta += static_cast<int64_t>(charge);
    }
    inserts_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_add(1, std::memory_order_relaxed);
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    entries_.fetch_sub(evicted, std::memory_order_relaxed);
    bytes_.fetch_add(static_cast<uint64_t>(byte_delta),
                     std::memory_order_relaxed);
    if (insert_metric_) insert_metric_->Increment();
    if (eviction_metric_ && evicted) eviction_metric_->Add(evicted);
    if (bytes_metric_) bytes_metric_->Add(byte_delta);
  }

  // Removes `key` if present; returns whether anything was erased.
  bool Erase(const Key& key) {
    if (!enabled()) return false;
    Shard& shard = ShardFor(key);
    uint64_t charge = 0;
    {
      MutexLock lock(shard.mu);
      auto it = shard.index.find(key);
      if (it == shard.index.end()) return false;
      charge = it->second->charge;
      shard.bytes -= charge;
      shard.lru.erase(it->second);
      shard.index.erase(it);
    }
    entries_.fetch_sub(1, std::memory_order_relaxed);
    bytes_.fetch_sub(charge, std::memory_order_relaxed);
    if (bytes_metric_) bytes_metric_->Add(-static_cast<int64_t>(charge));
    return true;
  }

  void Clear() {
    uint64_t dropped_bytes = 0;
    uint64_t dropped_entries = 0;
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      dropped_bytes += shard.bytes;
      dropped_entries += shard.lru.size();
      shard.bytes = 0;
      shard.lru.clear();
      shard.index.clear();
    }
    entries_.fetch_sub(dropped_entries, std::memory_order_relaxed);
    bytes_.fetch_sub(dropped_bytes, std::memory_order_relaxed);
    if (bytes_metric_) bytes_metric_->Add(-static_cast<int64_t>(dropped_bytes));
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Entry {
    Key key;
    ValuePtr value;
    uint64_t charge = 0;
  };
  struct Shard {
    Mutex mu;
    // front = most recently used
    std::list<Entry> lru POCS_GUARDED_BY(mu);
    std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash>
        index POCS_GUARDED_BY(mu);
    uint64_t bytes POCS_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Key& key) {
    // Re-mix: unordered_map-quality hashes may have weak low bits.
    return shards_[Mix64(KeyHash{}(key)) % shards_.size()];
  }

  LruCacheConfig config_;
  uint64_t shard_budget_ = 0;
  std::vector<Shard> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> entries_{0};

  metrics::Counter* hit_metric_ = nullptr;
  metrics::Counter* miss_metric_ = nullptr;
  metrics::Counter* eviction_metric_ = nullptr;
  metrics::Counter* insert_metric_ = nullptr;
  metrics::Gauge* bytes_metric_ = nullptr;
};

}  // namespace pocs
