// Byte-buffer primitives: an append-only ByteBuffer plus little-endian and
// varint readers/writers. These underlie every serialization path in the
// repo (columnar IPC, Parquet-lite pages, Substrait wire format, RPC
// frames), so they are kept allocation-frugal and bounds-checked.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace pocs {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

// Growable output buffer with typed little-endian appends.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(size_t reserve) { data_.reserve(reserve); }

  void WriteBytes(const void* src, size_t n) {
    const auto* p = static_cast<const uint8_t*>(src);
    data_.insert(data_.end(), p, p + n);
  }
  void WriteBytes(ByteSpan span) { WriteBytes(span.data(), span.size()); }

  template <typename T>
  void WriteLE(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));  // host is little-endian (x86-64/aarch64)
  }

  void WriteU8(uint8_t v) { data_.push_back(v); }

  // LEB128 unsigned varint.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      data_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    data_.push_back(static_cast<uint8_t>(v));
  }

  // ZigZag-encoded signed varint.
  void WriteSVarint(int64_t v) {
    WriteVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  void WriteString(std::string_view s) {
    WriteVarint(s.size());
    WriteBytes(s.data(), s.size());
  }

  // Patch a previously written fixed-width little-endian value.
  template <typename T>
  void PatchLE(size_t offset, T value) {
    POCS_DCHECK_LE(offset + sizeof(T), data_.size());
    std::memcpy(data_.data() + offset, &value, sizeof(T));
  }

  size_t size() const { return data_.size(); }
  const Bytes& data() const { return data_; }
  Bytes&& Take() { return std::move(data_); }
  ByteSpan span() const { return ByteSpan(data_.data(), data_.size()); }

 private:
  Bytes data_;
};

// Bounds-checked reader over a byte span. All reads return Status on
// underflow so corrupt inputs surface as Corruption, never UB.
class BufferReader {
 public:
  explicit BufferReader(ByteSpan data) : data_(data) {}
  BufferReader(const void* data, size_t n)
      : data_(static_cast<const uint8_t*>(data), n) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ >= data_.size(); }

  Status ReadBytes(void* dst, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("buffer underflow: need " + std::to_string(n) +
                                " bytes, have " + std::to_string(remaining()));
    }
    // n == 0 is a valid read (e.g. an empty column payload) where dst may
    // be null; memcpy requires non-null pointers even for zero lengths.
    if (n > 0) std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Result<ByteSpan> ReadSpan(size_t n) {
    if (remaining() < n) {
      return Status::Corruption("buffer underflow reading span of " +
                                std::to_string(n));
    }
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T>
  Result<T> ReadLE() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    POCS_RETURN_NOT_OK(ReadBytes(&v, sizeof(T)));
    return v;
  }

  Result<uint8_t> ReadU8() { return ReadLE<uint8_t>(); }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (exhausted()) return Status::Corruption("truncated varint");
      if (shift >= 64) return Status::Corruption("varint overflow");
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
    }
    return v;
  }

  Result<int64_t> ReadSVarint() {
    POCS_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
    return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  Result<std::string> ReadString() {
    POCS_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (remaining() < n) return Status::Corruption("truncated string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Status::Corruption("skip past end");
    pos_ += n;
    return Status::OK();
  }

  Status SeekTo(size_t pos) {
    if (pos > data_.size()) return Status::Corruption("seek past end");
    pos_ = pos;
    return Status::OK();
  }

 private:
  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace pocs
