#include "common/status.h"

namespace pocs {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(to_string(state_->code));
  out += ": ";
  out += state_->message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace pocs
