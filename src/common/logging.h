// Minimal leveled logging. Defaults to WARN so library users are not
// spammed; benches and examples raise it explicitly.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

#include "common/thread_annotations.h"

namespace pocs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace detail {
// Serializes writes to std::cerr. A terminal lock: nothing is called
// while it is held, so it can never participate in a lock cycle.
Mutex& LogMutex();
std::string_view LevelName(LogLevel level);
}  // namespace detail

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << detail::LevelName(level) << " " << file << ":" << line
            << "] ";
  }
  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      MutexLock lock(detail::LogMutex());
      std::cerr << stream_.str() << "\n";
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace pocs

#define POCS_LOG(level)                                                 \
  ::pocs::LogMessage(::pocs::LogLevel::k##level, __FILE_NAME__, __LINE__) \
      .stream()
