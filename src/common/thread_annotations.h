// Clang Thread Safety Analysis for the whole stack (DESIGN.md §11).
//
// Lock discipline in this repo is *compiler-enforced*: every mutex is a
// `pocs::Mutex`/`pocs::SharedMutex` (a CAPABILITY-annotated wrapper over
// the std primitives), every field a mutex guards carries
// POCS_GUARDED_BY, and every private helper that assumes the lock is
// held carries POCS_REQUIRES. Under `-DPOCS_THREAD_SAFETY=ON` (clang
// only) the `-Wthread-safety -Wthread-safety-beta` analysis proves, at
// compile time, that no guarded field is ever touched without its lock
// and that ACQUIRED_BEFORE/ACQUIRED_AFTER orderings are respected — the
// static complement to the dynamic TSan job, which only catches races
// the tests happen to execute.
//
// On compilers without the attributes (GCC) the macros compile away;
// `tools/pocs_lint.py --thread-safety-check` compiles probe snippets
// with clang and *requires* them to be rejected, so the wiring can
// never silently degrade into no-ops.
//
// Usage:
//   pocs::Mutex mu_;
//   std::deque<Task> queue_ POCS_GUARDED_BY(mu_);
//   void DrainLocked() POCS_REQUIRES(mu_);   // caller holds mu_
//   ...
//   pocs::MutexLock lock(mu_);               // RAII; scoped capability
//
// POCS_NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort —
// acceptable only where the analysis cannot model a true invariant
// (e.g. locks handed across threads); each use needs a comment saying
// why (DESIGN.md §11 lists the accepted patterns).
#pragma once

#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define POCS_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define POCS_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op outside clang
#endif

#define POCS_CAPABILITY(x) POCS_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define POCS_SCOPED_CAPABILITY \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define POCS_GUARDED_BY(x) POCS_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// For pointers: the pointed-to data (not the pointer) is guarded.
#define POCS_PT_GUARDED_BY(x) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Lock-ordering declarations, enforced under -Wthread-safety-beta.
#define POCS_ACQUIRED_BEFORE(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define POCS_ACQUIRED_AFTER(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

// The function may only be called while holding the capability.
#define POCS_REQUIRES(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define POCS_REQUIRES_SHARED(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

// The function acquires/releases the capability (and does not already
// hold it / holds it on entry, respectively).
#define POCS_ACQUIRE(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define POCS_ACQUIRE_SHARED(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define POCS_RELEASE(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define POCS_RELEASE_SHARED(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define POCS_TRY_ACQUIRE(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// The function must NOT be called while holding the capability — the
// non-reentrancy declaration that keeps a std::mutex-backed capability
// from self-deadlocking.
#define POCS_EXCLUDES(...) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define POCS_ASSERT_CAPABILITY(x) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define POCS_RETURN_CAPABILITY(x) \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define POCS_NO_THREAD_SAFETY_ANALYSIS \
  POCS_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace pocs {

// Exclusive mutex the analysis can see. Prefer pocs::MutexLock over the
// manual Lock()/Unlock() pair (the repo lint flags manual calls).
class POCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() POCS_ACQUIRE() { mu_.lock(); }        // pocs-lint: allow(manual-lock)
  void Unlock() POCS_RELEASE() { mu_.unlock(); }    // pocs-lint: allow(manual-lock)
  bool TryLock() POCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // The wrapped primitive, for APIs that need it (condition-variable
  // waits via MutexLock::native()). Code touching it directly bypasses
  // the analysis — keep such uses inside this header.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;  // pocs-lint: allow(unannotated-mutex)
};

// Reader/writer mutex. Writers take SharedMutexLock (exclusive),
// readers SharedReaderLock.
class POCS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() POCS_ACQUIRE() { mu_.lock(); }        // pocs-lint: allow(manual-lock)
  void Unlock() POCS_RELEASE() { mu_.unlock(); }    // pocs-lint: allow(manual-lock)
  // pocs-lint: allow(manual-lock)
  void LockShared() POCS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  // pocs-lint: allow(manual-lock)
  void UnlockShared() POCS_RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;  // pocs-lint: allow(unannotated-mutex)
};

// RAII exclusive lock — the std::lock_guard/unique_lock replacement the
// analysis understands. native() exposes the underlying unique_lock for
// std::condition_variable::wait; the analysis (correctly) treats the
// capability as held across the wait, because the predicate and all
// surrounding guarded accesses run with the lock re-acquired.
class POCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) POCS_ACQUIRE(mu) : lock_(mu.native()) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() POCS_RELEASE() {}

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// RAII exclusive lock over a SharedMutex (writer side).
class POCS_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) POCS_ACQUIRE(mu)
      : lock_(mu.native()) {}
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;
  ~SharedMutexLock() POCS_RELEASE() {}

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

// RAII shared (reader) lock over a SharedMutex.
class POCS_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mu) POCS_ACQUIRE_SHARED(mu)
      : lock_(mu.native()) {}
  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;
  ~SharedReaderLock() POCS_RELEASE() {}

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

}  // namespace pocs
