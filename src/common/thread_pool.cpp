#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace pocs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  // Workers only exit once the queue is empty, so every task enqueued
  // before stop_ was set runs before the join below returns.
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda-predicate overload): the
      // analysis treats mu_ as held across the wait, and every guarded
      // access here really does run with the lock re-acquired.
      while (!stop_ && queue_.empty()) cv_.wait(lock.native());
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Per-index tasks are right for coarse, uneven work (the engine's
  // per-split fan-out), but for large n (the cache warmer's per-row-group
  // fan-out) the per-task packaged_task/future/queue-mutex overhead
  // dominates. Chunk into contiguous blocks once n clearly exceeds the
  // pool; 4 blocks per thread keeps load balancing reasonable for mildly
  // uneven work without reintroducing per-index overhead.
  const size_t chunk_threshold = 4 * num_threads();
  const size_t num_blocks =
      n <= chunk_threshold ? n : std::min(n, chunk_threshold);
  const size_t block_size = (n + num_blocks - 1) / num_blocks;

  struct BlockError {
    std::exception_ptr error;  // first exception within the block...
    size_t index = 0;          // ...and the index that threw it
  };
  std::vector<BlockError> block_errors(num_blocks);

  std::vector<std::future<void>> futs;
  futs.reserve(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * block_size;
    const size_t end = std::min(n, begin + block_size);
    futs.push_back(Submit([&fn, &block_errors, b, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          // Record only the block's first failure; later indices in the
          // block still run — the contract is that every invocation
          // completes before ParallelFor returns.
          if (!block_errors[b].error) {
            block_errors[b].error = std::current_exception();
            block_errors[b].index = i;
          }
        }
      }
    }));
  }
  // Wait for ALL tasks before rethrowing: an early rethrow would return
  // while queued tasks still reference `fn` (and the caller's captures)
  // in a destroyed stack frame.
  for (auto& f : futs) f.get();
  // Blocks cover disjoint ascending ranges, so the globally first failing
  // index is the first block that recorded one.
  for (const BlockError& be : block_errors) {
    if (be.error) std::rethrow_exception(be.error);
  }
}

}  // namespace pocs
