#include "common/thread_pool.h"

#include <exception>
#include <utility>

namespace pocs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  // Workers only exit once the queue is empty, so every task enqueued
  // before stop_ was set runs before the join below returns.
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futs.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Wait for ALL tasks before rethrowing: an early rethrow would return
  // while queued tasks still reference `fn` (and the caller's captures)
  // in a destroyed stack frame.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pocs
