#include "common/thread_pool.h"

#include <atomic>

namespace pocs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futs.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace pocs
