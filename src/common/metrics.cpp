#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace pocs::metrics {

namespace {

size_t BucketFor(uint64_t nanos) {
  return std::min<size_t>(std::bit_width(nanos), Histogram::kBuckets - 1);
}

// Representative value (nanoseconds) for samples landing in bucket i:
// bucket 0 holds {0}, bucket i>=1 holds [2^(i-1), 2^i); report the
// arithmetic midpoint of the range.
double BucketMidNanos(size_t i) {
  if (i == 0) return 0.0;
  double lo = std::ldexp(1.0, static_cast<int>(i) - 1);
  return lo * 1.5;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON has no inf/nan literals; clamp to null.
  *out += std::isfinite(v) ? buf : "null";
}

}  // namespace

void Histogram::Record(double seconds) {
  if (!(seconds > 0)) {  // negative/NaN clamp to the zero bucket
    RecordNanos(0);
    return;
  }
  double nanos = seconds * 1e9;
  RecordNanos(nanos >= 9.2e18 ? UINT64_MAX : static_cast<uint64_t>(nanos));
}

void Histogram::RecordNanos(uint64_t nanos) {
  buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t observed = min_nanos_.load(std::memory_order_relaxed);
  while (nanos < observed &&
         !min_nanos_.compare_exchange_weak(observed, nanos,
                                           std::memory_order_relaxed)) {
  }
  observed = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > observed &&
         !max_nanos_.compare_exchange_weak(observed, nanos,
                                           std::memory_order_relaxed)) {
  }
}

double Histogram::mean_seconds() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

double Histogram::min_seconds() const {
  uint64_t v = min_nanos_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0.0 : static_cast<double>(v) * 1e-9;
}

double Histogram::max_seconds() const {
  return static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::QuantileSeconds(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      // Clamp the bucket midpoint to the observed extrema so tiny sample
      // sets report values that were actually seen.
      double mid = BucketMidNanos(i) * 1e-9;
      return std::clamp(mid, min_seconds(), max_seconds());
    }
  }
  return max_seconds();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(UINT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

Counter& Registry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (!e.counter) {
    POCS_CHECK(!e.gauge && !e.histogram)
        << "metric '" << name << "' already registered with another kind";
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& Registry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (!e.gauge) {
    POCS_CHECK(!e.counter && !e.histogram)
        << "metric '" << name << "' already registered with another kind";
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  Entry& e = entries_[name];
  if (!e.histogram) {
    POCS_CHECK(!e.counter && !e.gauge)
        << "metric '" << name << "' already registered with another kind";
    e.kind = MetricKind::kHistogram;
    e.histogram = std::make_unique<Histogram>();
  }
  return *e.histogram;
}

std::vector<MetricSample> Registry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<int64_t>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.value = static_cast<int64_t>(e.histogram->count());
        s.sum = e.histogram->total_seconds();
        s.mean = e.histogram->mean_seconds();
        s.min = e.histogram->min_seconds();
        s.max = e.histogram->max_seconds();
        s.p50 = e.histogram->QuantileSeconds(0.50);
        s.p95 = e.histogram->QuantileSeconds(0.95);
        s.p99 = e.histogram->QuantileSeconds(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

std::string Registry::ToJson() const {
  std::vector<MetricSample> snapshot = Snapshot();
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : snapshot) {
    if (!first) out += ",";
    first = false;
    out += "\"" + s.name + "\":";
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += std::to_string(s.value);
        break;
      case MetricKind::kHistogram:
        out += "{\"count\":" + std::to_string(s.value);
        out += ",\"sum_s\":";
        AppendDouble(&out, s.sum);
        out += ",\"mean_s\":";
        AppendDouble(&out, s.mean);
        out += ",\"min_s\":";
        AppendDouble(&out, s.min);
        out += ",\"max_s\":";
        AppendDouble(&out, s.max);
        out += ",\"p50_s\":";
        AppendDouble(&out, s.p50);
        out += ",\"p95_s\":";
        AppendDouble(&out, s.p95);
        out += ",\"p99_s\":";
        AppendDouble(&out, s.p99);
        out += "}";
        break;
    }
  }
  out += "}";
  return out;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter: e.counter->Reset(); break;
      case MetricKind::kGauge: e.gauge->Reset(); break;
      case MetricKind::kHistogram: e.histogram->Reset(); break;
    }
  }
}

Registry& Registry::Default() {
  // Leaked on purpose: metric references cached in function-local statics
  // at call sites must outlive every other static destructor.
  // NOLINTNEXTLINE(cppcoreguidelines-owning-memory)
  static Registry* registry = new Registry();  // pocs-lint: allow(naked-new)
  return *registry;
}

}  // namespace pocs::metrics
