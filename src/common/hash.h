// Non-cryptographic hashing used by hash aggregation, dictionary encoding,
// and the object store's integrity checksums. A 64-bit mix based on
// the splitmix64/xxhash finalizer family: fast, well-distributed, stable
// across platforms (we serialize checksums to disk formats).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace pocs {

inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// Streaming-free one-shot hash over raw bytes.
inline uint64_t HashBytes(const void* data, size_t n, uint64_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ (n * 0x9e3779b97f4a7c15ULL);
  while (n >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    h = HashCombine(h, Mix64(k));
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  for (size_t i = 0; i < n; ++i) tail |= static_cast<uint64_t>(p[i]) << (8 * i);
  if (n > 0) h = HashCombine(h, Mix64(tail));
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

template <typename T>
inline uint64_t HashValue(const T& v, uint64_t seed = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  return HashBytes(&v, sizeof(T), seed);
}

}  // namespace pocs
