// Wall-clock stopwatch used for instrumenting real compute time. Network
// time is modelled separately by netsim's virtual clock; see DESIGN.md §4.
#pragma once

#include <chrono>
#include <cstdint>

namespace pocs {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed wall time in nanoseconds / microseconds / seconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pocs
