#include "common/logging.h"

#include <atomic>

namespace pocs {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {

Mutex& LogMutex() {
  static Mutex mu;
  return mu;
}

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace detail
}  // namespace pocs
