// Seeded blocked-free bloom filter over 64-bit keys, used for semi-join
// reduction: the engine builds one over a dimension table's join keys and
// attaches it to the fact-table scan so storage nodes drop non-matching
// rows before any bytes cross the network (DESIGN.md §14). Double
// hashing (Kirsch–Mitzenmacher) over the splitmix64 mixer keeps the
// filter deterministic for a given (seed, insertion set) regardless of
// insertion order, so pushed plans — and therefore plan fingerprints —
// are reproducible across runs.
//
// No false negatives, ever: a key that was Add()ed always passes
// MayContain(). False positives are expected and harmless — every
// consumer re-probes an exact hash table engine-side.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/hash.h"

namespace pocs {

class BloomFilter {
 public:
  // `num_bits` is rounded up to a multiple of 64 (min one word).
  BloomFilter(uint64_t num_bits, uint32_t num_hashes, uint64_t seed)
      : words_((num_bits + 63) / 64 == 0 ? 1 : (num_bits + 63) / 64, 0),
        num_hashes_(num_hashes == 0 ? 1 : num_hashes),
        seed_(seed) {}

  // Reconstruct from serialized state (e.g. a pushed plan's bloom term).
  BloomFilter(std::vector<uint64_t> words, uint32_t num_hashes, uint64_t seed)
      : words_(std::move(words)),
        num_hashes_(num_hashes == 0 ? 1 : num_hashes),
        seed_(seed) {
    POCS_CHECK(!words_.empty());
  }

  void Add(uint64_t key) {
    uint64_t h1 = Mix64(key ^ seed_);
    uint64_t h2 = Mix64(h1 ^ 0x9e3779b97f4a7c15ULL) | 1;  // odd stride
    const uint64_t n_bits = words_.size() * 64;
    for (uint32_t i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = (h1 + i * h2) % n_bits;
      words_[bit / 64] |= uint64_t{1} << (bit % 64);
    }
  }

  bool MayContain(uint64_t key) const {
    uint64_t h1 = Mix64(key ^ seed_);
    uint64_t h2 = Mix64(h1 ^ 0x9e3779b97f4a7c15ULL) | 1;
    const uint64_t n_bits = words_.size() * 64;
    for (uint32_t i = 0; i < num_hashes_; ++i) {
      const uint64_t bit = (h1 + i * h2) % n_bits;
      if ((words_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
    }
    return true;
  }

  const std::vector<uint64_t>& words() const { return words_; }
  uint32_t num_hashes() const { return num_hashes_; }
  uint64_t seed() const { return seed_; }

 private:
  std::vector<uint64_t> words_;
  uint32_t num_hashes_;
  uint64_t seed_;
};

}  // namespace pocs
